//! Workspace façade crate.
//!
//! This package exists so that the repository root can carry the runnable
//! `examples/` and cross-crate integration `tests/` required by the project
//! layout. All functionality lives in the member crates; see the
//! [`lowerbounds`] umbrella crate for the public API.

#![forbid(unsafe_code)]

pub use lowerbounds as lb;
