//! A tour of the paper's conditional lower bounds (paper §5–§8).
//!
//! Walks the hypothesis registry and its implication DAG, then *executes*
//! two of the reductions behind the lower bounds:
//!
//! 1. Clique → binary CSP with k variables (Theorem 6.4): solving the CSP
//!    really does find cliques;
//! 2. Clique → SPECIAL CSP (Definition 4.3): the quasipolynomial special
//!    solver answers the clique question through the reduction.
//!
//! Run with: `cargo run --release --example lower_bound_tour`

use lowerbounds::claims::claims_under;
use lowerbounds::engine::Budget;
use lowerbounds::graph::generators;
use lowerbounds::hypotheses::Hypothesis;
use lowerbounds::reductions::{clique_to_csp, clique_to_special};

fn main() {
    println!("== The hypothesis lattice (§4–§8) ==\n");
    for h in Hypothesis::ALL {
        println!("{:<36} {}", h.name(), h.statement());
        let implied: Vec<&str> = Hypothesis::ALL
            .into_iter()
            .filter(|&o| o != h && h.implies(o))
            .map(|o| o.name())
            .collect();
        if !implied.is_empty() {
            println!("{:<36}   ⇒ implies: {}", "", implied.join(", "));
        }
    }

    println!("\n== What follows if SETH holds ==\n");
    for c in claims_under(Hypothesis::Seth) {
        println!("  {:<40} rules out {}", c.id, c.rules_out);
    }

    println!("\n== Executing the Clique → CSP reduction (Theorem 6.4) ==\n");
    let (g, planted) = generators::planted_clique(30, 5, 0.25, 2024);
    println!("G(30, 0.25) with a planted 5-clique {planted:?}");
    let inst = clique_to_csp::reduce(&g, 5);
    println!(
        "CSP: |V| = {} variables, |D| = {} values, {} constraints",
        inst.num_vars,
        inst.domain_size,
        inst.constraints.len()
    );
    let solution = lowerbounds::csp::solver::solve(&inst, &Budget::unlimited())
        .0
        .unwrap_decided()
        .expect("planted clique exists");
    let clique = clique_to_csp::solution_back(&solution);
    assert!(g.is_clique(&clique));
    println!("CSP solver recovered the clique: {clique:?}");

    println!("\n== Executing the Clique → SPECIAL CSP reduction (§5) ==\n");
    let k = 4;
    let inst = clique_to_special::reduce(&g, k);
    println!(
        "Special CSP: k-clique part + 2^k path = {} variables (f(k) = k + 2^k)",
        inst.num_vars
    );
    match clique_to_special::has_clique_via_special(&g, k, &Budget::unlimited())
        .0
        .unwrap_decided()
    {
        Some(c) => {
            assert!(g.is_clique(&c));
            println!("quasipolynomial special solver found a {k}-clique: {c:?}");
        }
        None => println!("no {k}-clique (the graph changed?)"),
    }
    println!("\nBoth reductions preserve YES/NO and map solutions back — the");
    println!("machine-checked content of the W[1]-hardness proofs in §5.");
}
