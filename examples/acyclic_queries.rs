//! Acyclic join queries: the tractable boundary (paper §4).
//!
//! Classifies query shapes with the GYO reduction and evaluates an acyclic
//! query three ways — Yannakakis (linear in input + output), Generic Join,
//! and a binary hash-join plan — on inputs engineered so the unreduced
//! binary plan materializes a huge dead intermediate.
//!
//! Run with: `cargo run --release --example acyclic_queries`

use lowerbounds::engine::Budget;
use lowerbounds::join::acyclic::{is_acyclic, is_empty_acyclic, yannakakis};
use lowerbounds::join::{binary, wcoj, Atom, Database, JoinQuery, Table};
use std::time::Instant;

fn main() {
    println!("GYO classification (paper §4: acyclic ⇒ polynomial time):");
    for (name, q) in [
        (
            "path-4   R0(x0,x1) ⋈ R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4)",
            path_query(4),
        ),
        ("star-4", JoinQuery::star(4)),
        ("triangle", JoinQuery::triangle()),
        ("4-cycle", JoinQuery::cycle(4)),
        ("Loomis–Whitney(3)", JoinQuery::loomis_whitney(3)),
    ] {
        println!(
            "  {:<60} {}",
            name,
            if is_acyclic(&q) { "acyclic" } else { "CYCLIC" }
        );
    }

    // A 3-hop path query where the middle join explodes but the answer is
    // empty: R0 and R1 are s×s grids, R2 kills everything.
    let q = path_query(3);
    let s = 300u64;
    let mut grid = Table::new(2);
    for i in 0..s {
        for j in 0..s {
            grid.push(vec![i, j]);
        }
    }
    grid.normalize();
    let mut db = Database::new();
    db.insert("R0", grid.clone());
    db.insert("R1", grid);
    db.insert("R2", Table::from_rows(2, vec![vec![u64::MAX - 1, 0]]));

    println!("\nDead-end path query, |R0| = |R1| = {} tuples:", s * s);
    let bu = Budget::unlimited();
    let t0 = Instant::now();
    let yk = yannakakis(&q, &db, &bu).unwrap().0.unwrap_sat();
    println!(
        "  Yannakakis (semi-join reduced): {:>10.2?}  answer = {}",
        t0.elapsed(),
        yk.len()
    );

    let t1 = Instant::now();
    let empty = is_empty_acyclic(&q, &db, &bu).unwrap().0.unwrap_sat();
    println!(
        "  emptiness sweep only:           {:>10.2?}  empty = {empty}",
        t1.elapsed()
    );

    let t2 = Instant::now();
    let gj = wcoj::join(&q, &db, None, &bu).unwrap().0.unwrap_sat();
    println!(
        "  Generic Join:                   {:>10.2?}  answer = {}",
        t2.elapsed(),
        gj.len()
    );

    let t3 = Instant::now();
    let (bp_out, stats) = binary::left_deep_join(&q, &db, &bu).unwrap();
    let bp = bp_out.unwrap_sat();
    println!(
        "  binary plan:                    {:>10.2?}  answer = {} (materialized {} tuples!)",
        t3.elapsed(),
        bp.len(),
        stats.tuples
    );
    assert_eq!(yk, gj);
    assert_eq!(yk, bp);
    println!("\nThe semi-join reduction never materializes more than input+output —");
    println!("the linear-time guarantee that makes acyclic queries the easy case,");
    println!("while Theorems 5.2/6.6 show bounded treewidth is all that extends it.");
}

fn path_query(len: usize) -> JoinQuery {
    JoinQuery::new(
        (0..len)
            .map(|i| Atom {
                relation: format!("R{i}"),
                attrs: vec![format!("x{i}"), format!("x{}", i + 1)],
            })
            .collect(),
    )
}
