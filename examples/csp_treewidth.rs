//! Treewidth-driven CSP solving (paper §4, Theorem 4.2).
//!
//! Generates random binary CSPs whose primal graphs are k-trees (treewidth
//! exactly k), computes tree decompositions with the min-fill heuristic,
//! and contrasts Freuder's |D|^{k+1} dynamic program with plain
//! backtracking — including solution *counting*, which backtracking must
//! enumerate but the DP gets for free.
//!
//! Run with: `cargo run --release --example csp_treewidth`

use lowerbounds::csp::generators::random_ktree_csp;
use lowerbounds::csp::solver::{backtracking, treewidth_dp, BacktrackConfig};
use lowerbounds::engine::Budget;
use lowerbounds::graph::treewidth;
use std::time::Instant;

fn main() {
    println!("Random binary CSPs on k-tree primal graphs, |D| = 3, tightness 0.40");
    println!();
    println!(
        "{:>3} {:>6} {:>7} {:>10} {:>12} {:>14}",
        "k", "vars", "tw", "solutions", "Freuder DP", "backtracking"
    );
    for k in 1..=4 {
        for num_vars in [15usize, 25] {
            let inst = random_ktree_csp(k, num_vars, 3, 0.40, 42 + k as u64);
            let primal = inst.primal_graph();
            let (tw_ub, td) = treewidth::treewidth_upper_bound(&primal);

            let bu = Budget::unlimited();
            let t0 = Instant::now();
            let dp = treewidth_dp::solve_with_decomposition(&inst, &td, &bu)
                .0
                .unwrap_sat();
            let dp_time = t0.elapsed();

            // Backtracking must *enumerate* to count; skip it when the DP
            // already knows the count is huge.
            let bt_cell = if dp.count <= 2_000_000 {
                let t1 = Instant::now();
                let (bt_out, _) = backtracking::count(&inst, BacktrackConfig::default(), &bu);
                let bt_count = bt_out.unwrap_sat();
                let bt_time = t1.elapsed();
                assert_eq!(dp.count, bt_count, "solvers must agree");
                format!("{bt_time:>13.2?}")
            } else {
                format!("{:>13}", "(skipped)")
            };
            println!(
                "{:>3} {:>6} {:>7} {:>10} {:>11.2?} {}",
                k, num_vars, tw_ub, dp.count, dp_time, bt_cell
            );
        }
    }
    println!();
    println!("Freuder's DP spends |D|^(k+1) per bag — polynomial for every fixed k,");
    println!("and Theorems 6.5–6.7 / 7.2 show the exponent k cannot be improved.");
}
