//! Schaefer's dichotomy in action (paper §4).
//!
//! Classifies several Boolean relation sets into the six tractable classes
//! (or NP-hard), and solves a random instance of each tractable case with
//! the dedicated polynomial-time solver, cross-checked against brute force.
//!
//! Run with: `cargo run --release --example schaefer_dichotomy`

use lowerbounds::engine::Budget;
use lowerbounds::sat::schaefer::{
    classify_relation_set, solve_in_class, BoolCspInstance, BooleanRelation,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let t = |bits: &[u8]| -> Vec<bool> { bits.iter().map(|&b| b == 1).collect() };
    let rel = |arity: usize, rows: &[&[u8]]| -> BooleanRelation {
        BooleanRelation::new(arity, rows.iter().map(|r| t(r)).collect())
    };

    let named: Vec<(&str, Vec<BooleanRelation>)> = vec![
        (
            "2SAT clauses (x∨y), (x→y)",
            vec![
                rel(2, &[&[0, 1], &[1, 0], &[1, 1]]),
                rel(2, &[&[0, 0], &[0, 1], &[1, 1]]),
            ],
        ),
        ("XOR equations (x⊕y=1)", vec![rel(2, &[&[0, 1], &[1, 0]])]),
        (
            "Horn implications + facts",
            vec![rel(2, &[&[0, 0], &[0, 1], &[1, 1]]), rel(1, &[&[1]])],
        ),
        (
            "1-in-3 SAT",
            vec![rel(3, &[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]])],
        ),
        (
            "Not-all-equal 3SAT",
            vec![rel(
                3,
                &[
                    &[0, 0, 1],
                    &[0, 1, 0],
                    &[1, 0, 0],
                    &[0, 1, 1],
                    &[1, 0, 1],
                    &[1, 1, 0],
                ],
            )],
        ),
    ];

    println!("{:<32} Schaefer classification", "relation set");
    println!("{:-<32} {:-<40}", "", "");
    for (name, rels) in &named {
        let classes = classify_relation_set(rels);
        let verdict = if classes.is_empty() {
            "NP-hard (no tractable class applies)".to_string()
        } else {
            format!("in P via {classes:?}")
        };
        println!("{name:<32} {verdict}");
    }

    // Solve a random Horn instance with the fixpoint solver.
    println!();
    let horn = vec![
        rel(2, &[&[0, 0], &[0, 1], &[1, 1]]), // x → y
        rel(1, &[&[1]]),                      // fact
        rel(1, &[&[0]]),                      // negated fact
    ];
    let mut rng = StdRng::seed_from_u64(7);
    let num_vars = 12;
    let mut constraints = Vec::new();
    for _ in 0..20 {
        let r = rng.gen_range(0..horn.len());
        let scope: Vec<usize> = (0..horn[r].arity())
            .map(|_| rng.gen_range(0..num_vars))
            .collect();
        constraints.push((scope, r));
    }
    let inst = BoolCspInstance {
        num_vars,
        relations: horn,
        constraints,
    };
    let classes = classify_relation_set(&inst.relations);
    println!("Random Horn instance over {num_vars} variables: classes {classes:?}");
    let bu = Budget::unlimited();
    let got = solve_in_class(&inst, classes[0], &bu).0.unwrap_decided();
    let brute = inst.solve_brute(&bu).0.unwrap_decided();
    match (&got, &brute) {
        (Some(m), Some(_)) => {
            assert!(inst.eval(m));
            println!("  polynomial solver found the minimal model {m:?}");
        }
        (None, None) => println!("  both solvers agree: unsatisfiable"),
        _ => unreachable!("polynomial solver must agree with brute force"),
    }
}
