//! Quickstart: the AGM bound and worst-case optimal joins (paper §3).
//!
//! Builds the paper's running example — the triangle query — computes its
//! fractional edge cover number ρ* = 3/2 exactly, constructs the Theorem
//! 3.2 worst-case database, and evaluates it with both the worst-case
//! optimal Generic Join and a classical binary hash-join plan.
//!
//! Run with: `cargo run --release --example quickstart`

use lowerbounds::engine::Budget;
use lowerbounds::join::{agm, binary, wcoj, JoinQuery};
use std::time::Instant;

fn main() {
    let q = JoinQuery::triangle();
    let rho = agm::rho_star(&q).expect("triangle hypergraph is covered");
    println!("Triangle query R(a,b) ⋈ S(a,c) ⋈ T(b,c)");
    println!("  fractional edge cover number ρ* = {rho} (exactly)");
    println!();

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14}",
        "N", "AGM bound", "answer", "wcoj", "binary plan"
    );
    for n in [100u64, 400, 1600, 6400] {
        let bound = agm::agm_bound(&q, n).unwrap();
        let (db, predicted) = agm::worst_case_database(&q, n).unwrap();

        let bu = Budget::unlimited();
        let t0 = Instant::now();
        let count = wcoj::count(&q, &db, None, &bu).unwrap().0.unwrap_sat();
        let wcoj_time = t0.elapsed();

        let t1 = Instant::now();
        let (ans_out, stats) = binary::left_deep_join(&q, &db, &bu).unwrap();
        let binary_time = t1.elapsed();
        let ans = ans_out.unwrap_sat();

        assert_eq!(count as u128, predicted, "Theorem 3.2 witness is exact");
        assert_eq!(ans.len(), count as usize);
        println!(
            "{:>8} {:>12.0} {:>12} {:>11.2?} {:>11.2?} (max intermediate {})",
            n, bound, count, wcoj_time, binary_time, stats.max_intermediate
        );
    }
    println!();
    println!("The answer always matches the N^{{3/2}} prediction (Theorems 3.1–3.2),");
    println!("and the binary plan materializes intermediates larger than the inputs —");
    println!("the gap that makes Generic Join *worst-case optimal* (Theorem 3.3).");
}
