//! Per-function *effect summaries* over the masked token stream, feeding
//! the serve-layer concurrency and durability rules R14–R16.
//!
//! Where [`crate::dataflow`] recovers def-use structure, this pass recovers
//! *effects*: things a function does to the outside world that the serve
//! layer's invariants constrain. Four effect families are extracted per
//! function body (nested `fn` items excluded, closures attributed to the
//! enclosing function, `#[cfg(test)]` regions invisible):
//!
//! * **lock acquisitions** — calls to the configured acquisition fns
//!   (`lock_recover`, `lock_state`) or methods (`.lock()`), with the lock
//!   *identity* (the last receiver/argument-chain component:
//!   `lock_recover(&self.state)` acquires lock `state`) and a *held
//!   region*: a `let`-bound guard is held to the end of its enclosing
//!   block, terminated early only by a same-depth `drop(guard)`; an
//!   unbound guard (a temporary, `if lock_recover(&m).dead {`) is held to
//!   the end of its statement;
//! * **blocking I/O** — socket/file reads and writes, `flush`, fsync,
//!   `accept`, file renames, and the `write!`/`writeln!` macros;
//! * **durability** — spool saves, checkpoint writes, quarantines,
//!   `atomic_write`/`sync_all` (these also count as blocking for R14);
//! * **ack/requeue and timeout guards** — `"OK …"` line construction
//!   (scanned on the *raw* source, because the lexer masks string
//!   contents), scheduler requeue calls, and `set_read_timeout`/
//!   `set_write_timeout`/`set_nonblocking` calls.
//!
//! [`check`] then propagates the summaries interprocedurally over the PR-5
//! call graph, exactly like the PR-6 `charging_set`: per-function effect
//! sets close over callees by fixpoint, and demand sites that are not
//! discharged inside their own function walk up the (reverse) call graph
//! until a caller discharges them or a root is reached. Three rules:
//!
//! * **R14 `lock-discipline`** — the global lock-order graph (lock B
//!   acquired while A is held, including through calls) must be acyclic;
//!   no lock may be held across a blocking or durability effect (fsync
//!   latency under the scheduler lock serializes every connection); and
//!   the poisoned-lock recovery idiom (`unwrap_or_else(|e|
//!   e.into_inner())`) must live in the one blessed `sync` module.
//! * **R15 `durability-ordering`** — every ack/requeue effect must be
//!   dominated by a durability effect on every caller chain: nothing is
//!   acknowledged that a `kill -9` immediately after could lose.
//! * **R16 `unbounded-blocking`** — every blocking *socket* effect
//!   reachable from the accept-loop roots must be dominated by a timeout
//!   guard on every undischarged chain, so a silent or trickling peer can
//!   never wedge a handler thread.
//!
//! Approximations lean conservative and coarse by design: lock identity is
//! a name, not an object (two locks both named `state` in different types
//! share a node in the order graph — a collision that can only create
//! false cycles, never hide one), and a guard whose `drop` sits in a
//! nested arm is treated as held to the block end. A violation is
//! discharged by an `allow` either at the offending line or (for
//! held-across) at the acquisition line, so one invariant statement covers
//! one guard's whole region.

use crate::dataflow::{locate_fn, own_token_indices, punct_at, receiver_chain, word_at};
use crate::graph::CallGraph;
use crate::items::{self, FnItem, ParsedFile, Span, Tok};
use crate::lexer::ScannedFile;
use crate::rules::{Config, Rule, Violation};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// One lock acquisition with its held region.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// The lock identity: the last receiver/argument-chain component.
    pub name: String,
    /// Acquisition line.
    pub line: usize,
    /// Last line of the held region (enclosing-block close, same-depth
    /// `drop`, or end of statement for unbound temporaries).
    pub end_line: usize,
    /// Whether the guard was bound by a `let`.
    pub bound: bool,
}

/// One non-lock effect site.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// Line of the call.
    pub line: usize,
    /// The call name (`save_record`, `fill_buf`, `writeln!` …).
    pub what: String,
}

/// Per-function effect summary.
#[derive(Debug, Clone)]
pub struct FnEffects {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub qualifier: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Body line span.
    pub body: Span,
    /// Lock acquisitions, in order.
    pub locks: Vec<LockSite>,
    /// Blocking-I/O sites (socket/file reads, writes, flush, accept…).
    pub blocking: Vec<EffectSite>,
    /// Durability sites (spool saves, checkpoints, quarantine, fsync).
    pub durable: Vec<EffectSite>,
    /// Timeout-guard sites (`set_read_timeout` & friends).
    pub guards: Vec<EffectSite>,
    /// `"OK …"` ack-line construction sites (raw-source lines).
    pub acks: Vec<usize>,
    /// Requeue sites (`enqueue(..)`).
    pub requeues: Vec<EffectSite>,
}

impl FnEffects {
    /// `Qualifier::name` or plain `name` for display.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether the function has any effect worth printing.
    pub fn has_effects(&self) -> bool {
        !(self.locks.is_empty()
            && self.blocking.is_empty()
            && self.durable.is_empty()
            && self.guards.is_empty()
            && self.acks.is_empty()
            && self.requeues.is_empty())
    }
}

/// Effect results for one file.
#[derive(Debug, Clone, Default)]
pub struct FileEffects {
    /// Per-function summaries, in `fn`-keyword order.
    pub fns: Vec<FnEffects>,
    /// Lines carrying the poisoned-lock recovery idiom
    /// (`unwrap_or_else` + `into_inner` on one masked line).
    pub recovery_lines: Vec<usize>,
}

/// Per-crate effect coverage, floored by `tests/lint_gate.rs` so a
/// path-scope typo cannot silently empty R14–R16.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrateEffects {
    /// Lock acquisition sites.
    pub lock_sites: usize,
    /// Durability sites.
    pub durability_sites: usize,
    /// Blocking-I/O sites (excluding the durability ones).
    pub blocking_sites: usize,
    /// Timeout-guard sites.
    pub guard_sites: usize,
    /// Ack-line construction sites.
    pub ack_sites: usize,
    /// Requeue sites.
    pub requeue_sites: usize,
}

/// Adds one file's sites to a per-crate tally.
pub fn tally(fe: &FileEffects, agg: &mut CrateEffects) {
    for f in &fe.fns {
        agg.lock_sites += f.locks.len();
        agg.durability_sites += f.durable.len();
        agg.blocking_sites += f.blocking.len();
        agg.guard_sites += f.guards.len();
        agg.ack_sites += f.acks.len();
        agg.requeue_sites += f.requeues.len();
    }
}

/// One lock-order edge: `to` acquired while `from` was held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderEdge {
    /// The already-held lock.
    pub from: String,
    /// The lock acquired inside `from`'s held region.
    pub to: String,
    /// File of the inner acquisition (or the call that performs it).
    pub file: String,
    /// Line of the inner acquisition (or the call).
    pub line: usize,
}

/// Words that *parse* an `"OK "` line rather than emit one; an occurrence
/// immediately inside their call parens is not an ack site.
const ACK_PARSE_WORDS: [&str; 6] = [
    "strip_prefix",
    "starts_with",
    "trim_start_matches",
    "ends_with",
    "contains",
    "eq",
];

/// Runs the per-function effect extraction over one scanned+parsed file.
/// `source` is the raw (unmasked) text — ack lines live inside string
/// literals, which the lexer masks to spaces.
pub fn analyze(
    scanned: &ScannedFile,
    source: &str,
    parsed: &ParsedFile,
    config: &Config,
) -> FileEffects {
    let toks = items::tokenize(scanned);
    let close = items::match_braces(&toks);
    let mut out = FileEffects::default();

    for (idx, line) in scanned.lines.iter().enumerate() {
        if !line.in_test
            && line.code.contains("unwrap_or_else")
            && line.code.contains("into_inner")
        {
            out.recovery_lines.push(idx + 1);
        }
    }

    for f in &parsed.fns {
        if f.body.is_none() {
            continue;
        }
        if let Some(fe) = analyze_fn(&toks, &close, f, config) {
            out.fns.push(fe);
        }
    }
    out.fns.sort_by_key(|f| f.line);

    // Ack lines: `"OK ` on the raw source, attributed to the innermost
    // enclosing fn. A parse-shaped occurrence (`strip_prefix("OK ")`) is
    // a read of the protocol, not an acknowledgment.
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        if scanned
            .lines
            .get(idx)
            .is_none_or(|l| l.in_test || l.comment.contains("\"OK "))
        {
            continue;
        }
        if !is_ack_line(raw) {
            continue;
        }
        if let Some(fe) = out
            .fns
            .iter_mut()
            .filter(|f| f.body.contains(lineno))
            .min_by_key(|f| f.body.len())
        {
            fe.acks.push(lineno);
        }
    }
    out
}

/// Whether a raw source line constructs an `"OK …"` protocol line.
fn is_ack_line(raw: &str) -> bool {
    let mut search = 0;
    while let Some(pos) = raw[search..].find("\"OK ") {
        let abs = search + pos;
        let before = raw[..abs].trim_end();
        let before = before.strip_suffix('(').unwrap_or(before).trim_end();
        let word_start = before
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
            .map_or(0, |p| p + 1);
        if !ACK_PARSE_WORDS.contains(&&before[word_start..]) {
            return true;
        }
        search = abs + 4;
    }
    false
}

/// The enclosing-`{` token index for every token in the body of `open`.
fn enclosing_opens(toks: &[Tok], close: &[usize], open: usize) -> HashMap<usize, usize> {
    let mut encl = HashMap::new();
    let mut stack = vec![open];
    for k in open + 1..close[open] {
        match punct_at(toks, k) {
            Some('{') => {
                encl.insert(k, *stack.last().unwrap_or(&open));
                stack.push(k);
            }
            Some('}') => {
                stack.pop();
                encl.insert(k, *stack.last().unwrap_or(&open));
            }
            _ => {
                encl.insert(k, *stack.last().unwrap_or(&open));
            }
        }
    }
    encl
}

/// The last identifier inside the call parens starting at token `paren`
/// (depth-1 words only): `lock_recover(&self.state)` → `state`.
fn last_arg_component(toks: &[Tok], paren: usize) -> Option<String> {
    let mut depth = 0i64;
    let mut last = None;
    for k in paren..toks.len() {
        match punct_at(toks, k) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if depth == 1 {
                    if let Some(w) = word_at(toks, k) {
                        last = Some(w.to_string());
                    }
                }
            }
        }
    }
    last
}

/// Walks back from own-position `p` to the start of the statement; returns
/// whether the statement is a `let` binding and the bound name (first
/// non-`mut` word after `let`).
fn binding_before(toks: &[Tok], own: &[usize], p: usize) -> (bool, Option<String>) {
    let mut q = p;
    while q > 0 {
        q -= 1;
        match punct_at(toks, own[q]) {
            Some(';') | Some('{') | Some('}') => break,
            _ => {}
        }
        if word_at(toks, own[q]) == Some("let") {
            let mut r = q + 1;
            while word_at(toks, own.get(r).copied().unwrap_or(usize::MAX)) == Some("mut") {
                r += 1;
            }
            let name = own
                .get(r)
                .and_then(|&i| word_at(toks, i))
                .map(str::to_string);
            return (true, name);
        }
    }
    (false, None)
}

/// Computes the held-region end line for an acquisition at own-position
/// `p` (token index `i`).
fn held_end_line(
    toks: &[Tok],
    close: &[usize],
    encl: &HashMap<usize, usize>,
    own: &[usize],
    p: usize,
    i: usize,
    bound: bool,
    guard: Option<&str>,
) -> usize {
    if !bound {
        // A temporary guard dies at the end of its statement (or, for an
        // `if`/`while` condition, before the branch block opens).
        let mut depth = 0i64;
        for k in i + 1..toks.len() {
            match punct_at(toks, k) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some(';') | Some('{') | Some('}') if depth <= 0 => return toks[k].line,
                _ => {}
            }
        }
        return toks[i].line;
    }
    let block = *encl.get(&i).unwrap_or(&0);
    let block_close = close.get(block).copied().unwrap_or(usize::MAX);
    let end_line = toks
        .get(block_close)
        .map_or(toks[i].line, |t| t.line);
    // A same-depth `drop(guard)` ends the region early; a drop in a nested
    // arm does not (conservative: the guard may be live on other paths).
    if let Some(g) = guard {
        for &k in own.iter().skip(p + 1) {
            if k >= block_close {
                break;
            }
            if word_at(toks, k) == Some("drop")
                && punct_at(toks, k + 1) == Some('(')
                && word_at(toks, k + 2) == Some(g)
                && punct_at(toks, k + 3) == Some(')')
                && encl.get(&k) == Some(&block)
            {
                return toks[k].line;
            }
        }
    }
    end_line
}

fn name_in(list: &[String], w: &str) -> bool {
    list.iter().any(|m| m == w)
}

/// Extracts one function's effect summary.
fn analyze_fn(
    toks: &[Tok],
    close: &[usize],
    f: &FnItem,
    config: &Config,
) -> Option<FnEffects> {
    let (_kw, open) = locate_fn(toks, close, f)?;
    let own = own_token_indices(toks, close, open);
    let encl = enclosing_opens(toks, close, open);
    let mut fe = FnEffects {
        name: f.name.clone(),
        qualifier: f.qualifier.clone(),
        line: f.line,
        body: f.body?,
        locks: Vec::new(),
        blocking: Vec::new(),
        durable: Vec::new(),
        guards: Vec::new(),
        acks: Vec::new(),
        requeues: Vec::new(),
    };

    for (p, &i) in own.iter().enumerate() {
        let Some(w) = word_at(toks, i) else { continue };
        let line = toks[i].line;
        if punct_at(toks, i + 1) == Some('!')
            && punct_at(toks, i + 2) == Some('(')
            && name_in(&config.blocking_macros, w)
        {
            fe.blocking.push(EffectSite {
                line,
                what: format!("{w}!"),
            });
            continue;
        }
        if punct_at(toks, i + 1) != Some('(') {
            continue;
        }
        let after_dot = p > 0 && punct_at(toks, own[p - 1]) == Some('.');
        let lock_name = if !after_dot && name_in(&config.lock_acquire_fns, w) {
            last_arg_component(toks, i + 1)
        } else if after_dot && name_in(&config.lock_acquire_methods, w) {
            receiver_chain(toks, &own, p - 1).0.last().cloned()
        } else {
            None
        };
        if let Some(name) = lock_name {
            let (bound, guard) = binding_before(toks, &own, p);
            let end_line =
                held_end_line(toks, close, &encl, &own, p, i, bound, guard.as_deref());
            fe.locks.push(LockSite {
                name,
                line,
                end_line,
                bound,
            });
        } else if name_in(&config.durability_methods, w) {
            fe.durable.push(EffectSite {
                line,
                what: w.to_string(),
            });
        } else if name_in(&config.blocking_methods, w) {
            fe.blocking.push(EffectSite {
                line,
                what: w.to_string(),
            });
        } else if name_in(&config.timeout_guard_methods, w) {
            fe.guards.push(EffectSite {
                line,
                what: w.to_string(),
            });
        } else if !after_dot && name_in(&config.requeue_fns, w) {
            fe.requeues.push(EffectSite {
                line,
                what: w.to_string(),
            });
        }
    }
    Some(fe)
}

// ---------------------------------------------------------------------------
// Interprocedural checking (R14–R16).
// ---------------------------------------------------------------------------

/// Runs R14–R16 over the whole workspace. `rels[fi]` / `effects[fi]` are
/// parallel to the semantic file list; files outside the effect scope carry
/// an empty [`FileEffects`]. Returns the violations and the global
/// lock-order edges (for the deterministic dump).
pub(crate) fn check<FA, FS>(
    graph: &CallGraph,
    rels: &[String],
    effects: &[FileEffects],
    config: &Config,
    allowed: &FA,
    snippet: &FS,
) -> (Vec<Violation>, Vec<OrderEdge>)
where
    FA: Fn(&str, usize, Rule) -> bool,
    FS: Fn(&str, usize) -> String,
{
    let mut out = Vec::new();

    // Node id → (file index, FnEffects index).
    let mut by_key: HashMap<(&str, usize, &str), (usize, usize)> = HashMap::new();
    for (fi, fe) in effects.iter().enumerate() {
        for (k, f) in fe.fns.iter().enumerate() {
            by_key.insert((rels[fi].as_str(), f.line, f.name.as_str()), (fi, k));
        }
    }
    let node_fx: Vec<Option<(usize, usize)>> = graph
        .nodes
        .iter()
        .map(|n| {
            by_key
                .get(&(n.file.as_str(), n.line, n.name.as_str()))
                .copied()
        })
        .collect();
    let fx = |id: usize| node_fx[id].map(|(fi, k)| (&rels[fi], &effects[fi].fns[k]));

    // Reverse edges: callee → (caller, call line).
    let mut callers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.nodes.len()];
    for (u, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            callers[e.to].push((u, e.line));
        }
    }

    // Fixpoint closure of per-fn effect sets over callees: calling `f` may
    // acquire `acquired[f]`, may block if `blocks[f]`, makes job state
    // durable if `durable_t[f]`, configures a timeout if `guards_t[f]`.
    let n = graph.nodes.len();
    let mut acquired: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut blocks: Vec<bool> = vec![false; n];
    let mut durable_t: Vec<bool> = vec![false; n];
    let mut guards_t: Vec<bool> = vec![false; n];
    for id in 0..n {
        if let Some((_, f)) = fx(id) {
            acquired[id].extend(f.locks.iter().map(|l| l.name.clone()));
            blocks[id] = !f.blocking.is_empty() || !f.durable.is_empty();
            durable_t[id] = !f.durable.is_empty();
            guards_t[id] = !f.guards.is_empty();
        }
    }
    loop {
        let mut changed = false;
        for u in 0..n {
            for e in &graph.edges[u] {
                if e.to == u {
                    continue;
                }
                if !acquired[e.to].is_empty() && !acquired[e.to].is_subset(&acquired[u]) {
                    let extra: Vec<String> = acquired[e.to].iter().cloned().collect();
                    acquired[u].extend(extra);
                    changed = true;
                }
                for mine in [&mut blocks, &mut durable_t, &mut guards_t] {
                    if mine[e.to] && !mine[u] {
                        mine[u] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- R14: held-across-blocking + lock-order edges. ----
    let mut order: Vec<OrderEdge> = Vec::new();
    for id in 0..n {
        let Some((file, f)) = fx(id) else { continue };
        for lock in &f.locks {
            let in_region = |line: usize| line > lock.line && line <= lock.end_line;
            let lock_ok = allowed(file, lock.line, Rule::LockDiscipline);
            let mut flagged: HashSet<usize> = HashSet::new();
            for site in f.blocking.iter().chain(&f.durable) {
                if !in_region(site.line) || !flagged.insert(site.line) {
                    continue;
                }
                if lock_ok || allowed(file, site.line, Rule::LockDiscipline) {
                    continue;
                }
                out.push(Violation {
                    rule: Rule::LockDiscipline,
                    path: file.clone(),
                    line: site.line,
                    message: format!(
                        "lock `{}` (acquired at line {}) is held across blocking `{}(..)` \
                         in `{}`; every other thread contending for the lock now waits on \
                         this I/O — release the guard first, or state the invariant with \
                         `// lb-lint: allow(lock-discipline) -- reason` here or on the \
                         acquisition line",
                        lock.name,
                        lock.line,
                        site.what,
                        f.display_name()
                    ),
                    snippet: snippet(file, site.line),
                });
            }
            for e in &graph.edges[id] {
                if !in_region(e.line) || e.to == id || !blocks[e.to] {
                    continue;
                }
                if !flagged.insert(e.line) {
                    continue;
                }
                if lock_ok || allowed(file, e.line, Rule::LockDiscipline) {
                    continue;
                }
                out.push(Violation {
                    rule: Rule::LockDiscipline,
                    path: file.clone(),
                    line: e.line,
                    message: format!(
                        "lock `{}` (acquired at line {}) is held across the call to \
                         `{}`, which blocks (directly or transitively); release the \
                         guard first, or state the invariant with \
                         `// lb-lint: allow(lock-discipline) -- reason` here or on the \
                         acquisition line",
                        lock.name,
                        lock.line,
                        graph.nodes[e.to].display_name()
                    ),
                    snippet: snippet(file, e.line),
                });
            }
            // Order edges: other acquisitions inside the held region.
            for l2 in &f.locks {
                if in_region(l2.line) {
                    order.push(OrderEdge {
                        from: lock.name.clone(),
                        to: l2.name.clone(),
                        file: file.clone(),
                        line: l2.line,
                    });
                }
            }
            for e in &graph.edges[id] {
                if !in_region(e.line) || e.to == id {
                    continue;
                }
                for nm in &acquired[e.to] {
                    order.push(OrderEdge {
                        from: lock.name.clone(),
                        to: nm.clone(),
                        file: file.clone(),
                        line: e.line,
                    });
                }
            }
        }
    }
    order.sort();
    order.dedup();

    // Cycle check: an edge u→v where v already reaches u closes a cycle.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &order {
        adj.entry(e.from.as_str()).or_default().insert(e.to.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            if let Some(next) = adj.get(x) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for e in &order {
        if !reaches(e.to.as_str(), e.from.as_str()) {
            continue;
        }
        if allowed(&e.file, e.line, Rule::LockDiscipline) {
            continue;
        }
        out.push(Violation {
            rule: Rule::LockDiscipline,
            path: e.file.clone(),
            line: e.line,
            message: format!(
                "acquiring lock `{}` while `{}` is held closes a lock-order cycle \
                 (`{}` is also acquired, transitively, while `{}` is held): two \
                 threads taking the locks in opposite orders deadlock — pick one \
                 global order, or state the invariant with \
                 `// lb-lint: allow(lock-discipline) -- reason`",
                e.to, e.from, e.from, e.to
            ),
            snippet: snippet(&e.file, e.line),
        });
    }

    // Poisoned-lock recovery outside the blessed helper.
    for (fi, fe) in effects.iter().enumerate() {
        let file = rels[fi].as_str();
        for &line in &fe.recovery_lines {
            if allowed(file, line, Rule::LockDiscipline) {
                continue;
            }
            out.push(Violation {
                rule: Rule::LockDiscipline,
                path: file.to_string(),
                line,
                message: "poisoned-lock recovery (`unwrap_or_else(|e| e.into_inner())`) \
                          outside the blessed `sync` helper; the consistency argument for \
                          recovering a poisoned guard lives in one audited place — route \
                          this acquisition through `lb_serve::sync`, or justify with \
                          `// lb-lint: allow(lock-discipline) -- reason`"
                    .to_string(),
                snippet: snippet(file, line),
            });
        }
    }

    // ---- R15: acks/requeues dominated by durability. ----
    let prefix_durable = |id: usize, line: usize| -> bool {
        let Some((_, f)) = fx(id) else { return false };
        f.durable.iter().any(|d| d.line <= line)
            || graph.edges[id]
                .iter()
                .any(|e| e.line <= line && e.to != id && durable_t[e.to])
    };
    for id in 0..n {
        let Some((file, f)) = fx(id) else { continue };
        let demands: Vec<(usize, String)> = f
            .acks
            .iter()
            .map(|&l| (l, "`\"OK …\"` ack construction".to_string()))
            .chain(
                f.requeues
                    .iter()
                    .map(|r| (r.line, format!("requeue `{}(..)`", r.what))),
            )
            .collect();
        for (line, what) in demands {
            if prefix_durable(id, line) || allowed(file, line, Rule::DurabilityOrdering) {
                continue;
            }
            let Some(chain) = undischarged_chain(graph, &callers, id, &|c, lc| {
                prefix_durable(c, lc)
            }, &|c| callers[c].is_empty())
            else {
                continue;
            };
            out.push(Violation {
                rule: Rule::DurabilityOrdering,
                path: file.clone(),
                line,
                message: format!(
                    "{what} in `{}` is not dominated by a durability effect (chain: \
                     {chain}): a `kill -9` here acknowledges work the spool never saw — \
                     persist the record/checkpoint first, or state the invariant with \
                     `// lb-lint: allow(durability-ordering) -- reason`",
                    f.display_name()
                ),
                snippet: snippet(file, line),
            });
        }
    }

    // ---- R16: socket blocking reachable from the accept loop is timed. ----
    let is_root: Vec<bool> = graph
        .nodes
        .iter()
        .map(|nd| {
            config
                .accept_roots
                .iter()
                .any(|(p, name)| nd.file.contains(p.as_str()) && nd.name == *name)
        })
        .collect();
    let prefix_guard = |id: usize, line: usize| -> bool {
        let Some((_, f)) = fx(id) else { return false };
        f.guards.iter().any(|g| g.line <= line)
            || graph.edges[id]
                .iter()
                .any(|e| e.line <= line && e.to != id && guards_t[e.to])
    };
    for id in 0..n {
        let Some((file, f)) = fx(id) else { continue };
        if !config.socket_paths.iter().any(|p| file.contains(p.as_str())) {
            continue;
        }
        for site in &f.blocking {
            if prefix_guard(id, site.line)
                || allowed(file, site.line, Rule::UnboundedBlocking)
            {
                continue;
            }
            let chain = if is_root[id] {
                Some(format!("`{}`", graph.nodes[id].display_name()))
            } else {
                undischarged_chain(graph, &callers, id, &|c, lc| prefix_guard(c, lc), &|c| {
                    is_root[c]
                })
            };
            let Some(chain) = chain else { continue };
            out.push(Violation {
                rule: Rule::UnboundedBlocking,
                path: file.clone(),
                line: site.line,
                message: format!(
                    "blocking `{}(..)` in `{}` is reachable from the accept loop \
                     (chain: {chain}) with no dominating `set_read_timeout`/\
                     `set_write_timeout`/`set_nonblocking`: a silent or trickling peer \
                     holds this handler thread forever — configure a deadline first, or \
                     state the invariant with \
                     `// lb-lint: allow(unbounded-blocking) -- reason`",
                    site.what,
                    f.display_name()
                ),
                snippet: snippet(file, site.line),
            });
        }
    }

    (out, order)
}

/// Depth-first walk up the reverse call graph from `start`, looking for a
/// chain of calls on which the demand is never discharged and whose top
/// satisfies `is_top`. Returns the rendered chain (top-down) if found.
fn undischarged_chain(
    graph: &CallGraph,
    callers: &[Vec<(usize, usize)>],
    start: usize,
    discharged: &dyn Fn(usize, usize) -> bool,
    is_top: &dyn Fn(usize) -> bool,
) -> Option<String> {
    fn walk(
        graph: &CallGraph,
        callers: &[Vec<(usize, usize)>],
        u: usize,
        discharged: &dyn Fn(usize, usize) -> bool,
        is_top: &dyn Fn(usize) -> bool,
        visited: &mut HashSet<usize>,
        path: &mut Vec<(usize, usize)>,
    ) -> bool {
        if is_top(u) {
            return true;
        }
        for &(c, lc) in &callers[u] {
            if discharged(c, lc) || !visited.insert(c) {
                continue;
            }
            path.push((c, lc));
            if walk(graph, callers, c, discharged, is_top, visited, path) {
                return true;
            }
            path.pop();
        }
        false
    }
    let mut visited = HashSet::from([start]);
    let mut path = Vec::new();
    if !walk(
        graph,
        callers,
        start,
        discharged,
        is_top,
        &mut visited,
        &mut path,
    ) {
        return None;
    }
    // `path` runs from the demand's fn upward; render top-down.
    let mut parts: Vec<String> = Vec::new();
    for &(c, lc) in path.iter().rev() {
        parts.push(format!(
            "`{}` ({}:{})",
            graph.nodes[c].display_name(),
            graph.nodes[c].file,
            lc
        ));
    }
    parts.push(format!("`{}`", graph.nodes[start].display_name()));
    Some(parts.join(" -> "))
}
