//! The six repo-specific lint rules and the per-file checking engine.
//!
//! Rules operate on the masked lines produced by [`crate::lexer::scan`], so
//! they never fire inside strings or comments, and they respect the
//! `// lb-lint: allow(rule) -- reason` escape hatch (a justification after
//! `--` is mandatory; an allow without one is itself a violation).

use crate::lexer::{scan, ScannedFile};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The enforced rules. Codes R1–R6 index the per-rule exit-code bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// R1: no `unwrap()`/`expect()`/`panic!`/`todo!`/`unreachable!` in
    /// non-test library code.
    NoPanic,
    /// R2: no lossy `as` casts between floats and integers in
    /// bound-arithmetic modules.
    NoLossyCast,
    /// R3: every crate root carries `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// R4: public `Result`-returning solver/join/reduction entry points
    /// carry `#[must_use]`.
    MustUseResult,
    /// R5: no `std::process::exit` outside `src/bin/`.
    NoProcessExit,
    /// R6: no ad-hoc `Instant::now()` wall-clock timing in solver library
    /// code — work is measured by the engine layer's `RunStats` counters,
    /// and wall-clock timing lives in the `experiments` harness.
    NoAdhocTiming,
    /// R7: no unchecked `[i]` indexing in solver hot paths — a stray index
    /// panics instead of returning `Exhausted`/an error; use `get`,
    /// iterators, or a justified allow.
    NoUncheckedIndex,
    /// R8: every loop transitively reachable from a public solver entry
    /// point must charge the budget (directly or through a callee), so no
    /// reachable loop can spin uncancellable and uncheckpointable.
    UnbudgetedLoop,
    /// R9: no panic site (`panic!`/`unwrap`/`expect`/`unreachable!`/
    /// unchecked index) may be transitively reachable from the panic-free
    /// public API surface without an explicit `allow(panic-reachability)`.
    PanicReachability,
    /// R10: a checkpoint family's encode/decode bodies changed without a
    /// matching `CHECKPOINT_PAYLOAD_VERSION` bump (token-stream fingerprint
    /// vs the committed baseline; re-pin with `lb-lint --write-baseline`).
    CheckpointSchemaDrift,
    /// R11: a loop-carried collection mutation (`push`/`insert`/`extend`/
    /// `push_back` on state that outlives the loop iteration) inside a
    /// budget-reachable loop must be charged to `RunStats.max_intermediate`
    /// (directly or through a transitively-charging callee) — otherwise the
    /// machine-independent cost claims silently stop covering space.
    UnboundedGrowth,
    /// R12: no `let _ =` / statement-final `.ok();` / unused-`Result`
    /// discard in library code — a swallowed `Result` on the panic-free
    /// surface turns a typed failure into silent wrong behavior.
    SwallowedResult,
    /// R13: no `Rc`/`RefCell`/`Cell`/raw-pointer fields (or `thread_local!`
    /// state) in checkpoint-serializable solver state — frames must stay
    /// `Send`-clean by construction so a future work-stealing executor
    /// never needs `unsafe impl Send`.
    SendHostileState,
    /// R14: lock discipline in the serve layer — the global lock-order
    /// graph (lock B acquired while A is held, including through calls)
    /// must be acyclic, no lock may be held across a blocking-I/O or fsync
    /// effect, and poisoned-lock recovery (`unwrap_or_else(|e|
    /// e.into_inner())`) must live in the one blessed `sync` helper.
    LockDiscipline,
    /// R15: durability ordering in serve code — every ack (`"OK …"` line
    /// construction) or requeue effect must be dominated by a durability
    /// effect (spool save / checkpoint / quarantine) on every caller chain;
    /// nothing is acknowledged that a `kill -9` could lose.
    DurabilityOrdering,
    /// R16: every blocking socket read/write reachable from the server
    /// accept loop must be dominated by a `set_read_timeout`/
    /// `set_write_timeout`/`set_nonblocking` call on that stream, so a
    /// silent or trickling peer can never wedge a handler thread.
    UnboundedBlocking,
    /// D0: a malformed `lb-lint:` directive (unknown rule, missing reason).
    BadDirective,
}

impl Rule {
    /// All real rules (excludes the directive pseudo-rule).
    pub const ALL: [Rule; 16] = [
        Rule::NoPanic,
        Rule::NoLossyCast,
        Rule::ForbidUnsafe,
        Rule::MustUseResult,
        Rule::NoProcessExit,
        Rule::NoAdhocTiming,
        Rule::NoUncheckedIndex,
        Rule::UnbudgetedLoop,
        Rule::PanicReachability,
        Rule::CheckpointSchemaDrift,
        Rule::UnboundedGrowth,
        Rule::SwallowedResult,
        Rule::SendHostileState,
        Rule::LockDiscipline,
        Rule::DurabilityOrdering,
        Rule::UnboundedBlocking,
    ];

    /// The stable kebab-case name used in `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoLossyCast => "no-lossy-cast",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::MustUseResult => "must-use-result",
            Rule::NoProcessExit => "no-process-exit",
            Rule::NoAdhocTiming => "no-adhoc-timing",
            Rule::NoUncheckedIndex => "no-unchecked-index",
            Rule::UnbudgetedLoop => "unbudgeted-loop",
            Rule::PanicReachability => "panic-reachability",
            Rule::CheckpointSchemaDrift => "checkpoint-schema-drift",
            Rule::UnboundedGrowth => "unbounded-growth",
            Rule::SwallowedResult => "swallowed-result",
            Rule::SendHostileState => "send-hostile-state",
            Rule::LockDiscipline => "lock-discipline",
            Rule::DurabilityOrdering => "durability-ordering",
            Rule::UnboundedBlocking => "unbounded-blocking",
            Rule::BadDirective => "bad-directive",
        }
    }

    /// The short code (R1–R5, D0 for directives).
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoPanic => "R1",
            Rule::NoLossyCast => "R2",
            Rule::ForbidUnsafe => "R3",
            Rule::MustUseResult => "R4",
            Rule::NoProcessExit => "R5",
            Rule::NoAdhocTiming => "R6",
            Rule::NoUncheckedIndex => "R7",
            Rule::UnbudgetedLoop => "R8",
            Rule::PanicReachability => "R9",
            Rule::CheckpointSchemaDrift => "R10",
            Rule::UnboundedGrowth => "R11",
            Rule::SwallowedResult => "R12",
            Rule::SendHostileState => "R13",
            Rule::LockDiscipline => "R14",
            Rule::DurabilityOrdering => "R15",
            Rule::UnboundedBlocking => "R16",
            Rule::BadDirective => "D0",
        }
    }

    /// The legacy (`--legacy-exit-bits`) exit-code bit for this rule. Rules
    /// added after the bitmask was exhausted (R8–R16) have no bit of their
    /// own; under the legacy scheme they surface as the generic bit 1.
    pub fn legacy_exit_bit(self) -> Option<i32> {
        match self {
            Rule::NoPanic => Some(1),
            Rule::NoLossyCast => Some(2),
            Rule::ForbidUnsafe => Some(4),
            Rule::MustUseResult => Some(8),
            Rule::NoProcessExit => Some(16),
            Rule::NoAdhocTiming => Some(64),
            Rule::NoUncheckedIndex => Some(128),
            Rule::BadDirective => Some(32),
            Rule::UnbudgetedLoop
            | Rule::PanicReachability
            | Rule::CheckpointSchemaDrift
            | Rule::UnboundedGrowth
            | Rule::SwallowedResult
            | Rule::SendHostileState
            | Rule::LockDiscipline
            | Rule::DurabilityOrdering
            | Rule::UnboundedBlocking => None,
        }
    }

    /// Parses a directive rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// How a file participates in linting, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Ordinary library code: all rules apply.
    Library,
    /// Test or bench code (`tests/`, `benches/`): R1/R2/R4/R5 exempt.
    TestOrBench,
    /// Example code (`examples/`): exempt like tests — demo code may unwrap.
    Example,
    /// Binary code (`src/bin/`, `src/main.rs`): R5 exempt, R1 applies.
    Bin,
}

impl FileKind {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn classify(rel_path: &str) -> FileKind {
        let p = rel_path.replace('\\', "/");
        if p.contains("/tests/") || p.contains("/benches/") || p.starts_with("tests/") {
            FileKind::TestOrBench
        } else if p.contains("/examples/") || p.starts_with("examples/") {
            FileKind::Example
        } else if p.contains("/src/bin/") || p.ends_with("/src/main.rs") || p == "src/main.rs" {
            FileKind::Bin
        } else {
            FileKind::Library
        }
    }
}

/// One violation found by the linter.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// One checkpoint family watched by R10: where its encode/decode functions
/// and payload-version const live.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Stable family name used in the baseline file.
    pub family: String,
    /// Workspace-relative file holding the payload codec.
    pub file: String,
    /// Names of the encode/decode functions whose bodies are fingerprinted.
    pub fns: Vec<String>,
    /// Name of the payload-version const that must be bumped on change.
    pub version_const: String,
}

/// Linter configuration: which paths are bound-math (R2) and entry-point
/// (R4) modules, plus the semantic-analysis scope (R8–R10).
#[derive(Debug, Clone)]
pub struct Config {
    /// Path substrings whose files carry the `no-lossy-cast` rule
    /// (bound-arithmetic modules).
    pub bound_math_paths: Vec<String>,
    /// Path substrings whose public `Result`-returning fns must be
    /// `#[must_use]` (solver/join/reduction entry points).
    pub entry_point_paths: Vec<String>,
    /// Path substrings exempt from the `no-adhoc-timing` rule: the engine
    /// layer and the experiments harness are where wall-clock time belongs.
    pub timing_exempt_paths: Vec<String>,
    /// Path substrings whose files carry the `no-unchecked-index` rule:
    /// solver hot paths, where a stray `[i]` is a panic on adversarial
    /// input rather than an `Exhausted`/error verdict.
    pub index_checked_paths: Vec<String>,
    /// Path substrings whose public entry-point fns are the roots of R8/R9
    /// reachability (the surface lb-chaos guarantees panic-free).
    pub api_root_paths: Vec<String>,
    /// Path substrings whose reachable loops must charge the budget (R8).
    pub solver_loop_paths: Vec<String>,
    /// Entry-point name prefixes (`solve…`, `count…`, `find_…`).
    pub root_prefixes: Vec<String>,
    /// Entry-point name suffixes (`…_resumable`, `…_join`).
    pub root_suffixes: Vec<String>,
    /// Entry-point exact names (`join`, `is_empty`, `from_dimacs`).
    pub root_exact: Vec<String>,
    /// Method names whose calls charge the budget (`Ticker` charge points).
    pub charge_methods: Vec<String>,
    /// Path substrings excluded from semantic analysis entirely (vendored
    /// std-only test-support crates are not part of the solver surface).
    pub semantic_exclude_paths: Vec<String>,
    /// Method names the dataflow pass treats as collection growth (R11).
    pub growth_methods: Vec<String>,
    /// Method names that charge `RunStats.max_intermediate`; a growth site
    /// is "charged" when one of these is called in the enclosing loop or
    /// function, directly or through a transitively-charging callee.
    pub intermediate_charge_methods: Vec<String>,
    /// Path substrings whose library files carry the `swallowed-result`
    /// rule (R12).
    pub result_checked_paths: Vec<String>,
    /// Path substrings whose structs are checkpoint-serializable solver
    /// state and must stay `Send`-clean (R13).
    pub state_struct_paths: Vec<String>,
    /// The checkpoint families fingerprinted by R10.
    pub checkpoint_specs: Vec<CheckpointSpec>,
    /// Workspace-relative path of the committed R10 baseline file.
    pub baseline_file: String,
    /// Path substrings whose files carry the effect analysis (R14–R16):
    /// the concurrent serve layer.
    pub effect_paths: Vec<String>,
    /// Free/associated fn names whose call is a lock acquisition; the lock
    /// identity is the last component of the argument chain
    /// (`lock_recover(&self.state)` acquires lock "state").
    pub lock_acquire_fns: Vec<String>,
    /// Method names whose call is a lock acquisition; the lock identity is
    /// the last receiver-chain component (`self.state.lock()` → "state").
    pub lock_acquire_methods: Vec<String>,
    /// Call names (method, free, or qualified) that block: socket/file
    /// reads and writes, fsync, accept, rename. R14 forbids holding a lock
    /// across any of these.
    pub blocking_methods: Vec<String>,
    /// Macro names (`write!`, `writeln!`) that block like their method
    /// counterparts.
    pub blocking_macros: Vec<String>,
    /// Call names that make job state durable (spool saves, checkpoint
    /// writes, quarantine). R15 demands one of these dominates every
    /// ack/requeue; R14 also treats them as blocking (they fsync).
    pub durability_methods: Vec<String>,
    /// Call names that bound how long a socket op may block; R16 demands
    /// one of these dominates every blocking socket op reachable from the
    /// accept loop.
    pub timeout_guard_methods: Vec<String>,
    /// Free fn names that re-queue a job (an R15 demand site, like acks).
    pub requeue_fns: Vec<String>,
    /// Path substrings of the files whose blocking sites are *socket*
    /// blocking (the R16 demand set); spool fsync latency is not a socket
    /// hang and is governed by R14/R15 instead.
    pub socket_paths: Vec<String>,
    /// `(path substring, fn name)` pairs naming the accept-loop roots R16
    /// walks up to.
    pub accept_roots: Vec<(String, String)>,
    /// Path substrings of the one blessed poisoned-lock recovery helper
    /// module; the `unwrap_or_else(|e| e.into_inner())` idiom anywhere
    /// else in effect scope is an R14 violation.
    pub blessed_recovery_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            bound_math_paths: vec!["crates/join/src/agm.rs".into(), "crates/lp/src/".into()],
            entry_point_paths: vec![
                "crates/csp/src/solver/".into(),
                "crates/sat/src/".into(),
                "crates/join/src/".into(),
                "crates/lp/src/".into(),
                "crates/reductions/src/".into(),
                "crates/graphalg/src/".into(),
                "crates/serve/src/runner.rs".into(),
            ],
            timing_exempt_paths: vec![
                "crates/engine/src/".into(),
                "crates/core/src/experiments.rs".into(),
                // The server's socket deadlines and the load generator's
                // wall-clock pacing are real time by definition; solver
                // progress in crates/serve/src/runner.rs stays tick-based.
                "crates/serve/src/server.rs".into(),
                "crates/serve/src/client.rs".into(),
                "crates/serve/src/bench.rs".into(),
                // Retry-backoff parking (`not_before`) is wall-clock by
                // definition; slice accounting stays tick-based.
                "crates/serve/src/scheduler.rs".into(),
                // The storm soak drives a live server under deadlines.
                "crates/chaos/src/storm.rs".into(),
                "vendor/".into(),
            ],
            index_checked_paths: vec![
                "crates/serve/src/protocol.rs".into(),
                "crates/sat/src/dpll.rs".into(),
                "crates/sat/src/twosat.rs".into(),
                "crates/csp/src/solver/backtracking.rs".into(),
                "crates/join/src/wcoj.rs".into(),
                "crates/join/src/trie.rs".into(),
                "crates/join/src/reference.rs".into(),
                "crates/graphalg/src/clique.rs".into(),
                "crates/graphalg/src/triangle.rs".into(),
            ],
            api_root_paths: vec![
                "crates/sat/src/".into(),
                "crates/csp/src/".into(),
                "crates/join/src/".into(),
                "crates/graphalg/src/".into(),
                "crates/serve/src/runner.rs".into(),
            ],
            solver_loop_paths: vec![
                "crates/sat/src/".into(),
                "crates/csp/src/".into(),
                "crates/join/src/".into(),
                "crates/graphalg/src/".into(),
                "crates/serve/src/runner.rs".into(),
            ],
            root_prefixes: vec!["solve".into(), "count".into(), "find_".into()],
            root_suffixes: vec!["_resumable".into(), "_join".into()],
            root_exact: vec!["join".into(), "is_empty".into(), "from_dimacs".into()],
            charge_methods: vec![
                "node".into(),
                "propagation".into(),
                "trie_advance".into(),
                "tuple".into(),
                "tuples".into(),
                "backtrack".into(),
                "absorb".into(),
            ],
            semantic_exclude_paths: vec!["vendor/".into()],
            growth_methods: vec![
                "push".into(),
                "insert".into(),
                "extend".into(),
                "push_back".into(),
            ],
            intermediate_charge_methods: vec!["record_intermediate".into()],
            result_checked_paths: vec!["crates/".into()],
            state_struct_paths: vec![
                "crates/serve/src/job.rs".into(),
                // Survival-layer shared state: scheduler entries cross the
                // worker/accept-thread boundary, and a FaultStream's two
                // cloned halves share their fault schedule — both must
                // stay Send-clean.
                "crates/serve/src/scheduler.rs".into(),
                "crates/serve/src/netfault.rs".into(),
                "crates/sat/src/dpll.rs".into(),
                "crates/csp/src/solver/backtracking.rs".into(),
                "crates/join/src/wcoj.rs".into(),
                "crates/graphalg/src/triangle.rs".into(),
                "crates/graphalg/src/clique.rs".into(),
                "crates/engine/src/".into(),
            ],
            checkpoint_specs: vec![
                CheckpointSpec {
                    family: "dpll".into(),
                    file: "crates/sat/src/dpll.rs".into(),
                    fns: vec!["encode".into(), "decode".into()],
                    version_const: "CHECKPOINT_PAYLOAD_VERSION".into(),
                },
                CheckpointSpec {
                    family: "csp-backtracking".into(),
                    file: "crates/csp/src/solver/backtracking.rs".into(),
                    fns: vec!["encode".into(), "decode".into()],
                    version_const: "CHECKPOINT_PAYLOAD_VERSION".into(),
                },
                CheckpointSpec {
                    family: "generic-join".into(),
                    file: "crates/join/src/wcoj.rs".into(),
                    fns: vec!["encode".into(), "decode".into()],
                    version_const: "CHECKPOINT_PAYLOAD_VERSION".into(),
                },
                CheckpointSpec {
                    family: "triangle-scan".into(),
                    file: "crates/graphalg/src/triangle.rs".into(),
                    fns: vec!["encode".into(), "decode".into()],
                    version_const: "CHECKPOINT_PAYLOAD_VERSION".into(),
                },
                CheckpointSpec {
                    family: "clique-enum".into(),
                    file: "crates/graphalg/src/clique.rs".into(),
                    fns: vec!["encode".into(), "decode".into()],
                    version_const: "CHECKPOINT_PAYLOAD_VERSION".into(),
                },
            ],
            baseline_file: "crates/lint/checkpoint-schema.baseline".into(),
            effect_paths: vec!["crates/serve/src/".into()],
            lock_acquire_fns: vec!["lock_recover".into(), "lock_state".into()],
            lock_acquire_methods: vec!["lock".into()],
            blocking_methods: vec![
                "read".into(),
                "read_line".into(),
                "read_exact".into(),
                "read_to_end".into(),
                "fill_buf".into(),
                "write".into(),
                "write_all".into(),
                "flush".into(),
                "sync_all".into(),
                "accept".into(),
                "rename".into(),
            ],
            blocking_macros: vec!["write".into(), "writeln".into()],
            durability_methods: vec![
                "atomic_write".into(),
                "save_record".into(),
                "save_checkpoint".into(),
                "quarantine".into(),
                "sync_all".into(),
            ],
            timeout_guard_methods: vec![
                "set_read_timeout".into(),
                "set_write_timeout".into(),
                "set_nonblocking".into(),
            ],
            requeue_fns: vec!["enqueue".into()],
            socket_paths: vec![
                "crates/serve/src/server.rs".into(),
                "crates/serve/src/netfault.rs".into(),
            ],
            accept_roots: vec![
                ("crates/serve/src/server.rs".into(), "run".into()),
                ("crates/serve/src/server.rs".into(), "handle_connection".into()),
            ],
            blessed_recovery_paths: vec!["crates/serve/src/sync.rs".into()],
        }
    }
}

/// Allows parsed from `lb-lint:` directives: line → rules allowed there.
pub(crate) struct Allows {
    pub(crate) by_line: HashMap<usize, BTreeSet<Rule>>,
    pub(crate) errors: Vec<(usize, String)>,
}

impl Allows {
    /// Whether `rule` is allowed on `line`.
    pub(crate) fn allowed(&self, line: usize, rule: Rule) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|set| set.contains(&rule))
    }
}

/// Parses every `lb-lint:` directive in the file.
///
/// Syntax: `lb-lint: allow(rule[, rule…]) -- reason`. A directive on a line
/// with code applies to that line; a directive alone on a line applies to
/// the next line carrying code.
pub(crate) fn parse_allows(file: &ScannedFile) -> Allows {
    let mut by_line: HashMap<usize, BTreeSet<Rule>> = HashMap::new();
    let mut errors = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        // Only a comment that *starts* with `lb-lint:` is a directive; prose
        // that merely mentions the syntax (docs, reasons) is ignored.
        let trimmed = line.comment.trim_start();
        let Some(directive) = trimmed.strip_prefix("lb-lint:") else {
            continue;
        };
        let directive = directive.trim();
        let Some(rest) = directive.strip_prefix("allow") else {
            errors.push((lineno, format!("unknown lb-lint directive {directive:?}; only `allow(rule) -- reason` is supported")));
            continue;
        };
        let rest = rest.trim_start();
        let Some(close) = rest.find(')') else {
            errors.push((lineno, "malformed allow: missing `)`".into()));
            continue;
        };
        let Some(inner) = rest[..close].strip_prefix('(') else {
            errors.push((lineno, "malformed allow: missing `(`".into()));
            continue;
        };
        let after = rest[close + 1..].trim();
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            errors.push((
                lineno,
                "allow directive requires a justification: `-- reason`".into(),
            ));
            continue;
        }
        let mut rules = BTreeSet::new();
        let mut ok = true;
        for name in inner.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Rule::from_name(name) {
                Some(r) => {
                    rules.insert(r);
                }
                None => {
                    errors.push((lineno, format!("unknown rule {name:?} in allow directive")));
                    ok = false;
                }
            }
        }
        if !ok || rules.is_empty() {
            if rules.is_empty() && ok {
                errors.push((lineno, "allow directive names no rules".into()));
            }
            continue;
        }
        // Standalone comment line → the allow targets the next code line.
        let target = if line.code.trim().is_empty() {
            file.lines[idx + 1..]
                .iter()
                .position(|l| !l.code.trim().is_empty())
                .map(|off| lineno + 1 + off)
                .unwrap_or(lineno)
        } else {
            lineno
        };
        by_line.entry(target).or_default().extend(rules);
    }
    Allows { by_line, errors }
}

/// Lints one file's source text. `rel_path` is the workspace-relative path
/// used for classification and reporting.
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> Vec<Violation> {
    let kind = FileKind::classify(rel_path);
    let file = scan(source);
    let allows = parse_allows(&file);
    let mut out = Vec::new();

    for (lineno, msg) in &allows.errors {
        out.push(Violation {
            rule: Rule::BadDirective,
            path: rel_path.to_string(),
            line: *lineno,
            message: msg.clone(),
            snippet: snippet_at(source, *lineno),
        });
    }

    let allowed = |lineno: usize, rule: Rule| {
        allows
            .by_line
            .get(&lineno)
            .is_some_and(|set| set.contains(&rule))
    };

    // R1 — no panics in non-test library code.
    if kind == FileKind::Library {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let lineno = idx + 1;
            for (needle, what) in [
                (".unwrap()", "`unwrap()`"),
                (".expect(", "`expect()`"),
                ("panic!", "`panic!`"),
                ("todo!", "`todo!`"),
                ("unreachable!", "`unreachable!`"),
            ] {
                if contains_token(&line.code, needle) && !allowed(lineno, Rule::NoPanic) {
                    out.push(Violation {
                        rule: Rule::NoPanic,
                        path: rel_path.to_string(),
                        line: lineno,
                        message: format!(
                            "{what} in library code can panic on malformed input; return a typed error or add `// lb-lint: allow(no-panic) -- reason`"
                        ),
                        snippet: snippet_at(source, lineno),
                    });
                }
            }
        }
    }

    // R2 — no lossy float↔int casts in bound-math modules.
    let is_bound_math = config
        .bound_math_paths
        .iter()
        .any(|p| rel_path.contains(p.as_str()));
    if is_bound_math && kind == FileKind::Library {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let lineno = idx + 1;
            if let Some(msg) = lossy_cast_in(&line.code) {
                if !allowed(lineno, Rule::NoLossyCast) {
                    out.push(Violation {
                        rule: Rule::NoLossyCast,
                        path: rel_path.to_string(),
                        line: lineno,
                        message: format!(
                            "{msg} in bound arithmetic; use the checked helpers in `lb_lp::convert`/`lb_lp::intpow` or add `// lb-lint: allow(no-lossy-cast) -- reason`"
                        ),
                        snippet: snippet_at(source, lineno),
                    });
                }
            }
        }
    }

    // R3 — crate roots must forbid unsafe code.
    let is_crate_root = rel_path.ends_with("src/lib.rs") || rel_path.ends_with("src/main.rs");
    if is_crate_root {
        let has_forbid = file
            .lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
        if !has_forbid && !allowed(1, Rule::ForbidUnsafe) {
            out.push(Violation {
                rule: Rule::ForbidUnsafe,
                path: rel_path.to_string(),
                line: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
                snippet: snippet_at(source, 1),
            });
        }
    }

    // R4 — public Result-returning entry points must be #[must_use].
    let is_entry_point = config
        .entry_point_paths
        .iter()
        .any(|p| rel_path.contains(p.as_str()));
    if is_entry_point && kind == FileKind::Library {
        for sig in public_fn_signatures(&file) {
            if sig.in_test || !sig.returns_result {
                continue;
            }
            if !sig.has_must_use && !allowed(sig.line, Rule::MustUseResult) {
                out.push(Violation {
                    rule: Rule::MustUseResult,
                    path: rel_path.to_string(),
                    line: sig.line,
                    message: format!(
                        "public fallible entry point `{}` returns `Result` without `#[must_use]`; callers silently dropping the result would discard both the value and the error",
                        sig.name
                    ),
                    snippet: snippet_at(source, sig.line),
                });
            }
        }
    }

    // R6 — no ad-hoc wall-clock timing in solver library code.
    let timing_exempt = config
        .timing_exempt_paths
        .iter()
        .any(|p| rel_path.contains(p.as_str()));
    if kind == FileKind::Library && !timing_exempt {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let lineno = idx + 1;
            if contains_token(&line.code, "Instant::now()") && !allowed(lineno, Rule::NoAdhocTiming)
            {
                out.push(Violation {
                    rule: Rule::NoAdhocTiming,
                    path: rel_path.to_string(),
                    line: lineno,
                    message: "`Instant::now()` in solver library code makes results machine-dependent; report work through the engine layer's `RunStats` counters (or time in the `experiments` harness), or add `// lb-lint: allow(no-adhoc-timing) -- reason`".into(),
                    snippet: snippet_at(source, lineno),
                });
            }
        }
    }

    // R7 — no unchecked `[i]` indexing in solver hot paths.
    let is_index_checked = config
        .index_checked_paths
        .iter()
        .any(|p| rel_path.contains(p.as_str()));
    if is_index_checked && kind == FileKind::Library {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let lineno = idx + 1;
            if unchecked_index_in(&line.code).is_some() && !allowed(lineno, Rule::NoUncheckedIndex)
            {
                out.push(Violation {
                    rule: Rule::NoUncheckedIndex,
                    path: rel_path.to_string(),
                    line: lineno,
                    message: "unchecked `[i]` indexing in a solver hot path panics on an out-of-range index; use `get`/iterators, or add `// lb-lint: allow(no-unchecked-index) -- reason` stating the bounds invariant".into(),
                    snippet: snippet_at(source, lineno),
                });
            }
        }
    }

    // R5 — no process::exit outside binaries.
    if kind != FileKind::Bin && kind != FileKind::TestOrBench {
        for (idx, line) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.code.contains("process::exit") && !allowed(lineno, Rule::NoProcessExit) {
                out.push(Violation {
                    rule: Rule::NoProcessExit,
                    path: rel_path.to_string(),
                    line: lineno,
                    message: "`std::process::exit` outside `src/bin/` skips destructors and poisons library reuse; return an error instead".into(),
                    snippet: snippet_at(source, lineno),
                });
            }
        }
    }

    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// True when `needle` occurs in `code` on an identifier boundary: when the
/// needle starts with an identifier character, the preceding character must
/// not be one (so `my_panic!` does not match `panic!`). Needles starting
/// with punctuation (`.unwrap()`) match anywhere.
pub(crate) fn contains_token(code: &str, needle: &str) -> bool {
    let needs_boundary = needle
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let abs = start + pos;
        let prev = code[..abs].chars().next_back();
        let boundary = !needs_boundary || !prev.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Detects a lossy float↔int `as` cast on a masked code line, returning a
/// description of the cast if found.
fn lossy_cast_in(code: &str) -> Option<String> {
    let float_evidence = [
        "f64", "f32", ".floor()", ".ceil()", ".round()", ".powf(", ".powi(", ".sqrt()", "to_f64",
    ];
    let mut search = 0;
    while let Some(pos) = code[search..].find(" as ") {
        let abs = search + pos;
        let after = &code[abs + 4..];
        let ty: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ty == "f64" || ty == "f32" {
            return Some(format!("`as {ty}` cast (int→float or float narrowing)"));
        }
        if INT_TYPES.contains(&ty.as_str()) {
            let before = &code[..abs];
            if float_evidence.iter().any(|m| before.contains(m)) {
                return Some(format!("float-expression `as {ty}` cast (truncating)"));
            }
        }
        search = abs + 4;
    }
    None
}

/// Detects a `container[index]` expression on a masked code line, returning
/// the byte offset of the `[` if found. A `[` indexes when the preceding
/// non-whitespace character ends an expression: an identifier character,
/// `)`, or `]`. Not flagged: attribute brackets (`#[...]`), macro brackets
/// (`vec![...]`, preceded by `!`), array types/literals (preceded by
/// punctuation), and range slicing (`&xs[a..b]` — a slice-length bug, not
/// the per-element access this rule targets).
pub(crate) fn unchecked_index_in(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let before = code[..i].trim_end();
        let Some(prev) = before.chars().next_back() else {
            continue;
        };
        if !(prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            continue;
        }
        // A keyword before `[` introduces a pattern or an array literal
        // (`let [a, b] = ..`, `return [x; 3]`), not an indexing expression.
        if prev.is_alphanumeric() || prev == '_' {
            let word_start = before
                .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
                .map_or(0, |p| p + 1);
            const KEYWORDS: [&str; 10] = [
                "let", "mut", "ref", "return", "in", "match", "if", "while", "else", "box",
            ];
            if KEYWORDS.contains(&&before[word_start..]) {
                continue;
            }
        }
        // Find the matching `]` (nesting-aware) and skip range indexing.
        let mut depth = 0usize;
        let mut close = None;
        for (j, &c) in bytes[i..].iter().enumerate() {
            match c {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(i + j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let inner = match close {
            Some(c) => &code[i + 1..c],
            None => &code[i + 1..],
        };
        if inner.contains("..") || inner.trim().is_empty() {
            continue;
        }
        return Some(i);
    }
    None
}

/// A discovered `pub fn` signature.
struct FnSig {
    name: String,
    line: usize,
    returns_result: bool,
    has_must_use: bool,
    in_test: bool,
}

/// Collects `pub fn` signatures (joined across lines up to the body brace)
/// together with their attribute context.
fn public_fn_signatures(file: &ScannedFile) -> Vec<FnSig> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let Some(fn_pos) = find_pub_fn(code) else {
            continue;
        };
        let name: String = code[fn_pos..]
            .chars()
            .skip_while(|c| !c.is_whitespace())
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // Join signature lines until the body `{` or a `;`.
        let mut sig = String::new();
        for l in &file.lines[idx..file.lines.len().min(idx + 24)] {
            sig.push_str(&l.code);
            sig.push(' ');
            if l.code.contains('{') || l.code.trim_end().ends_with(';') {
                break;
            }
        }
        let returns_result = match sig.find("->") {
            Some(arrow) => {
                let ret = &sig[arrow + 2..];
                let ret = ret.split('{').next().unwrap_or(ret);
                contains_token(ret, "Result")
            }
            None => false,
        };
        // Attributes: walk upward over `#[...]` and doc lines.
        let mut has_must_use = false;
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let above = file.lines[j].code.trim();
            if above.starts_with("#[") {
                if above.contains("must_use") {
                    has_must_use = true;
                }
            } else if above.is_empty() {
                // Doc comments are masked to empty; keep climbing.
                continue;
            } else {
                break;
            }
        }
        out.push(FnSig {
            name,
            line: idx + 1,
            returns_result,
            has_must_use,
            in_test: line.in_test,
        });
    }
    out
}

/// Finds a `pub fn` (not `pub(crate) fn`, which is not public API) on a
/// masked line, returning the byte offset of `fn`.
fn find_pub_fn(code: &str) -> Option<usize> {
    let mut search = 0;
    while let Some(pos) = code[search..].find("pub fn ") {
        let abs = search + pos;
        let prev = code[..abs].chars().next_back();
        if !prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return Some(abs + 4);
        }
        search = abs + 7;
    }
    None
}

pub(crate) fn snippet_at(source: &str, lineno: usize) -> String {
    source
        .lines()
        .nth(lineno.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .chars()
        .take(120)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Violation> {
        lint_source("crates/x/src/foo.rs", src, &Config::default())
    }

    #[test]
    fn r1_flags_unwrap_in_library() {
        let v = lint_lib("pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoPanic);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn r1_respects_test_code_and_allows() {
        let src = "\
fn g(o: Option<u32>) -> u32 {
    o.expect(\"validated\") // lb-lint: allow(no-panic) -- invariant: validated upstream
}
#[cfg(test)]
mod tests {
    fn t() { None::<u32>.unwrap(); }
}
";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn r1_allow_without_reason_is_an_error() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() } // lb-lint: allow(no-panic)\n";
        let v = lint_lib(src);
        assert!(v.iter().any(|v| v.rule == Rule::BadDirective));
        // The un-justified allow does not suppress the violation.
        assert!(v.iter().any(|v| v.rule == Rule::NoPanic));
    }

    #[test]
    fn r1_standalone_allow_targets_next_line() {
        let src = "\
// lb-lint: allow(no-panic) -- demonstration of line targeting
fn f(o: Option<u32>) -> u32 { o.unwrap() }
";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn r1_skips_strings_and_comments() {
        let src = "fn f() { let s = \".unwrap()\"; } // .unwrap() in a comment\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn r2_flags_float_casts_in_bound_math() {
        let src = "pub fn f(n: u64) -> f64 { n as f64 }\n";
        let v = lint_source("crates/lp/src/x.rs", src, &Config::default());
        assert!(v.iter().any(|v| v.rule == Rule::NoLossyCast));
        // Same source outside bound-math modules: no R2.
        let v = lint_source("crates/graph/src/x.rs", src, &Config::default());
        assert!(!v.iter().any(|v| v.rule == Rule::NoLossyCast));
    }

    #[test]
    fn r2_flags_truncating_float_to_int() {
        let src = "fn f(s: f64) -> u64 { (s + 1e-9).floor().max(1.0) as u64 }\n";
        let v = lint_source("crates/join/src/agm.rs", src, &Config::default());
        assert!(v.iter().any(|v| v.rule == Rule::NoLossyCast));
    }

    #[test]
    fn r2_permits_pure_int_widening() {
        let src = "fn f(s: u32) -> u64 { s as u64 }\n";
        let v = lint_source("crates/lp/src/x.rs", src, &Config::default());
        assert!(!v.iter().any(|v| v.rule == Rule::NoLossyCast));
    }

    #[test]
    fn r3_requires_forbid_unsafe() {
        let v = lint_source("crates/x/src/lib.rs", "pub fn f() {}\n", &Config::default());
        assert!(v.iter().any(|v| v.rule == Rule::ForbidUnsafe));
        let v = lint_source(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            &Config::default(),
        );
        assert!(v.is_empty());
        // Non-root files don't need it.
        let v = lint_source(
            "crates/x/src/util.rs",
            "pub fn f() {}\n",
            &Config::default(),
        );
        assert!(!v.iter().any(|v| v.rule == Rule::ForbidUnsafe));
    }

    #[test]
    fn r4_requires_must_use_on_result_entry_points() {
        let src = "pub fn solve(x: u32) -> Result<u32, String> { Ok(x) }\n";
        let v = lint_source("crates/sat/src/dpll.rs", src, &Config::default());
        assert!(v.iter().any(|v| v.rule == Rule::MustUseResult));
        let src = "#[must_use = \"solver verdicts must be checked\"]\npub fn solve(x: u32) -> Result<u32, String> { Ok(x) }\n";
        let v = lint_source("crates/sat/src/dpll.rs", src, &Config::default());
        assert!(v.is_empty());
    }

    #[test]
    fn r4_multiline_signature() {
        let src = "\
pub fn solve(
    x: u32,
) -> Result<u32, String> {
    Ok(x)
}
";
        let v = lint_source("crates/sat/src/dpll.rs", src, &Config::default());
        assert!(v.iter().any(|v| v.rule == Rule::MustUseResult));
    }

    #[test]
    fn r4_ignores_non_result_and_private_fns() {
        let src = "\
pub fn count(x: u32) -> u32 { x }
fn helper() -> Result<(), String> { Ok(()) }
pub(crate) fn internal() -> Result<(), String> { Ok(()) }
";
        let v = lint_source("crates/sat/src/dpll.rs", src, &Config::default());
        assert!(v.is_empty());
    }

    #[test]
    fn r5_flags_process_exit_in_library() {
        let src = "fn die() { std::process::exit(1); }\n";
        let v = lint_lib(src);
        assert!(v.iter().any(|v| v.rule == Rule::NoProcessExit));
        // Allowed in binaries.
        let v = lint_source("crates/core/src/bin/tool.rs", src, &Config::default());
        assert!(!v.iter().any(|v| v.rule == Rule::NoProcessExit));
    }

    #[test]
    fn r6_flags_adhoc_timing_in_library() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t.elapsed(); }\n";
        let v = lint_lib(src);
        assert!(v.iter().any(|v| v.rule == Rule::NoAdhocTiming));
        // Exempt in the engine layer, the experiments harness, binaries,
        // tests, benches, and examples.
        for path in [
            "crates/engine/src/lib.rs",
            "crates/core/src/experiments.rs",
            "crates/core/src/bin/tool.rs",
            "crates/x/benches/b.rs",
            "examples/demo.rs",
        ] {
            let v = lint_source(path, src, &Config::default());
            assert!(
                !v.iter().any(|v| v.rule == Rule::NoAdhocTiming),
                "R6 fired under exempt path {path}"
            );
        }
    }

    #[test]
    fn r6_respects_allow_directive() {
        let src = "fn f() { let _t = std::time::Instant::now(); } // lb-lint: allow(no-adhoc-timing) -- coarse watchdog only\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn r7_flags_indexing_in_hot_paths_only() {
        let src = "fn f(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
        let v = lint_source("crates/sat/src/dpll.rs", src, &Config::default());
        assert!(v.iter().any(|v| v.rule == Rule::NoUncheckedIndex));
        // The same source outside the hot-path list: no R7.
        let v = lint_source("crates/sat/src/cnf.rs", src, &Config::default());
        assert!(!v.iter().any(|v| v.rule == Rule::NoUncheckedIndex));
    }

    #[test]
    fn r7_permits_ranges_attributes_macros_and_types() {
        let src = "\
#[derive(Clone)]
pub struct S { xs: Vec<u32> }
fn f(xs: &[u32]) -> &[u32] { &xs[1..3] }
fn g() -> [u8; 4] { [0; 4] }
fn h() -> Vec<u32> { vec![1, 2] }
fn k(xs: &[u32], i: usize) -> Option<&u32> { xs.get(i) }
";
        let v = lint_source("crates/sat/src/dpll.rs", src, &Config::default());
        assert!(
            !v.iter().any(|v| v.rule == Rule::NoUncheckedIndex),
            "false positive: {v:?}"
        );
    }

    #[test]
    fn r7_flags_nested_and_call_result_indexing() {
        for src in [
            "fn f(m: &[Vec<u32>], i: usize, j: usize) -> u32 { m[i][j] }\n",
            "fn f(xs: &[u32]) -> u32 { make()[0] }\n",
        ] {
            let v = lint_source("crates/join/src/wcoj.rs", src, &Config::default());
            assert!(
                v.iter().any(|v| v.rule == Rule::NoUncheckedIndex),
                "missed: {src}"
            );
        }
    }

    #[test]
    fn r7_respects_allow_and_test_code() {
        let src = "\
fn f(xs: &[u32], i: usize) -> u32 {
    xs[i] // lb-lint: allow(no-unchecked-index) -- i < xs.len() by construction
}
#[cfg(test)]
mod tests {
    fn t(xs: &[u32]) -> u32 { xs[0] }
}
";
        let v = lint_source("crates/sat/src/dpll.rs", src, &Config::default());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let src = "fn f() {} // lb-lint: allow(no-such-rule) -- whatever\n";
        let v = lint_lib(src);
        assert!(v.iter().any(|v| v.rule == Rule::BadDirective));
    }

    #[test]
    fn multi_rule_allow() {
        let src = "pub fn f(n: u64) -> f64 { n as f64 } // lb-lint: allow(no-lossy-cast, no-panic) -- display only\n";
        let v = lint_source("crates/lp/src/x.rs", src, &Config::default());
        assert!(v.is_empty());
    }

    #[test]
    fn file_kinds() {
        assert_eq!(FileKind::classify("crates/x/src/lib.rs"), FileKind::Library);
        assert_eq!(
            FileKind::classify("crates/x/tests/t.rs"),
            FileKind::TestOrBench
        );
        assert_eq!(
            FileKind::classify("crates/x/benches/b.rs"),
            FileKind::TestOrBench
        );
        assert_eq!(FileKind::classify("examples/e.rs"), FileKind::Example);
        assert_eq!(FileKind::classify("tests/gate.rs"), FileKind::TestOrBench);
        assert_eq!(
            FileKind::classify("crates/x/src/bin/tool.rs"),
            FileKind::Bin
        );
        assert_eq!(FileKind::classify("src/main.rs"), FileKind::Bin);
    }
}
