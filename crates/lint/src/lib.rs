//! `lb-lint` — a zero-dependency static-analysis gate for solver and
//! reduction soundness.
//!
//! This repo's value is machine-checked correctness of reductions and
//! optimal algorithms; a panic on malformed input or a lossy float cast in
//! AGM/ρ* arithmetic silently corrupts exactly the quantities the paper
//! proves theorems about. `lb-lint` makes the repo's conventions enforced
//! invariants. It walks every `.rs` file in the workspace with its own
//! lightweight lexer (string-, comment-, and `#[cfg(test)]`-aware; no `syn`,
//! because the build environment is offline) and enforces:
//!
//! * **R1 `no-panic`** — no `unwrap()`/`expect()`/`panic!`/`todo!`/
//!   `unreachable!` in non-test library code;
//! * **R2 `no-lossy-cast`** — no lossy `as` casts between floats and
//!   integers in bound-arithmetic modules (`lb-join::agm`, `lb-lp`);
//! * **R3 `forbid-unsafe`** — `#![forbid(unsafe_code)]` in every crate root;
//! * **R4 `must-use-result`** — fallible public solver/join/reduction entry
//!   points return `Result` and carry `#[must_use]`;
//! * **R5 `no-process-exit`** — no `std::process::exit` outside `src/bin/`;
//! * **R6 `no-adhoc-timing`** — no ad-hoc `Instant::now()` wall-clock timing
//!   in solver library code: work is reported through the engine layer's
//!   machine-independent `RunStats` counters, and wall-clock measurement
//!   belongs to the `lowerbounds::experiments` harness (and bench/bin code);
//! * **R7 `no-unchecked-index`** — no unchecked `[i]` indexing in solver hot
//!   paths (DPLL, 2SAT, CSP backtracking, WCOJ, clique, triangle): on
//!   adversarial input a stray index is a panic where the contract demands
//!   `Exhausted` or a typed error — use `get`/iterators, or an allow naming
//!   the bounds invariant.
//!
//! On top of the token-level rules, a **semantic layer** ([`items`],
//! [`graph`], [`semantic`]) parses `fn`/`impl` items, builds a
//! workspace-wide call graph, and proves three invariants that lb-chaos
//! previously only spot-checked dynamically:
//!
//! * **R8 `unbudgeted-loop`** — every loop transitively reachable from a
//!   public solver entry point charges the `Budget` (directly or through a
//!   callee), so exhaustion can always cancel and checkpoint;
//! * **R9 `panic-reachability`** — no panic site is transitively reachable
//!   from the panic-free public API surface without an explicit
//!   `allow(panic-reachability)` stating the invariant (an R1 allow is a
//!   local justification and does not discharge the reachability proof);
//! * **R10 `checkpoint-schema-drift`** — checkpoint encode/decode bodies are
//!   fingerprinted into a committed baseline
//!   (`crates/lint/checkpoint-schema.baseline`); a body change without a
//!   `CHECKPOINT_PAYLOAD_VERSION` bump fails the gate, and
//!   `lb-lint --write-baseline` re-pins intentionally.
//!
//! A **dataflow layer** ([`dataflow`]) walks each `fn` body's masked token
//! stream, building def-use chains for collection bindings and `Result`
//! values; per-function summaries propagate over the same call graph and
//! drive three more rules:
//!
//! * **R11 `unbounded-growth`** — a loop-carried collection mutation
//!   (`push`/`insert`/`extend`/`push_back` whose receiver outlives the
//!   innermost loop iteration) in a budget-reachable solver loop must be
//!   charged to `RunStats.max_intermediate` — by the enclosing function or
//!   a transitively-charging callee — or carry an allow stating the bound;
//! * **R12 `swallowed-result`** — library code may not discard a `Result`
//!   unseen: no wildcard `let _ =`, no statement-final `.ok();`, no
//!   never-read binding of a workspace `Result`-returning call;
//! * **R13 `send-hostile-state`** — checkpoint-serializable solver state
//!   stays `Send`-clean: no `Rc`/`RefCell`/`Cell`/`UnsafeCell`/`NonNull`/
//!   raw-pointer fields and no `thread_local!` in the state files.
//!
//! `lb-lint dataflow` dumps the full fact base deterministically and floors
//! per-crate coverage, mirroring `SemanticStats::dataflow`.
//!
//! An **effects layer** ([`effects`]) extracts per-function effect
//! summaries for the serve crate — lock acquisitions with held regions,
//! blocking I/O, durability writes, ack/requeue sites, timeout guards —
//! and propagates them over the same call graph to enforce the
//! concurrency and durability discipline the lb-serve soak tests probe
//! dynamically:
//!
//! * **R14 `lock-discipline`** — the global lock-order graph stays
//!   acyclic, no lock is held across blocking I/O or fsync, and
//!   poisoned-lock recovery lives only in the blessed `lb_serve::sync`
//!   helpers;
//! * **R15 `durability-ordering`** — every `"OK …"` ack and scheduler
//!   requeue is dominated by a spool save/checkpoint/quarantine on every
//!   call chain, so a `kill -9` after the ack can never lose acknowledged
//!   work;
//! * **R16 `unbounded-blocking`** — every blocking socket read/write
//!   reachable from the accept loop is dominated by a
//!   `set_read_timeout`/`set_write_timeout`/`set_nonblocking` call, so a
//!   silent peer cannot wedge a handler thread.
//!
//! `lb-lint effects` dumps the summaries, recovery sites, and lock-order
//! edges deterministically and floors per-crate coverage, mirroring
//! `SemanticStats::effects`.
//!
//! Escape hatch: a trailing comment of the form
//! `lb-lint: allow(rule) -- reason` (the justification after `--` is
//! mandatory; an allow without one is itself reported). A directive alone on
//! a line applies to the next code line.
//!
//! The gate is wired three ways: the `lb-lint` CLI (`cargo run -p lb-lint`),
//! the workspace test `tests/lint_gate.rs` (so plain `cargo test` enforces
//! it), and CI (`.github/workflows/ci.yml`).

#![forbid(unsafe_code)]

pub mod dataflow;
pub mod effects;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod walk;

pub use effects::CrateEffects;
pub use report::{clean_summary, exit_code, exit_code_legacy, render_json, render_text};
pub use rules::{lint_source, CheckpointSpec, Config, FileKind, Rule, Violation};
pub use semantic::{CrateDataflow, SemanticStats};

use std::io;
use std::path::Path;

/// The result of a full workspace analysis: all violations (token-level and
/// semantic), the file count, and semantic coverage statistics.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All violations, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
    /// Semantic-layer coverage statistics (roots, loops, panic sites…).
    pub stats: SemanticStats,
}

/// Reads every `.rs` file under `root` (skipping `target`, `.git`, and lint
/// `fixtures`) into `(relative path, source)` pairs, sorted by path.
fn read_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    let files = walk::rust_files(root)?;
    let mut out = Vec::with_capacity(files.len());
    for rel in &files {
        let rel_str = walk::rel_display(rel);
        let source = std::fs::read_to_string(root.join(rel))?;
        out.push((rel_str, source));
    }
    Ok(out)
}

/// Runs the full analysis (token rules R1–R7 per file, then the semantic
/// rules R8–R10 over the workspace call graph).
pub fn analyze_workspace(root: &Path, config: &Config) -> io::Result<Analysis> {
    let files = read_workspace(root)?;
    let mut violations = Vec::new();
    for (rel, source) in &files {
        violations.extend(rules::lint_source(rel, source, config));
    }
    let (semantic_violations, stats) = semantic::check(root, &files, config);
    violations.extend(semantic_violations);
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Analysis {
        violations,
        files_checked: files.len(),
        stats,
    })
}

/// Lints every `.rs` file under `root`. Returns all violations plus the
/// number of files checked. (Compatibility wrapper over
/// [`analyze_workspace`].)
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<(Vec<Violation>, usize)> {
    let a = analyze_workspace(root, config)?;
    Ok((a.violations, a.files_checked))
}

/// Dumps the workspace call graph (deterministic text, for `lb-lint graph`).
pub fn graph_dump_workspace(root: &Path, config: &Config) -> io::Result<String> {
    let files = read_workspace(root)?;
    Ok(semantic::graph_dump(&files, config))
}

/// Dumps the per-function dataflow summaries (deterministic text, for
/// `lb-lint dataflow`).
pub fn dataflow_dump_workspace(root: &Path, config: &Config) -> io::Result<String> {
    let files = read_workspace(root)?;
    Ok(semantic::dataflow_dump(&files, config))
}

/// Dumps the per-function effect summaries and lock-order edges
/// (deterministic text, for `lb-lint effects`).
pub fn effects_dump_workspace(root: &Path, config: &Config) -> io::Result<String> {
    let files = read_workspace(root)?;
    Ok(semantic::effects_dump(&files, config))
}

/// Recomputes and writes the R10 checkpoint-schema baseline under `root`,
/// returning the file content (for `lb-lint --write-baseline`).
pub fn write_baseline(root: &Path, config: &Config) -> io::Result<String> {
    let files = read_workspace(root)?;
    semantic::write_baseline(root, &files, config)
}

/// The workspace root as seen from this crate (two levels above the crate
/// manifest). This is correct both under `cargo run -p lb-lint` and from
/// workspace tests.
pub fn default_workspace_root() -> &'static Path {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_contains_cargo_toml() {
        assert!(default_workspace_root().join("Cargo.toml").exists());
    }

    #[test]
    fn lint_workspace_runs() {
        let (_, files) = lint_workspace(default_workspace_root(), &Config::default()).unwrap();
        assert!(files > 50, "expected a real workspace, saw {files} files");
    }

    #[test]
    fn analysis_reports_semantic_coverage() {
        let a = analyze_workspace(default_workspace_root(), &Config::default()).unwrap();
        assert!(
            !a.stats.root_names.is_empty(),
            "semantic layer found no entry-point roots"
        );
        assert!(a.stats.loops_checked > 0, "no reachable loops examined");
        assert!(a.stats.families_checked >= 5, "checkpoint families missing");
    }
}
