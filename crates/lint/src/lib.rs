//! `lb-lint` — a zero-dependency static-analysis gate for solver and
//! reduction soundness.
//!
//! This repo's value is machine-checked correctness of reductions and
//! optimal algorithms; a panic on malformed input or a lossy float cast in
//! AGM/ρ* arithmetic silently corrupts exactly the quantities the paper
//! proves theorems about. `lb-lint` makes the repo's conventions enforced
//! invariants. It walks every `.rs` file in the workspace with its own
//! lightweight lexer (string-, comment-, and `#[cfg(test)]`-aware; no `syn`,
//! because the build environment is offline) and enforces:
//!
//! * **R1 `no-panic`** — no `unwrap()`/`expect()`/`panic!`/`todo!`/
//!   `unreachable!` in non-test library code;
//! * **R2 `no-lossy-cast`** — no lossy `as` casts between floats and
//!   integers in bound-arithmetic modules (`lb-join::agm`, `lb-lp`);
//! * **R3 `forbid-unsafe`** — `#![forbid(unsafe_code)]` in every crate root;
//! * **R4 `must-use-result`** — fallible public solver/join/reduction entry
//!   points return `Result` and carry `#[must_use]`;
//! * **R5 `no-process-exit`** — no `std::process::exit` outside `src/bin/`;
//! * **R6 `no-adhoc-timing`** — no ad-hoc `Instant::now()` wall-clock timing
//!   in solver library code: work is reported through the engine layer's
//!   machine-independent `RunStats` counters, and wall-clock measurement
//!   belongs to the `lowerbounds::experiments` harness (and bench/bin code);
//! * **R7 `no-unchecked-index`** — no unchecked `[i]` indexing in solver hot
//!   paths (DPLL, 2SAT, CSP backtracking, WCOJ, clique, triangle): on
//!   adversarial input a stray index is a panic where the contract demands
//!   `Exhausted` or a typed error — use `get`/iterators, or an allow naming
//!   the bounds invariant.
//!
//! Escape hatch: a trailing comment of the form
//! `lb-lint: allow(rule) -- reason` (the justification after `--` is
//! mandatory; an allow without one is itself reported). A directive alone on
//! a line applies to the next code line.
//!
//! The gate is wired three ways: the `lb-lint` CLI (`cargo run -p lb-lint`),
//! the workspace test `tests/lint_gate.rs` (so plain `cargo test` enforces
//! it), and CI (`.github/workflows/ci.yml`).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::{clean_summary, exit_code, render_json, render_text};
pub use rules::{lint_source, Config, FileKind, Rule, Violation};

use std::io;
use std::path::Path;

/// Lints every `.rs` file under `root` (skipping `target`, `.git`, and lint
/// `fixtures`). Returns all violations plus the number of files checked.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<(Vec<Violation>, usize)> {
    let files = walk::rust_files(root)?;
    let mut violations = Vec::new();
    for rel in &files {
        let rel_str = walk::rel_display(rel);
        let source = std::fs::read_to_string(root.join(rel))?;
        violations.extend(rules::lint_source(&rel_str, &source, config));
    }
    Ok((violations, files.len()))
}

/// The workspace root as seen from this crate (two levels above the crate
/// manifest). This is correct both under `cargo run -p lb-lint` and from
/// workspace tests.
pub fn default_workspace_root() -> &'static Path {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_contains_cargo_toml() {
        assert!(default_workspace_root().join("Cargo.toml").exists());
    }

    #[test]
    fn lint_workspace_runs() {
        let (_, files) = lint_workspace(default_workspace_root(), &Config::default()).unwrap();
        assert!(files > 50, "expected a real workspace, saw {files} files");
    }
}
