//! Intraprocedural dataflow over the masked token stream, feeding the
//! summary rules R11–R13.
//!
//! Like the rest of the linter, this is **not** a type checker. It walks
//! each function's token range (nested `fn` items excluded, closures
//! attributed to the enclosing function) and recovers just enough def-use
//! structure for three questions:
//!
//! * which local bindings are collections, and where they were declared
//!   relative to the loops that mutate them (R11 `unbounded-growth`) —
//!   a `push`/`insert`/`extend`/`push_back` whose receiver outlives the
//!   innermost enclosing loop iteration is *loop-carried* growth and must
//!   be charged to `RunStats.max_intermediate`;
//! * which statements discard a `Result` (`let _ =`, statement-final
//!   `.ok();`, or a never-read binding of a workspace `Result`-returning
//!   call) for R12 `swallowed-result`;
//! * which struct fields hold `Send`-hostile types (`Rc`, `RefCell`,
//!   `Cell`, raw pointers) and where `thread_local!` state lives, for
//!   R13 `send-hostile-state`.
//!
//! The approximations all lean conservative for a gate: an unresolvable
//! receiver (a parameter, a field chain, a method-chain result) is treated
//! as loop-carried, and only an explicit charge or allow discharges it.
//! The per-function results become summaries that [`crate::semantic`]
//! propagates over the call graph: a growth site is "charged" when the
//! enclosing function charges `max_intermediate` directly or calls a
//! function in the transitively-charging set.

use crate::items::{self, FnItem, ParsedFile, Span, Tok, TokKind};
use crate::lexer::ScannedFile;
use crate::rules::Config;

/// Collection type names recognized by the binding classifier.
const COLLECTION_TYPES: [&str; 8] = [
    "Vec",
    "VecDeque",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "String",
];

/// Initializer method/macro words that mark a binding as a collection even
/// without a type annotation.
const COLLECTION_INITS: [&str; 3] = ["collect", "to_vec", "with_capacity"];

/// Struct-field type words that make solver state `Send`-hostile.
const HOSTILE_TYPE_WORDS: [&str; 5] = ["Rc", "RefCell", "Cell", "UnsafeCell", "NonNull"];

/// A `let` binding seen in a function body.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound name (pattern bindings contribute one entry per name).
    pub name: String,
    /// Line of the `let`.
    pub line: usize,
    /// Whether the binding is collection-typed (by annotation or
    /// initializer shape).
    pub is_collection: bool,
}

/// One collection mutation site (`.push(` and friends).
#[derive(Debug, Clone)]
pub struct GrowthSite {
    /// Line of the mutating call.
    pub line: usize,
    /// The growth method (`push`, `insert`, `extend`, `push_back`).
    pub method: String,
    /// The receiver chain as written (e.g. `self.frames`, `out`).
    pub receiver: String,
    /// True when the receiver outlives the innermost enclosing loop
    /// iteration: a field access, a method-chain result, an unresolvable
    /// name, or a local declared outside that loop.
    pub carried: bool,
    /// Keyword line of the innermost enclosing loop, if any.
    pub loop_line: Option<usize>,
}

/// A candidate unused-`Result` binding: `let name = callee(...);` with no
/// `?` and (`used_later` false) no later read of `name` in the function.
#[derive(Debug, Clone)]
pub struct UnusedResultCandidate {
    /// The bound name.
    pub name: String,
    /// Line of the `let`.
    pub line: usize,
    /// Qualifier segment before `::`, if the call was path-qualified.
    pub callee_qualifier: Option<String>,
    /// The called name.
    pub callee: String,
    /// True when the callee was a `.method(...)` call.
    pub is_method: bool,
    /// Whether the name is read anywhere after the initializer.
    pub used_later: bool,
}

/// Per-function dataflow summary.
#[derive(Debug, Clone)]
pub struct FnFlow {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub qualifier: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Body line span.
    pub body: Span,
    /// Whether the signature returns a `Result`.
    pub returns_result: bool,
    /// Lines with a direct `max_intermediate` charge call.
    pub charge_lines: Vec<usize>,
    /// Collection mutation sites.
    pub grows: Vec<GrowthSite>,
    /// Lines with a `let _ = ...;` wildcard discard.
    pub wildcard_lets: Vec<usize>,
    /// Lines with a statement-final `.ok();` discard.
    pub ok_discards: Vec<usize>,
    /// Candidate unused-`Result` bindings (filtered against the workspace
    /// `returns_result` summaries by the semantic pass).
    pub unused_candidates: Vec<UnusedResultCandidate>,
    /// All bindings seen, in order.
    pub bindings: Vec<Binding>,
}

impl FnFlow {
    /// `Qualifier::name` or plain `name` for display.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `Send`-hostile struct field.
#[derive(Debug, Clone)]
pub struct HostileField {
    /// The struct's name.
    pub struct_name: String,
    /// The field's name.
    pub field: String,
    /// Line of the field.
    pub line: usize,
    /// The hostile marker found (`Rc`, `RefCell`, `*mut`, ...).
    pub marker: String,
}

/// Dataflow results for one file.
#[derive(Debug, Clone, Default)]
pub struct FileFlow {
    /// Per-function summaries, in `fn`-keyword order.
    pub fns: Vec<FnFlow>,
    /// `Send`-hostile struct fields.
    pub hostile_fields: Vec<HostileField>,
    /// Lines with a `thread_local!` declaration.
    pub thread_local_lines: Vec<usize>,
    /// Structs parsed in the file (with or without named fields).
    pub structs: usize,
}

/// Runs the per-function dataflow pass over one scanned+parsed file.
pub fn analyze(scanned: &ScannedFile, parsed: &ParsedFile, config: &Config) -> FileFlow {
    let toks = items::tokenize(scanned);
    let close = items::match_braces(&toks);
    let mut flow = FileFlow {
        structs: parsed.structs.len(),
        ..FileFlow::default()
    };

    for (i, t) in toks.iter().enumerate() {
        if matches!(&t.kind, TokKind::Word(w) if w == "thread_local")
            && punct_at(&toks, i + 1) == Some('!')
        {
            flow.thread_local_lines.push(t.line);
        }
    }

    for s in &parsed.structs {
        for f in &s.fields {
            if let Some(marker) = hostile_marker(&f.ty) {
                flow.hostile_fields.push(HostileField {
                    struct_name: s.name.clone(),
                    field: f.name.clone(),
                    line: f.line,
                    marker,
                });
            }
        }
    }

    for f in &parsed.fns {
        if f.body.is_none() {
            continue;
        }
        if let Some(fn_flow) = analyze_fn(&toks, &close, f, config) {
            flow.fns.push(fn_flow);
        }
    }
    flow.fns.sort_by_key(|f| f.line);
    flow
}

/// Finds the hostile type word (or raw-pointer sigil) in a space-joined
/// field type string, if any.
fn hostile_marker(ty: &str) -> Option<String> {
    let words: Vec<&str> = ty.split_whitespace().collect();
    if let Some(w) = words.iter().find(|w| HOSTILE_TYPE_WORDS.contains(w)) {
        return Some((*w).to_string());
    }
    words.windows(2).find_map(|w| {
        (w[0] == "*" && (w[1] == "const" || w[1] == "mut")).then(|| format!("*{}", w[1]))
    })
}

pub(crate) fn word_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Word(w)) => Some(w.as_str()),
        _ => None,
    }
}

pub(crate) fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Locates the token index of `f`'s `fn` keyword and its body `{`.
#[allow(clippy::needless_range_loop)] // index used across several arrays
pub(crate) fn locate_fn(toks: &[Tok], close: &[usize], f: &FnItem) -> Option<(usize, usize)> {
    let kw = (0..toks.len()).find(|&i| {
        toks[i].line == f.line
            && word_at(toks, i) == Some("fn")
            && word_at(toks, i + 1) == Some(f.name.as_str())
    })?;
    let mut depth = 0i64;
    for k in kw + 2..toks.len() {
        match punct_at(toks, k) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('{') if depth <= 0 => {
                return (close[k] < toks.len()).then_some((kw, k));
            }
            Some(';') if depth <= 0 => return None,
            _ => {}
        }
    }
    None
}

/// The token indices belonging to the function itself: its body range with
/// nested `fn` items carved out (closures stay in).
pub(crate) fn own_token_indices(toks: &[Tok], close: &[usize], open: usize) -> Vec<usize> {
    let end = close[open];
    let mut own = Vec::with_capacity(end.saturating_sub(open));
    let mut k = open + 1;
    while k < end {
        if word_at(toks, k) == Some("fn") && word_at(toks, k + 1).is_some() {
            // Skip the nested item wholesale (signature + body or `;`).
            let mut depth = 0i64;
            let mut j = k + 2;
            while j < end {
                match punct_at(toks, j) {
                    Some('(') | Some('[') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some('{') if depth <= 0 => {
                        j = close[j].min(end);
                        break;
                    }
                    Some(';') if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            k = j + 1;
            continue;
        }
        own.push(k);
        k += 1;
    }
    own
}

/// Whether the signature tokens in `toks[kw..open]` declare a `Result`
/// return type (a `Result` word after the `->` arrow).
fn signature_returns_result(toks: &[Tok], kw: usize, open: usize) -> bool {
    let mut depth = 0i64;
    let mut arrow = None;
    for k in kw..open {
        match punct_at(toks, k) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('-') if depth == 0 && punct_at(toks, k + 1) == Some('>') => {
                arrow = Some(k + 2);
                break;
            }
            _ => {}
        }
    }
    let Some(from) = arrow else { return false };
    (from..open).any(|k| word_at(toks, k) == Some("Result"))
}

/// Analyzes one function's own tokens.
fn analyze_fn(toks: &[Tok], close: &[usize], f: &FnItem, config: &Config) -> Option<FnFlow> {
    let (kw, open) = locate_fn(toks, close, f)?;
    let own = own_token_indices(toks, close, open);
    let body = f.body?;

    let mut flow = FnFlow {
        name: f.name.clone(),
        qualifier: f.qualifier.clone(),
        line: f.line,
        body,
        returns_result: signature_returns_result(toks, kw, open),
        charge_lines: Vec::new(),
        grows: Vec::new(),
        wildcard_lets: Vec::new(),
        ok_discards: Vec::new(),
        unused_candidates: Vec::new(),
        bindings: Vec::new(),
    };

    // Pass 1: bindings and statement-level discards.
    let mut raw_candidates: Vec<(UnusedResultCandidate, usize)> = Vec::new(); // (cand, init end pos)
    let mut pos = 0;
    while pos < own.len() {
        let i = own[pos];
        match &toks[i].kind {
            TokKind::Word(w) if w == "let" => {
                let in_cond =
                    pos > 0 && matches!(word_at(toks, own[pos - 1]), Some("if") | Some("while"));
                let info = parse_let(toks, &own, pos, in_cond);
                if info.wildcard {
                    flow.wildcard_lets.push(toks[i].line);
                }
                for name in &info.names {
                    flow.bindings.push(Binding {
                        name: name.clone(),
                        line: toks[i].line,
                        is_collection: info.is_collection,
                    });
                }
                if let (false, [name], Some(call)) =
                    (info.has_question, info.names.as_slice(), info.simple_call)
                {
                    raw_candidates.push((
                        UnusedResultCandidate {
                            name: name.clone(),
                            line: toks[i].line,
                            callee_qualifier: call.0,
                            callee: call.1,
                            is_method: call.2,
                            used_later: false,
                        },
                        info.end_pos,
                    ));
                }
                pos += 1;
            }
            TokKind::Word(w)
                if config.intermediate_charge_methods.iter().any(|m| m == w)
                    && punct_at(toks, i + 1) == Some('(') =>
            {
                flow.charge_lines.push(toks[i].line);
                pos += 1;
            }
            TokKind::Word(w)
                if w == "ok"
                    && pos > 0
                    && punct_at(toks, own[pos - 1]) == Some('.')
                    && punct_at(toks, i + 1) == Some('(')
                    && punct_at(toks, i + 2) == Some(')')
                    && punct_at(toks, i + 3) == Some(';') =>
            {
                flow.ok_discards.push(toks[i].line);
                pos += 1;
            }
            TokKind::Word(w)
                if config.growth_methods.iter().any(|m| m == w)
                    && pos > 0
                    && punct_at(toks, own[pos - 1]) == Some('.')
                    && punct_at(toks, i + 1) == Some('(') =>
            {
                let (chain, has_call) = receiver_chain(toks, &own, pos - 1);
                let line = toks[i].line;
                let innermost = f
                    .loops
                    .iter()
                    .filter(|l| l.body.contains(line))
                    .min_by_key(|l| l.body.len());
                let carried = match (&chain[..], innermost) {
                    (_, None) => false,
                    ([], Some(_)) => true,
                    ([single], Some(lp)) => {
                        if has_call || single == "self" {
                            true
                        } else {
                            // Latest binding of this name before the site;
                            // carried when declared outside the loop body
                            // (or not a local binding at all — a parameter
                            // or captured state outlives every iteration).
                            match flow
                                .bindings
                                .iter()
                                .rev()
                                .find(|b| b.name == *single && b.line <= line)
                            {
                                Some(b) => !lp.body.contains(b.line),
                                None => true,
                            }
                        }
                    }
                    // A field access or method-chain receiver aliases state
                    // that outlives the iteration.
                    (_, Some(_)) => true,
                };
                flow.grows.push(GrowthSite {
                    line,
                    method: w.clone(),
                    receiver: chain.join("."),
                    carried,
                    loop_line: innermost.map(|l| l.line),
                });
                pos += 1;
            }
            _ => pos += 1,
        }
    }

    // Pass 2: resolve `used_later` for the unused-`Result` candidates.
    for (mut cand, end_pos) in raw_candidates {
        cand.used_later = own[end_pos.min(own.len().saturating_sub(1))..]
            .iter()
            .skip(1)
            .any(|&k| word_at(toks, k) == Some(cand.name.as_str()));
        flow.unused_candidates.push(cand);
    }
    Some(flow)
}

/// What one `let` statement binds and how it is initialized.
struct LetInfo {
    /// Bound names (lowercase pattern words; constructors skipped).
    names: Vec<String>,
    /// True for a pure `let _ =` wildcard.
    wildcard: bool,
    /// Collection-typed by annotation or initializer shape.
    is_collection: bool,
    /// The initializer contains a `?` (the `Result` is handled).
    has_question: bool,
    /// `Some((qualifier, name, is_method))` when the initializer is a
    /// single call whose result is bound directly.
    simple_call: Option<(Option<String>, String, bool)>,
    /// Position (index into the `own` list) just past the statement.
    end_pos: usize,
}

/// Parses a `let` at `own[pos]` (`in_cond` for `if let`/`while let`, whose
/// initializer ends at the block `{` rather than `;`).
fn parse_let(toks: &[Tok], own: &[usize], pos: usize, in_cond: bool) -> LetInfo {
    let mut names = Vec::new();
    let mut wildcard = false;
    let mut p = pos + 1;
    let mut depth = 0i64;
    let mut pattern_toks = 0usize;

    // Pattern region: up to a depth-0 `:` (not `::`), `=`, or `;`.
    let mut terminator = ';';
    while p < own.len() {
        let i = own[p];
        match &toks[i].kind {
            TokKind::Punct('(' | '[' | '{' | '<') => depth += 1,
            TokKind::Punct(')' | ']' | '}' | '>') => depth -= 1,
            TokKind::Punct(':') if depth == 0 => {
                if punct_at(toks, i + 1) == Some(':')
                    || punct_at(toks, own[p.saturating_sub(1)]) == Some(':')
                {
                    // path segment inside the pattern
                } else {
                    terminator = ':';
                    break;
                }
            }
            TokKind::Punct('=') if depth == 0 => {
                terminator = '=';
                break;
            }
            TokKind::Punct(';') if depth == 0 => {
                terminator = ';';
                break;
            }
            TokKind::Word(w) => {
                pattern_toks += 1;
                // `x: T` at depth 0 ends the pattern (the `:` terminator
                // fires next), so only exclude `field:` labels in struct
                // patterns (depth > 0) and `path::` segments.
                let field_label = depth > 0
                    && punct_at(toks, i + 1) == Some(':')
                    && punct_at(toks, i + 2) != Some(':');
                let path_seg =
                    punct_at(toks, i + 1) == Some(':') && punct_at(toks, i + 2) == Some(':');
                if w == "_" {
                    wildcard = true;
                } else if w != "mut"
                    && w != "ref"
                    && !w.starts_with(char::is_uppercase)
                    && !w.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && !field_label
                    && !path_seg
                {
                    names.push(w.clone());
                }
            }
            _ => {}
        }
        p += 1;
    }
    // Only a lone `_` is a wildcard discard; `(a, _)` destructures.
    wildcard = wildcard && pattern_toks == 1 && names.is_empty();

    let mut is_collection = false;
    if terminator == ':' {
        // Type region: up to a depth-0 `=` or `;`.
        p += 1;
        depth = 0;
        while p < own.len() {
            let i = own[p];
            match &toks[i].kind {
                TokKind::Punct('(' | '[' | '{' | '<') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => depth -= 1,
                TokKind::Punct('>') => depth = (depth - 1).max(0),
                TokKind::Punct('=') if depth == 0 => {
                    terminator = '=';
                    break;
                }
                TokKind::Punct(';') if depth == 0 => {
                    terminator = ';';
                    break;
                }
                TokKind::Word(w) if COLLECTION_TYPES.contains(&w.as_str()) => {
                    is_collection = true;
                }
                _ => {}
            }
            p += 1;
        }
    }

    let mut has_question = false;
    let mut simple_call = None;
    if terminator == '=' {
        // Initializer region: to a depth-0 `;` (or the block `{` for
        // `if let`/`while let`), also stopping at a depth-0 `else`.
        let init_start = p + 1;
        p = init_start;
        depth = 0;
        let mut call: Option<(usize, Option<String>, String, bool)> = None; // (own pos of '(', ...)
        let mut call_close: Option<usize> = None;
        while p < own.len() {
            let i = own[p];
            match &toks[i].kind {
                TokKind::Punct('(' | '[' | '{') => {
                    if in_cond && depth == 0 && punct_at(toks, i) == Some('{') {
                        break;
                    }
                    depth += 1;
                }
                TokKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth == 0 {
                        if let Some((open_pos, _, _, _)) = &call {
                            if call_close.is_none() && p > *open_pos {
                                call_close = Some(p);
                            }
                        }
                    }
                }
                TokKind::Punct(';') if depth == 0 => break,
                TokKind::Punct('?') => has_question = true,
                TokKind::Word(w) if w == "else" && depth == 0 => break,
                TokKind::Word(w)
                    if depth == 0
                        && call.is_none()
                        && punct_at(toks, i + 1) == Some('(')
                        && !w.starts_with(char::is_uppercase)
                        && w != "match"
                        && w != "if" =>
                {
                    let is_method = p > init_start && punct_at(toks, own[p - 1]) == Some('.');
                    let qual = (!is_method
                        && p >= init_start + 3
                        && punct_at(toks, own[p - 1]) == Some(':')
                        && punct_at(toks, own[p - 2]) == Some(':'))
                    .then(|| word_at(toks, own[p - 3]).map(str::to_string))
                    .flatten();
                    call = Some((p + 1, qual, w.clone(), is_method));
                }
                _ => {}
            }
            p += 1;
        }
        // A "simple call" binds the call result directly: the initializer's
        // last token is the call's closing paren.
        if let (Some((_, qual, name, is_method)), Some(cl)) = (call, call_close) {
            if cl + 1 == p && !has_question {
                simple_call = Some((qual, name, is_method));
            }
        }
        // Initializer shape: `Vec::new()`, `vec![...]`, `.collect()`, ...
        for &i in &own[init_start..p] {
            if let TokKind::Word(w) = &toks[i].kind {
                if COLLECTION_TYPES.contains(&w.as_str())
                    || COLLECTION_INITS.contains(&w.as_str())
                    || (w == "vec" && punct_at(toks, i + 1) == Some('!'))
                {
                    is_collection = true;
                }
            }
        }
    }

    LetInfo {
        names,
        wildcard,
        is_collection,
        has_question,
        simple_call,
        end_pos: p,
    }
}

/// Walks the receiver chain backwards from the `.` at `own[dot_pos]`.
/// Returns the chain outer-to-inner (e.g. `["self", "frames"]`) and whether
/// it crosses a call/index (method-chain receivers alias unknown state).
pub(crate) fn receiver_chain(toks: &[Tok], own: &[usize], dot_pos: usize) -> (Vec<String>, bool) {
    let mut chain = Vec::new();
    let mut has_call = false;
    let mut p = dot_pos;
    while p > 0 {
        let prev = own[p - 1];
        match &toks[prev].kind {
            TokKind::Word(w) => {
                chain.push(w.clone());
                p -= 1;
                if p > 0 && punct_at(toks, own[p - 1]) == Some('.') {
                    p -= 1;
                    continue;
                }
                break;
            }
            TokKind::Punct(')') | TokKind::Punct(']') => {
                if matches!(&toks[prev].kind, TokKind::Punct(')')) {
                    has_call = true;
                }
                // Walk back to the matching opener.
                let mut depth = 0i64;
                let mut q = p - 1;
                loop {
                    match punct_at(toks, own[q]) {
                        Some(')') | Some(']') => depth += 1,
                        Some('(') | Some('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if q == 0 {
                        break;
                    }
                    q -= 1;
                }
                if q == 0 {
                    break;
                }
                p = q;
                // The token before the opener continues the chain.
                if matches!(&toks[own[p - 1]].kind, TokKind::Word(_)) {
                    continue;
                }
                break;
            }
            TokKind::Punct('?') => {
                p -= 1;
            }
            _ => break,
        }
    }
    chain.reverse();
    (chain, has_call)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn flow_of(src: &str) -> FileFlow {
        let scanned = scan(src);
        let parsed = items::parse(&scanned);
        analyze(&scanned, &parsed, &Config::default())
    }

    #[test]
    fn classifies_collection_bindings() {
        let src = "\
fn f() {
    let mut out = Vec::new();
    let xs: Vec<u32> = make();
    let n = 3;
    let s = items.iter().collect::<Vec<_>>();
}
";
        let f = &flow_of(src).fns[0];
        let cols: Vec<(&str, bool)> = f
            .bindings
            .iter()
            .map(|b| (b.name.as_str(), b.is_collection))
            .collect();
        assert_eq!(
            cols,
            vec![("out", true), ("xs", true), ("n", false), ("s", true)]
        );
    }

    #[test]
    fn loop_local_growth_is_not_carried() {
        let src = "\
fn f(items: &[u32]) {
    for x in items {
        let mut tmp = Vec::new();
        tmp.push(*x);
    }
}
";
        let f = &flow_of(src).fns[0];
        assert_eq!(f.grows.len(), 1);
        assert!(!f.grows[0].carried, "loop-local Vec must not be carried");
    }

    #[test]
    fn loop_carried_and_field_growth_are_carried() {
        let src = "\
fn f(&mut self, items: &[u32]) {
    let mut acc = Vec::new();
    for x in items {
        acc.push(*x);
        self.frames.push(*x);
        out.extend([*x]);
    }
}
";
        let f = &flow_of(src).fns[0];
        let carried: Vec<(&str, bool)> = f
            .grows
            .iter()
            .map(|g| (g.receiver.as_str(), g.carried))
            .collect();
        assert_eq!(
            carried,
            vec![("acc", true), ("self.frames", true), ("out", true)]
        );
        assert!(f.grows.iter().all(|g| g.loop_line == Some(3)));
    }

    #[test]
    fn growth_outside_loops_is_not_flagged_as_carried() {
        let src = "\
fn f() {
    let mut out = Vec::new();
    out.push(1);
}
";
        let f = &flow_of(src).fns[0];
        assert_eq!(f.grows.len(), 1);
        assert!(!f.grows[0].carried);
        assert_eq!(f.grows[0].loop_line, None);
    }

    #[test]
    fn discard_shapes() {
        let src = "\
fn f() {
    let _ = compute();
    save().ok();
    let (a, _) = pair();
}
";
        let f = &flow_of(src).fns[0];
        assert_eq!(f.wildcard_lets, vec![2]);
        assert_eq!(f.ok_discards, vec![3]);
    }

    #[test]
    fn unused_result_candidate_and_uses() {
        let src = "\
fn f() {
    let r = validate(x);
    let used = validate(x);
    used.report();
    let handled = validate(x)?;
    let chained = validate(x).is_ok();
}
";
        let f = &flow_of(src).fns[0];
        let cands: Vec<(&str, bool)> = f
            .unused_candidates
            .iter()
            .map(|c| (c.name.as_str(), c.used_later))
            .collect();
        // `handled` has `?`; `chained` is not a simple call.
        assert_eq!(cands, vec![("r", false), ("used", true)]);
    }

    #[test]
    fn returns_result_and_charges() {
        let src = "\
fn a() -> Result<u32, E> { Ok(1) }
fn b(t: &mut Ticker) {
    t.record_intermediate(n);
}
fn c() -> u32 { 0 }
";
        let flow = flow_of(src);
        assert!(flow.fns[0].returns_result);
        assert!(!flow.fns[1].returns_result);
        assert_eq!(flow.fns[1].charge_lines, vec![3]);
        assert!(!flow.fns[2].returns_result);
    }

    #[test]
    fn hostile_fields_and_thread_local() {
        let src = "\
struct Frame {
    var: usize,
    cell: RefCell<u32>,
    shared: Rc<Graph>,
    raw: *mut u8,
}
thread_local! {
    static X: u32 = 0;
}
";
        let flow = flow_of(src);
        let markers: Vec<(&str, &str)> = flow
            .hostile_fields
            .iter()
            .map(|h| (h.field.as_str(), h.marker.as_str()))
            .collect();
        assert_eq!(
            markers,
            vec![("cell", "RefCell"), ("shared", "Rc"), ("raw", "*mut")]
        );
        assert_eq!(flow.thread_local_lines, vec![7]);
    }

    #[test]
    fn shadowing_resolves_to_nearest_binding() {
        let src = "\
fn f(items: &[u32]) {
    let out = 3;
    for x in items {
        let mut out = Vec::new();
        out.push(*x);
    }
}
";
        let f = &flow_of(src).fns[0];
        assert_eq!(f.grows.len(), 1);
        assert!(
            !f.grows[0].carried,
            "the shadowing loop-local binding is the receiver"
        );
    }

    #[test]
    fn method_chain_receiver_is_carried() {
        let src = "\
fn f(&mut self, items: &[u32]) {
    for x in items {
        self.frames.last_mut().trail.push(*x);
    }
}
";
        let f = &flow_of(src).fns[0];
        assert_eq!(f.grows.len(), 1);
        assert!(f.grows[0].carried);
    }
}
