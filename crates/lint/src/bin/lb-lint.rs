//! The `lb-lint` CLI.
//!
//! ```text
//! cargo run -p lb-lint [-- --format json|text] [--root PATH]
//! ```
//!
//! Exit code: a bitmask of violated rules (R1 = 1, R2 = 2, R3 = 4, R4 = 8,
//! R5 = 16, malformed directives = 32, R6 = 64, R7 = 128, usage/IO
//! error = 255); 0 when clean.

use lb_lint::{clean_summary, exit_code, lint_workspace, render_json, render_text, Config};
use std::path::PathBuf;
use std::process;

enum Format {
    Text,
    Json,
}

fn main() {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => usage_error(&format!("--format expects json|text, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage_error("--root expects a path"),
            },
            "--help" | "-h" => {
                println!("usage: lb-lint [--format json|text] [--root PATH]");
                println!(
                    "exit code: bitmask R1=1 R2=2 R3=4 R4=8 R5=16 directives=32 R6=64 R7=128 io=255"
                );
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let root = root.unwrap_or_else(|| lb_lint::default_workspace_root().to_path_buf());
    let config = Config::default();
    match lint_workspace(&root, &config) {
        Ok((violations, files)) => {
            match format {
                Format::Text => {
                    if violations.is_empty() {
                        print!("{}", clean_summary(files));
                    } else {
                        print!("{}", render_text(&violations));
                    }
                }
                Format::Json => print!("{}", render_json(&violations)),
            }
            process::exit(exit_code(&violations));
        }
        Err(e) => {
            eprintln!("lb-lint: IO error: {e}");
            process::exit(255);
        }
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("lb-lint: {msg}");
    eprintln!("usage: lb-lint [--format json|text] [--root PATH]");
    process::exit(255);
}
