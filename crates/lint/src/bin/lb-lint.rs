//! The `lb-lint` CLI.
//!
//! ```text
//! lb-lint [check] [--format json|text] [--root PATH] [--legacy-exit-bits]
//! lb-lint --write-baseline [--root PATH]
//! lb-lint graph [--root PATH]
//! lb-lint dataflow [--root PATH]
//! lb-lint effects [--root PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 violations (details in the output), 2 usage or IO
//! error. `--legacy-exit-bits` restores the pre-v2 per-rule bitmask
//! (R1 = 1 … R7 = 128, directives = 32; R8–R13 surface as bit 1).
//! `--write-baseline` re-pins the R10 checkpoint-schema baseline and exits 0.
//! `dataflow` dumps the deterministic per-function R11–R13 summaries and
//! exits 1 if a solver crate's dataflow coverage floor is empty (the same
//! floors `tests/lint_gate.rs` asserts). `effects` does the same for the
//! R14–R16 effect summaries, floored on the serve crate.

use lb_lint::{
    analyze_workspace, clean_summary, exit_code, exit_code_legacy, render_json, render_text, Config,
};
use std::path::PathBuf;
use std::process;

enum Format {
    Text,
    Json,
}

enum Cmd {
    Check,
    Graph,
    Dataflow,
    Effects,
    WriteBaseline,
}

fn main() {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut cmd = Cmd::Check;
    let mut legacy_bits = false;
    let mut args = std::env::args().skip(1).peekable();
    if let Some(first) = args.peek() {
        match first.as_str() {
            "check" => {
                args.next();
            }
            "graph" => {
                cmd = Cmd::Graph;
                args.next();
            }
            "dataflow" => {
                cmd = Cmd::Dataflow;
                args.next();
            }
            "effects" => {
                cmd = Cmd::Effects;
                args.next();
            }
            _ => {}
        }
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => usage_error(&format!("--format expects json|text, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage_error("--root expects a path"),
            },
            "--write-baseline" => cmd = Cmd::WriteBaseline,
            "--legacy-exit-bits" => legacy_bits = true,
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let root = root.unwrap_or_else(|| lb_lint::default_workspace_root().to_path_buf());
    let config = Config::default();
    match cmd {
        Cmd::Graph => match lb_lint::graph_dump_workspace(&root, &config) {
            Ok(dump) => print!("{dump}"),
            Err(e) => io_error(&e),
        },
        Cmd::Dataflow => match lb_lint::dataflow_dump_workspace(&root, &config) {
            Ok(dump) => {
                print!("{dump}");
                // The same coverage floors tests/lint_gate.rs asserts: an
                // empty dataflow pass over a solver crate means the rule
                // scope is misconfigured, not that the crate is clean.
                let analysis = match analyze_workspace(&root, &config) {
                    Ok(a) => a,
                    Err(e) => io_error(&e),
                };
                let mut floor_failed = false;
                for name in ["sat", "csp", "join", "graphalg"] {
                    let df = analysis
                        .stats
                        .dataflow
                        .get(name)
                        .copied()
                        .unwrap_or_default();
                    if df.collection_bindings == 0 || df.result_sites == 0 || df.state_structs == 0
                    {
                        eprintln!(
                            "lb-lint: dataflow coverage floor failed for crate `{name}`: \
                             collection_bindings={} result_sites={} state_structs={}",
                            df.collection_bindings, df.result_sites, df.state_structs
                        );
                        floor_failed = true;
                    }
                }
                if floor_failed {
                    process::exit(1);
                }
            }
            Err(e) => io_error(&e),
        },
        Cmd::Effects => match lb_lint::effects_dump_workspace(&root, &config) {
            Ok(dump) => {
                print!("{dump}");
                // Coverage floors, mirroring tests/lint_gate.rs: an empty
                // effect pass over the serve crate means the effect scope is
                // misconfigured, not that the crate is disciplined.
                let analysis = match analyze_workspace(&root, &config) {
                    Ok(a) => a,
                    Err(e) => io_error(&e),
                };
                let fx = analysis.stats.effects.get("serve").copied().unwrap_or_default();
                if fx.lock_sites < 10 || fx.durability_sites < 5 || fx.blocking_sites < 8 {
                    eprintln!(
                        "lb-lint: effect coverage floor failed for crate `serve`: \
                         lock_sites={} durability_sites={} blocking_sites={}",
                        fx.lock_sites, fx.durability_sites, fx.blocking_sites
                    );
                    process::exit(1);
                }
            }
            Err(e) => io_error(&e),
        },
        Cmd::WriteBaseline => match lb_lint::write_baseline(&root, &config) {
            Ok(content) => {
                eprintln!(
                    "lb-lint: wrote {} ({} famil{})",
                    config.baseline_file,
                    content.lines().filter(|l| !l.starts_with('#')).count(),
                    if content.lines().filter(|l| !l.starts_with('#')).count() == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                );
            }
            Err(e) => io_error(&e),
        },
        Cmd::Check => match analyze_workspace(&root, &config) {
            Ok(analysis) => {
                match format {
                    Format::Text => {
                        if analysis.violations.is_empty() {
                            print!("{}", clean_summary(analysis.files_checked));
                        } else {
                            print!("{}", render_text(&analysis.violations));
                        }
                    }
                    Format::Json => {
                        print!(
                            "{}",
                            render_json(&analysis.violations, analysis.files_checked)
                        )
                    }
                }
                let code = if legacy_bits {
                    exit_code_legacy(&analysis.violations)
                } else {
                    exit_code(&analysis.violations)
                };
                process::exit(code);
            }
            Err(e) => io_error(&e),
        },
    }
}

fn print_help() {
    println!("usage: lb-lint [check] [--format json|text] [--root PATH] [--legacy-exit-bits]");
    println!("       lb-lint --write-baseline [--root PATH]");
    println!("       lb-lint graph [--root PATH]");
    println!("       lb-lint dataflow [--root PATH]");
    println!("       lb-lint effects [--root PATH]");
    println!("exit codes: 0 clean, 1 violations, 2 usage/io");
    println!("  --legacy-exit-bits: pre-v2 bitmask (R1=1 R2=2 R3=4 R4=8 R5=16");
    println!("                      directives=32 R6=64 R7=128; R8-R13 -> bit 1)");
    println!("  --write-baseline:   re-pin the R10 checkpoint-schema baseline");
    println!("  graph:              dump the workspace call graph (deterministic)");
    println!("  dataflow:           dump per-fn R11-R13 summaries + coverage floors");
    println!("  effects:            dump per-fn R14-R16 effect summaries + lock-order");
    println!("                      edges + coverage floors");
}

fn usage_error(msg: &str) -> ! {
    eprintln!("lb-lint: {msg}");
    eprintln!("usage: lb-lint [check|graph|dataflow|effects] [--format json|text] [--root PATH] [--legacy-exit-bits] [--write-baseline]");
    process::exit(2);
}

fn io_error(e: &std::io::Error) -> ! {
    eprintln!("lb-lint: IO error: {e}");
    process::exit(2);
}
