//! Workspace traversal: find every `.rs` file to lint.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into. `fixtures` holds intentionally-bad
/// lint-test sources; `target` and `.git` are build/VCS state.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Collects all `.rs` files under `root`, workspace-relative, sorted.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Renders a workspace-relative path with forward slashes (stable across
/// platforms for reporting and rule matching).
pub fn rel_display(path: &Path) -> String {
    path.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_sources_and_skips_fixtures() {
        // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = rust_files(root).expect("walk");
        let rels: Vec<String> = files.iter().map(|p| rel_display(p)).collect();
        assert!(rels.iter().any(|p| p == "crates/lint/src/walk.rs"));
        assert!(rels.iter().any(|p| p == "crates/lp/src/rational.rs"));
        assert!(!rels.iter().any(|p| p.contains("fixtures/")));
        assert!(!rels.iter().any(|p| p.contains("target/")));
    }
}
