//! The call-graph semantic rules R8–R10 and the R10 baseline workflow.
//!
//! Unlike the token-level rules in [`crate::rules`], these passes see the
//! whole workspace at once: they parse every library file into `fn` items
//! ([`crate::items`]), build a name-resolved call graph ([`crate::graph`]),
//! and check three invariants that PRs 2–4 previously enforced only
//! dynamically (via lb-chaos fuzzing and property tests):
//!
//! * **R8 `unbudgeted-loop`** — every `loop`/`while`/`for` in the solver
//!   crates that is transitively reachable from a public entry point must
//!   charge the `Budget`, either by a direct `Ticker` charge call in its
//!   body or by calling (transitively) a function that charges.
//! * **R9 `panic-reachability`** — no panic site may be transitively
//!   reachable from the panic-free public API surface; every justified site
//!   must carry `allow(panic-reachability)` (an R1 `allow(no-panic)` is a
//!   *local* justification and deliberately does not satisfy R9 — the
//!   reachability proof is a separate, stronger obligation). An allow on a
//!   call line cuts that line's edges instead (per-edge suppression).
//! * **R10 `checkpoint-schema-drift`** — the token-stream fingerprint of
//!   each checkpoint family's encode/decode bodies must match the committed
//!   baseline unless the family's payload-version const was bumped; either
//!   way the baseline is re-pinned with `lb-lint --write-baseline`.
//!
//! PR 6 adds the dataflow rules on top of the same graph, fed by the
//! per-function summaries from [`crate::dataflow`]:
//!
//! * **R11 `unbounded-growth`** — a loop-carried collection mutation in a
//!   budget-reachable solver loop must be charged to
//!   `RunStats.max_intermediate`: the enclosing function either charges
//!   directly or calls (transitively) a charging function.
//! * **R12 `swallowed-result`** — no `let _ =`, statement-final `.ok();`,
//!   or never-read binding of a workspace `Result`-returning call in
//!   library code.
//! * **R13 `send-hostile-state`** — no `Rc`/`RefCell`/`Cell`/raw-pointer
//!   fields or `thread_local!` state in the checkpoint-serializable solver
//!   state files (and the engine), so frames stay `Send` by construction.

use crate::dataflow::{self, FileFlow};
use crate::effects::{self, CrateEffects, FileEffects};
use crate::graph::CallGraph;
use crate::items::{self, ParsedFile, Span};
use crate::lexer::{scan, ScannedFile};
use crate::rules::{
    contains_token, parse_allows, snippet_at, unchecked_index_in, Allows, CheckpointSpec, Config,
    FileKind, Rule, Violation,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::path::Path;

/// Coverage statistics from a semantic run, for the dogfood self-tests and
/// the CLI summary.
#[derive(Debug, Clone, Default)]
pub struct SemanticStats {
    /// Display names of the reachability roots, sorted and deduplicated.
    pub root_names: Vec<String>,
    /// Functions reachable from the roots (before R9 edge cuts).
    pub reachable_fns: usize,
    /// Loops examined by R8 (reachable, in solver paths).
    pub loops_checked: usize,
    /// Panic sites considered by R9 (before reachability filtering).
    pub panic_sites: usize,
    /// Checkpoint families checked by R10.
    pub families_checked: usize,
    /// Per-crate dataflow coverage (R11–R13), keyed by crate name.
    pub dataflow: BTreeMap<String, CrateDataflow>,
    /// Per-crate effect coverage (R14–R16), keyed by crate name.
    pub effects: BTreeMap<String, CrateEffects>,
}

/// Dataflow coverage for one crate: how much the R11–R13 passes actually
/// saw. The `tests/lint_gate.rs` floors require these to be nonzero per
/// solver crate, so a path-scope misconfiguration cannot silently empty
/// the rules.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrateDataflow {
    /// Collection-typed `let` bindings classified by the dataflow pass.
    pub collection_bindings: usize,
    /// `Result` sites: `Result`-returning fn signatures plus discard-shaped
    /// statements examined by R12.
    pub result_sites: usize,
    /// Structs parsed in the R13 state-struct files.
    pub state_structs: usize,
}

/// The crate name under `crates/`, if any (`crates/sat/src/x.rs` → `sat`).
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// One file prepared for semantic analysis.
struct SemFile {
    rel: String,
    source: String,
    scanned: ScannedFile,
    allows: Allows,
    parsed: ParsedFile,
}

fn path_matches(rel: &str, pats: &[String]) -> bool {
    pats.iter().any(|p| rel.contains(p.as_str()))
}

/// Runs R8–R10 over the walked workspace files. `files` holds
/// `(workspace-relative path, source)` pairs in sorted path order; `root`
/// is only used to read the R10 baseline file.
pub fn check(
    root: &Path,
    files: &[(String, String)],
    config: &Config,
) -> (Vec<Violation>, SemanticStats) {
    let sem_files = prepare(files, config);
    let graph = build_graph(&sem_files);
    let allows: HashMap<&str, &Allows> = sem_files
        .iter()
        .map(|f| (f.rel.as_str(), &f.allows))
        .collect();
    let sources: HashMap<&str, &str> = sem_files
        .iter()
        .map(|f| (f.rel.as_str(), f.source.as_str()))
        .collect();
    let allowed = |file: &str, line: usize, rule: Rule| {
        allows.get(file).is_some_and(|a| a.allowed(line, rule))
    };
    let snippet = |file: &str, line: usize| {
        sources
            .get(file)
            .map(|s| snippet_at(s, line))
            .unwrap_or_default()
    };

    let mut stats = SemanticStats::default();
    let mut out = Vec::new();

    // ---- Roots: public entry points in the API-surface paths. ----
    let is_root_name = |name: &str| {
        config
            .root_prefixes
            .iter()
            .any(|p| name.starts_with(p.as_str()))
            || config
                .root_suffixes
                .iter()
                .any(|s| name.ends_with(s.as_str()))
            || config.root_exact.iter().any(|e| e == name)
    };
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            n.is_pub && path_matches(&n.file, &config.api_root_paths) && is_root_name(&n.name)
        })
        .map(|(id, _)| id)
        .collect();
    let mut root_names: Vec<String> = roots
        .iter()
        .map(|&id| graph.nodes[id].display_name())
        .collect();
    root_names.sort();
    root_names.dedup();
    stats.root_names = root_names;

    // ---- Charge lines per file (direct Ticker charge calls). ----
    let mut charge_lines: HashMap<&str, HashSet<usize>> = HashMap::new();
    for f in &sem_files {
        let set: HashSet<usize> = f
            .scanned
            .lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.in_test && charge_on_line(&l.code, &config.charge_methods))
            .map(|(idx, _)| idx + 1)
            .collect();
        if !set.is_empty() {
            charge_lines.insert(f.rel.as_str(), set);
        }
    }
    let charging =
        graph.charging_set(|file, line| charge_lines.get(file).is_some_and(|s| s.contains(&line)));

    // ---- R8: reachable loops in solver paths must charge the budget. ----
    let parents_all = graph.reachable(&roots, |_, _| false);
    stats.reachable_fns = parents_all.iter().filter(|p| p.is_some()).count();
    for (id, node) in graph.nodes.iter().enumerate() {
        if parents_all[id].is_none() || !path_matches(&node.file, &config.solver_loop_paths) {
            continue;
        }
        for lp in &node.loops {
            stats.loops_checked += 1;
            if allowed(&node.file, lp.line, Rule::UnbudgetedLoop) {
                continue;
            }
            let direct = charge_lines
                .get(node.file.as_str())
                .is_some_and(|s| (lp.body.start..=lp.body.end).any(|l| s.contains(&l)));
            let via_call = graph.edges[id]
                .iter()
                .any(|e| lp.body.contains(e.line) && charging[e.to]);
            if !direct && !via_call {
                let chain = graph.chain_to(&parents_all, id);
                out.push(Violation {
                    rule: Rule::UnbudgetedLoop,
                    path: node.file.clone(),
                    line: lp.line,
                    message: format!(
                        "`{}` loop in `{}` (reachable via {chain}) never charges the budget: \
                         no `Ticker` charge call in its body and no call to a charging fn; \
                         an exhausted budget cannot cancel or checkpoint this loop — charge \
                         per iteration or add `// lb-lint: allow(unbudgeted-loop) -- reason`",
                        lp.kind,
                        node.display_name()
                    ),
                    snippet: snippet(&node.file, lp.line),
                });
            }
        }
    }

    // ---- R9: panic sites reachable from the panic-free API surface. ----
    // Sites: the R1 panic tokens everywhere in library code, plus unchecked
    // indexing in the R7 hot-path files. An `allow(panic-reachability)` on
    // the site line discharges the site; on a call line it cuts the edges.
    let mut sites: Vec<(usize, usize, &'static str)> = Vec::new(); // (file idx, line, what)
    for (fi, f) in sem_files.iter().enumerate() {
        let indexed = path_matches(&f.rel, &config.index_checked_paths);
        for (idx, line) in f.scanned.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let lineno = idx + 1;
            for (needle, what) in [
                (".unwrap()", "`unwrap()`"),
                (".expect(", "`expect()`"),
                ("panic!", "`panic!`"),
                ("todo!", "`todo!`"),
                ("unreachable!", "`unreachable!`"),
            ] {
                if contains_token(&line.code, needle) {
                    sites.push((fi, lineno, what));
                }
            }
            if indexed && unchecked_index_in(&line.code).is_some() {
                sites.push((fi, lineno, "unchecked `[i]` indexing"));
            }
        }
    }
    stats.panic_sites = sites.len();
    let parents_cut = graph.reachable(&roots, |caller, line| {
        allowed(&caller.file, line, Rule::PanicReachability)
    });
    // Innermost-fn attribution: per file, the node ids with bodies.
    let mut file_nodes: HashMap<&str, Vec<(Span, usize)>> = HashMap::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if let Some(body) = n.body {
            file_nodes
                .entry(n.file.as_str())
                .or_default()
                .push((body, id));
        }
    }
    for (fi, lineno, what) in sites {
        let f = &sem_files[fi];
        if allowed(&f.rel, lineno, Rule::PanicReachability) {
            continue;
        }
        let Some(&(_, id)) = file_nodes.get(f.rel.as_str()).and_then(|spans| {
            spans
                .iter()
                .filter(|(s, _)| s.contains(lineno))
                .min_by_key(|(s, _)| s.len())
        }) else {
            continue; // Site outside any fn body (const/static init).
        };
        if parents_cut[id].is_none() {
            continue;
        }
        let chain = graph.chain_to(&parents_cut, id);
        out.push(Violation {
            rule: Rule::PanicReachability,
            path: f.rel.clone(),
            line: lineno,
            message: format!(
                "{what} is reachable from the panic-free public API (via {chain}); \
                 refactor to a typed error, or state the invariant with \
                 `// lb-lint: allow(panic-reachability) -- reason` on this line \
                 (or on a call line along the chain to cut that edge)"
            ),
            snippet: snippet(&f.rel, lineno),
        });
    }

    // ---- R10: checkpoint schema fingerprints vs the committed baseline. ----
    let (r10, families) = check_schema_drift(root, &sem_files, config, &allowed, &snippet);
    stats.families_checked = families;
    out.extend(r10);

    // ---- R11–R13: per-function dataflow + summary propagation. ----
    let flows: Vec<FileFlow> = sem_files
        .iter()
        .map(|f| dataflow::analyze(&f.scanned, &f.parsed, config))
        .collect();

    // Functions that charge `max_intermediate`, closed over callers.
    let mut icharge_lines: HashMap<&str, HashSet<usize>> = HashMap::new();
    for (fi, f) in sem_files.iter().enumerate() {
        let set: HashSet<usize> = flows[fi]
            .fns
            .iter()
            .flat_map(|ff| ff.charge_lines.iter().copied())
            .collect();
        if !set.is_empty() {
            icharge_lines.insert(f.rel.as_str(), set);
        }
    }
    let icharging =
        graph.charging_set(|file, line| icharge_lines.get(file).is_some_and(|s| s.contains(&line)));

    // Node lookup for dataflow summaries: (file, fn line, name) → node id.
    let mut node_at: HashMap<(&str, usize, &str), usize> = HashMap::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        node_at.insert((n.file.as_str(), n.line, n.name.as_str()), id);
    }

    // Workspace `Result`-returning fn names, bucketed like graph
    // resolution (free / method / type-qualified).
    let mut free_result: HashSet<&str> = HashSet::new();
    let mut method_result: HashSet<&str> = HashSet::new();
    let mut qual_result: HashSet<(&str, &str)> = HashSet::new();
    let mut qualifiers: HashSet<&str> = HashSet::new();
    for flow in &flows {
        for ff in &flow.fns {
            match &ff.qualifier {
                Some(q) => {
                    qualifiers.insert(q.as_str());
                    if ff.returns_result {
                        method_result.insert(ff.name.as_str());
                        qual_result.insert((q.as_str(), ff.name.as_str()));
                    }
                }
                None => {
                    if ff.returns_result {
                        free_result.insert(ff.name.as_str());
                    }
                }
            }
        }
    }
    let callee_returns_result = |c: &dataflow::UnusedResultCandidate| {
        if c.is_method {
            return method_result.contains(c.callee.as_str());
        }
        match &c.callee_qualifier {
            Some(q) if qualifiers.contains(q.as_str()) => {
                qual_result.contains(&(q.as_str(), c.callee.as_str()))
            }
            Some(q) if q.chars().next().is_some_and(char::is_lowercase) => {
                free_result.contains(c.callee.as_str())
            }
            Some(_) => false, // unknown std/external type
            None => free_result.contains(c.callee.as_str()),
        }
    };

    for (fi, f) in sem_files.iter().enumerate() {
        let flow = &flows[fi];
        let rel = f.rel.as_str();
        let df = stats
            .dataflow
            .entry(crate_of(rel).unwrap_or("workspace").to_string())
            .or_default();
        let in_state_paths = path_matches(rel, &config.state_struct_paths);
        if in_state_paths {
            df.state_structs += flow.structs;
        }
        for ff in &flow.fns {
            df.collection_bindings += ff.bindings.iter().filter(|b| b.is_collection).count();
            df.result_sites += usize::from(ff.returns_result)
                + ff.wildcard_lets.len()
                + ff.ok_discards.len()
                + ff.unused_candidates.len();
        }

        // R11: loop-carried growth in budget-reachable solver loops.
        if path_matches(rel, &config.solver_loop_paths) {
            for ff in &flow.fns {
                let Some(&id) = node_at.get(&(rel, ff.line, ff.name.as_str())) else {
                    continue;
                };
                if parents_all[id].is_none() {
                    continue;
                }
                let fn_charges =
                    !ff.charge_lines.is_empty() || graph.edges[id].iter().any(|e| icharging[e.to]);
                for g in ff.grows.iter().filter(|g| g.carried) {
                    let Some(loop_line) = g.loop_line else {
                        continue;
                    };
                    if fn_charges || allowed(rel, g.line, Rule::UnboundedGrowth) {
                        continue;
                    }
                    let chain = graph.chain_to(&parents_all, id);
                    out.push(Violation {
                        rule: Rule::UnboundedGrowth,
                        path: rel.to_string(),
                        line: g.line,
                        message: format!(
                            "`{}.{}(..)` grows loop-carried state in the budget-reachable \
                             loop at line {loop_line} (via {chain}) but `{}` never charges \
                             `RunStats.max_intermediate`; record the frontier size with \
                             `ticker.record_intermediate(..)` or state the bound with \
                             `// lb-lint: allow(unbounded-growth) -- reason`",
                            g.receiver,
                            g.method,
                            ff.display_name()
                        ),
                        snippet: snippet(rel, g.line),
                    });
                }
            }
        }

        // R12: swallowed `Result`s in library code.
        if path_matches(rel, &config.result_checked_paths) {
            for ff in &flow.fns {
                for &line in &ff.wildcard_lets {
                    if allowed(rel, line, Rule::SwallowedResult) {
                        continue;
                    }
                    out.push(Violation {
                        rule: Rule::SwallowedResult,
                        path: rel.to_string(),
                        line,
                        message: format!(
                            "`let _ =` in `{}` discards a value unseen; if the discard is \
                             deliberate, state the invariant with \
                             `// lb-lint: allow(swallowed-result) -- reason`",
                            ff.display_name()
                        ),
                        snippet: snippet(rel, line),
                    });
                }
                for &line in &ff.ok_discards {
                    if allowed(rel, line, Rule::SwallowedResult) {
                        continue;
                    }
                    out.push(Violation {
                        rule: Rule::SwallowedResult,
                        path: rel.to_string(),
                        line,
                        message: format!(
                            "statement-final `.ok();` in `{}` swallows an error; handle it, \
                             propagate it, or add \
                             `// lb-lint: allow(swallowed-result) -- reason`",
                            ff.display_name()
                        ),
                        snippet: snippet(rel, line),
                    });
                }
                for c in &ff.unused_candidates {
                    if c.used_later
                        || !callee_returns_result(c)
                        || allowed(rel, c.line, Rule::SwallowedResult)
                    {
                        continue;
                    }
                    out.push(Violation {
                        rule: Rule::SwallowedResult,
                        path: rel.to_string(),
                        line: c.line,
                        message: format!(
                            "`{}` binds the `Result` of `{}` but never reads it; check it, \
                             propagate it, or add \
                             `// lb-lint: allow(swallowed-result) -- reason`",
                            c.name, c.callee
                        ),
                        snippet: snippet(rel, c.line),
                    });
                }
            }
        }

        // R13: Send-hostile state in checkpoint-serializable solver files.
        if in_state_paths {
            for h in &flow.hostile_fields {
                if allowed(rel, h.line, Rule::SendHostileState) {
                    continue;
                }
                out.push(Violation {
                    rule: Rule::SendHostileState,
                    path: rel.to_string(),
                    line: h.line,
                    message: format!(
                        "field `{}.{}` holds `{}`, which is not `Send`-clean; checkpoint \
                         state must be stealable across threads without `unsafe impl Send` — \
                         use owned data, or justify with \
                         `// lb-lint: allow(send-hostile-state) -- reason`",
                        h.struct_name, h.field, h.marker
                    ),
                    snippet: snippet(rel, h.line),
                });
            }
            for &line in &flow.thread_local_lines {
                if allowed(rel, line, Rule::SendHostileState) {
                    continue;
                }
                out.push(Violation {
                    rule: Rule::SendHostileState,
                    path: rel.to_string(),
                    line,
                    message: "`thread_local!` state is invisible to checkpoints and pins \
                              behavior to the spawning thread; pass the state explicitly, or \
                              justify with `// lb-lint: allow(send-hostile-state) -- reason`"
                        .to_string(),
                    snippet: snippet(rel, line),
                });
            }
        }
    }

    // ---- R14–R16: effect summaries + interprocedural propagation. ----
    let file_effects = effect_summaries(&sem_files, config);
    let rels: Vec<String> = sem_files.iter().map(|f| f.rel.clone()).collect();
    for (fi, fe) in file_effects.iter().enumerate() {
        let agg = stats
            .effects
            .entry(crate_of(&rels[fi]).unwrap_or("workspace").to_string())
            .or_default();
        effects::tally(fe, agg);
    }
    let (r_eff, _order) =
        effects::check(&graph, &rels, &file_effects, config, &allowed, &snippet);
    out.extend(r_eff);

    (out, stats)
}

/// Runs the per-file effect extraction over the effect-scope files; files
/// outside the scope (and the blessed recovery module, whose whole point
/// is to contain the recovery idiom) carry an empty summary.
fn effect_summaries(sem_files: &[SemFile], config: &Config) -> Vec<FileEffects> {
    sem_files
        .iter()
        .map(|f| {
            if path_matches(&f.rel, &config.effect_paths)
                && !path_matches(&f.rel, &config.blessed_recovery_paths)
            {
                effects::analyze(&f.scanned, &f.source, &f.parsed, config)
            } else {
                FileEffects::default()
            }
        })
        .collect()
}

/// Prepares library files (scan + allows + item parse), skipping excluded
/// paths and non-library file kinds.
fn prepare(files: &[(String, String)], config: &Config) -> Vec<SemFile> {
    files
        .iter()
        .filter(|(rel, _)| {
            FileKind::classify(rel) == FileKind::Library
                && !path_matches(rel, &config.semantic_exclude_paths)
        })
        .map(|(rel, source)| {
            let scanned = scan(source);
            let allows = parse_allows(&scanned);
            let parsed = items::parse(&scanned);
            SemFile {
                rel: rel.clone(),
                source: source.clone(),
                scanned,
                allows,
                parsed,
            }
        })
        .collect()
}

fn build_graph(sem_files: &[SemFile]) -> CallGraph {
    let parsed: Vec<(String, ParsedFile)> = sem_files
        .iter()
        .map(|f| (f.rel.clone(), f.parsed.clone()))
        .collect();
    CallGraph::build(&parsed)
}

/// Builds the call graph for `lb-lint graph` (same scope as the semantic
/// rules) and returns its deterministic dump.
pub fn graph_dump(files: &[(String, String)], config: &Config) -> String {
    build_graph(&prepare(files, config)).dump()
}

/// Deterministic dump of the per-function dataflow summaries (for
/// `lb-lint dataflow`): one block per function in (file, line) order, then
/// the struct/thread-local findings and a per-crate coverage footer.
pub fn dataflow_dump(files: &[(String, String)], config: &Config) -> String {
    let mut sem_files = prepare(files, config);
    // The dump is an artifact diffed across CI runs: key it by path so the
    // output is independent of directory-walk order.
    sem_files.sort_by(|a, b| a.rel.cmp(&b.rel));
    let mut out = String::new();
    let mut per_crate: BTreeMap<String, CrateDataflow> = BTreeMap::new();
    for f in &sem_files {
        let flow = dataflow::analyze(&f.scanned, &f.parsed, config);
        let df = per_crate
            .entry(crate_of(&f.rel).unwrap_or("workspace").to_string())
            .or_default();
        if path_matches(&f.rel, &config.state_struct_paths) {
            df.state_structs += flow.structs;
        }
        for ff in &flow.fns {
            let collections = ff.bindings.iter().filter(|b| b.is_collection).count();
            df.collection_bindings += collections;
            df.result_sites += usize::from(ff.returns_result)
                + ff.wildcard_lets.len()
                + ff.ok_discards.len()
                + ff.unused_candidates.len();
            out.push_str(&format!(
                "fn {}:{} {} result={} charges={} bindings={}/{}\n",
                f.rel,
                ff.line,
                ff.display_name(),
                ff.returns_result,
                ff.charge_lines.len(),
                collections,
                ff.bindings.len(),
            ));
            for g in &ff.grows {
                out.push_str(&format!(
                    "  grow {}.{} at {} carried={} loop={}\n",
                    g.receiver,
                    g.method,
                    g.line,
                    g.carried,
                    g.loop_line.map_or("-".to_string(), |l| l.to_string()),
                ));
            }
            for &l in &ff.wildcard_lets {
                out.push_str(&format!("  discard wildcard-let at {l}\n"));
            }
            for &l in &ff.ok_discards {
                out.push_str(&format!("  discard ok at {l}\n"));
            }
            for c in &ff.unused_candidates {
                if !c.used_later {
                    out.push_str(&format!(
                        "  discard unused `{}` = {}(..) at {}\n",
                        c.name, c.callee, c.line
                    ));
                }
            }
        }
        for h in &flow.hostile_fields {
            out.push_str(&format!(
                "hostile {}:{} {}.{} {}\n",
                f.rel, h.line, h.struct_name, h.field, h.marker
            ));
        }
        for &l in &flow.thread_local_lines {
            out.push_str(&format!("thread-local {}:{}\n", f.rel, l));
        }
    }
    for (name, df) in &per_crate {
        out.push_str(&format!(
            "crate {name} collection_bindings={} result_sites={} state_structs={}\n",
            df.collection_bindings, df.result_sites, df.state_structs
        ));
    }
    out
}

/// Deterministic dump of the per-function effect summaries (for
/// `lb-lint effects`): one block per effectful function in (file, line)
/// order, the poisoned-lock recovery sites, the global lock-order edges,
/// and a per-crate coverage footer. Diffed as a CI artifact, so the
/// output is keyed by path — independent of directory-walk order.
pub fn effects_dump(files: &[(String, String)], config: &Config) -> String {
    let mut sem_files = prepare(files, config);
    sem_files.sort_by(|a, b| a.rel.cmp(&b.rel));
    let graph = build_graph(&sem_files);
    let file_effects = effect_summaries(&sem_files, config);
    let rels: Vec<String> = sem_files.iter().map(|f| f.rel.clone()).collect();
    let allowed = |_: &str, _: usize, _: Rule| false;
    let snip = |_: &str, _: usize| String::new();
    let (_viol, order) =
        effects::check(&graph, &rels, &file_effects, config, &allowed, &snip);

    let mut out = String::new();
    let mut per_crate: BTreeMap<String, CrateEffects> = BTreeMap::new();
    for (fi, f) in sem_files.iter().enumerate() {
        let fe = &file_effects[fi];
        effects::tally(
            fe,
            per_crate
                .entry(crate_of(&f.rel).unwrap_or("workspace").to_string())
                .or_default(),
        );
        for fx in &fe.fns {
            if !fx.has_effects() {
                continue;
            }
            out.push_str(&format!("fn {}:{} {}\n", f.rel, fx.line, fx.display_name()));
            for l in &fx.locks {
                out.push_str(&format!(
                    "  lock {} at {}..{} bound={}\n",
                    l.name, l.line, l.end_line, l.bound
                ));
            }
            for s in &fx.blocking {
                out.push_str(&format!("  blocking {} at {}\n", s.what, s.line));
            }
            for s in &fx.durable {
                out.push_str(&format!("  durable {} at {}\n", s.what, s.line));
            }
            for s in &fx.guards {
                out.push_str(&format!("  guard {} at {}\n", s.what, s.line));
            }
            for &l in &fx.acks {
                out.push_str(&format!("  ack at {l}\n"));
            }
            for s in &fx.requeues {
                out.push_str(&format!("  requeue {} at {}\n", s.what, s.line));
            }
        }
        for &l in &fe.recovery_lines {
            out.push_str(&format!("recovery {}:{}\n", f.rel, l));
        }
    }
    for e in &order {
        out.push_str(&format!("order {} -> {} at {}:{}\n", e.from, e.to, e.file, e.line));
    }
    for (name, ce) in &per_crate {
        out.push_str(&format!(
            "crate {name} lock_sites={} durability_sites={} blocking_sites={} \
             guard_sites={} ack_sites={} requeue_sites={}\n",
            ce.lock_sites,
            ce.durability_sites,
            ce.blocking_sites,
            ce.guard_sites,
            ce.ack_sites,
            ce.requeue_sites
        ));
    }
    out
}

/// Whether a masked code line contains a direct budget charge call. The
/// `tuples` method name is shared with non-charging accessors, so a bare
/// `.tuples()` (no argument) does not count.
fn charge_on_line(code: &str, methods: &[String]) -> bool {
    methods.iter().any(|m| {
        let needle = format!(".{m}(");
        let mut s = 0;
        while let Some(p) = code[s..].find(&needle) {
            let after = s + p + needle.len();
            if m != "tuples" || !code[after..].trim_start().starts_with(')') {
                return true;
            }
            s = after;
        }
        false
    })
}

// ---------------------------------------------------------------------------
// R10: fingerprints and the baseline file.
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_feed(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprints the bodies of the named functions in a scanned file: an
/// FNV-1a-64 hash over their token streams (masked code, so comments,
/// whitespace, and string-literal *contents* do not affect it). Returns the
/// hash and the set of names actually found with a body.
pub fn fingerprint_fns(file: &ScannedFile, names: &[String]) -> (u64, Vec<String>) {
    let parsed = items::parse(file);
    let toks = items::tokenize(file);
    let mut spans: Vec<Span> = Vec::new();
    let mut found: Vec<String> = Vec::new();
    for f in &parsed.fns {
        if names.contains(&f.name) {
            if let Some(body) = f.body {
                spans.push(body);
                if !found.contains(&f.name) {
                    found.push(f.name.clone());
                }
            }
        }
    }
    spans.sort_by_key(|s| (s.start, s.end));
    let mut h = FNV_OFFSET;
    for t in &toks {
        if spans.iter().any(|s| s.contains(t.line)) {
            match &t.kind {
                items::TokKind::Word(w) => h = fnv1a_feed(h, w.as_bytes()),
                items::TokKind::Punct(c) => {
                    let mut buf = [0u8; 4];
                    h = fnv1a_feed(h, c.encode_utf8(&mut buf).as_bytes());
                }
            }
            h = fnv1a_feed(h, &[0x1f]);
        }
    }
    found.sort();
    (h, found)
}

/// Locates `const <name>: u16 = N;` in a scanned file, returning `(N, line)`.
fn find_version_const(file: &ScannedFile, name: &str) -> Option<(u64, usize)> {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !contains_token(&line.code, name) {
            continue;
        }
        let code = &line.code;
        let Some(pos) = code.find(name) else { continue };
        let Some(eq) = code[pos..].find('=') else {
            continue;
        };
        let digits: String = code[pos + eq + 1..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(v) = digits.parse::<u64>() {
            return Some((v, idx + 1));
        }
    }
    None
}

/// One baseline entry: family → (payload version, fingerprint).
type Baseline = BTreeMap<String, (u64, u64)>;

fn parse_baseline(text: &str) -> Baseline {
    let mut out = Baseline::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(family), Some(ver), Some(fp)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        if let (Ok(ver), Ok(fp)) = (ver.parse::<u64>(), u64::from_str_radix(fp, 16)) {
            out.insert(family.to_string(), (ver, fp));
        }
    }
    out
}

/// Per-family schema state: `(version, fingerprint, version-const line)` on
/// success, a description of why the spec cannot be fingerprinted otherwise.
type SchemaState = Result<(u64, u64, usize), String>;

/// Computes the current per-family schema table.
fn current_schema(
    sem_files: &[SemFile],
    specs: &[CheckpointSpec],
) -> Vec<(CheckpointSpec, SchemaState)> {
    specs
        .iter()
        .map(|spec| {
            let entry = match sem_files.iter().find(|f| f.rel == spec.file) {
                None => Err(format!("file `{}` not found in the workspace", spec.file)),
                Some(f) => {
                    let (fp, found) = fingerprint_fns(&f.scanned, &spec.fns);
                    let missing: Vec<&String> =
                        spec.fns.iter().filter(|n| !found.contains(n)).collect();
                    if !missing.is_empty() {
                        Err(format!(
                            "could not locate fn {} in `{}`",
                            missing
                                .iter()
                                .map(|n| format!("`{n}`"))
                                .collect::<Vec<_>>()
                                .join(", "),
                            spec.file
                        ))
                    } else {
                        match find_version_const(&f.scanned, &spec.version_const) {
                            None => Err(format!(
                                "could not locate `const {}` in `{}`",
                                spec.version_const, spec.file
                            )),
                            Some((ver, line)) => Ok((ver, fp, line)),
                        }
                    }
                }
            };
            (spec.clone(), entry)
        })
        .collect()
}

fn check_schema_drift(
    root: &Path,
    sem_files: &[SemFile],
    config: &Config,
    allowed: &dyn Fn(&str, usize, Rule) -> bool,
    snippet: &dyn Fn(&str, usize) -> String,
) -> (Vec<Violation>, usize) {
    let mut out = Vec::new();
    if config.checkpoint_specs.is_empty() {
        return (out, 0);
    }
    let current = current_schema(sem_files, &config.checkpoint_specs);
    let baseline_path = root.join(&config.baseline_file);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text),
        Err(_) => {
            out.push(Violation {
                rule: Rule::CheckpointSchemaDrift,
                path: config.baseline_file.clone(),
                line: 1,
                message: format!(
                    "checkpoint-schema baseline `{}` is missing; generate it with \
                     `lb-lint --write-baseline` and commit it",
                    config.baseline_file
                ),
                snippet: String::new(),
            });
            return (out, current.len());
        }
    };
    for (spec, entry) in &current {
        match entry {
            Err(msg) => out.push(Violation {
                rule: Rule::CheckpointSchemaDrift,
                path: spec.file.clone(),
                line: 1,
                message: format!(
                    "cannot fingerprint checkpoint family `{}`: {msg}",
                    spec.family
                ),
                snippet: String::new(),
            }),
            Ok((ver, fp, line)) => {
                if allowed(&spec.file, *line, Rule::CheckpointSchemaDrift) {
                    continue;
                }
                match baseline.get(&spec.family) {
                    None => out.push(Violation {
                        rule: Rule::CheckpointSchemaDrift,
                        path: spec.file.clone(),
                        line: *line,
                        message: format!(
                            "checkpoint family `{}` has no baseline entry; re-pin with \
                             `lb-lint --write-baseline`",
                            spec.family
                        ),
                        snippet: snippet(&spec.file, *line),
                    }),
                    Some((base_ver, base_fp)) => {
                        if fp != base_fp && ver == base_ver {
                            out.push(Violation {
                                rule: Rule::CheckpointSchemaDrift,
                                path: spec.file.clone(),
                                line: *line,
                                message: format!(
                                    "checkpoint family `{}` encode/decode bodies changed \
                                     (fingerprint {fp:016x} vs baseline {base_fp:016x}) but \
                                     `{}` is still {ver}; bump the payload version so stale \
                                     checkpoints are rejected, then re-pin with \
                                     `lb-lint --write-baseline`",
                                    spec.family, spec.version_const
                                ),
                                snippet: snippet(&spec.file, *line),
                            });
                        } else if ver != base_ver || fp != base_fp {
                            out.push(Violation {
                                rule: Rule::CheckpointSchemaDrift,
                                path: spec.file.clone(),
                                line: *line,
                                message: format!(
                                    "checkpoint family `{}` payload version is {ver} but the \
                                     baseline records {base_ver}; re-pin with \
                                     `lb-lint --write-baseline`",
                                    spec.family
                                ),
                                snippet: snippet(&spec.file, *line),
                            });
                        }
                    }
                }
            }
        }
    }
    (out, current.len())
}

/// Renders the current schema table as the baseline-file content.
/// Errors if any family cannot be fingerprinted.
pub fn render_baseline(files: &[(String, String)], config: &Config) -> io::Result<String> {
    let sem_files = prepare(files, config);
    let current = current_schema(&sem_files, &config.checkpoint_specs);
    let mut rows: Vec<(String, u64, u64)> = Vec::new();
    for (spec, entry) in current {
        match entry {
            Ok((ver, fp, _)) => rows.push((spec.family, ver, fp)),
            Err(msg) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("cannot baseline family `{}`: {msg}", spec.family),
                ))
            }
        }
    }
    rows.sort();
    let mut out = String::from(
        "# lb-lint checkpoint-schema baseline (rule R10).\n\
         # One line per family: <family> <payload-version> <fnv1a-64 fingerprint>.\n\
         # Regenerate with `lb-lint --write-baseline` after bumping a\n\
         # CHECKPOINT_PAYLOAD_VERSION const alongside an encode/decode change.\n",
    );
    for (family, ver, fp) in rows {
        out.push_str(&format!("{family} {ver} {fp:016x}\n"));
    }
    Ok(out)
}

/// Computes and writes the baseline file under `root`, returning its content.
pub fn write_baseline(
    root: &Path,
    files: &[(String, String)],
    config: &Config,
) -> io::Result<String> {
    let content = render_baseline(files, config)?;
    let path = root.join(&config.baseline_file);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, &content)?;
    Ok(content)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_config() -> Config {
        Config {
            api_root_paths: vec!["crates/s/src/".into()],
            solver_loop_paths: vec!["crates/s/src/".into()],
            index_checked_paths: vec!["crates/s/src/hot.rs".into()],
            checkpoint_specs: Vec::new(),
            ..Config::default()
        }
    }

    fn run(files: &[(&str, &str)], config: &Config) -> (Vec<Violation>, SemanticStats) {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        check(Path::new("/nonexistent"), &owned, config)
    }

    #[test]
    fn r8_flags_reachable_unbudgeted_loop() {
        let src = "\
pub fn solve(n: u32) -> u32 {
    let mut acc = 0;
    while acc < n {
        acc += 1;
    }
    acc
}
";
        let (v, stats) = run(&[("crates/s/src/lib.rs", src)], &mini_config());
        assert_eq!(stats.loops_checked, 1);
        assert!(v
            .iter()
            .any(|v| v.rule == Rule::UnbudgetedLoop && v.line == 3));
    }

    #[test]
    fn r8_accepts_direct_and_transitive_charges() {
        let src = "\
pub fn solve(t: &mut Ticker) -> u32 {
    loop {
        t.node();
    }
}
pub fn solve_outer(t: &mut Ticker) -> u32 {
    loop {
        step(t);
    }
}
fn step(t: &mut Ticker) {
    t.backtrack();
}
";
        let (v, _) = run(&[("crates/s/src/lib.rs", src)], &mini_config());
        assert!(!v.iter().any(|v| v.rule == Rule::UnbudgetedLoop), "{v:?}");
    }

    #[test]
    fn r8_unreachable_loops_are_exempt() {
        let src = "\
fn private_helper(n: u32) -> u32 {
    let mut acc = 0;
    while acc < n { acc += 1; }
    acc
}
";
        let (v, stats) = run(&[("crates/s/src/lib.rs", src)], &mini_config());
        assert_eq!(stats.loops_checked, 0);
        assert!(v.iter().all(|v| v.rule != Rule::UnbudgetedLoop));
    }

    #[test]
    fn r8_allow_suppresses() {
        let src = "\
pub fn solve(n: u32) -> u32 {
    // lb-lint: allow(unbudgeted-loop) -- bounded by u8 domain
    while n > 0 { }
    n
}
";
        let (v, _) = run(&[("crates/s/src/lib.rs", src)], &mini_config());
        assert!(v.iter().all(|v| v.rule != Rule::UnbudgetedLoop));
    }

    #[test]
    fn r9_flags_reachable_panic_with_chain() {
        let src = "\
pub fn solve(o: Option<u32>) -> u32 {
    helper(o)
}
fn helper(o: Option<u32>) -> u32 {
    o.unwrap()
}
";
        let (v, _) = run(&[("crates/s/src/lib.rs", src)], &mini_config());
        let hit = v
            .iter()
            .find(|v| v.rule == Rule::PanicReachability)
            .expect("R9 must fire");
        assert_eq!(hit.line, 5);
        assert!(hit.message.contains("solve -> helper"), "{}", hit.message);
    }

    #[test]
    fn r9_site_allow_and_edge_cut() {
        let site_allowed = "\
pub fn solve(o: Option<u32>) -> u32 {
    o.unwrap() // lb-lint: allow(panic-reachability) -- input validated by caller
}
";
        let (v, _) = run(&[("crates/s/src/lib.rs", site_allowed)], &mini_config());
        assert!(v.iter().all(|v| v.rule != Rule::PanicReachability));

        let edge_cut = "\
pub fn solve(o: Option<u32>) -> u32 {
    helper(o) // lb-lint: allow(panic-reachability) -- helper only sees Some here
}
fn helper(o: Option<u32>) -> u32 {
    o.unwrap()
}
";
        let (v, _) = run(&[("crates/s/src/lib.rs", edge_cut)], &mini_config());
        assert!(v.iter().all(|v| v.rule != Rule::PanicReachability));
    }

    #[test]
    fn r9_unreachable_panic_is_exempt_but_r1_still_applies() {
        let src = "\
fn never_called() -> u32 {
    panic!(\"not on any public path\")
}
";
        let (v, _) = run(&[("crates/s/src/lib.rs", src)], &mini_config());
        assert!(v.iter().all(|v| v.rule != Rule::PanicReachability));
    }

    #[test]
    fn r9_counts_unchecked_index_in_hot_paths() {
        let src = "\
pub fn solve(xs: &[u32], i: usize) -> u32 {
    xs[i]
}
";
        let (v, _) = run(&[("crates/s/src/hot.rs", src)], &mini_config());
        assert!(v.iter().any(|v| v.rule == Rule::PanicReachability));
        // The same file outside the hot-path list carries no index sites.
        let (v, _) = run(&[("crates/s/src/cold.rs", src)], &mini_config());
        assert!(v.iter().all(|v| v.rule != Rule::PanicReachability));
    }

    #[test]
    fn fingerprint_ignores_comments_and_whitespace_but_not_tokens() {
        let base = "fn encode(x: u32) -> u32 {\n    x + 1\n}\n";
        let reformatted = "fn encode(x: u32) -> u32 {\n    // a comment\n    x   + 1\n}\n";
        let changed = "fn encode(x: u32) -> u32 {\n    x + 2\n}\n";
        let names = vec!["encode".to_string()];
        let (f1, _) = fingerprint_fns(&scan(base), &names);
        let (f2, _) = fingerprint_fns(&scan(reformatted), &names);
        let (f3, _) = fingerprint_fns(&scan(changed), &names);
        assert_eq!(f1, f2);
        assert_ne!(f1, f3);
    }

    #[test]
    fn version_const_is_found() {
        let src = "pub const CHECKPOINT_PAYLOAD_VERSION: u16 = 7;\n";
        let (v, line) =
            find_version_const(&scan(src), "CHECKPOINT_PAYLOAD_VERSION").expect("found");
        assert_eq!((v, line), (7, 1));
    }

    #[test]
    fn baseline_round_trips_through_parse() {
        let text = "# comment\nfam-a 1 00000000deadbeef\nfam-b 2 0000000000000001\n";
        let b = parse_baseline(text);
        assert_eq!(b.get("fam-a"), Some(&(1, 0xdead_beef)));
        assert_eq!(b.get("fam-b"), Some(&(2, 1)));
    }

    #[test]
    fn charge_line_detection() {
        let methods: Vec<String> = ["node", "tuples"].iter().map(|s| s.to_string()).collect();
        assert!(charge_on_line("t.node()?;", &methods));
        assert!(charge_on_line("ticker.tuples(n as u64)?;", &methods));
        // A zero-arg `.tuples()` is a relation accessor, not a charge.
        assert!(!charge_on_line("for t in rel.tuples() {", &methods));
        assert!(!charge_on_line("let x = stats.nodes;", &methods));
    }
}
