//! A lightweight lexical scanner for Rust source.
//!
//! Not a parser: it produces, per line, (a) the code with comment text and
//! string/char-literal *contents* blanked to spaces (so rule matching never
//! fires inside literals, and columns stay aligned), (b) the comment text
//! (where `lb-lint: allow` directives live), and (c) whether the line sits
//! inside a `#[cfg(test)]` item. Handles line and nested block comments,
//! string/raw-string/byte-string/char literals, and lifetimes.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Source code with comments and literal contents replaced by spaces.
    pub code: String,
    /// Concatenated comment text appearing on the line.
    pub comment: String,
    /// True if the line is inside an item annotated `#[cfg(test)]`.
    pub in_test: bool,
}

/// A whole scanned file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// The scanned lines, in order (line numbers are index + 1).
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scans `source` into masked lines.
pub fn scan(source: &str) -> ScannedFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut state = State::Code;

    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut i = 0;

        // A line comment never carries across a newline.
        if state == State::LineComment {
            state = State::Code;
        }

        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment.push_str(&chars[i + 2..].iter().collect::<String>());
                        code.extend(std::iter::repeat_n(' ', chars.len() - i));
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' | 'b' => {
                        // Possible raw/byte string start: r", r#", br", b"…
                        if let Some((hashes, consumed)) = raw_string_open(&chars[i..]) {
                            state = if hashes == u32::MAX {
                                State::Str
                            } else {
                                State::RawStr(hashes)
                            };
                            code.push('"');
                            for _ in 1..consumed {
                                code.push(' ');
                            }
                            i += consumed;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        if is_lifetime(&chars[i..]) {
                            code.push('\'');
                            i += 1;
                        } else {
                            state = State::Char;
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => {
                    // Defensive: line comments consume the rest of the line
                    // in the Code arm, so this is never entered.
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        code.push_str("  ");
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Code;
                        code.push('"');
                        i += 1;
                    }
                    '{' if next == Some('{') => {
                        // Escaped literal brace, not a capture.
                        code.push_str("  ");
                        i += 2;
                    }
                    '{' => {
                        if let Some(len) = capture_ident(&chars[i..]) {
                            // Preserve the inline format capture's identifier
                            // (`{e}`, `{e:?}`) so dataflow analysis sees the
                            // read; braces and the format spec stay masked.
                            code.push(' ');
                            for k in 1..=len {
                                code.push(chars[i + k]);
                            }
                            i += 1 + len;
                        } else {
                            code.push(' ');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                        state = State::Code;
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Char => match c {
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                    }
                    '\'' => {
                        state = State::Code;
                        code.push('\'');
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
            }
        }

        // Multi-line strings/comments: the state simply carries over.
        lines.push(Line {
            code,
            comment,
            in_test: false,
        });
    }

    let mut file = ScannedFile { lines };
    mark_test_regions(&mut file);
    file
}

/// Detects a Rust 2021 inline format capture at `chars[0] == '{'`: an
/// identifier (not a positional index) followed by `}` or a `:` format
/// spec. Returns the identifier's length. Over-approximates — a brace
/// template in a non-format string also matches — which only ever makes
/// the swallowed-result rule *see* more reads, never fewer.
fn capture_ident(chars: &[char]) -> Option<usize> {
    let mut j = 1;
    match chars.get(j) {
        Some(c) if c.is_ascii_alphabetic() || *c == '_' => j += 1,
        _ => return None,
    }
    while chars
        .get(j)
        .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
    {
        j += 1;
    }
    match chars.get(j) {
        Some('}') | Some(':') => Some(j - 1),
        _ => None,
    }
}

/// Detects `r"`, `r#"`, `b"`, `br#"`… at the start of `chars`. Returns the
/// number of hashes and the consumed char count; `u32::MAX` hashes encodes a
/// plain byte string `b"` (which behaves like an ordinary string).
fn raw_string_open(chars: &[char]) -> Option<(u32, usize)> {
    let mut i = 1;
    if chars[0] == 'b' {
        match chars.get(1) {
            Some('"') => return Some((u32::MAX, 2)),
            Some('r') => i = 2,
            _ => return None,
        }
    }
    let mut hashes = 0u32;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    // `r"`, `r#…#"`, `br#…#"`: the char before the quote must be `r` or `#`.
    if chars.get(i) == Some(&'"') && (chars[i - 1] == '#' || chars[i - 1] == 'r') {
        return Some((hashes, i + 1));
    }
    None
}

/// Whether `chars[1..]` closes a raw string with `hashes` hashes after the
/// quote already seen at `chars[0]`.
fn closes_raw(after_quote: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| after_quote.get(k) == Some(&'#'))
}

/// Distinguishes lifetimes (`'a`, `'static`) from char literals (`'x'`).
fn is_lifetime(chars: &[char]) -> bool {
    // A lifetime is `'` + ident-start + ident-chars NOT followed by `'`.
    match chars.get(1) {
        Some(c) if c.is_alphabetic() || *c == '_' => {
            let mut j = 2;
            while chars
                .get(j)
                .is_some_and(|c| c.is_alphanumeric() || *c == '_')
            {
                j += 1;
            }
            chars.get(j) != Some(&'\'')
        }
        _ => false,
    }
}

/// Marks lines inside `#[cfg(test)]` items (modules or functions) by brace
/// matching on the masked code.
fn mark_test_regions(file: &mut ScannedFile) {
    let n = file.lines.len();
    let mut i = 0;
    while i < n {
        if file.lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the annotated item (skipping further
            // attributes), then its matching close.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            'outer: while j < n {
                for ch in file.lines[j].code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && j > i => {
                            // `#[cfg(test)] mod tests;` — out-of-line module;
                            // only the declaration line itself is test code.
                            break 'outer;
                        }
                        _ => {}
                    }
                    if opened && depth == 0 {
                        break 'outer;
                    }
                }
                j += 1;
            }
            let end = j.min(n - 1);
            for line in &mut file.lines[i..=end] {
                line.in_test = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_masked() {
        let f = scan(r#"let s = "unwrap() inside"; s.len();"#);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("s.len()"));
        // Columns preserved.
        assert_eq!(
            f.lines[0].code.len(),
            r#"let s = "unwrap() inside"; s.len();"#.len()
        );
    }

    #[test]
    fn inline_format_captures_surface_their_identifier() {
        let f = scan(r#"eprintln!("warn: {e} at {site:?} {} {{lit}} {0}", x);"#);
        let code = &f.lines[0].code;
        assert!(code.contains(" e "), "capture identifier preserved: {code}");
        assert!(code.contains("site"), "spec'd capture preserved: {code}");
        assert!(!code.contains("warn"), "plain text still masked: {code}");
        assert!(!code.contains("lit"), "escaped braces are literal: {code}");
        assert!(!code.contains('{'), "braces stay masked: {code}");
        assert!(!code.contains('0'), "positional args are not reads: {code}");
        // Columns preserved.
        assert_eq!(
            code.len(),
            r#"eprintln!("warn: {e} at {site:?} {} {{lit}} {0}", x);"#.len()
        );
    }

    #[test]
    fn raw_strings_are_masked() {
        let f = scan(r##"let s = r#"panic!("x")"# ; f();"##);
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains("f();"));
    }

    #[test]
    fn escaped_quote_in_string() {
        let f = scan(r#"let s = "a\"b.unwrap()"; g();"#);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("g();"));
    }

    #[test]
    fn comments_are_captured_and_masked() {
        let f = scan("x(); // lb-lint: allow(no-panic) -- reason\ny();");
        assert!(f.lines[0].code.contains("x();"));
        assert!(!f.lines[0].code.contains("lb-lint"));
        assert!(f.lines[0]
            .comment
            .contains("lb-lint: allow(no-panic) -- reason"));
        assert!(f.lines[1].code.contains("y();"));
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("a(); /* outer /* inner unwrap() */ still comment */ b();");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("a();"));
        assert!(f.lines[0].code.contains("b();"));
    }

    #[test]
    fn multiline_block_comment() {
        let f = scan("a();\n/* unwrap()\n   panic! */\nb();");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(!f.lines[2].code.contains("panic"));
        assert!(f.lines[3].code.contains("b();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = scan("let c = '\\''; fn f<'a>(x: &'a str) {} let q = '\"';");
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(f.lines[0].code.contains("&'a str"));
        // The quote char literal must not open a string.
        assert!(f.lines[0].code.contains("let q ="));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_single_fn() {
        let src = "#[cfg(test)]\nfn helper() {\n    a.unwrap();\n}\nfn real() {}\n";
        let f = scan(src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn out_of_line_test_module() {
        let src = "#[cfg(test)]\nmod tests;\nfn real() { x.unwrap(); }\n";
        let f = scan(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn multiline_string_carries_state() {
        let src = "let s = \"line one\nline two unwrap()\nend\"; f();";
        let f = scan(src);
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("f();"));
    }
}
