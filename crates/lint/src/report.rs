//! Violation reporting: text and JSON rendering, exit codes.

use crate::rules::{Rule, Violation};

/// The process exit code for a set of violations: 1 when any rule fired
/// (details are in the rendered output), 0 when clean. Usage/IO errors exit
/// 2 (see the CLI). The historical per-rule bitmask lives on behind
/// `--legacy-exit-bits` as [`exit_code_legacy`].
pub fn exit_code(violations: &[Violation]) -> i32 {
    i32::from(!violations.is_empty())
}

/// The legacy bitmask exit code (`--legacy-exit-bits`): one bit per rule
/// (R1 = 1, R2 = 2, R3 = 4, R4 = 8, R5 = 16, malformed directives = 32,
/// R6 = 64, R7 = 128). The bitmask was exhausted before R8–R10 existed, so
/// violations of those rules surface as the generic bit 1.
pub fn exit_code_legacy(violations: &[Violation]) -> i32 {
    violations
        .iter()
        .fold(0, |acc, v| acc | v.rule.legacy_exit_bit().unwrap_or(1))
}

/// Renders violations as human-readable text, one block per violation.
pub fn render_text(violations: &[Violation]) -> String {
    if violations.is_empty() {
        return "lb-lint: no violations\n".to_string();
    }
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            v.path, v.line, v.rule, v.message, v.snippet
        ));
    }
    out.push_str(&format!(
        "lb-lint: {} violation{} ({} file{})\n",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" },
        count_files(violations),
        if count_files(violations) == 1 {
            ""
        } else {
            "s"
        },
    ));
    out
}

/// Renders the report as a deterministic JSON object (hand-rolled: the
/// linter is zero-dependency by design). Violations appear in their sorted
/// (path, line, rule) order, so byte-identical inputs give byte-identical
/// reports.
pub fn render_json(violations: &[Violation], files_checked: usize) -> String {
    let mut out = format!(
        "{{\n  \"version\": 2,\n  \"files_checked\": {files_checked},\n  \"violations\": ["
    );
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"code\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
            json_string(v.rule.name()),
            json_string(v.rule.code()),
            json_string(&v.path),
            v.line,
            json_string(&v.message),
            json_string(&v.snippet),
        ));
    }
    out.push_str(if violations.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

fn count_files(violations: &[Violation]) -> usize {
    let mut paths: Vec<&str> = violations.iter().map(|v| v.path.as_str()).collect();
    paths.sort_unstable();
    paths.dedup();
    paths.len()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Summary line for a clean run, naming every enforced rule.
pub fn clean_summary(files_checked: usize) -> String {
    let rules: Vec<String> = Rule::ALL.iter().map(|r| r.to_string()).collect();
    format!(
        "lb-lint: {files_checked} files clean under {}\n",
        rules.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{lint_source, Config};

    fn sample() -> Vec<Violation> {
        lint_source(
            "crates/x/src/foo.rs",
            "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
            &Config::default(),
        )
    }

    fn with_rule(rule: Rule) -> Violation {
        Violation {
            rule,
            path: "crates/x/src/foo.rs".into(),
            line: 1,
            message: "m".into(),
            snippet: "s".into(),
        }
    }

    #[test]
    fn exit_codes() {
        let v = sample();
        assert_eq!(exit_code(&v), 1);
        assert_eq!(exit_code(&[]), 0);
    }

    #[test]
    fn legacy_exit_code_bits() {
        let v = sample();
        assert_eq!(exit_code_legacy(&v), 1);
        assert_eq!(exit_code_legacy(&[]), 0);
        assert_eq!(exit_code_legacy(&[with_rule(Rule::NoUncheckedIndex)]), 128);
        // R8–R10 have no bit of their own: generic bit 1.
        assert_eq!(exit_code_legacy(&[with_rule(Rule::UnbudgetedLoop)]), 1);
        assert_eq!(
            exit_code_legacy(&[with_rule(Rule::CheckpointSchemaDrift)]),
            1
        );
    }

    #[test]
    fn text_mentions_path_line_rule() {
        let text = render_text(&sample());
        assert!(text.contains("crates/x/src/foo.rs:1"));
        assert!(text.contains("R1"));
        assert!(text.contains("no-panic"));
        assert!(text.contains("1 violation"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let json = render_json(&sample(), 3);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"files_checked\": 3"));
        assert!(json.contains("\"rule\": \"no-panic\""));
        assert!(json.contains("\"line\": 1"));
        let empty = render_json(&[], 0);
        assert!(empty.contains("\"violations\": []"));
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(render_json(&sample(), 9), render_json(&sample(), 9));
    }

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
