//! Item-level parsing on top of the lexer: `fn` items (with their enclosing
//! `impl`/`trait` qualifier), loop statements, and call expressions.
//!
//! This is deliberately **not** a Rust grammar. It consumes the masked token
//! stream from [`crate::lexer::scan`] (strings and comments already blanked,
//! `#[cfg(test)]` regions dropped) and recovers just enough structure for a
//! call graph: where each function's body starts and ends (by brace
//! matching), which loops it contains, and which names it calls. The
//! approximations are documented in `DESIGN.md` §6; they are all chosen so
//! that resolution *over*-approximates edges (extra edges make the
//! reachability rules stricter, never silently lenient) except for
//! function-pointer values passed as bare identifiers, which are not
//! resolvable by name alone.

use crate::lexer::ScannedFile;

/// One token of masked code: a word (identifier, keyword, or number) or a
/// single punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// A maximal run of alphanumeric/underscore characters.
    Word(String),
    /// Any other non-whitespace character.
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based line number.
    pub line: usize,
    /// The token itself.
    pub kind: TokKind,
}

/// An inclusive 1-based line span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First line.
    pub start: usize,
    /// Last line.
    pub end: usize,
}

impl Span {
    /// Whether `line` falls inside the span.
    pub fn contains(&self, line: usize) -> bool {
        self.start <= line && line <= self.end
    }

    /// Number of lines covered (for innermost-span attribution).
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// True when the span covers no lines (never produced by the parser;
    /// present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }
}

/// A `loop`/`while`/`for` statement inside a function body.
#[derive(Debug, Clone)]
pub struct LoopItem {
    /// `"loop"`, `"while"`, or `"for"`.
    pub kind: &'static str,
    /// Line of the loop keyword.
    pub line: usize,
    /// Line span of the loop body (from its `{` to the matching `}`).
    pub body: Span,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `name(...)` — a free-function call (or tuple-struct constructor).
    Free(String),
    /// `.name(...)` — a method call on some receiver.
    Method(String),
    /// `Seg::name(...)` or a bare `Seg::name` path value — the last path
    /// segment before the called name (a type, `Self`, or a module).
    Qualified(String, String),
}

/// One call site (or path-value reference) inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Line of the called name.
    pub line: usize,
    /// The callee as written.
    pub callee: Callee,
}

/// One named field of a struct: its name and the raw token text of its
/// type (words and punctuation joined with single spaces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// The field's type as a space-joined token string (e.g. `Vec < usize >`).
    pub ty: String,
    /// 1-based line of the field name.
    pub line: usize,
}

/// A parsed `struct` item with named fields (tuple structs and unit structs
/// are recorded with an empty field list).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct name.
    pub name: String,
    /// Line of the `struct` keyword.
    pub line: usize,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldItem>,
}

/// A parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The surrounding `impl`/`trait` target type, if any.
    pub qualifier: Option<String>,
    /// True for plain `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Body line span; `None` for bodyless trait-method declarations.
    pub body: Option<Span>,
    /// Loops in the body (nested loops listed separately).
    pub loops: Vec<LoopItem>,
    /// Call sites in the body (nested `fn` items excluded).
    pub calls: Vec<Call>,
}

/// All `fn` and `struct` items parsed from one file, in source order.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// The functions, in order of their `fn` keyword.
    pub fns: Vec<FnItem>,
    /// Top-level (and inline-module) structs with their named fields.
    pub structs: Vec<StructItem>,
}

/// Words that can precede `(` without being a call.
const NON_CALL_WORDS: [&str; 26] = [
    "if", "while", "for", "match", "return", "loop", "in", "let", "move", "mut", "ref", "else",
    "as", "fn", "where", "unsafe", "break", "continue", "dyn", "box", "yield", "await", "pub",
    "use", "mod", "impl",
];

/// Tokenizes the masked, non-test lines of a scanned file.
pub fn tokenize(file: &ScannedFile) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    line: lineno,
                    kind: TokKind::Word(chars[start..i].iter().collect()),
                });
            } else {
                toks.push(Tok {
                    line: lineno,
                    kind: TokKind::Punct(c),
                });
                i += 1;
            }
        }
    }
    toks
}

fn word_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Word(w)) => Some(w.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// For each token index, the index of the matching `}` for a `{` (and the
/// token count for unbalanced braces, which only happen on files the Rust
/// compiler would reject anyway).
pub(crate) fn match_braces(toks: &[Tok]) -> Vec<usize> {
    let mut close = vec![toks.len(); toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct('{') => stack.push(i),
            TokKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    close[open] = i;
                }
            }
            _ => {}
        }
    }
    close
}

/// Parses a scanned file into its `fn` items.
pub fn parse(file: &ScannedFile) -> ParsedFile {
    let toks = tokenize(file);
    let close = match_braces(&toks);
    let mut fns = Vec::new();
    let mut structs = Vec::new();
    parse_items(&toks, &close, 0, toks.len(), None, &mut fns, &mut structs);
    fns.sort_by_key(|f| f.line);
    structs.sort_by_key(|s| s.line);
    ParsedFile { fns, structs }
}

/// Parses item-level constructs in `toks[i..end]` under `qualifier`.
fn parse_items(
    toks: &[Tok],
    close: &[usize],
    mut i: usize,
    end: usize,
    qualifier: Option<&str>,
    fns: &mut Vec<FnItem>,
    structs: &mut Vec<StructItem>,
) {
    while i < end {
        match word_at(toks, i) {
            Some("impl") | Some("trait") => {
                let is_trait = word_at(toks, i) == Some("trait");
                let Some(open) = find_block_open(toks, i + 1, end) else {
                    i = end;
                    continue;
                };
                if punct_at(toks, open) == Some(';') {
                    i = open + 1;
                    continue;
                }
                let q = if is_trait {
                    (i + 1..open).find_map(|k| word_at(toks, k).map(str::to_string))
                } else {
                    impl_target(&toks[i + 1..open])
                };
                let body_end = close[open].min(end);
                parse_items(toks, close, open + 1, body_end, q.as_deref(), fns, structs);
                i = body_end + 1;
            }
            Some("mod") => {
                // `mod name { ... }` — recurse; `mod name;` — skip.
                let Some(open) = find_block_open(toks, i + 1, end) else {
                    i = end;
                    continue;
                };
                if punct_at(toks, open) == Some(';') {
                    i = open + 1;
                } else {
                    // Items in an inline module are parsed in place; modules
                    // cannot appear inside impl blocks, so no qualifier.
                    i = open + 1;
                }
            }
            Some("fn") => {
                i = parse_fn(toks, close, i, end, qualifier, fns);
            }
            Some("struct") | Some("enum") | Some("union") => {
                let is_struct = word_at(toks, i) == Some("struct");
                let Some(open) = find_block_open(toks, i + 1, end) else {
                    i = end;
                    continue;
                };
                i = if punct_at(toks, open) == Some('{') {
                    let body_end = close[open].min(end);
                    if is_struct {
                        if let Some(name) = word_at(toks, i + 1) {
                            structs.push(StructItem {
                                name: name.to_string(),
                                line: toks[i].line,
                                fields: parse_struct_fields(toks, open + 1, body_end),
                            });
                        }
                    }
                    body_end + 1
                } else {
                    // Unit and tuple structs carry no named fields; record
                    // the item so dataflow sees the declaration exists.
                    if is_struct {
                        if let Some(name) = word_at(toks, i + 1) {
                            structs.push(StructItem {
                                name: name.to_string(),
                                line: toks[i].line,
                                fields: Vec::new(),
                            });
                        }
                    }
                    open + 1
                };
            }
            _ => {
                if punct_at(toks, i) == Some('{') {
                    // A stray block at item level (e.g. a const initializer):
                    // nothing we model lives inside, skip it wholesale.
                    i = close[i].min(end) + 1;
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Finds the first `{` or `;` at paren/bracket depth 0 in `toks[from..end]`.
fn find_block_open(toks: &[Tok], from: usize, end: usize) -> Option<usize> {
    let mut depth = 0i64;
    for k in from..end {
        match punct_at(toks, k) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('{') | Some(';') if depth <= 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// Extracts the target type of an `impl` header: the last angle-depth-0
/// word that is not a keyword, truncated at `where`. Handles `impl Foo`,
/// `impl<T> Foo<T>`, `impl Trait for Foo`, and `impl fmt::Display for Foo`.
fn impl_target(header: &[Tok]) -> Option<String> {
    let mut angle = 0i64;
    let mut last = None;
    for t in header {
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = (angle - 1).max(0),
            TokKind::Word(w) => {
                if w == "where" {
                    break;
                }
                if angle == 0 && w != "for" && w != "dyn" && w != "unsafe" && w != "const" {
                    last = Some(w.clone());
                }
            }
            _ => {}
        }
    }
    last
}

/// Parses the named fields of a struct body in `toks[from..end]`: runs of
/// `[pub[(..)]] name : type-tokens` separated by depth-0 commas. Attribute
/// lines (`#[...]`) are skipped; generic commas are shielded by tracking
/// paren/bracket and angle depth.
fn parse_struct_fields(toks: &[Tok], from: usize, end: usize) -> Vec<FieldItem> {
    let mut fields = Vec::new();
    let mut k = from;
    while k < end {
        // Skip attributes on the field.
        while punct_at(toks, k) == Some('#') && punct_at(toks, k + 1) == Some('[') {
            let mut depth = 0i64;
            k += 1;
            while k < end {
                match punct_at(toks, k) {
                    Some('[') => depth += 1,
                    Some(']') => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        // Skip visibility.
        if word_at(toks, k) == Some("pub") {
            k += 1;
            if punct_at(toks, k) == Some('(') {
                let mut depth = 0i64;
                while k < end {
                    match punct_at(toks, k) {
                        Some('(') => depth += 1,
                        Some(')') => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        let Some(name) = word_at(toks, k) else {
            k += 1;
            continue;
        };
        if punct_at(toks, k + 1) != Some(':') {
            k += 1;
            continue;
        }
        let name = name.to_string();
        let line = toks[k].line;
        // Collect type tokens up to the next depth-0 comma (or body end).
        let mut depth = 0i64;
        let mut angle = 0i64;
        let mut ty = Vec::new();
        let mut j = k + 2;
        while j < end {
            match &toks[j].kind {
                TokKind::Punct(',') if depth == 0 && angle == 0 => break,
                TokKind::Punct(c @ ('(' | '[' | '{')) => {
                    depth += 1;
                    ty.push(c.to_string());
                }
                TokKind::Punct(c @ (')' | ']' | '}')) => {
                    depth -= 1;
                    ty.push(c.to_string());
                }
                TokKind::Punct('<') => {
                    angle += 1;
                    ty.push("<".to_string());
                }
                TokKind::Punct('>') => {
                    angle = (angle - 1).max(0);
                    ty.push(">".to_string());
                }
                TokKind::Punct(c) => ty.push(c.to_string()),
                TokKind::Word(w) => ty.push(w.clone()),
            }
            j += 1;
        }
        fields.push(FieldItem {
            name,
            ty: ty.join(" "),
            line,
        });
        k = j + 1;
    }
    fields
}

/// Parses one `fn` item starting at the `fn` keyword (`toks[i]`). Returns
/// the index just past the item.
fn parse_fn(
    toks: &[Tok],
    close: &[usize],
    i: usize,
    end: usize,
    qualifier: Option<&str>,
    fns: &mut Vec<FnItem>,
) -> usize {
    let Some(name) = word_at(toks, i + 1) else {
        return i + 1;
    };
    let name = name.to_string();
    let line = toks[i].line;
    let is_pub = fn_is_pub(toks, i);

    // The body `{` (or `;` for bodyless trait methods) sits at paren depth 0
    // after the signature; generics and where-clauses carry no braces.
    let mut depth = 0i64;
    let mut open = None;
    for k in i + 2..end {
        match punct_at(toks, k) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('{') if depth <= 0 => {
                open = Some(k);
                break;
            }
            Some(';') if depth <= 0 => {
                fns.push(FnItem {
                    name,
                    qualifier: qualifier.map(str::to_string),
                    is_pub,
                    line,
                    body: None,
                    loops: Vec::new(),
                    calls: Vec::new(),
                });
                return k + 1;
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return end;
    };
    let body_close = close[open].min(end);
    let body = Span {
        start: toks[open].line,
        end: toks
            .get(body_close)
            .or_else(|| toks.last())
            .map_or(toks[open].line, |t| t.line),
    };

    let mut item = FnItem {
        name,
        qualifier: qualifier.map(str::to_string),
        is_pub,
        line,
        body: Some(body),
        loops: Vec::new(),
        calls: Vec::new(),
    };
    parse_body(toks, close, open + 1, body_close, qualifier, &mut item, fns);
    fns.push(item);
    body_close + 1
}

/// Whether the tokens preceding a `fn` keyword contain a plain `pub`
/// (scanning back to the previous item boundary).
fn fn_is_pub(toks: &[Tok], fn_idx: usize) -> bool {
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        match &toks[k].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return false,
            TokKind::Word(w) if w == "pub" => {
                // `pub(crate)`/`pub(super)` are not public API.
                return punct_at(toks, k + 1) != Some('(');
            }
            _ => {}
        }
    }
    false
}

/// Scans a function body for loops, calls, and nested `fn` items. Nested
/// `fn`s become separate [`FnItem`]s and their tokens are not attributed to
/// the enclosing function; closures are attributed to the enclosing `fn`.
fn parse_body(
    toks: &[Tok],
    close: &[usize],
    from: usize,
    end: usize,
    qualifier: Option<&str>,
    item: &mut FnItem,
    fns: &mut Vec<FnItem>,
) {
    let mut k = from;
    while k < end {
        match word_at(toks, k) {
            Some("fn") => {
                k = parse_fn(toks, close, k, end, None, fns);
                continue;
            }
            Some(kw @ "loop") | Some(kw @ "while") | Some(kw @ "for") => {
                // `for<'a>` higher-ranked bounds are not loops.
                if kw == "for" && punct_at(toks, k + 1) == Some('<') {
                    k += 1;
                    continue;
                }
                let mut depth = 0i64;
                let mut open = None;
                for j in k + 1..end {
                    match punct_at(toks, j) {
                        Some('(') | Some('[') => depth += 1,
                        Some(')') | Some(']') => depth -= 1,
                        Some('{') if depth <= 0 => {
                            open = Some(j);
                            break;
                        }
                        Some(';') if depth <= 0 => break,
                        _ => {}
                    }
                }
                if let Some(open) = open {
                    let body_close = close[open].min(end);
                    item.loops.push(LoopItem {
                        kind: match kw {
                            "loop" => "loop",
                            "while" => "while",
                            _ => "for",
                        },
                        line: toks[k].line,
                        body: Span {
                            start: toks[open].line,
                            end: toks
                                .get(body_close)
                                .or_else(|| toks.last())
                                .map_or(toks[open].line, |t| t.line),
                        },
                    });
                }
                // Keep scanning inside the loop body: nested loops and the
                // calls within all belong to this function.
                k += 1;
            }
            Some(w) => {
                if let Some(call) = classify_call(toks, k, w, qualifier) {
                    item.calls.push(call);
                }
                k += 1;
            }
            None => {
                k += 1;
            }
        }
    }
}

/// Classifies the word at `k` as a call site or path-value reference.
fn classify_call(toks: &[Tok], k: usize, w: &str, qualifier: Option<&str>) -> Option<Call> {
    if NON_CALL_WORDS.contains(&w) || w.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    let line = toks[k].line;
    let qualified = k >= 3
        && punct_at(toks, k - 1) == Some(':')
        && punct_at(toks, k - 2) == Some(':')
        && word_at(toks, k - 3).is_some();
    if punct_at(toks, k + 1) == Some('(') {
        if w == "self" || w == "Self" {
            return None;
        }
        if k >= 1 && punct_at(toks, k - 1) == Some('.') {
            return Some(Call {
                line,
                callee: Callee::Method(w.to_string()),
            });
        }
        if qualified {
            let seg = word_at(toks, k - 3).unwrap_or("");
            let seg = if seg == "Self" {
                qualifier.unwrap_or("Self")
            } else {
                seg
            };
            return Some(Call {
                line,
                callee: Callee::Qualified(seg.to_string(), w.to_string()),
            });
        }
        return Some(Call {
            line,
            callee: Callee::Free(w.to_string()),
        });
    }
    // `Seg::name` without `(`: a path value (function pointer, constructor,
    // or enum variant). Recording it as an edge keeps reachability sound for
    // `iter.map(Type::method)`-style indirect calls; variants resolve to
    // nothing and are dropped at graph-build time.
    if qualified && w != "self" && w != "Self" {
        let seg = word_at(toks, k - 3).unwrap_or("");
        let seg = if seg == "Self" {
            qualifier.unwrap_or("Self")
        } else {
            seg
        };
        return Some(Call {
            line,
            callee: Callee::Qualified(seg.to_string(), w.to_string()),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&scan(src))
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let src = "\
pub fn solve(x: u32) -> u32 { helper(x) }
fn helper(x: u32) -> u32 { x }
struct S;
impl S {
    pub fn new() -> S { S }
    fn step(&self) { self.inner(); }
    fn inner(&self) {}
}
";
        let p = parse_src(src);
        let names: Vec<(&str, Option<&str>, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.qualifier.as_deref(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("solve", None, true),
                ("helper", None, false),
                ("new", Some("S"), true),
                ("step", Some("S"), false),
                ("inner", Some("S"), false),
            ]
        );
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].callee, Callee::Free("helper".into()));
        assert_eq!(p.fns[3].calls[0].callee, Callee::Method("inner".into()));
    }

    #[test]
    fn impl_trait_for_type_uses_type_as_qualifier() {
        let src = "\
impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write(f) }
}
impl<T: Ord> Heap<T> {
    fn pop(&mut self) {}
}
";
        let p = parse_src(src);
        assert_eq!(p.fns[0].qualifier.as_deref(), Some("Verdict"));
        assert_eq!(p.fns[1].qualifier.as_deref(), Some("Heap"));
    }

    #[test]
    fn loops_with_spans() {
        let src = "\
fn run(n: u32) {
    loop {
        step();
    }
    while n > 0 {
        for i in 0..n {
            body(i);
        }
    }
}
";
        let p = parse_src(src);
        let f = &p.fns[0];
        let kinds: Vec<&str> = f.loops.iter().map(|l| l.kind).collect();
        assert_eq!(kinds, vec!["loop", "while", "for"]);
        assert_eq!(f.loops[0].line, 2);
        assert_eq!(f.loops[0].body, Span { start: 2, end: 4 });
        assert!(f.loops[1].body.contains(6));
        assert_eq!(f.calls.len(), 2);
    }

    #[test]
    fn while_let_and_closure_headers() {
        let src = "\
fn drain(it: &mut I) {
    while let Some(x) = it.next() {
        use_it(x);
    }
    for y in (0..9).map(|v| v * 2) {
        use_it(y);
    }
}
";
        let p = parse_src(src);
        assert_eq!(p.fns[0].loops.len(), 2);
        assert_eq!(p.fns[0].loops[0].body, Span { start: 2, end: 4 });
        assert_eq!(p.fns[0].loops[1].body, Span { start: 5, end: 7 });
    }

    #[test]
    fn call_classification() {
        let src = "\
fn f(&self) {
    free();
    x.method();
    Type::assoc();
    module::free2();
    Self::own();
    mac!(not_a_call);
    let v = Type::Variant;
    let g = Type::step;
}
";
        let p = parse_src(&format!("impl T {{ {src} }}"));
        let f = &p.fns[0];
        let callees: Vec<&Callee> = f.calls.iter().map(|c| &c.callee).collect();
        assert!(callees.contains(&&Callee::Free("free".into())));
        assert!(callees.contains(&&Callee::Method("method".into())));
        assert!(callees.contains(&&Callee::Qualified("Type".into(), "assoc".into())));
        assert!(callees.contains(&&Callee::Qualified("module".into(), "free2".into())));
        assert!(callees.contains(&&Callee::Qualified("T".into(), "own".into())));
        // Macro invocations are not calls; path values are edges.
        assert!(!callees.contains(&&Callee::Free("mac".into())));
        assert!(callees.contains(&&Callee::Qualified("Type".into(), "Variant".into())));
        assert!(callees.contains(&&Callee::Qualified("Type".into(), "step".into())));
    }

    #[test]
    fn keywords_before_parens_are_not_calls() {
        let src = "fn f(x: u32) -> u32 { if (x > 0) { x } else { 0 } }\n";
        let p = parse_src(src);
        assert!(p.fns[0].calls.is_empty());
    }

    #[test]
    fn nested_fn_items_are_separate() {
        let src = "\
fn outer() {
    fn inner() { deep(); }
    inner();
}
";
        let p = parse_src(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].callee, Callee::Free("inner".into()));
        assert_eq!(inner.calls[0].callee, Callee::Free("deep".into()));
    }

    #[test]
    fn test_code_is_excluded() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn t() { loop { panic_helper(); } }
}
";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn bodyless_trait_methods() {
        let src = "\
trait Solver {
    fn solve(&self) -> u32;
    fn twice(&self) -> u32 { self.solve() * 2 }
}
";
        let p = parse_src(src);
        assert_eq!(p.fns[0].name, "solve");
        assert!(p.fns[0].body.is_none());
        assert_eq!(p.fns[0].qualifier.as_deref(), Some("Solver"));
        assert_eq!(p.fns[1].calls[0].callee, Callee::Method("solve".into()));
    }

    #[test]
    fn struct_fields_with_generics_and_attrs() {
        let src = "\
pub struct Frame {
    #[allow(dead_code)]
    pub var: usize,
    trail: Vec<(usize, Value)>,
    cell: RefCell<u32>,
}
struct Unit;
struct Pair(u32, u32);
enum E { A, B }
";
        let p = parse_src(src);
        let names: Vec<&str> = p.structs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["Frame", "Unit", "Pair"]);
        let frame = &p.structs[0];
        let fields: Vec<(&str, &str)> = frame
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.ty.as_str()))
            .collect();
        assert_eq!(
            fields,
            vec![
                ("var", "usize"),
                ("trail", "Vec < ( usize , Value ) >"),
                ("cell", "RefCell < u32 >"),
            ]
        );
        assert_eq!(frame.fields[0].line, 3);
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let src = "fn f<F>(g: F) where F: for<'a> Fn(&'a str) { g(\"x\") }\n";
        let p = parse_src(src);
        assert!(p.fns[0].loops.is_empty());
    }
}
