//! Workspace-wide call graph over parsed `fn` items, with path-insensitive
//! reachability.
//!
//! Resolution is by name, not by type (there is no type checker here), with
//! the precision ladder documented in `DESIGN.md` §6:
//!
//! * `Type::name(...)` resolves to the `impl Type` functions named `name`
//!   when `Type` is a type defined in the workspace; an unknown CamelCase
//!   segment (a std type like `Vec`) resolves to nothing.
//! * `module::name(...)` (lowercase segment) resolves to the free functions
//!   named `name`.
//! * `.name(...)` resolves to every impl/trait function named `name` in the
//!   workspace, whatever its type — a deliberate over-approximation.
//! * `name(...)` resolves to the free functions named `name`, falling back
//!   to any function of that name.
//!
//! Extra edges only make the reachability rules (R8/R9) stricter, so the
//! over-approximations are on the sound side for a gate; the one known
//! under-approximation (bare identifiers passed as function pointers) is
//! called out in the design notes.

use crate::items::{Callee, FnItem, LoopItem, ParsedFile, Span};
use std::collections::{HashMap, HashSet, VecDeque};

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file (forward slashes).
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub qualifier: Option<String>,
    /// True for plain `pub`.
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Body line span (`None` for bodyless trait declarations).
    pub body: Option<Span>,
    /// Loops in the body.
    pub loops: Vec<LoopItem>,
}

impl FnNode {
    /// `Qualifier::name` or plain `name` for display.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A call edge: `to` is the callee node id, `line` the call-site line in the
/// caller's file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee node id.
    pub to: usize,
    /// Call-site line in the caller's file.
    pub line: usize,
}

/// How a node was reached during BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parent {
    /// The node is itself a root.
    Root,
    /// Reached from node `from` via the call at `line` in `from`'s file.
    Via {
        /// Caller node id.
        from: usize,
        /// Call-site line.
        line: usize,
    },
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Function nodes, ordered by (file, line).
    pub nodes: Vec<FnNode>,
    /// Outgoing edges per node, in call order, deduplicated.
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Builds the graph from parsed files. `files` must already be sorted by
    /// path (as produced by the workspace walk) for deterministic node ids.
    pub fn build(files: &[(String, ParsedFile)]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut calls: Vec<&FnItem> = Vec::new();
        for (path, parsed) in files {
            for f in &parsed.fns {
                nodes.push(FnNode {
                    file: path.clone(),
                    name: f.name.clone(),
                    qualifier: f.qualifier.clone(),
                    is_pub: f.is_pub,
                    line: f.line,
                    body: f.body,
                    loops: f.loops.clone(),
                });
                calls.push(f);
            }
        }

        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut method_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qual_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut qualifiers: HashSet<&str> = HashSet::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(&n.name).or_default().push(id);
            match &n.qualifier {
                Some(q) => {
                    method_by_name.entry(&n.name).or_default().push(id);
                    by_qual_name
                        .entry((q.as_str(), &n.name))
                        .or_default()
                        .push(id);
                    qualifiers.insert(q.as_str());
                }
                None => free_by_name.entry(&n.name).or_default().push(id),
            }
        }

        let empty: Vec<usize> = Vec::new();
        let mut edges = Vec::with_capacity(nodes.len());
        for f in &calls {
            let mut out: Vec<Edge> = Vec::new();
            let mut seen: HashSet<(usize, usize)> = HashSet::new();
            for c in &f.calls {
                let targets: &Vec<usize> = match &c.callee {
                    Callee::Free(n) => free_by_name
                        .get(n.as_str())
                        .or_else(|| by_name.get(n.as_str()))
                        .unwrap_or(&empty),
                    Callee::Method(n) => method_by_name.get(n.as_str()).unwrap_or(&empty),
                    Callee::Qualified(q, n) => {
                        if qualifiers.contains(q.as_str()) {
                            by_qual_name
                                .get(&(q.as_str(), n.as_str()))
                                .unwrap_or(&empty)
                        } else if q.chars().next().is_some_and(|c| c.is_lowercase()) {
                            // A module path: resolves to free functions.
                            free_by_name.get(n.as_str()).unwrap_or(&empty)
                        } else {
                            // An unknown type (std or external): no edge.
                            &empty
                        }
                    }
                };
                for &to in targets {
                    if seen.insert((to, c.line)) {
                        out.push(Edge { to, line: c.line });
                    }
                }
            }
            edges.push(out);
        }
        CallGraph { nodes, edges }
    }

    /// BFS from `roots`, skipping edges for which `cut` returns true.
    /// Returns, per node, how it was first reached (`None` = unreachable).
    /// Roots are visited in id order, so parent chains are deterministic.
    pub fn reachable<F: Fn(&FnNode, usize) -> bool>(
        &self,
        roots: &[usize],
        cut: F,
    ) -> Vec<Option<Parent>> {
        let mut parent: Vec<Option<Parent>> = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(Parent::Root);
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            for e in &self.edges[id] {
                if parent[e.to].is_some() || cut(&self.nodes[id], e.line) {
                    continue;
                }
                parent[e.to] = Some(Parent::Via {
                    from: id,
                    line: e.line,
                });
                queue.push_back(e.to);
            }
        }
        parent
    }

    /// The set of "charging" functions: those whose body contains a direct
    /// charge line (per `is_charge_line`, a per-file line predicate) plus
    /// every function that calls one, transitively.
    pub fn charging_set<F: Fn(&str, usize) -> bool>(&self, is_charge_line: F) -> Vec<bool> {
        let mut charging = vec![false; self.nodes.len()];
        // Reverse edges for the fixpoint.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (from, out) in self.edges.iter().enumerate() {
            for e in out {
                rev[e.to].push(from);
            }
        }
        let mut queue = VecDeque::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if let Some(body) = n.body {
                if (body.start..=body.end).any(|l| is_charge_line(&n.file, l)) {
                    charging[id] = true;
                    queue.push_back(id);
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            for &caller in &rev[id] {
                if !charging[caller] {
                    charging[caller] = true;
                    queue.push_back(caller);
                }
            }
        }
        charging
    }

    /// The example call chain from a root to `target`, rendered as
    /// `root -> ... -> target` display names. Empty string if unreached.
    pub fn chain_to(&self, parents: &[Option<Parent>], target: usize) -> String {
        let mut names = Vec::new();
        let mut cur = target;
        let mut guard = 0;
        loop {
            names.push(self.nodes[cur].display_name());
            match parents[cur] {
                Some(Parent::Via { from, .. }) => cur = from,
                Some(Parent::Root) => break,
                None => return String::new(),
            }
            guard += 1;
            if guard > self.nodes.len() {
                return String::new();
            }
        }
        names.reverse();
        names.join(" -> ")
    }

    /// Deterministic text dump of the graph (for `lb-lint graph`): one block
    /// per function in (file, line) order, listing loops and resolved calls.
    pub fn dump(&self) -> String {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            (&self.nodes[a].file, self.nodes[a].line, &self.nodes[a].name).cmp(&(
                &self.nodes[b].file,
                self.nodes[b].line,
                &self.nodes[b].name,
            ))
        });
        let mut out = String::new();
        for id in order {
            let n = &self.nodes[id];
            out.push_str(&format!(
                "fn {}:{} {}{}\n",
                n.file,
                n.line,
                if n.is_pub { "pub " } else { "" },
                n.display_name()
            ));
            for l in &n.loops {
                out.push_str(&format!(
                    "  loop {}:{} ({}, body {}..{})\n",
                    n.file, l.line, l.kind, l.body.start, l.body.end
                ));
            }
            let mut edges = self.edges[id].clone();
            edges.sort_by_key(|e| (e.line, e.to));
            for e in edges {
                let t = &self.nodes[e.to];
                out.push_str(&format!(
                    "  call {} ({}:{}) at line {}\n",
                    t.display_name(),
                    t.file,
                    t.line,
                    e.line
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse;
    use crate::lexer::scan;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), parse(&scan(s))))
            .collect();
        CallGraph::build(&parsed)
    }

    fn id_of(g: &CallGraph, name: &str) -> usize {
        g.nodes.iter().position(|n| n.name == name).unwrap()
    }

    #[test]
    fn edges_resolve_free_method_and_qualified() {
        let g = graph_of(&[(
            "a.rs",
            "\
pub fn solve() { helper(); S::assoc(); s.step(); }
fn helper() {}
struct S;
impl S {
    fn assoc() {}
    fn step(&self) {}
}
",
        )]);
        let solve = id_of(&g, "solve");
        let targets: Vec<&str> = g.edges[solve]
            .iter()
            .map(|e| g.nodes[e.to].name.as_str())
            .collect();
        assert_eq!(targets, vec!["helper", "assoc", "step"]);
    }

    #[test]
    fn unknown_std_types_resolve_to_nothing() {
        let g = graph_of(&[(
            "a.rs",
            "pub fn f() { let v = Vec::new(); let s = String::from(\"x\"); }\nfn new() {}\n",
        )]);
        let f = id_of(&g, "f");
        assert!(
            g.edges[f].is_empty(),
            "Vec::new must not resolve to a workspace fn named new"
        );
    }

    #[test]
    fn module_qualified_calls_resolve_to_free_fns() {
        let g = graph_of(&[
            ("a.rs", "pub fn top() { util::deep(); }\n"),
            ("b.rs", "pub fn deep() {}\n"),
        ]);
        let top = id_of(&g, "top");
        assert_eq!(g.edges[top].len(), 1);
        assert_eq!(g.nodes[g.edges[top][0].to].name, "deep");
    }

    #[test]
    fn reachability_and_chains() {
        let g = graph_of(&[(
            "a.rs",
            "\
pub fn root() { mid(); }
fn mid() { leaf(); }
fn leaf() {}
fn island() {}
",
        )]);
        let root = id_of(&g, "root");
        let leaf = id_of(&g, "leaf");
        let island = id_of(&g, "island");
        let parents = g.reachable(&[root], |_, _| false);
        assert!(parents[leaf].is_some());
        assert!(parents[island].is_none());
        assert_eq!(g.chain_to(&parents, leaf), "root -> mid -> leaf");
    }

    #[test]
    fn cut_edges_stop_reachability() {
        let g = graph_of(&[(
            "a.rs",
            "\
pub fn root() { mid(); }
fn mid() { leaf(); }
fn leaf() {}
",
        )]);
        let root = id_of(&g, "root");
        let leaf = id_of(&g, "leaf");
        // Cut the call on line 2 (mid -> leaf).
        let parents = g.reachable(&[root], |n, line| n.name == "mid" && line == 2);
        assert!(parents[leaf].is_none());
    }

    #[test]
    fn charging_set_propagates_to_callers() {
        let g = graph_of(&[(
            "a.rs",
            "\
pub fn entry() { worker(); }
fn worker() { t.node(); }
fn idle() {}
",
        )]);
        // Line 2 holds the direct charge.
        let charging = g.charging_set(|_, line| line == 2);
        assert!(charging[id_of(&g, "worker")]);
        assert!(charging[id_of(&g, "entry")]);
        assert!(!charging[id_of(&g, "idle")]);
    }

    #[test]
    fn dump_is_deterministic_and_complete() {
        let g = graph_of(&[("a.rs", "pub fn f() { loop { g(); } }\nfn g() {}\n")]);
        let d1 = g.dump();
        let d2 = g.dump();
        assert_eq!(d1, d2);
        assert!(d1.contains("fn a.rs:1 pub f"));
        assert!(d1.contains("loop a.rs:1"));
        assert!(d1.contains("call g (a.rs:2) at line 1"));
    }
}
