//! R8 fixture (allow-suppressed): an uncharged loop carrying an
//! invariant-stating `allow(unbudgeted-loop)` directive is accepted.

pub fn solve(n: u32) -> u32 {
    let mut acc = 0;
    // lb-lint: allow(unbudgeted-loop) -- bounded by n; the caller charges per call
    while acc < n {
        acc += 1;
    }
    acc
}
