//! R2 fixture: lossy float/int `as` casts in a bound-arithmetic module.

pub fn bound(n: u64, rho: f64) -> f64 {
    (n as f64).powf(rho)
}

pub fn truncate(s: f64) -> u64 {
    (s + 1e-9).floor().max(1.0) as u64
}
