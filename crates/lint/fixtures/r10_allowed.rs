//! R10 fixture (allow-suppressed): a drift that is explicitly acknowledged
//! with a directive at the payload-version const.

// lb-lint: allow(checkpoint-schema-drift) -- migration in progress; re-pin before release
pub const CHECKPOINT_PAYLOAD_VERSION: u16 = 3;

pub fn encode(state: &[u32], out: &mut Vec<u8>) {
    for v in state {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

pub fn decode(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}
