//! R11 allow fixture: the violating shapes of `r11_violating.rs`, each
//! suppressed with a justified allow — a standalone comment line for the
//! root's growth site and a trailing comment for the helper's.

pub struct Ticker;

impl Ticker {
    pub fn node(&mut self) -> Result<(), ()> {
        Ok(())
    }
}

pub fn solve(t: &mut Ticker, items: &[u32]) -> Result<u32, ()> {
    let mut frontier = Vec::new();
    for &x in items {
        t.node()?;
        // lb-lint: allow(unbounded-growth) -- frontier is capped by items.len(), already charged at the call site
        frontier.push(x);
    }
    grow(t, &mut frontier)?;
    Ok(frontier.len() as u32)
}

fn grow(t: &mut Ticker, acc: &mut Vec<u32>) -> Result<(), ()> {
    while acc.len() < 8 {
        t.node()?;
        acc.push(0); // lb-lint: allow(unbounded-growth) -- grows to the fixed cap of 8
    }
    Ok(())
}
