//! R8 fixture: loops reachable from a public solver entry point that never
//! charge the budget — directly in the root and transitively in a helper.

pub fn solve(n: u32) -> u32 {
    let mut acc = 0;
    while acc < n {
        acc += 1;
    }
    for i in 0..n {
        acc += i;
    }
    helper(acc, n)
}

fn helper(mut acc: u32, n: u32) -> u32 {
    loop {
        if acc >= n {
            return acc;
        }
        acc += 1;
    }
}
