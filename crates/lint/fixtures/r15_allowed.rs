//! R15 allowed fixture: a stateless ack justified at the site.

pub fn drain_ack() -> String {
    // lb-lint: allow(durability-ordering) -- drain ack carries no job state
    format!("OK draining")
}
