//! R14 clean fixture: guards released before I/O and a consistent global
//! lock order (`a` before `b`, everywhere).

use std::io::Write;
use std::sync::Mutex;

pub struct Hub {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Hub {
    pub fn released_before_io(&self, w: &mut std::fs::File) {
        let mut ga = self.a.lock();
        drop(ga);
        w.write_all(b"x");
    }

    pub fn forward(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    pub fn forward_again(&self) {
        let first = self.a.lock();
        let second = self.b.lock();
        drop(second);
        drop(first);
    }
}
