//! R11 clean fixture: the same loop-carried growth as `r11_violating.rs`,
//! discharged both ways the rule accepts — a direct
//! `record_intermediate(..)` charge in the root, and a transitive one in
//! the helper (via `note_frontier`).

pub struct Ticker;

impl Ticker {
    pub fn node(&mut self) -> Result<(), ()> {
        Ok(())
    }
    pub fn record_intermediate(&mut self, _n: u64) {}
}

pub fn solve(t: &mut Ticker, items: &[u32]) -> Result<u32, ()> {
    let mut frontier = Vec::new();
    for &x in items {
        t.node()?;
        frontier.push(x);
        t.record_intermediate(frontier.len() as u64);
    }
    grow(t, &mut frontier)?;
    Ok(frontier.len() as u32)
}

fn grow(t: &mut Ticker, acc: &mut Vec<u32>) -> Result<(), ()> {
    while acc.len() < 8 {
        t.node()?;
        acc.push(0);
        note_frontier(t, acc.len());
    }
    Ok(())
}

fn note_frontier(t: &mut Ticker, n: usize) {
    t.record_intermediate(n as u64);
}
