//! R14 violating fixture: a guard held across blocking I/O, a lock-order
//! cycle, and poisoned-lock recovery outside the blessed sync module.

use std::io::Write;
use std::sync::Mutex;

pub struct Hub {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Hub {
    pub fn held_across(&self, w: &mut std::fs::File) {
        let mut ga = self.a.lock();
        w.write_all(b"x");
        drop(ga);
    }

    pub fn forward(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    pub fn backward(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }

    pub fn recover_here(&self) -> u32 {
        let g = self.a.lock().unwrap_or_else(|e| e.into_inner());
        *g
    }
}
