//! R1 fixture: panicking calls in library code, no allow directives.

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn lookup(m: &std::collections::HashMap<u32, u32>, k: u32) -> u32 {
    *m.get(&k).expect("key present")
}

pub fn later() -> ! {
    todo!("not yet written")
}
