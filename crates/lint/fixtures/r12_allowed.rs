//! R12 allow fixture: the violating shapes of `r12_violating.rs`, each
//! suppressed with a justified allow.

pub fn save() -> Result<(), ()> {
    Ok(())
}

pub fn solve(n: u32) -> Result<u32, ()> {
    Ok(n)
}

pub fn run() {
    // lb-lint: allow(swallowed-result) -- best-effort cache warm-up; a miss is fine
    let _ = solve(3);
    save().ok(); // lb-lint: allow(swallowed-result) -- cleanup on an already-reported error path
    // lb-lint: allow(swallowed-result) -- probe: only panic-freedom matters, not the verdict
    let verdict = solve(4);
    let _ignored = verdict;
}
