//! R6 fixture: solver code that reports its work through counters instead
//! of wall-clock time — the engine-layer convention the rule enforces.

pub struct Counters {
    pub nodes: u64,
}

pub fn solve_counted(n: u64) -> (u64, Counters) {
    let mut acc = 0u64;
    let mut nodes = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(i);
        nodes += 1;
    }
    (acc, Counters { nodes })
}
