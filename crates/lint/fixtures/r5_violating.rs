//! R5 fixture: `std::process::exit` from library code.

pub fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
