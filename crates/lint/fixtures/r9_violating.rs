//! R9 fixture: panic sites transitively reachable from a public entry
//! point — an `unwrap()` two calls deep, and (under a hot-path location)
//! an unchecked `[i]` index.

pub fn solve(input: Option<u32>, arr: &[u32]) -> u32 {
    helper(input) + pick(arr, 0)
}

fn helper(input: Option<u32>) -> u32 {
    input.unwrap()
}

fn pick(arr: &[u32], i: usize) -> u32 {
    arr[i]
}
