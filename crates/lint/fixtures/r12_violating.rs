//! R12 fixture: all three swallowed-`Result` shapes — a wildcard
//! `let _ =`, a statement-final `.ok();`, and a bound-but-never-read
//! `Result` of a workspace fn. The fourth binding IS read later, so it
//! must not fire.

pub fn save() -> Result<(), ()> {
    Ok(())
}

pub fn solve(n: u32) -> Result<u32, ()> {
    Ok(n)
}

pub fn run() -> u32 {
    let _ = solve(3);
    save().ok();
    let verdict = solve(4);
    let answer = solve(5);
    if let Ok(a) = answer {
        a
    } else {
        0
    }
}
