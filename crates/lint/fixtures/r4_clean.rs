//! R4 fixture: `Result`-returning entry points annotated `#[must_use]`,
//! plus shapes R4 must ignore (infallible fns, non-`pub` fns).

#[must_use = "dropping the result discards the answer or the failure"]
pub fn solve(input: &str) -> Result<u64, String> {
    input.parse().map_err(|_| "bad input".to_string())
}

/// Attributes between `#[must_use]` and the fn must not hide the annotation.
#[must_use = "dropping the result discards the answer or the failure"]
#[inline]
pub fn solve_inline(input: &str) -> Result<u64, String> {
    input.parse().map_err(|_| "bad input".to_string())
}

pub fn infallible(x: u64) -> u64 {
    x + 1
}

fn private_helper(input: &str) -> Result<u64, String> {
    input.parse().map_err(|_| "bad input".to_string())
}

pub fn uses_helper(input: &str) -> u64 {
    private_helper(input).unwrap_or(0)
}
