//! R1 fixture: every panicking call is test-only, allowlisted with a
//! justification, or inside a string/comment (which the lexer must mask).

pub fn head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn always_first(xs: &[u32]) -> u32 {
    // The string below mentions unwrap() but is data, not code.
    let _doc = "never call unwrap() on user input";
    // lb-lint: allow(no-panic) -- invariant: callers guarantee xs is nonempty
    *xs.first().unwrap()
}

pub fn trailing_form(xs: &[u32]) -> u32 {
    *xs.first().expect("nonempty") // lb-lint: allow(no-panic) -- invariant: callers guarantee xs is nonempty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(head(&[7]).unwrap(), 7);
    }
}
