// R7 fixture: unchecked `[i]` indexing in a solver hot path.
// (Linted as if it lived at crates/sat/src/dpll.rs.)

pub struct Assignment {
    values: Vec<bool>,
}

pub fn value_of(a: &Assignment, var: usize) -> bool {
    a.values[var]
}

pub fn cell(m: &[Vec<u32>], i: usize, j: usize) -> u32 {
    m[i][j]
}
