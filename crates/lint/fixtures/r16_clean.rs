//! R16 clean fixture: a timeout configured before the blocking read on the
//! accept chain, and a helper the accept loop never reaches.

pub fn accept_loop(stream: std::net::TcpStream) {
    handle(stream);
}

pub fn handle(mut stream: std::net::TcpStream) {
    stream.set_read_timeout(None);
    let mut buf = [0u8; 64];
    stream.read(&mut buf);
}

pub fn probe(mut stream: std::net::TcpStream) {
    let mut buf = [0u8; 8];
    stream.read(&mut buf);
}
