//! R13 clean fixture: checkpoint-serializable state made of owned,
//! `Send`-clean data only.

pub struct SolverFrame {
    pub domain: Vec<u32>,
    pub trail: Vec<(u32, bool)>,
    pub depth: u32,
}
