// R7 fixture: hot-path code with no unchecked indexing — `get`, iterators,
// range slicing, array types, macros, attributes, and a justified allow.

#[derive(Clone)]
pub struct Assignment {
    values: Vec<bool>,
}

pub fn value_of(a: &Assignment, var: usize) -> Option<bool> {
    a.values.get(var).copied()
}

pub fn window(xs: &[u32]) -> &[u32] {
    &xs[1..3]
}

pub fn zeros() -> [u8; 4] {
    [0; 4]
}

pub fn collected() -> Vec<u32> {
    vec![1, 2, 3]
}

pub fn first_true(xs: &[bool]) -> Option<usize> {
    xs.iter().position(|&b| b)
}

pub fn invariant_indexed(xs: &[u32], i: usize) -> u32 {
    xs[i % xs.len()] // lb-lint: allow(no-unchecked-index) -- i % len() is always in range
}
