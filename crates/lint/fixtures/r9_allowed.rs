//! R9 fixture (allow-suppressed): both discharge mechanisms. A directive on
//! the panic site removes the site; a directive on a call line cuts that
//! line's call-graph edges, making everything behind it unreachable.

pub fn solve_site(input: Option<u32>) -> u32 {
    site(input)
}

fn site(input: Option<u32>) -> u32 {
    // lb-lint: allow(panic-reachability) -- contract: the caller validated input is Some
    input.unwrap()
}

pub fn solve_edge(input: Option<u32>) -> u32 {
    // lb-lint: allow(panic-reachability) -- edge cut: edge() is only ever called with Some
    edge(input)
}

fn edge(input: Option<u32>) -> u32 {
    input.unwrap()
}
