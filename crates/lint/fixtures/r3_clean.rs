//! R3 fixture: a crate root that forbids unsafe code.

#![forbid(unsafe_code)]

pub fn noop() {}
