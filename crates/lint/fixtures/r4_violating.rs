//! R4 fixture: fallible public entry points (linted under an entry-point
//! path) returning `Result` without `#[must_use]`.

pub fn solve(input: &str) -> Result<u64, String> {
    input.parse().map_err(|_| "bad input".to_string())
}

pub fn solve_multiline(
    input: &str,
    base: u64,
) -> Result<u64, String> {
    input.parse::<u64>().map(|x| x + base).map_err(|_| "bad input".to_string())
}
