//! R8 fixture (clean): every reachable loop charges the budget, either with
//! a direct `Ticker` charge call in its body or through a charging callee.

pub struct Ticker;

impl Ticker {
    pub fn node(&mut self) -> Result<(), ()> {
        Ok(())
    }
}

pub fn solve(t: &mut Ticker, n: u32) -> Result<u32, ()> {
    let mut acc = 0;
    while acc < n {
        t.node()?;
        acc += 1;
    }
    for _ in 0..n {
        charge_step(t)?;
    }
    Ok(acc)
}

fn charge_step(t: &mut Ticker) -> Result<(), ()> {
    t.node()
}
