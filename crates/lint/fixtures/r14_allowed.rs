//! R14 allowed fixture: invariant-stating allows at the acquisition line,
//! at the blocking site, and on the recovery idiom.

use std::io::Write;
use std::sync::Mutex;

pub struct Hub {
    a: Mutex<u32>,
}

impl Hub {
    pub fn held_across_allowed(&self, w: &mut std::fs::File) {
        // lb-lint: allow(lock-discipline) -- the write must be atomic with the counter
        let mut ga = self.a.lock();
        w.write_all(b"x");
        drop(ga);
    }

    pub fn site_allowed(&self, w: &mut std::fs::File) {
        let mut ga = self.a.lock();
        w.write_all(b"x"); // lb-lint: allow(lock-discipline) -- one bounded write, no contention
        drop(ga);
    }

    pub fn recover_allowed(&self) -> u32 {
        let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); // lb-lint: allow(lock-discipline) -- fixture-local latch
        *g
    }
}
