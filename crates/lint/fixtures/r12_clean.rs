//! R12 clean fixture: every `Result` is propagated with `?` or read.

pub fn save() -> Result<(), ()> {
    Ok(())
}

pub fn solve(n: u32) -> Result<u32, ()> {
    Ok(n)
}

pub fn run() -> Result<u32, ()> {
    save()?;
    let verdict = solve(4)?;
    Ok(verdict)
}
