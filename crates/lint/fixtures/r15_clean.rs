//! R15 clean fixture: every ack and requeue is preceded by a durability
//! effect in its own function.

pub struct Spool;

impl Spool {
    pub fn save_record(&self, _id: u32) {}
}

pub fn enqueue(_id: u32) {}

pub fn ack_saved(spool: &Spool, id: u32) -> String {
    spool.save_record(id);
    format!("OK {id}")
}

pub fn requeue_after_save(spool: &Spool, id: u32) {
    spool.save_record(id);
    enqueue(id);
}

pub fn top(spool: &Spool, id: u32) -> String {
    let line = ack_saved(spool, id);
    requeue_after_save(spool, id);
    line
}
