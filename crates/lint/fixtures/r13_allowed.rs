//! R13 allow fixture: a hostile field and a `thread_local!`, each carrying
//! a justified allow (trailing for the field, standalone for the macro).

use std::cell::RefCell;
use std::rc::Rc;

pub struct SolverFrame {
    pub shared: Rc<Vec<u32>>, // lb-lint: allow(send-hostile-state) -- read-only table shared within one thread, rebuilt on resume
    pub depth: u32,
}

// lb-lint: allow(send-hostile-state) -- thread-scoped scratch, never crosses a checkpoint
thread_local! {
    static SCRATCH: RefCell<Vec<u32>> = RefCell::new(Vec::new());
}
