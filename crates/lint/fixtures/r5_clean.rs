//! R5 fixture: the same `process::exit` call is fine when the file lives
//! under `src/bin/` (the self-test lints this content under a bin path).

use std::process;

fn main() {
    if std::env::args().any(|a| a == "--fail") {
        process::exit(1);
    }
}
