//! R10 fixture: one checkpoint family (`encode`/`decode` plus a payload
//! version const) whose fingerprint is compared against a baseline.

pub const CHECKPOINT_PAYLOAD_VERSION: u16 = 3;

pub fn encode(state: &[u32], out: &mut Vec<u8>) {
    for v in state {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

pub fn decode(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}
