//! Directive fixture: allow directives missing the mandatory `-- reason`
//! justification, or naming an unknown rule. Both are themselves violations,
//! and a reasonless allow does NOT suppress the underlying finding.

pub fn head(xs: &[u32]) -> u32 {
    // lb-lint: allow(no-panic)
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    // lb-lint: allow(not-a-rule) -- the rule name is wrong
    xs[1]
}
