//! R2 fixture: bound arithmetic with no lossy casts, or casts that carry a
//! justified allow. Widening integer casts are not lossy and must not be
//! flagged.

pub fn widen(x: u32) -> u64 {
    u64::from(x)
}

pub fn widen_as(x: u32) -> u64 {
    x as u64
}

pub fn display_only(n: u64) -> f64 {
    // lb-lint: allow(no-lossy-cast) -- display-only: feeds a log line, never a bound decision
    n as f64
}
