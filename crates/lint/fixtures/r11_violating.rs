//! R11 fixture: loop-carried collection growth in budget-reachable loops
//! with no `RunStats.max_intermediate` charge anywhere on the path. Both
//! the root's own loop and the helper's (reached via `solve -> grow`)
//! must fire. The loops tick the budget, so R8 stays silent — this is
//! purely an uncharged-frontier violation.

pub struct Ticker;

impl Ticker {
    pub fn node(&mut self) -> Result<(), ()> {
        Ok(())
    }
}

pub fn solve(t: &mut Ticker, items: &[u32]) -> Result<u32, ()> {
    let mut frontier = Vec::new();
    for &x in items {
        t.node()?;
        frontier.push(x);
    }
    grow(t, &mut frontier)?;
    Ok(frontier.len() as u32)
}

fn grow(t: &mut Ticker, acc: &mut Vec<u32>) -> Result<(), ()> {
    while acc.len() < 8 {
        t.node()?;
        acc.push(0);
    }
    Ok(())
}
