//! R9 fixture (clean): the reachable surface uses typed errors throughout.
//! The panic site in `unrelated_debugging` is NOT reachable from any public
//! entry point, so the reachability rule correctly ignores it.

pub fn solve(input: Option<u32>) -> Result<u32, &'static str> {
    helper(input)
}

fn helper(input: Option<u32>) -> Result<u32, &'static str> {
    input.ok_or("missing input")
}

fn unrelated_debugging(v: Option<u32>) -> u32 {
    v.unwrap()
}
