//! R6 fixture: ad-hoc wall-clock timing inside solver library code. The
//! self-test lints this under a `src/` library path (flagged) and under
//! engine/experiments/bin/bench paths (exempt).

use std::time::Instant;

pub fn solve_timed(n: u64) -> (u64, std::time::Duration) {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(i);
    }
    (acc, start.elapsed())
}
