//! Directive fixture: well-formed directives — standalone-line form,
//! trailing form, and a multi-rule allow — all with justifications.

pub fn standalone(xs: &[u32]) -> u32 {
    // lb-lint: allow(no-panic) -- invariant: callers guarantee xs is nonempty
    *xs.first().unwrap()
}

pub fn trailing(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // lb-lint: allow(no-panic) -- invariant: callers guarantee xs is nonempty
}

pub fn multi(n: u64) -> f64 {
    // lb-lint: allow(no-panic, no-lossy-cast) -- display-only: panics and rounding both acceptable in this demo
    f64::from(u32::try_from(n).unwrap())
}
