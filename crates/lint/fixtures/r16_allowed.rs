//! R16 allowed fixture: a deliberately untimed read justified at the site.

pub fn accept_loop(mut stream: std::net::TcpStream) {
    let mut buf = [0u8; 64];
    // lb-lint: allow(unbounded-blocking) -- the handshake byte arrives with the connect
    stream.read(&mut buf);
}
