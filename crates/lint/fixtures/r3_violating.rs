//! R3 fixture: a crate root (linted under the path `.../src/lib.rs`) that
//! never declares `#![forbid(unsafe_code)]`.

pub fn noop() {}
