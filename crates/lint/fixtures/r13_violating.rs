//! R13 fixture: Send-hostile state in a checkpoint-serializable file —
//! `Rc`, `RefCell`, and raw-pointer fields, plus a `thread_local!`.

use std::cell::RefCell;
use std::rc::Rc;

pub struct SolverFrame {
    pub shared: Rc<Vec<u32>>,
    pub scratch: RefCell<Vec<u32>>,
    pub raw: *const u8,
    pub depth: u32,
}

thread_local! {
    static SCRATCH: RefCell<Vec<u32>> = RefCell::new(Vec::new());
}
