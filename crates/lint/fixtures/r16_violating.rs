//! R16 violating fixture: blocking socket reads reachable from the accept
//! loop with no timeout configured on any chain.

pub fn accept_loop(mut stream: std::net::TcpStream) {
    let mut first = [0u8; 4];
    stream.read(&mut first);
    handle(stream);
}

pub fn handle(mut stream: std::net::TcpStream) {
    let mut buf = [0u8; 64];
    stream.read(&mut buf);
}
