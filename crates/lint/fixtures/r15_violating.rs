//! R15 violating fixture: an ack and a requeue with no durability effect
//! on any caller chain.

pub fn enqueue(_id: u32) {}

pub fn ack_unsaved(id: u32) -> String {
    format!("OK {id}")
}

pub fn requeue_unsaved(id: u32) {
    enqueue(id);
}

pub fn top(id: u32) -> String {
    requeue_unsaved(id);
    ack_unsaved(id)
}
