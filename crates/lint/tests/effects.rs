//! Integration tests pinning the effect layer's extraction on the hostile
//! shapes real serve code contains: lock acquisitions inside closures,
//! shadowed and early-dropped guards, unbound guard temporaries in `if`
//! conditions, nested `fn` carve-outs, blocking I/O behind trait calls, and
//! the raw-source ack scan. The in-crate fixtures cover the rule verdicts;
//! these pin the per-function summaries end to end through the public API
//! (`lexer::scan` → `items::parse` → `effects::analyze`), plus the
//! determinism of the `lb-lint effects` dump.

use lb_lint::effects::{self, FileEffects};
use lb_lint::{items, lexer, semantic, Config, Rule};
use std::path::Path;

fn effects_of(src: &str) -> FileEffects {
    let scanned = lexer::scan(src);
    let parsed = items::parse(&scanned);
    effects::analyze(&scanned, src, &parsed, &Config::default())
}

/// A lock acquired inside a closure belongs to the enclosing function's
/// summary — closures run on the enclosing thread, so the guard is held
/// there.
#[test]
fn locks_inside_closures_attribute_to_the_enclosing_fn() {
    let src = "\
fn f(m: &std::sync::Mutex<u32>) {
    let tick = || {
        let g = lock_recover(m);
        drop(g);
    };
    tick();
}
";
    let fe = effects_of(src);
    assert_eq!(fe.fns.len(), 1, "a closure is not a separate fn item");
    assert_eq!(fe.fns[0].locks.len(), 1);
    assert_eq!(fe.fns[0].locks[0].name, "m");
}

/// A nested `fn` item owns its own acquisitions; nothing leaks outward.
#[test]
fn nested_fn_items_are_summarized_separately() {
    let src = "\
fn outer(m: &std::sync::Mutex<u32>) {
    fn inner(m: &std::sync::Mutex<u32>) {
        let g = lock_recover(m);
        drop(g);
    }
    inner(m);
}
";
    let fe = effects_of(src);
    let outer = fe.fns.iter().find(|f| f.name == "outer").unwrap();
    let inner = fe.fns.iter().find(|f| f.name == "inner").unwrap();
    assert!(outer.locks.is_empty(), "inner's lock must not leak: {outer:?}");
    assert_eq!(inner.locks.len(), 1);
}

/// A same-depth `drop(guard)` ends the held region early; a `drop` inside
/// a nested arm does not (the guard may still be live on other paths).
#[test]
fn same_depth_drop_ends_the_region_and_nested_drop_does_not() {
    let src = "\
fn f(m: &std::sync::Mutex<u32>) {
    let g = lock_recover(m);
    drop(g);
    after();
}

fn h(m: &std::sync::Mutex<u32>) {
    let g = lock_recover(m);
    if broken() {
        drop(g);
        return;
    }
    after();
}
";
    let fe = effects_of(src);
    let f = fe.fns.iter().find(|x| x.name == "f").unwrap();
    assert_eq!(f.locks[0].end_line, 3, "drop on line 3 ends f's region");
    let h = fe.fns.iter().find(|x| x.name == "h").unwrap();
    assert_eq!(
        h.locks[0].end_line, 14,
        "the drop in the if-arm must not end h's region — it runs to the fn close"
    );
}

/// Shadowing a guard binding never shortens the original region: the
/// conservative region runs to the first same-depth `drop` of the name or
/// the block end.
#[test]
fn shadowed_guards_keep_the_conservative_region() {
    let src = "\
fn f(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let g = lock_recover(a);
    let g = lock_recover(b);
    drop(g);
}
";
    let fe = effects_of(src);
    let ends: Vec<usize> = fe.fns[0].locks.iter().map(|l| l.end_line).collect();
    assert_eq!(
        ends,
        vec![4, 4],
        "both regions run to the drop; rebinding `g` does not release lock `a`"
    );
}

/// A guard that is never bound (`if lock_recover(&m).dead {`) is a
/// temporary: it drops at the end of its statement, before the branch
/// block runs.
#[test]
fn unbound_guard_temporaries_end_at_the_statement() {
    let src = "\
fn f(m: &std::sync::Mutex<Flag>) -> bool {
    if lock_recover(m).dead {
        return true;
    }
    false
}
";
    let fe = effects_of(src);
    let lock = &fe.fns[0].locks[0];
    assert!(!lock.bound);
    assert_eq!(
        lock.end_line, 2,
        "the temporary dies at the if-condition's end, not the block's"
    );
}

/// Blocking I/O is recognized token-level, so a call through a generic
/// trait bound (`S: SessionStream`) counts like a concrete one.
#[test]
fn blocking_io_behind_trait_calls_is_counted() {
    let src = "\
fn f<S: std::io::Read>(s: &mut S) {
    let mut b = [0u8; 4];
    s.read(&mut b);
}
";
    let fe = effects_of(src);
    assert_eq!(fe.fns[0].blocking.len(), 1);
    assert_eq!(fe.fns[0].blocking[0].what, "read");
}

/// R16 end to end through a trait: the blocking call sits behind a generic
/// bound two frames below the accept root, with no timeout on the chain.
#[test]
fn unguarded_trait_io_reachable_from_the_accept_root_fires_r16() {
    let src = "\
pub trait Wire {
    fn read_line(&mut self) -> usize;
}

pub fn accept_loop<W: Wire>(w: &mut W) {
    pump(w);
}

pub fn pump<W: Wire>(w: &mut W) {
    w.read_line();
}
";
    let config = Config {
        effect_paths: vec!["crates/s/src/".into()],
        socket_paths: vec!["crates/s/src/net.rs".into()],
        accept_roots: vec![("crates/s/src/net.rs".into(), "accept_loop".into())],
        ..Config::default()
    };
    let files = vec![("crates/s/src/net.rs".to_string(), src.to_string())];
    let (v, _) = semantic::check(Path::new("/nonexistent"), &files, &config);
    let r16: Vec<_> = v
        .iter()
        .filter(|v| v.rule == Rule::UnboundedBlocking)
        .collect();
    assert_eq!(r16.len(), 1, "the trait read must fire once: {v:?}");
    assert_eq!(r16[0].line, 10);
    assert!(
        r16[0].message.contains("accept_loop"),
        "chain must start at the root: {}",
        r16[0].message
    );
}

/// Ack detection runs on the raw source (the lexer masks string contents),
/// and excludes parse-shaped uses like `strip_prefix("OK ")`.
#[test]
fn ack_scan_sees_raw_strings_and_skips_parsers() {
    let src = "\
fn emit(n: u32) -> String {
    format!(\"OK {n}\")
}

fn is_ack(line: &str) -> bool {
    line.starts_with(\"OK \")
}

fn body(line: &str) -> Option<&str> {
    line.strip_prefix(\"OK \")
}
";
    let fe = effects_of(src);
    let emit = fe.fns.iter().find(|f| f.name == "emit").unwrap();
    assert_eq!(emit.acks, vec![2]);
    for parser in ["is_ack", "body"] {
        let f = fe.fns.iter().find(|f| f.name == parser).unwrap();
        assert!(
            f.acks.is_empty(),
            "`{parser}` reads the protocol, it does not acknowledge: {f:?}"
        );
    }
}

/// The `lb-lint effects` dump is deterministic and keyed by file path:
/// permuting the input file order changes nothing.
#[test]
fn effects_dump_is_deterministic_under_file_reordering() {
    let a = (
        "crates/serve/src/a.rs".to_string(),
        "pub fn f(m: &std::sync::Mutex<u32>) { let g = lock_recover(m); drop(g); }\n".to_string(),
    );
    let b = (
        "crates/serve/src/b.rs".to_string(),
        "pub fn save_all(s: &Spool) { s.save_record(1); }\n".to_string(),
    );
    let config = Config::default();
    let d1 = semantic::effects_dump(&[a.clone(), b.clone()], &config);
    let d2 = semantic::effects_dump(&[b, a], &config);
    assert_eq!(d1, d2, "dump must not depend on input order");
    assert!(d1.contains("fn crates/serve/src/a.rs:1 f"), "{d1}");
    assert!(d1.contains("lock m at 1..1"), "{d1}");
    assert!(
        d1.contains("crate serve lock_sites=1 durability_sites=1"),
        "per-crate footer missing: {d1}"
    );
}
