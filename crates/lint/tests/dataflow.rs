//! Integration tests pinning the dataflow layer's def-use resolution on the
//! tricky shapes real solver code contains: shadowing across loop scopes,
//! loop-carried bindings under nested loops, method-chain receivers,
//! closures, and nested `fn` items. The in-crate unit tests cover the happy
//! paths; these pin the corner cases end to end through the public API
//! (`lexer::scan` → `items::parse` → `dataflow::analyze`), plus the
//! determinism of the `lb-lint dataflow` dump.

use lb_lint::dataflow::{self, FileFlow};
use lb_lint::{items, lexer, semantic, Config};

fn flow_of(src: &str) -> FileFlow {
    let scanned = lexer::scan(src);
    let parsed = items::parse(&scanned);
    dataflow::analyze(&scanned, &parsed, &Config::default())
}

/// A fresh collection declared *inside* the innermost loop is not carried,
/// even when it shadows a same-named collection declared outside the loop —
/// the nearest preceding binding wins.
#[test]
fn shadowing_inside_a_loop_unbinds_the_outer_collection() {
    let src = "\
fn f(items: &[u32]) {
    let mut buf = Vec::new();
    buf.push(0);
    for x in items {
        let mut buf = Vec::new();
        buf.push(*x);
    }
}
";
    let f = &flow_of(src).fns[0];
    let sites: Vec<(usize, bool)> = f.grows.iter().map(|g| (g.line, g.carried)).collect();
    // Line 3: outside any loop → not carried. Line 6: shadowed loop-local
    // binding on line 5 → not carried either.
    assert_eq!(sites, vec![(3, false), (6, false)]);
}

/// The converse: when the loop body does NOT re-declare the name, growth
/// inside the loop resolves to the outer binding and is carried.
#[test]
fn unshadowed_outer_binding_is_carried() {
    let src = "\
fn f(items: &[u32]) {
    let mut buf = Vec::new();
    for x in items {
        buf.push(*x);
    }
}
";
    let f = &flow_of(src).fns[0];
    assert_eq!(f.grows.len(), 1);
    assert!(f.grows[0].carried);
    assert_eq!(f.grows[0].loop_line, Some(3));
}

/// Nested loops: a collection declared in the outer loop body is fresh per
/// outer iteration but carried across the *inner* loop — the innermost
/// enclosing loop decides.
#[test]
fn binding_in_outer_loop_is_carried_across_the_inner_loop() {
    let src = "\
fn f(rows: &[Vec<u32>]) {
    for row in rows {
        let mut acc = Vec::new();
        for x in row {
            acc.push(*x);
        }
    }
}
";
    let f = &flow_of(src).fns[0];
    assert_eq!(f.grows.len(), 1);
    assert!(
        f.grows[0].carried,
        "acc outlives the innermost loop, so its growth is carried"
    );
    assert_eq!(f.grows[0].loop_line, Some(4), "innermost loop wins");
}

/// `while let` binds its pattern like a `let`; the popped element is a
/// binding, and pushing onto the (outer) stack stays carried.
#[test]
fn while_let_pattern_binds_and_stack_growth_is_carried() {
    let src = "\
fn f() {
    let mut stack = vec![1u32];
    while let Some(x) = stack.pop() {
        stack.push(x - 1);
    }
}
";
    let f = &flow_of(src).fns[0];
    assert!(f.bindings.iter().any(|b| b.name == "x"), "{:?}", f.bindings);
    assert_eq!(f.grows.len(), 1);
    assert_eq!(f.grows[0].receiver, "stack");
    assert!(f.grows[0].carried);
}

/// Method-chain receivers: a growth target reached through fields or calls
/// (`self.state.frontier`, `cache.entry(k).or_default()`) cannot be proven
/// loop-local, so it is always carried.
#[test]
fn chained_receivers_are_always_carried() {
    let src = "\
fn f(&mut self, items: &[u32]) {
    for x in items {
        self.state.frontier.push(*x);
        self.cache.entry(*x).or_default().push(*x);
    }
}
";
    let f = &flow_of(src).fns[0];
    let recv: Vec<(&str, bool)> = f
        .grows
        .iter()
        .map(|g| (g.receiver.as_str(), g.carried))
        .collect();
    assert_eq!(
        recv,
        vec![
            ("self.state.frontier", true),
            ("self.cache.entry.or_default", true),
        ]
    );
}

/// Closures run on the enclosing function's data: growth inside a closure
/// body inside a loop belongs to the enclosing `fn`'s flow, with normal
/// binding resolution (the captured collection is carried).
#[test]
fn closure_bodies_stay_in_the_enclosing_fns_flow() {
    let src = "\
fn f(items: &[u32]) {
    let mut hits = Vec::new();
    for x in items {
        let record = |v: u32| hits.push(v);
        record(*x);
    }
}
";
    let flow = flow_of(src);
    assert_eq!(flow.fns.len(), 1, "a closure is not a separate fn item");
    let f = &flow.fns[0];
    assert_eq!(f.grows.len(), 1);
    assert_eq!(f.grows[0].receiver, "hits");
    assert!(f.grows[0].carried, "captured outer collection is carried");
}

/// Nested `fn` items are carved out of the enclosing body: each function
/// owns exactly its own growth sites and bindings.
#[test]
fn nested_fn_items_are_analyzed_separately() {
    let src = "\
fn outer(items: &[u32]) {
    let mut a = Vec::new();
    fn inner(items: &[u32]) {
        let mut b = Vec::new();
        for x in items {
            b.push(*x);
        }
    }
    a.push(1);
}
";
    let flow = flow_of(src);
    assert_eq!(flow.fns.len(), 2);
    let outer = flow.fns.iter().find(|f| f.name == "outer").unwrap();
    let inner = flow.fns.iter().find(|f| f.name == "inner").unwrap();
    assert_eq!(
        outer
            .grows
            .iter()
            .map(|g| g.receiver.as_str())
            .collect::<Vec<_>>(),
        vec!["a"],
        "inner's growth must not leak into outer"
    );
    assert_eq!(
        inner
            .grows
            .iter()
            .map(|g| g.receiver.as_str())
            .collect::<Vec<_>>(),
        vec!["b"]
    );
    assert!(
        inner.grows[0].carried,
        "b is declared before inner's loop, so it outlives each iteration"
    );
}

/// A `?`-propagated initializer is a handled `Result`, never an
/// unused-result candidate; a bare binding of the same call is.
#[test]
fn question_mark_suppresses_the_unused_result_candidate() {
    let src = "\
fn f() -> Result<u32, ()> {
    let a = fallible()?;
    let b = fallible();
    Ok(a)
}
";
    let f = &flow_of(src).fns[0];
    let names: Vec<&str> = f
        .unused_candidates
        .iter()
        .filter(|c| !c.used_later)
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(names, vec!["b"]);
}

/// The `lb-lint dataflow` dump is deterministic and keyed by file path:
/// permuting the input file order changes nothing.
#[test]
fn dataflow_dump_is_deterministic_under_file_reordering() {
    let a = (
        "crates/sat/src/a.rs".to_string(),
        "fn solve() { let mut v = Vec::new(); loop { v.push(1); } }\n".to_string(),
    );
    let b = (
        "crates/csp/src/b.rs".to_string(),
        "fn count() -> Result<u32, ()> { Ok(0) }\n".to_string(),
    );
    let config = Config::default();
    let d1 = semantic::dataflow_dump(&[a.clone(), b.clone()], &config);
    let d2 = semantic::dataflow_dump(&[b, a], &config);
    assert_eq!(d1, d2, "dump must not depend on input order");
    assert!(d1.contains("crates/sat/src/a.rs"), "{d1}");
    assert!(d1.contains("crate sat"), "per-crate footer missing: {d1}");
}
