//! Fixture self-tests: every rule has at least one violating fixture (the
//! linter must flag it) and one clean fixture (the linter must stay silent).
//!
//! Fixtures live in `crates/lint/fixtures/`, which the workspace walker
//! skips — they are linted here explicitly, each under a synthetic
//! workspace-relative path that exercises the intended path classification
//! (bound-math module, entry-point module, crate root, binary, …).

use lb_lint::{lint_source, semantic, CheckpointSpec, Config, Rule, Violation};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
}

/// Lints a fixture under `rel_path` and returns the sorted, deduplicated set
/// of rules that fired.
fn rules_fired(name: &str, rel_path: &str) -> Vec<Rule> {
    let source = fixture(name);
    let mut rules: Vec<Rule> = lint_source(rel_path, &source, &Config::default())
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn r1_violating_fixture_is_flagged() {
    let v = lint_source(
        "crates/x/src/foo.rs",
        &fixture("r1_violating.rs"),
        &Config::default(),
    );
    let r1 = v.iter().filter(|v| v.rule == Rule::NoPanic).count();
    assert!(r1 >= 3, "expected unwrap+expect+todo to fire, got {v:?}");
    assert!(v.iter().all(|v| v.rule == Rule::NoPanic));
}

#[test]
fn r1_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r1_clean.rs", "crates/x/src/foo.rs"), vec![]);
}

#[test]
fn r2_violating_fixture_is_flagged_in_bound_math_path() {
    assert_eq!(
        rules_fired("r2_violating.rs", "crates/lp/src/fixture.rs"),
        vec![Rule::NoLossyCast]
    );
}

#[test]
fn r2_violating_fixture_is_ignored_outside_bound_math_paths() {
    // The same source outside `lb-lp`/`lb-join::agm` is not bound
    // arithmetic; R2 is scoped by path.
    assert_eq!(
        rules_fired("r2_violating.rs", "crates/graph/src/fixture.rs"),
        vec![]
    );
}

#[test]
fn r2_clean_fixture_is_silent() {
    assert_eq!(
        rules_fired("r2_clean.rs", "crates/lp/src/fixture.rs"),
        vec![]
    );
}

#[test]
fn r3_violating_fixture_is_flagged() {
    assert_eq!(
        rules_fired("r3_violating.rs", "crates/x/src/lib.rs"),
        vec![Rule::ForbidUnsafe]
    );
}

#[test]
fn r3_only_applies_to_crate_roots() {
    assert_eq!(
        rules_fired("r3_violating.rs", "crates/x/src/util.rs"),
        vec![]
    );
}

#[test]
fn r3_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r3_clean.rs", "crates/x/src/lib.rs"), vec![]);
}

#[test]
fn r4_violating_fixture_is_flagged_including_multiline_signature() {
    let v = lint_source(
        "crates/join/src/fixture.rs",
        &fixture("r4_violating.rs"),
        &Config::default(),
    );
    let r4 = v.iter().filter(|v| v.rule == Rule::MustUseResult).count();
    assert_eq!(r4, 2, "both solve and solve_multiline must fire: {v:?}");
}

#[test]
fn r4_clean_fixture_is_silent() {
    assert_eq!(
        rules_fired("r4_clean.rs", "crates/join/src/fixture.rs"),
        vec![]
    );
}

#[test]
fn r5_violating_fixture_is_flagged() {
    assert_eq!(
        rules_fired("r5_violating.rs", "crates/x/src/util.rs"),
        vec![Rule::NoProcessExit]
    );
}

#[test]
fn r5_clean_fixture_is_silent_under_bin_path() {
    assert_eq!(
        rules_fired("r5_clean.rs", "crates/x/src/bin/tool.rs"),
        vec![]
    );
}

#[test]
fn r6_violating_fixture_is_flagged() {
    assert_eq!(
        rules_fired("r6_violating.rs", "crates/x/src/solver.rs"),
        vec![Rule::NoAdhocTiming]
    );
}

#[test]
fn r6_is_exempt_in_engine_experiments_and_bench_code() {
    for rel in [
        "crates/engine/src/budget.rs",
        "crates/core/src/experiments.rs",
        "crates/x/src/bin/tool.rs",
        "crates/x/benches/b.rs",
    ] {
        assert_eq!(
            rules_fired("r6_violating.rs", rel),
            vec![],
            "R6 must not fire under {rel}"
        );
    }
}

#[test]
fn r6_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r6_clean.rs", "crates/x/src/solver.rs"), vec![]);
}

#[test]
fn r7_violating_fixture_is_flagged_in_hot_paths() {
    let v = lint_source(
        "crates/sat/src/dpll.rs",
        &fixture("r7_violating.rs"),
        &Config::default(),
    );
    let r7 = v
        .iter()
        .filter(|v| v.rule == Rule::NoUncheckedIndex)
        .count();
    assert_eq!(r7, 2, "both indexing sites must fire: {v:?}");
}

#[test]
fn r7_violating_fixture_is_ignored_outside_hot_paths() {
    // The same source in a non-hot-path module: R7 is scoped by path.
    assert_eq!(
        rules_fired("r7_violating.rs", "crates/sat/src/cnf.rs"),
        vec![]
    );
}

#[test]
fn r7_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r7_clean.rs", "crates/sat/src/dpll.rs"), vec![]);
}

#[test]
fn bad_directives_are_reported_and_do_not_suppress() {
    let v = lint_source(
        "crates/x/src/foo.rs",
        &fixture("d0_bad_directive.rs"),
        &Config::default(),
    );
    let d0 = v.iter().filter(|v| v.rule == Rule::BadDirective).count();
    let r1 = v.iter().filter(|v| v.rule == Rule::NoPanic).count();
    assert_eq!(
        d0, 2,
        "missing-reason and unknown-rule must both fire: {v:?}"
    );
    assert_eq!(
        r1, 1,
        "a reasonless allow must not suppress the unwrap: {v:?}"
    );
}

#[test]
fn good_directives_suppress_cleanly() {
    assert_eq!(
        rules_fired("d0_good_directive.rs", "crates/x/src/foo.rs"),
        vec![]
    );
}

// ---------------------------------------------------------------------------
// Semantic rules (R8–R10): fixtures are linted as one-file workspaces through
// `semantic::check`, under a config that points the path-scoped knobs at the
// synthetic `crates/s/src/` crate.
// ---------------------------------------------------------------------------

/// A config whose R8/R9 scopes cover the synthetic fixture crate. R10 is off
/// (no checkpoint specs); the R10 tests below opt in with a spec.
fn sem_config() -> Config {
    Config {
        api_root_paths: vec!["crates/s/src/".into()],
        solver_loop_paths: vec!["crates/s/src/".into()],
        index_checked_paths: vec!["crates/s/src/hot.rs".into()],
        checkpoint_specs: Vec::new(),
        ..Config::default()
    }
}

/// Runs only the semantic rules on a fixture mounted at `rel_path`.
fn semantic_violations(name: &str, rel_path: &str, config: &Config) -> Vec<Violation> {
    semantic_violations_under(name, rel_path, config, Path::new("/nonexistent"))
}

fn semantic_violations_under(
    name: &str,
    rel_path: &str,
    config: &Config,
    root: &Path,
) -> Vec<Violation> {
    let files = vec![(rel_path.to_string(), fixture(name))];
    let (violations, _) = semantic::check(root, &files, config);
    violations
}

#[test]
fn r8_violating_fixture_flags_direct_and_transitive_loops() {
    let v = semantic_violations("r8_violating.rs", "crates/s/src/solver.rs", &sem_config());
    let lines: Vec<usize> = v
        .iter()
        .filter(|v| v.rule == Rule::UnbudgetedLoop)
        .map(|v| v.line)
        .collect();
    assert_eq!(
        lines,
        vec![6, 9, 16],
        "while + for in the root and loop in the helper must fire: {v:?}"
    );
    assert!(
        v.iter().any(|v| v.message.contains("solve -> helper")),
        "the helper violation must carry its call chain: {v:?}"
    );
}

#[test]
fn r8_clean_fixture_is_silent() {
    let v = semantic_violations("r8_clean.rs", "crates/s/src/solver.rs", &sem_config());
    assert!(v.is_empty(), "charged loops must not fire: {v:?}");
}

#[test]
fn r8_allowed_fixture_is_suppressed() {
    let v = semantic_violations("r8_allowed.rs", "crates/s/src/solver.rs", &sem_config());
    assert!(v.is_empty(), "allow(unbudgeted-loop) must suppress: {v:?}");
}

#[test]
fn r9_violating_fixture_flags_reachable_panic_sites() {
    // Outside the hot-path location only the unwrap fires; the `[i]` site is
    // R7-scoped.
    let v = semantic_violations("r9_violating.rs", "crates/s/src/solver.rs", &sem_config());
    let r9: Vec<&Violation> = v
        .iter()
        .filter(|v| v.rule == Rule::PanicReachability)
        .collect();
    assert_eq!(r9.len(), 1, "exactly the unwrap must fire: {v:?}");
    assert_eq!(r9[0].line, 10);
    assert!(
        r9[0].message.contains("solve -> helper"),
        "diagnostic must name the reachability chain: {}",
        r9[0].message
    );

    // Mounted as a hot-path file, the unchecked index is a site too.
    let v = semantic_violations("r9_violating.rs", "crates/s/src/hot.rs", &sem_config());
    let lines: Vec<usize> = v
        .iter()
        .filter(|v| v.rule == Rule::PanicReachability)
        .map(|v| v.line)
        .collect();
    assert_eq!(
        lines,
        vec![10, 14],
        "unwrap and `[i]` must both fire: {v:?}"
    );
}

#[test]
fn r9_clean_fixture_ignores_unreachable_panic_sites() {
    let v = semantic_violations("r9_clean.rs", "crates/s/src/solver.rs", &sem_config());
    assert!(
        v.is_empty(),
        "an unreachable unwrap must not fire R9: {v:?}"
    );
}

#[test]
fn r9_allowed_fixture_accepts_site_and_edge_directives() {
    let v = semantic_violations("r9_allowed.rs", "crates/s/src/solver.rs", &sem_config());
    assert!(
        v.is_empty(),
        "site allows and edge cuts must both suppress: {v:?}"
    );
}

/// A config with one R10 family pointing at the fixture and a baseline
/// file name resolved against the fixtures directory as workspace root.
fn r10_config(baseline: &str) -> Config {
    Config {
        api_root_paths: vec!["crates/s/src/".into()],
        solver_loop_paths: vec!["crates/s/src/".into()],
        checkpoint_specs: vec![CheckpointSpec {
            family: "fixture".into(),
            file: "crates/s/src/ck.rs".into(),
            fns: vec!["encode".into(), "decode".into()],
            version_const: "CHECKPOINT_PAYLOAD_VERSION".into(),
        }],
        baseline_file: baseline.into(),
        ..Config::default()
    }
}

fn fixtures_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

#[test]
fn r10_body_change_without_version_bump_is_drift() {
    let v = semantic_violations_under(
        "r10_fixture.rs",
        "crates/s/src/ck.rs",
        &r10_config("r10_baseline_drift.txt"),
        &fixtures_root(),
    );
    assert_eq!(v.len(), 1, "exactly the drift must fire: {v:?}");
    assert_eq!(v[0].rule, Rule::CheckpointSchemaDrift);
    assert_eq!(v[0].line, 4, "must anchor at the version const: {v:?}");
    assert!(
        v[0].message.contains("bump the payload version"),
        "drift without a bump asks for a version bump: {}",
        v[0].message
    );
}

#[test]
fn r10_version_mismatch_asks_for_a_repin() {
    let v = semantic_violations_under(
        "r10_fixture.rs",
        "crates/s/src/ck.rs",
        &r10_config("r10_baseline_stale.txt"),
        &fixtures_root(),
    );
    assert_eq!(v.len(), 1, "exactly the stale entry must fire: {v:?}");
    assert!(
        v[0].message.contains("re-pin"),
        "a stale version asks for a re-pin: {}",
        v[0].message
    );
}

#[test]
fn r10_missing_baseline_is_one_actionable_violation() {
    let v = semantic_violations_under(
        "r10_fixture.rs",
        "crates/s/src/ck.rs",
        &r10_config("no-such-baseline.txt"),
        &fixtures_root(),
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].message.contains("--write-baseline"),
        "{}",
        v[0].message
    );
}

#[test]
fn r10_matching_baseline_is_clean() {
    // Render the baseline from the fixture itself, park it in a scratch
    // root, and verify the check round-trips to silence.
    let files = vec![("crates/s/src/ck.rs".to_string(), fixture("r10_fixture.rs"))];
    let config = r10_config("generated-baseline.txt");
    let content = semantic::render_baseline(&files, &config).expect("fixture fingerprints");
    let root = std::env::temp_dir().join(format!("lb-lint-r10-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("scratch root");
    std::fs::write(root.join("generated-baseline.txt"), &content).expect("write baseline");
    let (v, _) = semantic::check(&root, &files, &config);
    let _ = std::fs::remove_dir_all(&root);
    assert!(v.is_empty(), "a matching baseline must be clean: {v:?}");
}

#[test]
fn r10_allowed_fixture_suppresses_drift() {
    let v = semantic_violations_under(
        "r10_allowed.rs",
        "crates/s/src/ck.rs",
        &r10_config("r10_baseline_drift.txt"),
        &fixtures_root(),
    );
    assert!(
        v.is_empty(),
        "allow(checkpoint-schema-drift) at the const must suppress: {v:?}"
    );
}

#[test]
fn every_rule_has_a_violating_and_a_clean_fixture() {
    // Meta-check: the fixture corpus stays complete as rules evolve.
    let dir = fixtures_root();
    for code in ["r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"] {
        for suffix in ["violating", "clean"] {
            let name = format!("{code}_{suffix}.rs");
            assert!(dir.join(&name).exists(), "fixture corpus is missing {name}");
        }
    }
    for name in [
        "r8_allowed.rs",
        "r9_allowed.rs",
        "r10_fixture.rs",
        "r10_allowed.rs",
        "r10_baseline_drift.txt",
        "r10_baseline_stale.txt",
    ] {
        assert!(dir.join(name).exists(), "fixture corpus is missing {name}");
    }
}
