//! Fixture self-tests: every rule has at least one violating fixture (the
//! linter must flag it) and one clean fixture (the linter must stay silent).
//!
//! Fixtures live in `crates/lint/fixtures/`, which the workspace walker
//! skips — they are linted here explicitly, each under a synthetic
//! workspace-relative path that exercises the intended path classification
//! (bound-math module, entry-point module, crate root, binary, …).

use lb_lint::{lint_source, semantic, CheckpointSpec, Config, Rule, Violation};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
}

/// Lints a fixture under `rel_path` and returns the sorted, deduplicated set
/// of rules that fired.
fn rules_fired(name: &str, rel_path: &str) -> Vec<Rule> {
    let source = fixture(name);
    let mut rules: Vec<Rule> = lint_source(rel_path, &source, &Config::default())
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn r1_violating_fixture_is_flagged() {
    let v = lint_source(
        "crates/x/src/foo.rs",
        &fixture("r1_violating.rs"),
        &Config::default(),
    );
    let r1 = v.iter().filter(|v| v.rule == Rule::NoPanic).count();
    assert!(r1 >= 3, "expected unwrap+expect+todo to fire, got {v:?}");
    assert!(v.iter().all(|v| v.rule == Rule::NoPanic));
}

#[test]
fn r1_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r1_clean.rs", "crates/x/src/foo.rs"), vec![]);
}

#[test]
fn r2_violating_fixture_is_flagged_in_bound_math_path() {
    assert_eq!(
        rules_fired("r2_violating.rs", "crates/lp/src/fixture.rs"),
        vec![Rule::NoLossyCast]
    );
}

#[test]
fn r2_violating_fixture_is_ignored_outside_bound_math_paths() {
    // The same source outside `lb-lp`/`lb-join::agm` is not bound
    // arithmetic; R2 is scoped by path.
    assert_eq!(
        rules_fired("r2_violating.rs", "crates/graph/src/fixture.rs"),
        vec![]
    );
}

#[test]
fn r2_clean_fixture_is_silent() {
    assert_eq!(
        rules_fired("r2_clean.rs", "crates/lp/src/fixture.rs"),
        vec![]
    );
}

#[test]
fn r3_violating_fixture_is_flagged() {
    assert_eq!(
        rules_fired("r3_violating.rs", "crates/x/src/lib.rs"),
        vec![Rule::ForbidUnsafe]
    );
}

#[test]
fn r3_only_applies_to_crate_roots() {
    assert_eq!(
        rules_fired("r3_violating.rs", "crates/x/src/util.rs"),
        vec![]
    );
}

#[test]
fn r3_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r3_clean.rs", "crates/x/src/lib.rs"), vec![]);
}

#[test]
fn r4_violating_fixture_is_flagged_including_multiline_signature() {
    let v = lint_source(
        "crates/join/src/fixture.rs",
        &fixture("r4_violating.rs"),
        &Config::default(),
    );
    let r4 = v.iter().filter(|v| v.rule == Rule::MustUseResult).count();
    assert_eq!(r4, 2, "both solve and solve_multiline must fire: {v:?}");
}

#[test]
fn r4_clean_fixture_is_silent() {
    assert_eq!(
        rules_fired("r4_clean.rs", "crates/join/src/fixture.rs"),
        vec![]
    );
}

#[test]
fn r5_violating_fixture_is_flagged() {
    assert_eq!(
        rules_fired("r5_violating.rs", "crates/x/src/util.rs"),
        vec![Rule::NoProcessExit]
    );
}

#[test]
fn r5_clean_fixture_is_silent_under_bin_path() {
    assert_eq!(
        rules_fired("r5_clean.rs", "crates/x/src/bin/tool.rs"),
        vec![]
    );
}

#[test]
fn r6_violating_fixture_is_flagged() {
    assert_eq!(
        rules_fired("r6_violating.rs", "crates/x/src/solver.rs"),
        vec![Rule::NoAdhocTiming]
    );
}

#[test]
fn r6_is_exempt_in_engine_experiments_and_bench_code() {
    for rel in [
        "crates/engine/src/budget.rs",
        "crates/core/src/experiments.rs",
        "crates/x/src/bin/tool.rs",
        "crates/x/benches/b.rs",
    ] {
        assert_eq!(
            rules_fired("r6_violating.rs", rel),
            vec![],
            "R6 must not fire under {rel}"
        );
    }
}

#[test]
fn r6_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r6_clean.rs", "crates/x/src/solver.rs"), vec![]);
}

#[test]
fn r7_violating_fixture_is_flagged_in_hot_paths() {
    let v = lint_source(
        "crates/sat/src/dpll.rs",
        &fixture("r7_violating.rs"),
        &Config::default(),
    );
    let r7 = v
        .iter()
        .filter(|v| v.rule == Rule::NoUncheckedIndex)
        .count();
    assert_eq!(r7, 2, "both indexing sites must fire: {v:?}");
}

#[test]
fn r7_violating_fixture_is_ignored_outside_hot_paths() {
    // The same source in a non-hot-path module: R7 is scoped by path.
    assert_eq!(
        rules_fired("r7_violating.rs", "crates/sat/src/cnf.rs"),
        vec![]
    );
}

#[test]
fn r7_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r7_clean.rs", "crates/sat/src/dpll.rs"), vec![]);
}

#[test]
fn bad_directives_are_reported_and_do_not_suppress() {
    let v = lint_source(
        "crates/x/src/foo.rs",
        &fixture("d0_bad_directive.rs"),
        &Config::default(),
    );
    let d0 = v.iter().filter(|v| v.rule == Rule::BadDirective).count();
    let r1 = v.iter().filter(|v| v.rule == Rule::NoPanic).count();
    assert_eq!(
        d0, 2,
        "missing-reason and unknown-rule must both fire: {v:?}"
    );
    assert_eq!(
        r1, 1,
        "a reasonless allow must not suppress the unwrap: {v:?}"
    );
}

#[test]
fn good_directives_suppress_cleanly() {
    assert_eq!(
        rules_fired("d0_good_directive.rs", "crates/x/src/foo.rs"),
        vec![]
    );
}

// ---------------------------------------------------------------------------
// Semantic rules (R8–R10): fixtures are linted as one-file workspaces through
// `semantic::check`, under a config that points the path-scoped knobs at the
// synthetic `crates/s/src/` crate.
// ---------------------------------------------------------------------------

/// A config whose R8/R9 scopes cover the synthetic fixture crate. R10 is off
/// (no checkpoint specs); the R10 tests below opt in with a spec.
fn sem_config() -> Config {
    Config {
        api_root_paths: vec!["crates/s/src/".into()],
        solver_loop_paths: vec!["crates/s/src/".into()],
        index_checked_paths: vec!["crates/s/src/hot.rs".into()],
        checkpoint_specs: Vec::new(),
        ..Config::default()
    }
}

/// `sem_config` extended so the fixture tree also carries the R13
/// state-struct rule (the default config points R13 at the real solver
/// files, which a fixture path never matches).
fn df_config() -> Config {
    Config {
        state_struct_paths: vec!["crates/s/src/".into()],
        ..sem_config()
    }
}

/// Runs only the semantic rules on a fixture mounted at `rel_path`.
fn semantic_violations(name: &str, rel_path: &str, config: &Config) -> Vec<Violation> {
    semantic_violations_under(name, rel_path, config, Path::new("/nonexistent"))
}

/// Like [`semantic_violations`], but on an in-memory source — used by the
/// gate-flip tests that mutate a clean fixture and expect the rule to fire.
fn semantic_violations_src(source: String, rel_path: &str, config: &Config) -> Vec<Violation> {
    let files = vec![(rel_path.to_string(), source)];
    let (violations, _) = semantic::check(Path::new("/nonexistent"), &files, config);
    violations
}

fn semantic_violations_under(
    name: &str,
    rel_path: &str,
    config: &Config,
    root: &Path,
) -> Vec<Violation> {
    let files = vec![(rel_path.to_string(), fixture(name))];
    let (violations, _) = semantic::check(root, &files, config);
    violations
}

#[test]
fn r8_violating_fixture_flags_direct_and_transitive_loops() {
    let v = semantic_violations("r8_violating.rs", "crates/s/src/solver.rs", &sem_config());
    let lines: Vec<usize> = v
        .iter()
        .filter(|v| v.rule == Rule::UnbudgetedLoop)
        .map(|v| v.line)
        .collect();
    assert_eq!(
        lines,
        vec![6, 9, 16],
        "while + for in the root and loop in the helper must fire: {v:?}"
    );
    assert!(
        v.iter().any(|v| v.message.contains("solve -> helper")),
        "the helper violation must carry its call chain: {v:?}"
    );
}

#[test]
fn r8_clean_fixture_is_silent() {
    let v = semantic_violations("r8_clean.rs", "crates/s/src/solver.rs", &sem_config());
    assert!(v.is_empty(), "charged loops must not fire: {v:?}");
}

#[test]
fn r8_allowed_fixture_is_suppressed() {
    let v = semantic_violations("r8_allowed.rs", "crates/s/src/solver.rs", &sem_config());
    assert!(v.is_empty(), "allow(unbudgeted-loop) must suppress: {v:?}");
}

#[test]
fn r9_violating_fixture_flags_reachable_panic_sites() {
    // Outside the hot-path location only the unwrap fires; the `[i]` site is
    // R7-scoped.
    let v = semantic_violations("r9_violating.rs", "crates/s/src/solver.rs", &sem_config());
    let r9: Vec<&Violation> = v
        .iter()
        .filter(|v| v.rule == Rule::PanicReachability)
        .collect();
    assert_eq!(r9.len(), 1, "exactly the unwrap must fire: {v:?}");
    assert_eq!(r9[0].line, 10);
    assert!(
        r9[0].message.contains("solve -> helper"),
        "diagnostic must name the reachability chain: {}",
        r9[0].message
    );

    // Mounted as a hot-path file, the unchecked index is a site too.
    let v = semantic_violations("r9_violating.rs", "crates/s/src/hot.rs", &sem_config());
    let lines: Vec<usize> = v
        .iter()
        .filter(|v| v.rule == Rule::PanicReachability)
        .map(|v| v.line)
        .collect();
    assert_eq!(
        lines,
        vec![10, 14],
        "unwrap and `[i]` must both fire: {v:?}"
    );
}

#[test]
fn r9_clean_fixture_ignores_unreachable_panic_sites() {
    let v = semantic_violations("r9_clean.rs", "crates/s/src/solver.rs", &sem_config());
    assert!(
        v.is_empty(),
        "an unreachable unwrap must not fire R9: {v:?}"
    );
}

#[test]
fn r9_allowed_fixture_accepts_site_and_edge_directives() {
    let v = semantic_violations("r9_allowed.rs", "crates/s/src/solver.rs", &sem_config());
    assert!(
        v.is_empty(),
        "site allows and edge cuts must both suppress: {v:?}"
    );
}

/// A config with one R10 family pointing at the fixture and a baseline
/// file name resolved against the fixtures directory as workspace root.
fn r10_config(baseline: &str) -> Config {
    Config {
        api_root_paths: vec!["crates/s/src/".into()],
        solver_loop_paths: vec!["crates/s/src/".into()],
        checkpoint_specs: vec![CheckpointSpec {
            family: "fixture".into(),
            file: "crates/s/src/ck.rs".into(),
            fns: vec!["encode".into(), "decode".into()],
            version_const: "CHECKPOINT_PAYLOAD_VERSION".into(),
        }],
        baseline_file: baseline.into(),
        ..Config::default()
    }
}

fn fixtures_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

#[test]
fn r10_body_change_without_version_bump_is_drift() {
    let v = semantic_violations_under(
        "r10_fixture.rs",
        "crates/s/src/ck.rs",
        &r10_config("r10_baseline_drift.txt"),
        &fixtures_root(),
    );
    assert_eq!(v.len(), 1, "exactly the drift must fire: {v:?}");
    assert_eq!(v[0].rule, Rule::CheckpointSchemaDrift);
    assert_eq!(v[0].line, 4, "must anchor at the version const: {v:?}");
    assert!(
        v[0].message.contains("bump the payload version"),
        "drift without a bump asks for a version bump: {}",
        v[0].message
    );
}

#[test]
fn r10_version_mismatch_asks_for_a_repin() {
    let v = semantic_violations_under(
        "r10_fixture.rs",
        "crates/s/src/ck.rs",
        &r10_config("r10_baseline_stale.txt"),
        &fixtures_root(),
    );
    assert_eq!(v.len(), 1, "exactly the stale entry must fire: {v:?}");
    assert!(
        v[0].message.contains("re-pin"),
        "a stale version asks for a re-pin: {}",
        v[0].message
    );
}

#[test]
fn r10_missing_baseline_is_one_actionable_violation() {
    let v = semantic_violations_under(
        "r10_fixture.rs",
        "crates/s/src/ck.rs",
        &r10_config("no-such-baseline.txt"),
        &fixtures_root(),
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].message.contains("--write-baseline"),
        "{}",
        v[0].message
    );
}

#[test]
fn r10_matching_baseline_is_clean() {
    // Render the baseline from the fixture itself, park it in a scratch
    // root, and verify the check round-trips to silence.
    let files = vec![("crates/s/src/ck.rs".to_string(), fixture("r10_fixture.rs"))];
    let config = r10_config("generated-baseline.txt");
    let content = semantic::render_baseline(&files, &config).expect("fixture fingerprints");
    let root = std::env::temp_dir().join(format!("lb-lint-r10-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("scratch root");
    std::fs::write(root.join("generated-baseline.txt"), &content).expect("write baseline");
    let (v, _) = semantic::check(&root, &files, &config);
    let _ = std::fs::remove_dir_all(&root);
    assert!(v.is_empty(), "a matching baseline must be clean: {v:?}");
}

#[test]
fn r10_allowed_fixture_suppresses_drift() {
    let v = semantic_violations_under(
        "r10_allowed.rs",
        "crates/s/src/ck.rs",
        &r10_config("r10_baseline_drift.txt"),
        &fixtures_root(),
    );
    assert!(
        v.is_empty(),
        "allow(checkpoint-schema-drift) at the const must suppress: {v:?}"
    );
}

#[test]
fn r11_violating_fixture_flags_root_and_helper_growth() {
    let v = semantic_violations("r11_violating.rs", "crates/s/src/solver.rs", &df_config());
    let growth: Vec<&Violation> = v
        .iter()
        .filter(|v| v.rule == Rule::UnboundedGrowth)
        .collect();
    assert_eq!(
        growth.len(),
        2,
        "frontier.push in solve and acc.push in grow must both fire: {v:?}"
    );
    assert!(
        v.iter().all(|v| v.rule == Rule::UnboundedGrowth),
        "the budgeted loops must not co-fire other rules: {v:?}"
    );
    assert!(
        growth
            .iter()
            .any(|v| v.message.contains("via solve -> grow")),
        "the helper violation must carry its root-to-loop call chain: {v:?}"
    );
    assert!(
        growth
            .iter()
            .all(|v| v.message.contains("record_intermediate")),
        "the diagnostic must name the fix: {v:?}"
    );
}

#[test]
fn r11_clean_fixture_accepts_direct_and_transitive_charges() {
    let v = semantic_violations("r11_clean.rs", "crates/s/src/solver.rs", &df_config());
    assert!(
        v.is_empty(),
        "a direct charge and a charge via note_frontier must both discharge: {v:?}"
    );
}

#[test]
fn r11_allowed_fixture_accepts_standalone_and_trailing_allows() {
    let v = semantic_violations("r11_allowed.rs", "crates/s/src/solver.rs", &df_config());
    assert!(v.is_empty(), "justified allows must suppress R11: {v:?}");
}

#[test]
fn r11_gate_flips_when_the_charge_is_removed() {
    // Acceptance: deleting the `record_intermediate` charges from the
    // clean fixture leaves an uncharged push in a budget-reachable loop.
    let mutated: String = fixture("r11_clean.rs")
        .lines()
        .filter(|l| !l.contains("record_intermediate"))
        .collect::<Vec<_>>()
        .join("\n");
    let v = semantic_violations_src(mutated, "crates/s/src/solver.rs", &df_config());
    assert!(
        v.iter().any(|v| v.rule == Rule::UnboundedGrowth),
        "removing the charge must flip the gate to failing: {v:?}"
    );
}

#[test]
fn r12_violating_fixture_flags_all_three_discard_shapes() {
    let v = semantic_violations("r12_violating.rs", "crates/s/src/solver.rs", &df_config());
    let lines: Vec<usize> = v
        .iter()
        .filter(|v| v.rule == Rule::SwallowedResult)
        .map(|v| v.line)
        .collect();
    assert_eq!(
        lines,
        vec![15, 16, 17],
        "wildcard let, .ok(); and the never-read binding must fire — and \
         `answer` (read later) must not: {v:?}"
    );
    assert!(v.iter().all(|v| v.rule == Rule::SwallowedResult), "{v:?}");
}

#[test]
fn r12_clean_fixture_is_silent() {
    let v = semantic_violations("r12_clean.rs", "crates/s/src/solver.rs", &df_config());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn r12_allowed_fixture_accepts_per_shape_allows() {
    let v = semantic_violations("r12_allowed.rs", "crates/s/src/solver.rs", &df_config());
    assert!(v.is_empty(), "justified allows must suppress R12: {v:?}");
}

#[test]
fn r12_gate_flips_on_a_new_bare_discard() {
    // Acceptance: appending a bare `let _ = solve(3);` to the clean
    // fixture must fail the gate.
    let mutated = format!(
        "{}\npub fn probe() {{\n    let _ = solve(3);\n}}\n",
        fixture("r12_clean.rs")
    );
    let v = semantic_violations_src(mutated, "crates/s/src/solver.rs", &df_config());
    assert!(
        v.iter().any(|v| v.rule == Rule::SwallowedResult),
        "a new wildcard discard must flip the gate to failing: {v:?}"
    );
}

#[test]
fn r13_violating_fixture_flags_every_hostile_marker() {
    let v = semantic_violations("r13_violating.rs", "crates/s/src/state.rs", &df_config());
    let r13: Vec<&Violation> = v
        .iter()
        .filter(|v| v.rule == Rule::SendHostileState)
        .collect();
    assert_eq!(
        r13.len(),
        4,
        "Rc, RefCell, and raw-pointer fields plus thread_local! must fire: {v:?}"
    );
    for marker in ["Rc", "RefCell", "thread_local"] {
        assert!(
            r13.iter().any(|v| v.message.contains(marker)),
            "diagnostics must name the {marker} marker: {v:?}"
        );
    }
}

#[test]
fn r13_is_scoped_to_state_struct_paths() {
    // The same source outside `state_struct_paths` is not checkpoint
    // state; R13 must stay silent under the narrower sem_config.
    let v = semantic_violations("r13_violating.rs", "crates/s/src/state.rs", &sem_config());
    assert!(
        !v.iter().any(|v| v.rule == Rule::SendHostileState),
        "R13 is path-scoped: {v:?}"
    );
}

#[test]
fn r13_clean_fixture_is_silent() {
    let v = semantic_violations("r13_clean.rs", "crates/s/src/state.rs", &df_config());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn r13_allowed_fixture_accepts_field_and_macro_allows() {
    let v = semantic_violations("r13_allowed.rs", "crates/s/src/state.rs", &df_config());
    assert!(v.is_empty(), "justified allows must suppress R13: {v:?}");
}

#[test]
fn r13_gate_flips_when_an_rc_field_is_added() {
    // Acceptance: inserting an `Rc` field into the clean state struct
    // must fail the gate.
    let mutated = fixture("r13_clean.rs").replace(
        "pub depth: u32,",
        "pub shared: std::rc::Rc<Vec<u32>>,\n    pub depth: u32,",
    );
    let v = semantic_violations_src(mutated, "crates/s/src/state.rs", &df_config());
    assert!(
        v.iter().any(|v| v.rule == Rule::SendHostileState),
        "a new Rc field must flip the gate to failing: {v:?}"
    );
}

// ---------------------------------------------------------------------------
// Effect rules (R14–R16): fixtures are linted through `semantic::check`
// under a config whose effect scope covers the synthetic fixture crate.
// ---------------------------------------------------------------------------

/// `sem_config` extended so the effect rules see the fixture crate: the
/// effect scope covers `crates/s/src/`, the socket file is `net.rs`, and
/// the accept root is its `accept_loop` (the blessed recovery module is a
/// path no fixture mounts at, so the recovery idiom always counts).
fn fx_config() -> Config {
    Config {
        effect_paths: vec!["crates/s/src/".into()],
        socket_paths: vec!["crates/s/src/net.rs".into()],
        accept_roots: vec![("crates/s/src/net.rs".into(), "accept_loop".into())],
        blessed_recovery_paths: vec!["crates/s/src/blessed.rs".into()],
        ..sem_config()
    }
}

#[test]
fn r14_violating_fixture_flags_held_across_cycle_and_recovery() {
    let v = semantic_violations("r14_violating.rs", "crates/s/src/solver.rs", &fx_config());
    assert!(
        v.iter().all(|v| v.rule == Rule::LockDiscipline),
        "only R14 may fire: {v:?}"
    );
    let mut lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![15, 21, 28, 34],
        "held-across write, both cycle edges, and the recovery idiom: {v:?}"
    );
    assert!(
        v.iter().any(|v| v.message.contains("held across")),
        "{v:?}"
    );
    assert!(
        v.iter().any(|v| v.message.contains("lock-order cycle")),
        "{v:?}"
    );
    assert!(v.iter().any(|v| v.message.contains("blessed")), "{v:?}");
}

#[test]
fn r14_clean_fixture_is_silent() {
    let v = semantic_violations("r14_clean.rs", "crates/s/src/solver.rs", &fx_config());
    assert!(
        v.is_empty(),
        "release-before-I/O and a consistent order must be clean: {v:?}"
    );
}

#[test]
fn r14_allowed_fixture_accepts_acquisition_site_and_recovery_allows() {
    let v = semantic_violations("r14_allowed.rs", "crates/s/src/solver.rs", &fx_config());
    assert!(v.is_empty(), "justified allows must suppress R14: {v:?}");
}

#[test]
fn r14_gate_flips_when_two_locks_are_reordered() {
    // Acceptance: inverting the acquisition order in one function closes a
    // lock-order cycle against the untouched sibling.
    let mutated = fixture("r14_clean.rs").replacen(
        "let ga = self.a.lock();\n        let gb = self.b.lock();",
        "let gb = self.b.lock();\n        let ga = self.a.lock();",
        1,
    );
    let v = semantic_violations_src(mutated, "crates/s/src/solver.rs", &fx_config());
    assert!(
        v.iter()
            .any(|v| v.rule == Rule::LockDiscipline && v.message.contains("cycle")),
        "reordering two locks must flip the gate to failing: {v:?}"
    );
}

#[test]
fn r15_violating_fixture_flags_ack_and_requeue_with_chains() {
    let v = semantic_violations("r15_violating.rs", "crates/s/src/solver.rs", &fx_config());
    assert!(
        v.iter().all(|v| v.rule == Rule::DurabilityOrdering),
        "only R15 may fire: {v:?}"
    );
    let mut lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![7, 11],
        "the unsaved ack and the unsaved requeue must both fire: {v:?}"
    );
    assert!(
        v.iter().all(|v| v.message.contains("top")),
        "diagnostics must carry the undischarged call chain: {v:?}"
    );
}

#[test]
fn r15_clean_fixture_is_silent() {
    let v = semantic_violations("r15_clean.rs", "crates/s/src/solver.rs", &fx_config());
    assert!(
        v.is_empty(),
        "save-before-ack and save-before-requeue must be clean: {v:?}"
    );
}

#[test]
fn r15_allowed_fixture_accepts_a_stateless_ack() {
    let v = semantic_violations("r15_allowed.rs", "crates/s/src/solver.rs", &fx_config());
    assert!(v.is_empty(), "justified allows must suppress R15: {v:?}");
}

#[test]
fn r15_gate_flips_when_the_ack_moves_above_the_save() {
    // Acceptance: dropping the save that precedes the ack leaves an
    // acknowledgment no durability effect dominates.
    let mutated = fixture("r15_clean.rs").replacen(
        "    spool.save_record(id);\n    format!(\"OK {id}\")",
        "    format!(\"OK {id}\")",
        1,
    );
    let v = semantic_violations_src(mutated, "crates/s/src/solver.rs", &fx_config());
    assert!(
        v.iter().any(|v| v.rule == Rule::DurabilityOrdering),
        "an ack with no dominating save must flip the gate to failing: {v:?}"
    );
}

#[test]
fn r16_violating_fixture_flags_root_and_transitive_reads() {
    let v = semantic_violations("r16_violating.rs", "crates/s/src/net.rs", &fx_config());
    assert!(
        v.iter().all(|v| v.rule == Rule::UnboundedBlocking),
        "only R16 may fire: {v:?}"
    );
    let mut lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![6, 12],
        "the read in the root and the read one call down must both fire: {v:?}"
    );
    assert!(
        v.iter().all(|v| v.message.contains("accept_loop")),
        "diagnostics must name the accept-loop chain: {v:?}"
    );
}

#[test]
fn r16_clean_fixture_accepts_timeouts_and_ignores_unreachable_reads() {
    let v = semantic_violations("r16_clean.rs", "crates/s/src/net.rs", &fx_config());
    assert!(
        v.is_empty(),
        "a timed read on the chain and an unreachable helper must be clean: {v:?}"
    );
}

#[test]
fn r16_allowed_fixture_accepts_a_justified_untimed_read() {
    let v = semantic_violations("r16_allowed.rs", "crates/s/src/net.rs", &fx_config());
    assert!(v.is_empty(), "justified allows must suppress R16: {v:?}");
}

#[test]
fn r16_gate_flips_when_the_timeout_call_is_dropped() {
    // Acceptance: deleting the `set_read_timeout` leaves the accept-chain
    // read unguarded.
    let mutated = fixture("r16_clean.rs").replace("    stream.set_read_timeout(None);\n", "");
    let v = semantic_violations_src(mutated, "crates/s/src/net.rs", &fx_config());
    assert!(
        v.iter().any(|v| v.rule == Rule::UnboundedBlocking),
        "dropping the timeout must flip the gate to failing: {v:?}"
    );
}

#[test]
fn every_rule_has_a_violating_and_a_clean_fixture() {
    // Meta-check: the fixture corpus stays complete as rules evolve.
    let dir = fixtures_root();
    for code in [
        "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r11", "r12", "r13", "r14", "r15",
        "r16",
    ] {
        for suffix in ["violating", "clean"] {
            let name = format!("{code}_{suffix}.rs");
            assert!(dir.join(&name).exists(), "fixture corpus is missing {name}");
        }
    }
    for name in [
        "r8_allowed.rs",
        "r9_allowed.rs",
        "r11_allowed.rs",
        "r12_allowed.rs",
        "r13_allowed.rs",
        "r14_allowed.rs",
        "r15_allowed.rs",
        "r16_allowed.rs",
        "r10_fixture.rs",
        "r10_allowed.rs",
        "r10_baseline_drift.txt",
        "r10_baseline_stale.txt",
    ] {
        assert!(dir.join(name).exists(), "fixture corpus is missing {name}");
    }
}
