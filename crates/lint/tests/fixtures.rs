//! Fixture self-tests: every rule has at least one violating fixture (the
//! linter must flag it) and one clean fixture (the linter must stay silent).
//!
//! Fixtures live in `crates/lint/fixtures/`, which the workspace walker
//! skips — they are linted here explicitly, each under a synthetic
//! workspace-relative path that exercises the intended path classification
//! (bound-math module, entry-point module, crate root, binary, …).

use lb_lint::{lint_source, Config, Rule};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
}

/// Lints a fixture under `rel_path` and returns the sorted, deduplicated set
/// of rules that fired.
fn rules_fired(name: &str, rel_path: &str) -> Vec<Rule> {
    let source = fixture(name);
    let mut rules: Vec<Rule> = lint_source(rel_path, &source, &Config::default())
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.sort_by_key(|r| r.exit_bit());
    rules.dedup();
    rules
}

#[test]
fn r1_violating_fixture_is_flagged() {
    let v = lint_source(
        "crates/x/src/foo.rs",
        &fixture("r1_violating.rs"),
        &Config::default(),
    );
    let r1 = v.iter().filter(|v| v.rule == Rule::NoPanic).count();
    assert!(r1 >= 3, "expected unwrap+expect+todo to fire, got {v:?}");
    assert!(v.iter().all(|v| v.rule == Rule::NoPanic));
}

#[test]
fn r1_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r1_clean.rs", "crates/x/src/foo.rs"), vec![]);
}

#[test]
fn r2_violating_fixture_is_flagged_in_bound_math_path() {
    assert_eq!(
        rules_fired("r2_violating.rs", "crates/lp/src/fixture.rs"),
        vec![Rule::NoLossyCast]
    );
}

#[test]
fn r2_violating_fixture_is_ignored_outside_bound_math_paths() {
    // The same source outside `lb-lp`/`lb-join::agm` is not bound
    // arithmetic; R2 is scoped by path.
    assert_eq!(
        rules_fired("r2_violating.rs", "crates/graph/src/fixture.rs"),
        vec![]
    );
}

#[test]
fn r2_clean_fixture_is_silent() {
    assert_eq!(
        rules_fired("r2_clean.rs", "crates/lp/src/fixture.rs"),
        vec![]
    );
}

#[test]
fn r3_violating_fixture_is_flagged() {
    assert_eq!(
        rules_fired("r3_violating.rs", "crates/x/src/lib.rs"),
        vec![Rule::ForbidUnsafe]
    );
}

#[test]
fn r3_only_applies_to_crate_roots() {
    assert_eq!(
        rules_fired("r3_violating.rs", "crates/x/src/util.rs"),
        vec![]
    );
}

#[test]
fn r3_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r3_clean.rs", "crates/x/src/lib.rs"), vec![]);
}

#[test]
fn r4_violating_fixture_is_flagged_including_multiline_signature() {
    let v = lint_source(
        "crates/join/src/fixture.rs",
        &fixture("r4_violating.rs"),
        &Config::default(),
    );
    let r4 = v.iter().filter(|v| v.rule == Rule::MustUseResult).count();
    assert_eq!(r4, 2, "both solve and solve_multiline must fire: {v:?}");
}

#[test]
fn r4_clean_fixture_is_silent() {
    assert_eq!(
        rules_fired("r4_clean.rs", "crates/join/src/fixture.rs"),
        vec![]
    );
}

#[test]
fn r5_violating_fixture_is_flagged() {
    assert_eq!(
        rules_fired("r5_violating.rs", "crates/x/src/util.rs"),
        vec![Rule::NoProcessExit]
    );
}

#[test]
fn r5_clean_fixture_is_silent_under_bin_path() {
    assert_eq!(
        rules_fired("r5_clean.rs", "crates/x/src/bin/tool.rs"),
        vec![]
    );
}

#[test]
fn r6_violating_fixture_is_flagged() {
    assert_eq!(
        rules_fired("r6_violating.rs", "crates/x/src/solver.rs"),
        vec![Rule::NoAdhocTiming]
    );
}

#[test]
fn r6_is_exempt_in_engine_experiments_and_bench_code() {
    for rel in [
        "crates/engine/src/budget.rs",
        "crates/core/src/experiments.rs",
        "crates/x/src/bin/tool.rs",
        "crates/x/benches/b.rs",
    ] {
        assert_eq!(
            rules_fired("r6_violating.rs", rel),
            vec![],
            "R6 must not fire under {rel}"
        );
    }
}

#[test]
fn r6_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r6_clean.rs", "crates/x/src/solver.rs"), vec![]);
}

#[test]
fn r7_violating_fixture_is_flagged_in_hot_paths() {
    let v = lint_source(
        "crates/sat/src/dpll.rs",
        &fixture("r7_violating.rs"),
        &Config::default(),
    );
    let r7 = v
        .iter()
        .filter(|v| v.rule == Rule::NoUncheckedIndex)
        .count();
    assert_eq!(r7, 2, "both indexing sites must fire: {v:?}");
}

#[test]
fn r7_violating_fixture_is_ignored_outside_hot_paths() {
    // The same source in a non-hot-path module: R7 is scoped by path.
    assert_eq!(
        rules_fired("r7_violating.rs", "crates/sat/src/cnf.rs"),
        vec![]
    );
}

#[test]
fn r7_clean_fixture_is_silent() {
    assert_eq!(rules_fired("r7_clean.rs", "crates/sat/src/dpll.rs"), vec![]);
}

#[test]
fn bad_directives_are_reported_and_do_not_suppress() {
    let v = lint_source(
        "crates/x/src/foo.rs",
        &fixture("d0_bad_directive.rs"),
        &Config::default(),
    );
    let d0 = v.iter().filter(|v| v.rule == Rule::BadDirective).count();
    let r1 = v.iter().filter(|v| v.rule == Rule::NoPanic).count();
    assert_eq!(
        d0, 2,
        "missing-reason and unknown-rule must both fire: {v:?}"
    );
    assert_eq!(
        r1, 1,
        "a reasonless allow must not suppress the unwrap: {v:?}"
    );
}

#[test]
fn good_directives_suppress_cleanly() {
    assert_eq!(
        rules_fired("d0_good_directive.rs", "crates/x/src/foo.rs"),
        vec![]
    );
}

#[test]
fn every_rule_has_a_violating_and_a_clean_fixture() {
    // Meta-check: the fixture corpus stays complete as rules evolve.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for code in ["r1", "r2", "r3", "r4", "r5", "r6", "r7"] {
        for suffix in ["violating", "clean"] {
            let name = format!("{code}_{suffix}.rs");
            assert!(dir.join(&name).exists(), "fixture corpus is missing {name}");
        }
    }
}
