//! Property tests tying R10 (`checkpoint-schema-drift`) to reality: the
//! fingerprint must move when an encoder body changes, must NOT move for
//! comment-only edits, and `--write-baseline` must round-trip byte-identically
//! against the committed baseline.

use lb_lint::semantic::fingerprint_fns;
use lb_lint::{items, lexer, Config, Rule};
use std::path::Path;

fn workspace_root() -> &'static Path {
    lb_lint::default_workspace_root()
}

fn dpll_source() -> String {
    std::fs::read_to_string(workspace_root().join("crates/sat/src/dpll.rs"))
        .expect("crates/sat/src/dpll.rs must exist")
}

fn ck_fns() -> Vec<String> {
    vec!["encode".to_string(), "decode".to_string()]
}

/// Inserts `line` into `src` just after 1-indexed line `after`.
fn insert_after(src: &str, after: usize, line: &str) -> String {
    let mut lines: Vec<&str> = src.lines().collect();
    assert!(after < lines.len(), "insertion point inside the file");
    lines.insert(after, line);
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[test]
fn mutating_the_real_encoder_body_moves_the_fingerprint() {
    let src = dpll_source();
    let scanned = lexer::scan(&src);
    let (before, found) = fingerprint_fns(&scanned, &ck_fns());
    assert_eq!(
        found,
        vec!["decode".to_string(), "encode".to_string()],
        "both checkpoint fns must be located in dpll.rs"
    );

    let body = items::parse(&scanned)
        .fns
        .iter()
        .find(|f| f.name == "encode")
        .expect("dpll.rs has an encode fn")
        .body
        .expect("encode has a body");
    assert!(body.end > body.start, "encode body spans multiple lines");

    let mutated = insert_after(&src, body.start, "        let _schema_probe = 0;");
    let (after, _) = fingerprint_fns(&lexer::scan(&mutated), &ck_fns());
    assert_ne!(
        before, after,
        "a statement added to the encoder body must change the fingerprint"
    );
}

#[test]
fn comment_only_edits_do_not_move_the_fingerprint() {
    let src = dpll_source();
    let scanned = lexer::scan(&src);
    let (before, _) = fingerprint_fns(&scanned, &ck_fns());

    let body = items::parse(&scanned)
        .fns
        .iter()
        .find(|f| f.name == "encode")
        .expect("dpll.rs has an encode fn")
        .body
        .expect("encode has a body");

    let commented = insert_after(
        &src,
        body.start,
        "        // a comment inside the encoder body",
    );
    let (after, _) = fingerprint_fns(&lexer::scan(&commented), &ck_fns());
    assert_eq!(
        before, after,
        "comments must not participate in the schema fingerprint"
    );
}

#[test]
fn write_baseline_round_trips_byte_identically() {
    let root = workspace_root();
    let scratch = std::env::temp_dir().join(format!("lb-lint-schema-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    // `root.join(absolute)` is the absolute path, so an absolute
    // `baseline_file` redirects the baseline out of the repo.
    let config = Config {
        baseline_file: scratch.join("baseline.txt").to_string_lossy().into_owned(),
        ..Config::default()
    };

    let first = lb_lint::write_baseline(root, &config).expect("first write");
    let analysis = lb_lint::analyze_workspace(root, &config).expect("workspace analysis");
    let r10: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == Rule::CheckpointSchemaDrift)
        .collect();
    assert!(
        r10.is_empty(),
        "a freshly written baseline must satisfy R10: {r10:?}"
    );

    let second = lb_lint::write_baseline(root, &config).expect("second write");
    let _ = std::fs::remove_dir_all(&scratch);
    assert_eq!(first, second, "write-baseline must be deterministic");
}

#[test]
fn committed_baseline_matches_what_write_baseline_produces() {
    let root = workspace_root();
    let config = Config::default();
    let committed = std::fs::read_to_string(root.join(&config.baseline_file))
        .expect("the R10 baseline must be committed");
    let files: Vec<(String, String)> = config
        .checkpoint_specs
        .iter()
        .map(|spec| {
            let source = std::fs::read_to_string(root.join(&spec.file))
                .unwrap_or_else(|_| panic!("checkpoint file {} must exist", spec.file));
            (spec.file.clone(), source)
        })
        .collect();
    let rendered =
        lb_lint::semantic::render_baseline(&files, &config).expect("render the baseline");
    assert_eq!(
        committed, rendered,
        "the committed baseline drifted from the checkpoint encoders; \
         run `lb-lint --write-baseline` and review the payload versions"
    );
}
