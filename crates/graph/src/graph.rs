//! Simple undirected graphs.
//!
//! Vertices are `0..n`. The representation keeps both a sorted adjacency list
//! per vertex (for iteration) and a bitset adjacency matrix (for O(1) edge
//! tests), which is the right trade-off for the dense combinatorial
//! algorithms in this workspace (clique search, treewidth elimination,
//! partitioned subgraph isomorphism).

use std::fmt;

/// A word-packed bitset used for adjacency rows and vertex subsets.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size this set ranges over.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns whether it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1 << b;
        !present
    }

    /// Removes `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Size of the intersection, without materializing it.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True iff the two sets share an element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Smallest member, if any.
    pub fn min(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects into a bitset whose universe is the max element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// A simple undirected graph on vertices `0..n`.
///
/// Self-loops and parallel edges are rejected by [`Graph::add_edge`].
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<usize>>,
    rows: Vec<BitSet>,
    m: usize,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
            rows: (0..n).map(|_| BitSet::new(n)).collect(),
            m: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges and self-loops are ignored.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Adds edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(!self.has_edge(u, v), "duplicate edge {{{u}, {v}}}");
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.rows[u].insert(v);
        self.rows[v].insert(u);
        self.m += 1;
    }

    /// O(1) adjacency test.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows[u].contains(v)
    }

    /// Neighbors of `u` in insertion order.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Neighborhood of `u` as a bitset row.
    pub fn neighbor_set(&self, u: usize) -> &BitSet {
        &self.rows[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// All edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.m);
        for u in 0..self.n {
            for &v in &self.adj[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Closed neighborhood `N[u] = N(u) ∪ {u}` (paper §7, dominating set).
    pub fn closed_neighborhood(&self, u: usize) -> BitSet {
        let mut s = self.rows[u].clone();
        s.insert(u);
        s
    }

    /// The complement graph.
    pub fn complement(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Induced subgraph on `verts`; returns the subgraph and the map
    /// from new vertex ids to original ids.
    pub fn induced_subgraph(&self, verts: &[usize]) -> (Graph, Vec<usize>) {
        let mut index = vec![usize::MAX; self.n];
        for (i, &v) in verts.iter().enumerate() {
            index[v] = i;
        }
        let mut g = Graph::new(verts.len());
        for (i, &v) in verts.iter().enumerate() {
            for &w in &self.adj[v] {
                let j = index[w];
                if j != usize::MAX && i < j {
                    g.add_edge(i, j);
                }
            }
        }
        (g, verts.to_vec())
    }

    /// True iff `verts` induces a clique.
    pub fn is_clique(&self, verts: &[usize]) -> bool {
        for (i, &u) in verts.iter().enumerate() {
            for &v in &verts[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// True iff `verts` is a dominating set: every vertex is in `verts`
    /// or adjacent to a member.
    pub fn is_dominating_set(&self, verts: &[usize]) -> bool {
        let mut dominated = BitSet::new(self.n);
        for &v in verts {
            dominated.union_with(&self.closed_neighborhood(v));
        }
        dominated.count() == self.n
    }

    /// True iff `verts` is a vertex cover: every edge has an endpoint in it.
    pub fn is_vertex_cover(&self, verts: &[usize]) -> bool {
        let mut cover = BitSet::new(self.n);
        for &v in verts {
            cover.insert(v);
        }
        self.edges()
            .iter()
            .all(|&(u, v)| cover.contains(u) || cover.contains(v))
    }

    /// Connected components, each a sorted vertex list.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for s in 0..self.n {
            if seen[s] {
                continue;
            }
            let mut stack = vec![s];
            seen[s] = true;
            let mut comp = Vec::new();
            while let Some(u) = stack.pop() {
                comp.push(u);
                for &v in &self.adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// True iff the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// True iff the component induces a simple path (in some vertex order).
    ///
    /// Used to recognize the path component of a "special" graph
    /// (Definition 4.3).
    pub fn component_is_path(&self, comp: &[usize]) -> bool {
        if comp.len() == 1 {
            return true;
        }
        let mut deg1 = 0;
        for &v in comp {
            match self.degree(v) {
                1 => deg1 += 1,
                2 => {}
                _ => return false,
            }
        }
        // A connected component with max degree 2 and exactly two endpoints
        // is a path; with zero degree-1 vertices it would be a cycle.
        deg1 == 2 && self.component_edge_count(comp) == comp.len() - 1
    }

    fn component_edge_count(&self, comp: &[usize]) -> usize {
        comp.iter().map(|&v| self.degree(v)).sum::<usize>() / 2
    }

    /// Greedy proper coloring (first-fit in vertex order); returns the colors.
    pub fn greedy_coloring(&self) -> Vec<usize> {
        let mut color = vec![usize::MAX; self.n];
        for u in 0..self.n {
            let mut used: Vec<usize> = self.adj[u]
                .iter()
                .map(|&v| color[v])
                .filter(|&c| c != usize::MAX)
                .collect();
            used.sort_unstable();
            used.dedup();
            let mut c = 0;
            for &uc in &used {
                if uc == c {
                    c += 1;
                } else if uc > c {
                    break;
                }
            }
            color[u] = c;
        }
        color
    }

    /// Validates a proper coloring.
    pub fn is_proper_coloring(&self, color: &[usize]) -> bool {
        color.len() == self.n && self.edges().iter().all(|&(u, v)| color[u] != color[v])
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.n,
            self.m,
            self.edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_basic_ops() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.count(), 3);
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn bitset_set_algebra() {
        let a: BitSet = [1usize, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2usize, 64].into_iter().collect();
        let mut a2 = a.clone();
        // Universes differ (4+1=65 vs 65): same here.
        a2.intersect_with(&b);
        assert_eq!(a2.iter().collect::<Vec<_>>(), vec![2, 64]);
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert_eq!(a.intersection_count(&b), 2);
        assert!(a.intersects(&b));
    }

    #[test]
    fn triangle_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(g.is_connected());
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn from_edges_dedups() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn no_self_loops() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn complement_roundtrip() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let gc = g.complement();
        assert_eq!(g.num_edges() + gc.num_edges(), 5 * 4 / 2);
        assert_eq!(gc.complement(), g);
    }

    #[test]
    fn components_and_paths() {
        // Path 0-1-2 plus triangle 3-4-5.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)]);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert!(g.component_is_path(&comps[0]));
        assert!(!g.component_is_path(&comps[1]));
        assert!(!g.is_connected());
    }

    #[test]
    fn cycle_is_not_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 1);
        assert!(!g.component_is_path(&comps[0]));
    }

    #[test]
    fn induced_subgraph_keeps_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let (h, map) = g.induced_subgraph(&[0, 1, 4]);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2); // {0,1} and {0,4}
        assert_eq!(map, vec![0, 1, 4]);
    }

    #[test]
    fn dominating_and_cover_checks() {
        // Star with center 0.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert!(g.is_dominating_set(&[0]));
        assert!(!g.is_dominating_set(&[1]));
        assert!(g.is_vertex_cover(&[0]));
        assert!(!g.is_vertex_cover(&[1, 2]));
    }

    #[test]
    fn greedy_coloring_is_proper() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let c = g.greedy_coloring();
        assert!(g.is_proper_coloring(&c));
    }

    #[test]
    fn closed_neighborhood_contains_self() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let n0 = g.closed_neighborhood(0);
        assert!(n0.contains(0) && n0.contains(1) && !n0.contains(2));
    }
}
