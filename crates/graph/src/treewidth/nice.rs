//! Nice tree decompositions.
//!
//! A *nice* decomposition is a rooted binary decomposition whose nodes are of
//! four kinds — leaf (empty bag), introduce, forget, join — such that bags
//! change by one vertex at a time. Freuder-style dynamic programming
//! (Theorem 4.2) is cleanest on this form: `lb-csp`'s treewidth DP consumes
//! [`NiceDecomposition`] directly, and counting solutions is correct without
//! any inclusion–exclusion bookkeeping.

use super::TreeDecomposition;

/// Kind of a nice-decomposition node. Indices refer to [`NiceDecomposition`]
/// node ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NiceNode {
    /// An empty bag with no children.
    Leaf,
    /// Bag = child's bag ∪ {var}.
    Introduce { child: usize, var: usize },
    /// Bag = child's bag \ {var}.
    Forget { child: usize, var: usize },
    /// Bag identical to both children's bags.
    Join { left: usize, right: usize },
}

/// A nice tree decomposition; the root always has an **empty bag**, so a
/// bottom-up DP ends with a single table entry.
#[derive(Clone, Debug)]
pub struct NiceDecomposition {
    /// Sorted bag per node.
    pub bags: Vec<Vec<usize>>,
    /// Node kinds; children indices always point to lower-indexed nodes, so
    /// iterating nodes in increasing order is a valid bottom-up evaluation
    /// order.
    pub kinds: Vec<NiceNode>,
    /// Index of the root node (always the last node).
    pub root: usize,
}

impl NiceDecomposition {
    /// Width: `max |bag| − 1` (an all-empty decomposition has width 0).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// Structural validation: node-kind/bag consistency and bottom-up
    /// ordering of children.
    pub fn validate(&self) -> Result<(), String> {
        if self.bags.len() != self.kinds.len() {
            return Err("bags/kinds length mismatch".into());
        }
        if self.root != self.bags.len() - 1 {
            return Err("root must be the last node".into());
        }
        if !self.bags[self.root].is_empty() {
            return Err("root bag must be empty".into());
        }
        for (i, kind) in self.kinds.iter().enumerate() {
            match *kind {
                NiceNode::Leaf => {
                    if !self.bags[i].is_empty() {
                        return Err(format!("leaf node {i} has nonempty bag"));
                    }
                }
                NiceNode::Introduce { child, var } => {
                    if child >= i {
                        return Err(format!("node {i} child {child} not below it"));
                    }
                    let mut expect = self.bags[child].clone();
                    if expect.binary_search(&var).is_ok() {
                        return Err(format!(
                            "introduce node {i}: var {var} already in child bag"
                        ));
                    }
                    expect.push(var);
                    expect.sort_unstable();
                    if expect != self.bags[i] {
                        return Err(format!("introduce node {i}: bag mismatch"));
                    }
                }
                NiceNode::Forget { child, var } => {
                    if child >= i {
                        return Err(format!("node {i} child {child} not below it"));
                    }
                    let mut expect = self.bags[child].clone();
                    match expect.binary_search(&var) {
                        Ok(pos) => {
                            expect.remove(pos);
                        }
                        Err(_) => {
                            return Err(format!("forget node {i}: var {var} not in child bag"))
                        }
                    }
                    if expect != self.bags[i] {
                        return Err(format!("forget node {i}: bag mismatch"));
                    }
                }
                NiceNode::Join { left, right } => {
                    if left >= i || right >= i {
                        return Err(format!("join node {i} has a child not below it"));
                    }
                    if self.bags[left] != self.bags[i] || self.bags[right] != self.bags[i] {
                        return Err(format!("join node {i}: children bags differ from own"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Converts a [`TreeDecomposition`] into nice form, rooted at bag 0, with an
/// empty root bag appended on top.
///
/// `_num_graph_vertices` is accepted for interface clarity (bags are already
/// bounded by it) but not otherwise needed.
pub fn make_nice(td: &TreeDecomposition, _num_graph_vertices: usize) -> NiceDecomposition {
    let nb = td.num_bags();
    // Rooted tree structure over td's bags.
    let mut adj = vec![Vec::new(); nb];
    for &(a, b) in td.tree_edges() {
        adj[a].push(b);
        adj[b].push(a);
    }
    // Iterative DFS from bag 0 to get children lists and a post-order.
    let root_bag = 0usize;
    let mut parent = vec![usize::MAX; nb];
    let mut order = Vec::with_capacity(nb);
    let mut stack = vec![root_bag];
    let mut seen = vec![false; nb];
    seen[root_bag] = true;
    while let Some(x) = stack.pop() {
        order.push(x);
        for &y in &adj[x] {
            if !seen[y] {
                seen[y] = true;
                parent[y] = x;
                stack.push(y);
            }
        }
    }
    // Post-order: reverse of the DFS discovery order works for processing
    // children before parents only if children are discovered after parents,
    // which DFS guarantees.
    let post: Vec<usize> = order.iter().rev().copied().collect();
    let children: Vec<Vec<usize>> = {
        let mut ch = vec![Vec::new(); nb];
        for v in 0..nb {
            if parent[v] != usize::MAX {
                ch[parent[v]].push(v);
            }
        }
        ch
    };

    let mut bags: Vec<Vec<usize>> = Vec::new();
    let mut kinds: Vec<NiceNode> = Vec::new();
    // For each td bag, the nice node index whose bag equals it.
    let mut nice_of = vec![usize::MAX; nb];

    let push = |bags: &mut Vec<Vec<usize>>,
                kinds: &mut Vec<NiceNode>,
                bag: Vec<usize>,
                kind: NiceNode|
     -> usize {
        bags.push(bag);
        kinds.push(kind);
        bags.len() - 1
    };

    // Builds a chain from `from_node` (whose bag is `from_bag`) to `to_bag`
    // via forgets then introduces; returns the top node index.
    let morph = |bags: &mut Vec<Vec<usize>>,
                 kinds: &mut Vec<NiceNode>,
                 mut node: usize,
                 from_bag: &[usize],
                 to_bag: &[usize]|
     -> usize {
        let mut cur: Vec<usize> = from_bag.to_vec();
        // Forget everything not in the target.
        let to_forget: Vec<usize> = cur
            .iter()
            .copied()
            .filter(|v| to_bag.binary_search(v).is_err())
            .collect();
        for v in to_forget {
            // lb-lint: allow(no-panic, panic-reachability) -- invariant: v was inserted into cur before this search
            let pos = cur.binary_search(&v).expect("var present");
            cur.remove(pos);
            node = {
                bags.push(cur.clone());
                kinds.push(NiceNode::Forget {
                    child: node,
                    var: v,
                });
                bags.len() - 1
            };
        }
        // Introduce everything missing.
        let to_introduce: Vec<usize> = to_bag
            .iter()
            .copied()
            .filter(|v| cur.binary_search(v).is_err())
            .collect();
        for v in to_introduce {
            let pos = cur.binary_search(&v).unwrap_err();
            cur.insert(pos, v);
            node = {
                bags.push(cur.clone());
                kinds.push(NiceNode::Introduce {
                    child: node,
                    var: v,
                });
                bags.len() - 1
            };
        }
        node
    };

    for &t in &post {
        let target = td.bags()[t].clone();
        // Build a base node with bag = target.
        let mut acc: Option<usize> = None;
        for &c in &children[t] {
            let child_top = nice_of[c];
            let child_bag = td.bags()[c].clone();
            let morphed = morph(&mut bags, &mut kinds, child_top, &child_bag, &target);
            acc = Some(match acc {
                None => morphed,
                Some(prev) => {
                    // Join prev and morphed (both have bag == target).
                    push(
                        &mut bags,
                        &mut kinds,
                        target.clone(),
                        NiceNode::Join {
                            left: prev,
                            right: morphed,
                        },
                    )
                }
            });
        }
        let node = match acc {
            Some(node) => node,
            None => {
                // Leaf bag: start from empty and introduce everything.
                let leaf = push(&mut bags, &mut kinds, vec![], NiceNode::Leaf);
                morph(&mut bags, &mut kinds, leaf, &[], &target)
            }
        };
        nice_of[t] = node;
    }

    // Forget the root bag down to empty.
    let root_top = nice_of[root_bag];
    let root_bag_content = td.bags()[root_bag].clone();
    let final_root = morph(&mut bags, &mut kinds, root_top, &root_bag_content, &[]);
    // Edge case: the root bag was already empty and had no children; ensure
    // at least one node exists (push already guaranteed it).
    let root = final_root;

    NiceDecomposition { bags, kinds, root }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::treewidth::elimination::from_elimination_order;
    use crate::treewidth::heuristics::min_fill_order;

    fn nice_for(g: &crate::graph::Graph) -> NiceDecomposition {
        let td = from_elimination_order(g, &min_fill_order(g));
        td.validate(g).unwrap();
        td.to_nice(g.num_vertices())
    }

    #[test]
    fn path_nice_is_valid_width_1() {
        let g = generators::path(6);
        let nd = nice_for(&g);
        nd.validate().unwrap();
        assert_eq!(nd.width(), 1);
    }

    #[test]
    fn cycle_nice_is_valid_width_2() {
        let g = generators::cycle(8);
        let nd = nice_for(&g);
        nd.validate().unwrap();
        assert_eq!(nd.width(), 2);
    }

    #[test]
    fn clique_nice_is_valid() {
        let g = generators::clique(5);
        let nd = nice_for(&g);
        nd.validate().unwrap();
        assert_eq!(nd.width(), 4);
    }

    #[test]
    fn every_graph_vertex_introduced_and_forgotten() {
        // In a nice decomposition with empty root, each vertex is introduced
        // at least once and forgotten at least once. (A vertex may be
        // introduced once per branch below a join, so counts need not match.)
        let g = generators::k_tree(2, 9, 3);
        let nd = nice_for(&g);
        nd.validate().unwrap();
        let mut intro = [0usize; 9];
        let mut forget = [0usize; 9];
        for k in &nd.kinds {
            match *k {
                NiceNode::Introduce { var, .. } => intro[var] += 1,
                NiceNode::Forget { var, .. } => forget[var] += 1,
                _ => {}
            }
        }
        for v in 0..9 {
            assert!(intro[v] >= 1, "vertex {v} never introduced");
            assert!(forget[v] >= 1, "vertex {v} never forgotten");
        }
    }

    #[test]
    fn trivial_decomposition_nice() {
        let _g = generators::clique(3);
        let td = super::super::TreeDecomposition::trivial(3);
        let nd = td.to_nice(3);
        nd.validate().unwrap();
        assert_eq!(nd.width(), 2);
    }

    #[test]
    fn single_vertex_graph() {
        let g = crate::graph::Graph::new(1);
        let td = super::super::TreeDecomposition::trivial(1);
        td.validate(&g).unwrap();
        let nd = td.to_nice(1);
        nd.validate().unwrap();
    }

    #[test]
    fn disconnected_graph_nice() {
        let g = crate::graph::Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let nd = nice_for(&g);
        nd.validate().unwrap();
        assert_eq!(nd.width(), 1);
    }
}
