//! Exact treewidth for small graphs.
//!
//! Dynamic programming over vertex subsets (Bodlaender–Koster style): for a
//! set `S ⊆ V`, let `f(S)` be the minimum over orderings that eliminate
//! exactly the vertices of `S` first of the maximum back-degree incurred.
//! Then
//!
//! ```text
//! f(∅)  = 0
//! f(S)  = min over v ∈ S of max( f(S \ {v}),  Q(S \ {v}, v) )
//! tw(G) = f(V)
//! ```
//!
//! where `Q(S', v)` is the number of vertices outside `S' ∪ {v}` reachable
//! from `v` through `S'` — exactly v's back-degree in the fill-in graph when
//! it is eliminated right after `S'`.
//!
//! The table has `2^n` entries, so this is limited to `n ≤ MAX_EXACT_N`
//! vertices; for larger graphs use the heuristics in
//! [`super::heuristics`]. All experiment workloads that need *exact* widths
//! (validating the reductions of §5–§7) stay below this limit.

use crate::graph::Graph;

/// Largest vertex count accepted by the exact algorithms.
pub const MAX_EXACT_N: usize = 22;

/// Exact treewidth of `g`.
///
/// # Panics
/// Panics if `g` has more than [`MAX_EXACT_N`] vertices.
pub fn treewidth_exact(g: &Graph) -> usize {
    let (w, _) = treewidth_exact_order(g);
    w
}

/// Exact treewidth together with an optimal elimination ordering.
///
/// # Panics
/// Panics if `g` has more than [`MAX_EXACT_N`] vertices.
pub fn treewidth_exact_order(g: &Graph) -> (usize, Vec<usize>) {
    let n = g.num_vertices();
    assert!(
        n <= MAX_EXACT_N,
        "exact treewidth limited to {MAX_EXACT_N} vertices (got {n}); use the heuristics"
    );
    if n == 0 {
        return (0, vec![]);
    }

    // Adjacency as bitmasks over u32 (n ≤ 22 < 32).
    let adj: Vec<u32> = (0..n)
        .map(|v| g.neighbors(v).iter().fold(0u32, |acc, &w| acc | (1 << w)))
        .collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    let mut f = vec![u8::MAX; 1usize << n];
    f[0] = 0;
    // Iterate subsets in increasing popcount order implicitly: any S > all
    // its subsets numerically is not guaranteed, but S \ {v} < S always
    // holds numerically, so a plain ascending loop is safe.
    for s in 1..=(full as usize) {
        let s32 = s as u32;
        let mut best = u8::MAX;
        let mut bits = s32;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let prev = s32 & !(1 << v);
            let sub = f[prev as usize];
            if sub >= best {
                continue; // cannot improve
            }
            let q = back_degree(&adj, full, prev, v);
            let cand = sub.max(q as u8);
            if cand < best {
                best = cand;
            }
        }
        f[s] = best;
    }

    // Reconstruct an optimal ordering by walking down from the full set.
    let tw = f[full as usize] as usize;
    let mut order_rev = Vec::with_capacity(n);
    let mut s = full;
    while s != 0 {
        let mut bits = s;
        let mut chosen = None;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let prev = s & !(1 << v);
            let q = back_degree(&adj, full, prev, v);
            if f[prev as usize].max(q as u8) == f[s as usize] {
                chosen = Some(v);
                break;
            }
        }
        // lb-lint: allow(no-panic) -- invariant: the DP table records a witness for every reconstructed state
        let v = chosen.expect("DP reconstruction must find a witness");
        order_rev.push(v);
        s &= !(1 << v);
    }
    order_rev.reverse();
    (tw, order_rev)
}

/// `Q(S, v)`: vertices outside `S ∪ {v}` reachable from `v` through `S`.
fn back_degree(adj: &[u32], full: u32, s: u32, v: usize) -> usize {
    // BFS from v where intermediate vertices must lie in S.
    let mut reached_in_s: u32 = adj[v] & s;
    let mut frontier = reached_in_s;
    let mut outside: u32 = adj[v] & !s & full & !(1 << v);
    while frontier != 0 {
        let u = frontier.trailing_zeros() as usize;
        frontier &= frontier - 1;
        let new_in_s = adj[u] & s & !reached_in_s;
        reached_in_s |= new_in_s;
        frontier |= new_in_s;
        outside |= adj[u] & !s & full & !(1 << v);
    }
    outside.count_ones() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::treewidth::elimination::{elimination_width, from_elimination_order};
    use crate::treewidth::heuristics::treewidth_upper_bound;

    #[test]
    fn known_widths() {
        assert_eq!(treewidth_exact(&generators::path(8)), 1);
        assert_eq!(treewidth_exact(&generators::cycle(8)), 2);
        assert_eq!(treewidth_exact(&generators::clique(7)), 6);
        assert_eq!(treewidth_exact(&Graph::new(5)), 0);
        assert_eq!(treewidth_exact(&generators::complete_bipartite(3, 4)), 3);
    }

    #[test]
    fn grid_3x3_is_3() {
        assert_eq!(treewidth_exact(&generators::grid(3, 3)), 3);
    }

    #[test]
    fn k_tree_width_is_k() {
        for k in 1..=3 {
            let g = generators::k_tree(k, 10, 99);
            assert_eq!(treewidth_exact(&g), k, "k = {k}");
        }
    }

    #[test]
    fn optimal_order_achieves_width() {
        let g = generators::gnp(12, 0.3, 5);
        let (tw, order) = treewidth_exact_order(&g);
        assert_eq!(elimination_width(&g, &order), tw);
        let td = from_elimination_order(&g, &order);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), tw);
    }

    #[test]
    fn heuristics_never_beat_exact() {
        for seed in 0..5u64 {
            let g = generators::gnp(11, 0.35, seed);
            let tw = treewidth_exact(&g);
            let (ub, _) = treewidth_upper_bound(&g);
            assert!(ub >= tw, "heuristic {ub} below exact {tw}");
        }
    }

    #[test]
    fn petersen_graph_is_4() {
        let g = generators::petersen();
        assert_eq!(treewidth_exact(&g), 4);
    }

    use crate::graph::Graph;
}
