//! Tree decompositions from elimination orderings.
//!
//! Every elimination ordering of a graph yields a tree decomposition whose
//! width is the maximum back-degree in the fill-in graph; conversely every
//! tree decomposition induces an ordering of no larger width, so treewidth
//! equals the minimum over orderings. This is the bridge between the
//! ordering-based heuristics/exact DP and the bag-based Definition 4.1.

use super::TreeDecomposition;
use crate::graph::{BitSet, Graph};

/// Builds a tree decomposition from an elimination `order`
/// (`order[0]` is eliminated first).
///
/// The bag of the vertex `v` eliminated at step `t` is `{v} ∪ N_fill(v)`
/// where `N_fill(v)` is v's neighborhood among not-yet-eliminated vertices in
/// the fill-in graph. The bag of `v` is attached to the bag of the earliest
/// eliminated vertex in `N_fill(v)`.
///
/// # Panics
/// Panics unless `order` is a permutation of `0..g.num_vertices()`.
pub fn from_elimination_order(g: &Graph, order: &[usize]) -> TreeDecomposition {
    let n = g.num_vertices();
    assert_eq!(
        order.len(),
        n,
        "order must mention every vertex exactly once"
    );
    let mut position = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        assert!(
            v < n && position[v] == usize::MAX,
            "order is not a permutation"
        );
        position[v] = i;
    }
    if n == 0 {
        return TreeDecomposition::new(vec![vec![]], vec![]);
    }

    // Fill-in neighborhoods, maintained as bitsets over remaining vertices.
    let mut nbr: Vec<BitSet> = (0..n).map(|v| g.neighbor_set(v).clone()).collect();
    let mut eliminated = BitSet::new(n);

    let mut bags: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut tree_edges: Vec<(usize, usize)> = Vec::new();
    // bag_of[v] = index of the bag created when v was eliminated.
    let mut bag_of = vec![usize::MAX; n];

    for (step, &v) in order.iter().enumerate() {
        // Remaining (not yet eliminated) fill-neighbors of v.
        let mut rem = nbr[v].clone();
        rem.difference_with(&eliminated);
        let higher: Vec<usize> = rem.iter().collect();

        let mut bag = higher.clone();
        bag.push(v);
        bag.sort_unstable();
        let bag_idx = bags.len();
        bags.push(bag);
        bag_of[v] = bag_idx;

        // Connect fill-neighbors pairwise (simulate elimination of v).
        for (i, &a) in higher.iter().enumerate() {
            for &b in &higher[i + 1..] {
                nbr[a].insert(b);
                nbr[b].insert(a);
            }
        }
        eliminated.insert(v);

        // Attach this bag to the bag of the first-to-be-eliminated
        // remaining neighbor. If none (isolated / last vertex), attach to the
        // bag of the next vertex in the order once it exists.
        if let Some(&succ) = higher.iter().min_by_key(|&&w| position[w]) {
            // succ is eliminated later, so its bag doesn't exist yet; record
            // a pending edge keyed by succ.
            pending_attach(&mut tree_edges, bag_idx, succ, step, order, &bag_of);
        } else if step + 1 < n {
            // Keep the tree connected across graph components: chain to the
            // next eliminated vertex's bag.
            pending_attach(
                &mut tree_edges,
                bag_idx,
                order[step + 1],
                step,
                order,
                &bag_of,
            );
        }
    }

    // Resolve pending attachments: during the loop, bag indices for later
    // vertices weren't known, so edges were stored as (bag, vertex) with the
    // vertex in the high half. Fix them up now.
    let tree_edges = tree_edges
        .into_iter()
        .map(|(b, v_marker)| (b, bag_of[v_marker - MARKER]))
        .collect();

    TreeDecomposition::new(bags, tree_edges)
}

/// Offset distinguishing "vertex id" markers from bag indices inside the
/// temporary edge list (bag indices are < n ≤ MARKER).
const MARKER: usize = usize::MAX / 2;

fn pending_attach(
    tree_edges: &mut Vec<(usize, usize)>,
    bag_idx: usize,
    target_vertex: usize,
    _step: usize,
    _order: &[usize],
    _bag_of: &[usize],
) {
    tree_edges.push((bag_idx, MARKER + target_vertex));
}

/// Width of an elimination ordering: the maximum back-degree over the
/// fill-in process. Equals the width of [`from_elimination_order`]'s result.
pub fn elimination_width(g: &Graph, order: &[usize]) -> usize {
    let n = g.num_vertices();
    let mut nbr: Vec<BitSet> = (0..n).map(|v| g.neighbor_set(v).clone()).collect();
    let mut eliminated = BitSet::new(n);
    let mut width = 0usize;
    for &v in order {
        let mut rem = nbr[v].clone();
        rem.difference_with(&eliminated);
        let higher: Vec<usize> = rem.iter().collect();
        width = width.max(higher.len());
        for (i, &a) in higher.iter().enumerate() {
            for &b in &higher[i + 1..] {
                nbr[a].insert(b);
                nbr[b].insert(a);
            }
        }
        eliminated.insert(v);
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_identity_order_width_1() {
        let g = generators::path(6);
        let order: Vec<usize> = (0..6).collect();
        assert_eq!(elimination_width(&g, &order), 1);
        let td = from_elimination_order(&g, &order);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn clique_any_order_width_k_minus_1() {
        let g = generators::clique(5);
        let order: Vec<usize> = (0..5).collect();
        let td = from_elimination_order(&g, &order);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 4);
    }

    #[test]
    fn cycle_width_2() {
        let g = generators::cycle(7);
        let order: Vec<usize> = (0..7).collect();
        let td = from_elimination_order(&g, &order);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn bad_order_still_valid_decomposition() {
        // Eliminating the middle of a path first inflates width but must
        // still produce a *valid* decomposition.
        let g = generators::path(5);
        let order = vec![2, 0, 1, 3, 4];
        let td = from_elimination_order(&g, &order);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), elimination_width(&g, &order));
    }

    #[test]
    fn disconnected_graph_stays_a_tree() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let order: Vec<usize> = (0..6).collect();
        let td = from_elimination_order(&g, &order);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn edgeless_graph() {
        let g = Graph::new(4);
        let order: Vec<usize> = (0..4).collect();
        let td = from_elimination_order(&g, &order);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 0);
    }

    use crate::graph::Graph;
}
