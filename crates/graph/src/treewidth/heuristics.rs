//! Elimination-order heuristics: min-degree and min-fill.
//!
//! These produce upper bounds on treewidth quickly. For the graph families
//! used in the paper's reductions they are frequently optimal: both return
//! width k on k-trees, width k−1 on k-cliques, width 1 on trees. The bench
//! `e3` ablates which heuristic feeds Freuder's dynamic program.

use super::elimination::from_elimination_order;
use super::TreeDecomposition;
use crate::graph::{BitSet, Graph};

/// The min-degree elimination ordering: repeatedly eliminate a vertex of
/// minimum degree in the current fill-in graph (ties broken by vertex id).
pub fn min_degree_order(g: &Graph) -> Vec<usize> {
    greedy_order(g, |nbr, alive, v| {
        let mut s = nbr[v].clone();
        s.intersect_with(alive);
        s.count()
    })
}

/// The min-fill elimination ordering: repeatedly eliminate the vertex whose
/// elimination adds the fewest fill edges (ties broken by vertex id).
pub fn min_fill_order(g: &Graph) -> Vec<usize> {
    greedy_order(g, |nbr, alive, v| {
        let mut s = nbr[v].clone();
        s.intersect_with(alive);
        let hood: Vec<usize> = s.iter().collect();
        let mut fill = 0usize;
        for (i, &a) in hood.iter().enumerate() {
            for &b in &hood[i + 1..] {
                if !nbr[a].contains(b) {
                    fill += 1;
                }
            }
        }
        fill
    })
}

fn greedy_order<F>(g: &Graph, mut score: F) -> Vec<usize>
where
    F: FnMut(&[BitSet], &BitSet, usize) -> usize,
{
    let n = g.num_vertices();
    let mut nbr: Vec<BitSet> = (0..n).map(|v| g.neighbor_set(v).clone()).collect();
    let mut alive = BitSet::new(n);
    for v in 0..n {
        alive.insert(v);
    }
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = alive
            .iter()
            .min_by_key(|&v| (score(&nbr, &alive, v), v))
            // lb-lint: allow(no-panic, panic-reachability) -- invariant: the elimination loop runs only while the alive set is nonempty
            .expect("alive set nonempty");
        // Connect remaining neighbors pairwise.
        let mut rem = nbr[v].clone();
        rem.intersect_with(&alive);
        let hood: Vec<usize> = rem.iter().collect();
        for (i, &a) in hood.iter().enumerate() {
            for &b in &hood[i + 1..] {
                nbr[a].insert(b);
                nbr[b].insert(a);
            }
        }
        alive.remove(v);
        order.push(v);
    }
    order
}

/// A treewidth upper bound: the best of min-degree and min-fill, returned as
/// `(width, decomposition)`.
pub fn treewidth_upper_bound(g: &Graph) -> (usize, TreeDecomposition) {
    let d1 = from_elimination_order(g, &min_degree_order(g));
    let d2 = from_elimination_order(g, &min_fill_order(g));
    if d1.width() <= d2.width() {
        (d1.width(), d1)
    } else {
        (d2.width(), d2)
    }
}

/// The MMD (maximum minimum degree / degeneracy) lower bound on treewidth:
/// repeatedly delete a minimum-degree vertex; the largest minimum degree
/// seen is a lower bound on tw(G). Sandwiching
/// `treewidth_lower_bound ≤ tw ≤ treewidth_upper_bound` certifies the
/// heuristics on graphs too large for the exact DP.
pub fn treewidth_lower_bound(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut alive = BitSet::new(n);
    for v in 0..n {
        alive.insert(v);
    }
    let mut bound = 0usize;
    for _ in 0..n {
        let (v, deg) = alive
            .iter()
            .map(|v| {
                let mut s = g.neighbor_set(v).clone();
                s.intersect_with(&alive);
                (v, s.count())
            })
            .min_by_key(|&(v, d)| (d, v))
            // lb-lint: allow(no-panic) -- invariant: the elimination loop runs only while the alive set is nonempty
            .expect("alive set nonempty");
        bound = bound.max(deg);
        alive.remove(v);
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn tree_gets_width_1() {
        // A binary-ish tree.
        let g = Graph::from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let (w, td) = treewidth_upper_bound(&g);
        td.validate(&g).unwrap();
        assert_eq!(w, 1);
    }

    #[test]
    fn cycle_gets_width_2() {
        let g = generators::cycle(9);
        let (w, td) = treewidth_upper_bound(&g);
        td.validate(&g).unwrap();
        assert_eq!(w, 2);
    }

    #[test]
    fn clique_gets_width_k_minus_1() {
        let g = generators::clique(6);
        let (w, _) = treewidth_upper_bound(&g);
        assert_eq!(w, 5);
    }

    #[test]
    fn k_tree_gets_width_k() {
        let g = generators::k_tree(3, 12, 42);
        let (w, td) = treewidth_upper_bound(&g);
        td.validate(&g).unwrap();
        assert_eq!(w, 3);
    }

    #[test]
    fn grid_width_at_most_side() {
        let g = generators::grid(4, 4);
        let (w, td) = treewidth_upper_bound(&g);
        td.validate(&g).unwrap();
        // tw(4x4 grid) = 4; heuristics achieve ≤ 5 comfortably.
        assert!((4..=5).contains(&w), "got width {w}");
    }

    #[test]
    fn lower_bound_sandwich() {
        use crate::treewidth::exact::treewidth_exact;
        for seed in 0..8u64 {
            let g = generators::gnp(12, 0.3, seed);
            let lo = treewidth_lower_bound(&g);
            let tw = treewidth_exact(&g);
            let (hi, _) = treewidth_upper_bound(&g);
            assert!(lo <= tw, "seed {seed}: MMD {lo} exceeds tw {tw}");
            assert!(tw <= hi, "seed {seed}");
        }
    }

    #[test]
    fn lower_bound_exact_on_cliques_and_cycles() {
        assert_eq!(treewidth_lower_bound(&generators::clique(6)), 5);
        assert_eq!(treewidth_lower_bound(&generators::cycle(9)), 2);
        assert_eq!(treewidth_lower_bound(&generators::path(5)), 1);
    }

    #[test]
    fn orders_are_permutations() {
        let g = generators::gnp(20, 0.3, 7);
        for order in [min_degree_order(&g), min_fill_order(&g)] {
            let mut s = order.clone();
            s.sort_unstable();
            assert_eq!(s, (0..20).collect::<Vec<_>>());
        }
    }

    use crate::graph::Graph;
}
