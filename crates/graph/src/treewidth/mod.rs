//! Tree decompositions and treewidth (paper Definition 4.1).
//!
//! Treewidth drives the tractability landscape of the whole paper:
//! CSP(𝒢) is polynomial-time solvable iff 𝒢 has bounded treewidth
//! (Theorem 5.2), Freuder's algorithm solves CSPs in |V| · |D|^{k+1} given a
//! width-k decomposition (Theorem 4.2), and the ETH/SETH lower bounds of
//! §6–§7 show the exponent k is essentially optimal.
//!
//! This module provides:
//! * [`TreeDecomposition`] with full validity checking;
//! * construction from elimination orderings ([`elimination`]);
//! * the min-degree and min-fill heuristics ([`heuristics`]);
//! * exact treewidth for small graphs by dynamic programming over vertex
//!   subsets ([`exact`]);
//! * *nice* tree decompositions ([`nice`]) consumed by the CSP dynamic
//!   program in `lb-csp`.

pub mod elimination;
pub mod exact;
pub mod heuristics;
pub mod nice;

pub use elimination::from_elimination_order;
pub use exact::{treewidth_exact, treewidth_exact_order};
pub use heuristics::{
    min_degree_order, min_fill_order, treewidth_lower_bound, treewidth_upper_bound,
};
pub use nice::{NiceDecomposition, NiceNode};

use crate::graph::Graph;

/// A tree decomposition (Definition 4.1): a tree whose nodes carry *bags* of
/// vertices such that (1) bags cover all vertices, (2) every edge is inside
/// some bag, and (3) the nodes containing any fixed vertex form a subtree.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// Bag contents; each bag is sorted and deduplicated.
    bags: Vec<Vec<usize>>,
    /// Tree edges between bag indices.
    tree_edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Builds a decomposition from raw parts; bags are sorted/deduplicated.
    ///
    /// # Panics
    /// Panics if there are no bags or a tree edge index is out of range.
    /// Structural validity against a graph is checked by [`Self::validate`].
    pub fn new(mut bags: Vec<Vec<usize>>, tree_edges: Vec<(usize, usize)>) -> Self {
        assert!(
            !bags.is_empty(),
            "a tree decomposition needs at least one bag"
        );
        for b in &mut bags {
            b.sort_unstable();
            b.dedup();
        }
        for &(a, b) in &tree_edges {
            assert!(a < bags.len() && b < bags.len(), "tree edge out of range");
        }
        TreeDecomposition { bags, tree_edges }
    }

    /// A trivial decomposition: one bag containing every vertex. Width n−1.
    pub fn trivial(n: usize) -> Self {
        TreeDecomposition::new(vec![(0..n).collect()], vec![])
    }

    /// The bags.
    pub fn bags(&self) -> &[Vec<usize>] {
        &self.bags
    }

    /// The tree edges (pairs of bag indices).
    pub fn tree_edges(&self) -> &[(usize, usize)] {
        &self.tree_edges
    }

    /// Number of bags.
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// Width: `max |bag| − 1`.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Checks the three conditions of Definition 4.1 against `g`, plus that
    /// the tree edges actually form a tree (connected, acyclic) when there is
    /// more than one bag.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        let n = g.num_vertices();
        // The tree must be a tree.
        if self.bags.len() > 1 {
            if self.tree_edges.len() != self.bags.len() - 1 {
                return Err(format!(
                    "tree has {} edges for {} bags; a tree needs exactly {}",
                    self.tree_edges.len(),
                    self.bags.len(),
                    self.bags.len() - 1
                ));
            }
            if !self.tree_is_connected() {
                return Err("decomposition tree is not connected".to_string());
            }
        }
        // (1) Bags cover all vertices.
        let mut covered = vec![false; n];
        for b in &self.bags {
            for &v in b {
                if v >= n {
                    return Err(format!("bag vertex {v} out of range (n = {n})"));
                }
                covered[v] = true;
            }
        }
        if let Some(v) = covered.iter().position(|&c| !c) {
            return Err(format!("vertex {v} appears in no bag"));
        }
        // (2) Every edge is inside some bag.
        'edges: for (u, v) in g.edges() {
            for b in &self.bags {
                if b.binary_search(&u).is_ok() && b.binary_search(&v).is_ok() {
                    continue 'edges;
                }
            }
            return Err(format!("edge {{{u}, {v}}} is in no bag"));
        }
        // (3) Occurrences of each vertex form a connected subtree.
        for v in 0..n {
            if !self.vertex_occurrences_connected(v) {
                return Err(format!("occurrences of vertex {v} are not connected"));
            }
        }
        Ok(())
    }

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.bags.len()];
        for &(a, b) in &self.tree_edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    fn tree_is_connected(&self) -> bool {
        let adj = self.adjacency();
        let mut seen = vec![false; self.bags.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut cnt = 1;
        while let Some(x) = stack.pop() {
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    cnt += 1;
                    stack.push(y);
                }
            }
        }
        cnt == self.bags.len()
    }

    fn vertex_occurrences_connected(&self, v: usize) -> bool {
        let holders: Vec<usize> = (0..self.bags.len())
            .filter(|&i| self.bags[i].binary_search(&v).is_ok())
            .collect();
        if holders.len() <= 1 {
            return true;
        }
        let adj = self.adjacency();
        let mut in_holders = vec![false; self.bags.len()];
        for &h in &holders {
            in_holders[h] = true;
        }
        let mut seen = vec![false; self.bags.len()];
        let mut stack = vec![holders[0]];
        seen[holders[0]] = true;
        let mut cnt = 1;
        while let Some(x) = stack.pop() {
            for &y in &adj[x] {
                if in_holders[y] && !seen[y] {
                    seen[y] = true;
                    cnt += 1;
                    stack.push(y);
                }
            }
        }
        cnt == holders.len()
    }

    /// Converts to a *nice* decomposition rooted at bag 0 (see [`nice`]).
    pub fn to_nice(&self, num_graph_vertices: usize) -> NiceDecomposition {
        nice::make_nice(self, num_graph_vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn trivial_decomposition_is_valid() {
        let g = generators::clique(5);
        let td = TreeDecomposition::trivial(5);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 4);
    }

    #[test]
    fn path_decomposition() {
        // Path 0-1-2-3: bags {0,1},{1,2},{2,3} in a path.
        let g = generators::path(4);
        let td = TreeDecomposition::new(
            vec![vec![0, 1], vec![1, 2], vec![2, 3]],
            vec![(0, 1), (1, 2)],
        );
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn missing_edge_detected() {
        let g = generators::clique(3);
        let td = TreeDecomposition::new(vec![vec![0, 1], vec![1, 2]], vec![(0, 1)]);
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("edge"), "unexpected error: {err}");
    }

    #[test]
    fn disconnected_occurrences_detected() {
        let g = generators::path(3);
        // Vertex 0 appears in bags 0 and 2 but not 1 → not a subtree.
        let td = TreeDecomposition::new(
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![(0, 1), (1, 2)],
        );
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("not connected"), "unexpected error: {err}");
    }

    #[test]
    fn non_tree_detected() {
        let g = generators::path(3);
        let td = TreeDecomposition::new(vec![vec![0, 1], vec![1, 2], vec![1]], vec![(0, 1)]);
        assert!(td.validate(&g).is_err());
    }

    #[test]
    fn uncovered_vertex_detected() {
        let g = Graph::new(3); // edgeless
        let td = TreeDecomposition::new(vec![vec![0, 1]], vec![]);
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("no bag"), "unexpected error: {err}");
    }
}
