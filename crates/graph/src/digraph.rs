//! Directed graphs and strongly connected components.
//!
//! The main client is the linear-time 2SAT solver in `lb-sat` (the
//! polynomial-time case contrasted with 3SAT in paper §4), which needs
//! Tarjan's SCC algorithm over the implication graph.

/// A directed graph on vertices `0..n` with adjacency lists.
#[derive(Clone, Debug)]
pub struct DiGraph {
    n: usize,
    adj: Vec<Vec<usize>>,
    m: usize,
}

impl DiGraph {
    /// Creates an arcless digraph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.m
    }

    /// Adds arc `u → v` (parallel arcs allowed; harmless for SCC).
    pub fn add_arc(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "arc endpoint out of range");
        self.adj[u].push(v);
        self.m += 1;
    }

    /// Out-neighbors of `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Tarjan's strongly connected components, iteratively (no recursion, so
    /// implication graphs with hundreds of thousands of literals are fine).
    ///
    /// Returns `comp` where `comp[v]` is the SCC index of `v`. Components are
    /// numbered in *reverse topological order*: if there is an arc from SCC
    /// `a` to SCC `b` with `a != b`, then `comp` index of `a` is **greater**
    /// than that of `b`. (This is the property the 2SAT solver relies on.)
    pub fn tarjan_scc(&self) -> SccResult {
        let n = self.n;
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![usize::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut num_comps = 0usize;

        // Explicit DFS stack: (vertex, next child position).
        let mut call: Vec<(usize, usize)> = Vec::new();

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            call.push((root, 0));
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci < self.adj[v].len() {
                    let w = self.adj[v][*ci];
                    *ci += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        loop {
                            // lb-lint: allow(no-panic, panic-reachability) -- invariant: Tarjan pushes w before popping it, so the stack cannot underflow
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = num_comps;
                            if w == v {
                                break;
                            }
                        }
                        num_comps += 1;
                    }
                }
            }
        }

        SccResult { comp, num_comps }
    }

    /// Topological order of a DAG, or `None` if the digraph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for u in 0..self.n {
            for &v in &self.adj[u] {
                indeg[v] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &self.adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }
}

/// Result of an SCC computation.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// `comp[v]` is the component index of vertex `v`, in reverse
    /// topological order of the condensation.
    pub comp: Vec<usize>,
    /// Number of strongly connected components.
    pub num_comps: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_scc() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1);
        g.add_arc(1, 2);
        g.add_arc(2, 3);
        g.add_arc(3, 0);
        let r = g.tarjan_scc();
        assert_eq!(r.num_comps, 1);
        assert!(r.comp.iter().all(|&c| c == r.comp[0]));
    }

    #[test]
    fn dag_has_singleton_sccs_in_reverse_topo_order() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, 1);
        g.add_arc(1, 2);
        let r = g.tarjan_scc();
        assert_eq!(r.num_comps, 3);
        // Arc a→b implies comp[a] > comp[b].
        assert!(r.comp[0] > r.comp[1]);
        assert!(r.comp[1] > r.comp[2]);
    }

    #[test]
    fn two_cycles_bridge() {
        // SCCs: {0,1}, {2,3}, with a bridge 1→2.
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1);
        g.add_arc(1, 0);
        g.add_arc(2, 3);
        g.add_arc(3, 2);
        g.add_arc(1, 2);
        let r = g.tarjan_scc();
        assert_eq!(r.num_comps, 2);
        assert_eq!(r.comp[0], r.comp[1]);
        assert_eq!(r.comp[2], r.comp[3]);
        assert!(r.comp[0] > r.comp[2]);
    }

    #[test]
    fn topological_order_of_dag() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1);
        g.add_arc(0, 2);
        g.add_arc(1, 3);
        g.add_arc(2, 3);
        let order = g.topological_order().expect("dag");
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2] && pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_has_no_topological_order() {
        let mut g = DiGraph::new(2);
        g.add_arc(0, 1);
        g.add_arc(1, 0);
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert_eq!(g.tarjan_scc().num_comps, 0);
        assert_eq!(g.topological_order(), Some(vec![]));
    }

    #[test]
    fn large_path_does_not_overflow_stack() {
        let n = 200_000;
        let mut g = DiGraph::new(n);
        for v in 0..n - 1 {
            g.add_arc(v, v + 1);
        }
        let r = g.tarjan_scc();
        assert_eq!(r.num_comps, n);
    }
}
