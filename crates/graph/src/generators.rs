//! Graph and hypergraph generators for the experiment harness.
//!
//! Deterministic families (paths, cycles, cliques, grids, k-trees) exercise
//! the treewidth machinery; random families (G(n, p), random d-uniform
//! hypergraphs) drive the scaling experiments E6–E12. All random generators
//! take an explicit seed so experiments are reproducible.

use crate::graph::Graph;
use crate::hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Path on `n` vertices: edges `{i, i+1}`.
pub fn path(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// Cycle on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges)
}

/// Complete graph K_n.
pub fn clique(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(i, j);
        }
    }
    g
}

/// Star with center 0 and `leaves` leaves.
pub fn star(leaves: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (1..=leaves).map(|i| (0, i)).collect();
    Graph::from_edges(leaves + 1, &edges)
}

/// Complete bipartite graph K_{a,b}: sides `0..a` and `a..a+b`.
///
/// Used in the Theorem 7.2 reduction (dominating set → CSP), whose primal
/// graph is complete bipartite with treewidth min(a, b).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for i in 0..a {
        for j in 0..b {
            g.add_edge(i, a + j);
        }
    }
    g
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    g
}

/// The Petersen graph (10 vertices, 15 edges, treewidth 4).
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for i in 0..5 {
        g.add_edge(i, (i + 1) % 5); // outer cycle
        g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
        g.add_edge(i, 5 + i); // spokes
    }
    g
}

/// The Turán graph T(n, r): complete r-partite with near-equal classes.
/// Dense (the densest graph possible) yet K_{r+1}-free — the canonical
/// worst-case NO instance for (r+1)-clique search.
pub fn turan(n: usize, r: usize) -> Graph {
    assert!(r >= 1);
    let class = |v: usize| v % r;
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if class(u) != class(v) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// The d-uniform Turán-style hypergraph on r classes: every d-set with at
/// most one vertex per class is a hyperedge. For r = k−1 it has no
/// k-hyperclique (two of any k vertices share a class, and the triple
/// containing both is missing), yet it is as dense as that allows.
pub fn turan_hypergraph(n: usize, d: usize, r: usize) -> Hypergraph {
    assert!(r >= d, "need at least d classes for rainbow d-sets");
    let class = |v: usize| v % r;
    let mut h = Hypergraph::new(n);
    let mut edge: Vec<usize> = (0..d).collect();
    loop {
        let mut classes: Vec<usize> = edge.iter().map(|&v| class(v)).collect();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() == d {
            h.add_edge(edge.clone());
        }
        // Next d-combination.
        let mut i = d;
        loop {
            if i == 0 {
                return h;
            }
            i -= 1;
            if edge[i] != i + n - d {
                break;
            }
            if i == 0 {
                return h;
            }
        }
        edge[i] += 1;
        for j in (i + 1)..d {
            edge[j] = edge[j - 1] + 1;
        }
    }
}

/// Erdős–Rényi G(n, p) with a fixed seed.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// A random graph with exactly `m` edges chosen uniformly (G(n, m) model).
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max = n * (n - 1) / 2;
    assert!(m <= max, "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let mut added = 0usize;
    while added < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
            added += 1;
        }
    }
    g
}

/// A random k-tree on `n ≥ k+1` vertices: start from a (k+1)-clique, then
/// attach each new vertex to a random existing k-clique. Treewidth exactly k
/// (for n > k).
pub fn k_tree(k: usize, n: usize, seed: u64) -> Graph {
    assert!(n > k, "k-tree needs at least k+1 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Track the k-cliques available for attachment.
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    for i in 0..=k {
        for j in (i + 1)..=k {
            g.add_edge(i, j);
        }
    }
    // All k-subsets of the initial (k+1)-clique.
    for skip in 0..=k {
        let c: Vec<usize> = (0..=k).filter(|&v| v != skip).collect();
        cliques.push(c);
    }
    for v in (k + 1)..n {
        let c = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &c {
            g.add_edge(v, u);
        }
        // New k-cliques: c with one vertex swapped for v.
        for skip in 0..c.len() {
            let mut nc = c.clone();
            nc[skip] = v;
            nc.sort_unstable();
            cliques.push(nc);
        }
    }
    g
}

/// A graph guaranteed to contain a planted k-clique, plus G(n, p) noise.
/// Returns `(graph, planted_clique_vertices)`.
pub fn planted_clique(n: usize, k: usize, p: f64, seed: u64) -> (Graph, Vec<usize>) {
    assert!(k <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Random vertex subset for the clique.
    let mut verts: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        verts.swap(i, j);
    }
    let planted: Vec<usize> = {
        let mut p: Vec<usize> = verts[..k].to_vec();
        p.sort_unstable();
        p
    };
    for (i, &u) in planted.iter().enumerate() {
        for &v in &planted[i + 1..] {
            g.add_edge(u, v);
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if !g.has_edge(i, j) && rng.gen::<f64>() < p {
                g.add_edge(i, j);
            }
        }
    }
    (g, planted)
}

/// Random `d`-uniform hypergraph: each of the C(n, d) possible hyperedges is
/// present independently with probability `p`.
pub fn random_uniform_hypergraph(n: usize, d: usize, p: f64, seed: u64) -> Hypergraph {
    assert!(d >= 1 && d <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = Hypergraph::new(n);
    let mut edge: Vec<usize> = (0..d).collect();
    loop {
        if rng.gen::<f64>() < p {
            h.add_edge(edge.clone());
        }
        // Next d-combination of 0..n in lexicographic order.
        let mut i = d;
        loop {
            if i == 0 {
                return h;
            }
            i -= 1;
            if edge[i] != i + n - d {
                break;
            }
            if i == 0 {
                return h;
            }
        }
        edge[i] += 1;
        for j in (i + 1)..d {
            edge[j] = edge[j - 1] + 1;
        }
    }
}

/// A `d`-uniform hypergraph with a planted k-hyperclique (all C(k, d)
/// hyperedges among the first k vertices) plus random noise hyperedges.
/// Returns `(hypergraph, planted_vertices)`.
pub fn planted_hyperclique(
    n: usize,
    d: usize,
    k: usize,
    p: f64,
    seed: u64,
) -> (Hypergraph, Vec<usize>) {
    assert!(d <= k && k <= n);
    let mut h = random_uniform_hypergraph(n, d, p, seed);
    // Plant on vertices 0..k: add every d-subset (duplicates are fine).
    let mut edge: Vec<usize> = (0..d).collect();
    loop {
        h.add_edge(edge.clone());
        let mut i = d;
        let mut done = false;
        loop {
            if i == 0 {
                done = true;
                break;
            }
            i -= 1;
            if edge[i] != i + k - d {
                break;
            }
            if i == 0 {
                done = true;
                break;
            }
        }
        if done {
            break;
        }
        edge[i] += 1;
        for j in (i + 1)..d {
            edge[j] = edge[j - 1] + 1;
        }
    }
    (h, (0..k).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_families_shapes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(clique(5).num_edges(), 10);
        assert_eq!(star(4).num_edges(), 4);
        assert_eq!(grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(complete_bipartite(2, 3).num_edges(), 6);
        let p = petersen();
        assert_eq!((p.num_vertices(), p.num_edges()), (10, 15));
        assert!((0..10).all(|v| p.degree(v) == 3));
    }

    #[test]
    fn turan_is_clique_free() {
        let g = turan(12, 3);
        // Complete 3-partite: no K4.
        for a in 0..12 {
            for b in (a + 1)..12 {
                for c in (b + 1)..12 {
                    for d in (c + 1)..12 {
                        assert!(!g.is_clique(&[a, b, c, d]));
                    }
                }
            }
        }
        // But plenty of triangles across classes.
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn turan_hypergraph_shape() {
        let h = turan_hypergraph(8, 3, 4);
        assert!(h.is_uniform(3));
        // Edge {0,1,2}: classes 0,1,2 distinct → present.
        assert!(h.edges().iter().any(|e| e == &vec![0, 1, 2]));
        // Edge {0,4,1}: 0 and 4 share class 0 → absent.
        assert!(!h.edges().iter().any(|e| e == &vec![0, 1, 4]));
    }

    #[test]
    fn gnp_is_seeded() {
        let a = gnp(20, 0.4, 1);
        let b = gnp(20, 0.4, 1);
        let c = gnp(20, 0.4, 2);
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 3).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 3).num_edges(), 45);
    }

    #[test]
    fn gnm_exact_edges() {
        let g = gnm(15, 30, 9);
        assert_eq!(g.num_edges(), 30);
    }

    #[test]
    fn k_tree_structure() {
        let g = k_tree(2, 10, 5);
        // 2-tree on n vertices has 2n - 3 edges.
        assert_eq!(g.num_edges(), 2 * 10 - 3);
        assert!(g.is_connected());
    }

    #[test]
    fn planted_clique_is_clique() {
        let (g, planted) = planted_clique(30, 6, 0.2, 11);
        assert_eq!(planted.len(), 6);
        assert!(g.is_clique(&planted));
    }

    #[test]
    fn random_hypergraph_uniformity() {
        let h = random_uniform_hypergraph(8, 3, 0.5, 13);
        assert!(h.is_uniform(3));
        assert!(h.num_edges() > 0 && h.num_edges() < 56);
    }

    #[test]
    fn planted_hyperclique_complete() {
        let (h, planted) = planted_hyperclique(10, 3, 5, 0.1, 17);
        assert_eq!(planted, vec![0, 1, 2, 3, 4]);
        // All C(5,3) = 10 hyperedges among 0..5 must be present.
        for a in 0..5 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    let want = vec![a, b, c];
                    assert!(
                        h.edges().iter().any(|e| e == &want),
                        "missing hyperedge {want:?}"
                    );
                }
            }
        }
    }
}
