//! Hypergraphs: the shared shape of join queries and CSP instances.
//!
//! Paper §2.1–§2.2: the hypergraph of a join query has the attributes as
//! vertices and one hyperedge per relation; the hypergraph of a CSP instance
//! has the variables as vertices and one hyperedge per constraint scope.
//! The fractional edge cover number ρ*(H) of this hypergraph governs the
//! worst-case answer size (the AGM bound, Theorems 3.1–3.3); it is computed
//! by `lb-lp` from the incidence data exposed here.

use crate::graph::Graph;

/// A hypergraph on vertices `0..n` with an ordered list of hyperedges.
///
/// Hyperedges store sorted, deduplicated vertex lists. Empty hyperedges are
/// rejected; duplicate hyperedges are allowed (two relations over the same
/// attribute set are legitimate in a query).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Creates a hypergraph with no hyperedges on `n` vertices.
    pub fn new(n: usize) -> Self {
        Hypergraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds a hypergraph from hyperedge vertex lists.
    pub fn from_edges(n: usize, edges: &[Vec<usize>]) -> Self {
        let mut h = Hypergraph::new(n);
        for e in edges {
            h.add_edge(e.clone());
        }
        h
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a hyperedge; the vertex list is sorted and deduplicated.
    ///
    /// # Panics
    /// Panics if the edge is empty or an endpoint is out of range.
    pub fn add_edge(&mut self, mut verts: Vec<usize>) {
        verts.sort_unstable();
        verts.dedup();
        assert!(!verts.is_empty(), "empty hyperedge");
        assert!(
            verts.iter().all(|&v| v < self.n),
            "hyperedge vertex out of range"
        );
        self.edges.push(verts);
    }

    /// The `i`-th hyperedge (sorted vertex list).
    pub fn edge(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// All hyperedges.
    pub fn edges(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// Indices of hyperedges containing vertex `v`.
    pub fn edges_containing(&self, v: usize) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.binary_search(&v).is_ok())
            .map(|(i, _)| i)
            .collect()
    }

    /// True iff every vertex lies in at least one hyperedge.
    ///
    /// The fractional-edge-cover LP is infeasible exactly when this fails.
    pub fn covers_all_vertices(&self) -> bool {
        let mut seen = vec![false; self.n];
        for e in &self.edges {
            for &v in e {
                seen[v] = true;
            }
        }
        seen.into_iter().all(|b| b)
    }

    /// True iff every hyperedge has exactly `d` vertices (paper §8,
    /// the d-uniform hyperclique conjecture).
    pub fn is_uniform(&self, d: usize) -> bool {
        self.edges.iter().all(|e| e.len() == d)
    }

    /// Maximum hyperedge arity.
    pub fn arity(&self) -> usize {
        self.edges.iter().map(|e| e.len()).max().unwrap_or(0)
    }

    /// The primal (Gaifman) graph: vertices of the hypergraph, with an edge
    /// between two vertices whenever some hyperedge contains both (§2.2).
    pub fn primal_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for e in &self.edges {
            for (i, &u) in e.iter().enumerate() {
                for &v in &e[i + 1..] {
                    if !g.has_edge(u, v) {
                        g.add_edge(u, v);
                    }
                }
            }
        }
        g
    }

    /// True iff `set` contains all of hyperedge `i`'s vertices.
    pub fn edge_inside(&self, i: usize, set: &[usize]) -> bool {
        self.edges[i].iter().all(|v| set.binary_search(v).is_ok())
    }

    /// The triangle hypergraph: 3 vertices, edges {0,1}, {0,2}, {1,2}.
    ///
    /// This is the running example of the paper (§3 and §8): ρ* = 3/2,
    /// AGM bound N^{3/2}.
    pub fn triangle() -> Self {
        Hypergraph::from_edges(3, &[vec![0, 1], vec![0, 2], vec![1, 2]])
    }

    /// The k-cycle hypergraph: vertices 0..k, binary edges {i, i+1 mod k}.
    pub fn cycle(k: usize) -> Self {
        assert!(k >= 3, "cycle needs at least 3 vertices");
        let edges: Vec<Vec<usize>> = (0..k).map(|i| vec![i, (i + 1) % k]).collect();
        Hypergraph::from_edges(k, &edges)
    }

    /// The star query hypergraph: center 0, binary edges {0, i} for i in 1..=k.
    pub fn star(k: usize) -> Self {
        let edges: Vec<Vec<usize>> = (1..=k).map(|i| vec![0, i]).collect();
        Hypergraph::from_edges(k + 1, &edges)
    }

    /// The Loomis–Whitney hypergraph LW(n): n vertices, and for each vertex v
    /// the hyperedge containing all vertices except v. ρ* = n/(n−1).
    ///
    /// LW(3) is the triangle. These are the canonical examples where the AGM
    /// bound has a fractional exponent.
    pub fn loomis_whitney(n: usize) -> Self {
        assert!(n >= 3, "Loomis-Whitney needs n >= 3");
        let edges: Vec<Vec<usize>> = (0..n)
            .map(|skip| (0..n).filter(|&v| v != skip).collect())
            .collect();
        Hypergraph::from_edges(n, &edges)
    }

    /// The k-clique hypergraph: all 2-element subsets of 0..k as edges.
    /// This is the primal structure of the Clique→CSP reduction (§5).
    pub fn clique(k: usize) -> Self {
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push(vec![i, j]);
            }
        }
        Hypergraph::from_edges(k, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_shape() {
        let h = Hypergraph::triangle();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert!(h.is_uniform(2));
        assert!(h.covers_all_vertices());
        let g = h.primal_graph();
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn edges_containing_vertex() {
        let h = Hypergraph::triangle();
        assert_eq!(h.edges_containing(0), vec![0, 1]);
        assert_eq!(h.edges_containing(2), vec![1, 2]);
    }

    #[test]
    fn loomis_whitney_3_is_triangle() {
        let mut lw = Hypergraph::loomis_whitney(3).edges().to_vec();
        let mut tri = Hypergraph::triangle().edges().to_vec();
        lw.sort();
        tri.sort();
        assert_eq!(lw, tri);
    }

    #[test]
    fn loomis_whitney_4_arity() {
        let h = Hypergraph::loomis_whitney(4);
        assert_eq!(h.num_edges(), 4);
        assert!(h.is_uniform(3));
        assert_eq!(h.arity(), 3);
    }

    #[test]
    fn star_coverage() {
        let h = Hypergraph::star(4);
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 4);
        assert!(h.covers_all_vertices());
        // Primal graph of a star query is a star graph.
        let g = h.primal_graph();
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn uncovered_vertex_detected() {
        let h = Hypergraph::from_edges(3, &[vec![0, 1]]);
        assert!(!h.covers_all_vertices());
    }

    #[test]
    fn hyperedge_sorted_dedup() {
        let mut h = Hypergraph::new(5);
        h.add_edge(vec![3, 1, 3, 2]);
        assert_eq!(h.edge(0), &[1, 2, 3]);
    }

    #[test]
    fn clique_hypergraph_edge_count() {
        let h = Hypergraph::clique(5);
        assert_eq!(h.num_edges(), 10);
        assert!(h.primal_graph().is_clique(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn edge_inside_check() {
        let h = Hypergraph::triangle();
        assert!(h.edge_inside(0, &[0, 1, 2]));
        assert!(h.edge_inside(0, &[0, 1]));
        assert!(!h.edge_inside(1, &[0, 1]));
    }

    #[test]
    #[should_panic(expected = "empty hyperedge")]
    fn empty_edge_rejected() {
        let mut h = Hypergraph::new(2);
        h.add_edge(vec![]);
    }
}
