//! Graphs, hypergraphs, generators, and treewidth.
//!
//! This crate is the combinatorial substrate for the `lowerbounds` workspace,
//! the reproduction of Marx, *"Modern Lower Bound Techniques in Database
//! Theory and Constraint Satisfaction"* (PODS 2021). Everything else —
//! CSP primal graphs, query hypergraphs, the treewidth-based dynamic program
//! of Freuder (Theorem 4.2), the "special" graphs of Definition 4.3 — builds
//! on the types defined here.
//!
//! # Contents
//!
//! * [`Graph`] — simple undirected graphs with O(1) adjacency tests.
//! * [`DiGraph`] — directed graphs with Tarjan SCCs (used by the 2SAT solver).
//! * [`Hypergraph`] — vertex/hyperedge incidence structures; the hypergraph
//!   of a join query or CSP instance (paper §2.1–§2.2).
//! * [`generators`] — deterministic and random graph/hypergraph families used
//!   by the experiment harness.
//! * [`treewidth`] — tree decompositions, elimination-order heuristics
//!   (min-degree, min-fill), and exact treewidth for small graphs.
//! * [`special`] — the "special" graphs of Definition 4.3 (a k-clique plus a
//!   path on 2^k vertices), the paper's candidate NP-intermediate family.

#![forbid(unsafe_code)]

pub mod digraph;
pub mod generators;
pub mod graph;
pub mod hypergraph;
pub mod special;
pub mod treewidth;

pub use digraph::DiGraph;
pub use graph::Graph;
pub use hypergraph::Hypergraph;
pub use special::SpecialGraph;
pub use treewidth::TreeDecomposition;
