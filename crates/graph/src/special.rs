//! "Special" graphs (paper Definition 4.3): a clique of size k plus a
//! disjoint path on exactly 2^k vertices.
//!
//! The paper uses this family to exhibit a (probably) NP-intermediate
//! problem: SPECIAL CSP is solvable in quasipolynomial time n^{O(log n)}
//! because the forced path inflates the input so much that k ≤ log n, yet it
//! is W\[1\]-hard by the Clique reduction of §5, and assuming the ETH it has
//! no f(|V|) · n^{o(log |V|)} algorithm (§6). This module builds and
//! recognizes the family; the quasipolynomial solver lives in
//! `lb-csp::solver::special` and the reduction in
//! `lb-reductions::clique_to_special`.

use crate::graph::Graph;

/// A recognized special graph: the clique vertices and the path vertices
/// (in path order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecialGraph {
    /// k, the clique size.
    pub k: usize,
    /// The clique component's vertices (sorted).
    pub clique: Vec<usize>,
    /// The path component's vertices, in path order (length 2^k).
    pub path: Vec<usize>,
}

/// Largest clique size for which the 2^k-vertex path is materialized.
/// Definition 4.3 is exact; this cap only guards against accidental
/// memory blow-ups in callers.
pub const MAX_SPECIAL_K: usize = 24;

/// Builds the special graph with clique size `k`: vertices `0..k` form the
/// clique and `k..k + 2^k` form the path.
///
/// # Panics
/// Panics if `k == 0` or `k > MAX_SPECIAL_K`.
pub fn special_graph(k: usize) -> Graph {
    assert!(k >= 1, "Definition 4.3 requires k >= 1");
    assert!(
        k <= MAX_SPECIAL_K,
        "special graph for k > {MAX_SPECIAL_K} would be enormous"
    );
    let path_len = 1usize << k;
    let n = k + path_len;
    let mut g = Graph::new(n);
    for i in 0..k {
        for j in (i + 1)..k {
            g.add_edge(i, j);
        }
    }
    for i in 0..path_len - 1 {
        g.add_edge(k + i, k + i + 1);
    }
    g
}

/// Recognizes whether `g` is special (Definition 4.3); returns the
/// decomposition if so.
///
/// A graph is special iff it has exactly two connected components, one a
/// clique of size k ≥ 1 and the other a path on exactly 2^k vertices.
pub fn recognize_special(g: &Graph) -> Option<SpecialGraph> {
    let comps = g.connected_components();
    if comps.len() != 2 {
        return None;
    }
    for (ci, pi) in [(0usize, 1usize), (1, 0)] {
        let cand_clique = &comps[ci];
        let cand_path = &comps[pi];
        let k = cand_clique.len();
        if k == 0 || k > MAX_SPECIAL_K {
            continue;
        }
        if !g.is_clique(cand_clique) {
            continue;
        }
        // A single vertex is both a K_1 and a path; require the *path*
        // component to have exactly 2^k vertices and be a path.
        if cand_path.len() != (1usize << k) {
            continue;
        }
        if !g.component_is_path(cand_path) {
            continue;
        }
        // Reconstruct path order: start from a degree-≤1 endpoint.
        let path = order_path(g, cand_path);
        return Some(SpecialGraph {
            k,
            clique: cand_clique.clone(),
            path,
        });
    }
    None
}

fn order_path(g: &Graph, comp: &[usize]) -> Vec<usize> {
    if comp.len() == 1 {
        return comp.to_vec();
    }
    let start = *comp
        .iter()
        .find(|&&v| g.degree(v) == 1)
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: a nonempty path graph has an endpoint of degree <= 1
        .expect("path has an endpoint");
    let mut order = Vec::with_capacity(comp.len());
    let mut prev = usize::MAX;
    let mut cur = start;
    loop {
        order.push(cur);
        let next = g.neighbors(cur).iter().copied().find(|&w| w != prev);
        match next {
            Some(w) => {
                prev = cur;
                cur = w;
            }
            None => break,
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_recognize() {
        for k in 1..=6 {
            let g = special_graph(k);
            assert_eq!(g.num_vertices(), k + (1 << k));
            let s = recognize_special(&g).expect("should recognize");
            assert_eq!(s.k, k);
            assert_eq!(s.clique, (0..k).collect::<Vec<_>>());
            assert_eq!(s.path.len(), 1 << k);
        }
    }

    #[test]
    fn k1_special_graph() {
        // k = 1: a K_1 plus a path on 2 vertices.
        let g = special_graph(1);
        assert_eq!(g.num_vertices(), 3);
        let s = recognize_special(&g).unwrap();
        assert_eq!(s.k, 1);
    }

    #[test]
    fn wrong_path_length_rejected() {
        // Clique of 2 + path of 3 (should be 4).
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        assert!(recognize_special(&g).is_none());
    }

    #[test]
    fn three_components_rejected() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)]);
        assert!(recognize_special(&g).is_none());
    }

    #[test]
    fn cycle_component_rejected() {
        // K_2 + C_4 (cycle, not path).
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4), (4, 5), (5, 2)]);
        assert!(recognize_special(&g).is_none());
    }

    #[test]
    fn path_order_is_a_path() {
        let g = special_graph(3);
        let s = recognize_special(&g).unwrap();
        for w in s.path.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    use crate::graph::Graph;
}
