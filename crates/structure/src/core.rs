//! Cores of relational structures (paper §5, Theorem 5.3).
//!
//! A structure A' is a *retract* of A if A' is an induced substructure and
//! there is a homomorphism A → A' fixing A' — equivalently (up to
//! homomorphic equivalence) just a hom A → A' into the substructure. The
//! *core* of A is its smallest retract; it is unique up to isomorphism, and
//! Grohe's Theorem 5.3 says HOM(𝒜, _) is tractable iff the cores of 𝒜 have
//! bounded treewidth. This module computes cores by iterated retraction:
//! repeatedly find an endomorphism onto a proper induced substructure until
//! none exists.
//!
//! Engine mapping: every entry point delegates its remaining budget to the
//! homomorphism search of [`crate::hom`] and absorbs its counters, so the
//! exponential retraction rounds are fully budget-visible.

use crate::hom::{enumerate_homomorphisms, find_homomorphism};
use crate::structure::Structure;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// True iff `a` is a core: it admits no homomorphism onto a proper induced
/// substructure — equivalently, every endomorphism of `a` is surjective.
/// `Sat(is_core)` or `Exhausted`.
pub fn is_core(a: &Structure, budget: &Budget) -> (Outcome<bool>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = is_core_inner(a, &mut ticker);
    ticker.finish(result)
}

fn is_core_inner(a: &Structure, ticker: &mut Ticker) -> Result<Option<bool>, ExhaustReason> {
    let n = a.universe();
    if n <= 1 {
        return Ok(Some(true));
    }
    let mut found_noninjective = false;
    let (out, stats) = enumerate_homomorphisms(a, a, &ticker.remaining_budget(), &mut |h| {
        let mut seen = vec![false; n];
        for &v in h {
            seen[v] = true;
        }
        if seen.iter().any(|&s| !s) {
            found_noninjective = true;
            true // stop
        } else {
            false
        }
    });
    ticker.absorb(&stats);
    match out {
        Outcome::Exhausted(r) => Err(r),
        _ => Ok(Some(!found_noninjective)),
    }
}

/// Computes the core of `a`: on completion, `Sat((core, map))` where
/// `map[new] = old` lists the original element ids the core retains.
///
/// Strategy: while some endomorphism misses an element, restrict to the
/// image and recurse. Each step shrinks the universe, so at most |A| rounds
/// of homomorphism search run.
pub fn compute_core(
    a: &Structure,
    budget: &Budget,
) -> (Outcome<(Structure, Vec<usize>)>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = compute_core_inner(a, &mut ticker);
    ticker.finish(result)
}

#[allow(clippy::type_complexity)]
fn compute_core_inner(
    a: &Structure,
    ticker: &mut Ticker,
) -> Result<Option<(Structure, Vec<usize>)>, ExhaustReason> {
    let mut current = a.clone();
    // old-id of each current element.
    let mut ids: Vec<usize> = (0..a.universe()).collect();
    loop {
        let n = current.universe();
        if n <= 1 {
            return Ok(Some((current, ids)));
        }
        // Find a non-surjective endomorphism, if any.
        let mut image: Option<Vec<usize>> = None;
        let (out, stats) =
            enumerate_homomorphisms(&current, &current, &ticker.remaining_budget(), &mut |h| {
                let mut seen = vec![false; n];
                for &v in h {
                    seen[v] = true;
                }
                if seen.iter().any(|&s| !s) {
                    image = Some(h.to_vec());
                    true
                } else {
                    false
                }
            });
        ticker.absorb(&stats);
        if let Outcome::Exhausted(r) = out {
            return Err(r);
        }
        let Some(h) = image else {
            return Ok(Some((current, ids)));
        };
        // Restrict to the image elements.
        let mut img: Vec<usize> = h.clone();
        img.sort_unstable();
        img.dedup();
        // The restriction of a non-surjective endomorphism need not itself
        // be a retraction of the substructure, but homomorphic equivalence
        // is preserved: current → sub (via h) and sub → current (inclusion),
        // so iterating still converges to the core.
        let (sub, kept) = current.induced_substructure(&img);
        debug_assert!(
            find_homomorphism(&current, &sub, &Budget::unlimited())
                .0
                .is_sat(),
            "h maps current into the substructure"
        );
        ids = kept.iter().map(|&k| ids[k]).collect();
        current = sub;
    }
}

/// True iff `a` and `b` are homomorphically equivalent (have homs both ways)
/// — the equivalence under which the core is the canonical representative.
/// `Sat(equivalent)` or `Exhausted`.
pub fn hom_equivalent(a: &Structure, b: &Structure, budget: &Budget) -> (Outcome<bool>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = hom_equivalent_inner(a, b, &mut ticker);
    ticker.finish(result)
}

fn hom_equivalent_inner(
    a: &Structure,
    b: &Structure,
    ticker: &mut Ticker,
) -> Result<Option<bool>, ExhaustReason> {
    for (x, y) in [(a, b), (b, a)] {
        let (out, stats) = find_homomorphism(x, y, &ticker.remaining_budget());
        ticker.absorb(&stats);
        match out {
            Outcome::Exhausted(r) => return Err(r),
            Outcome::Unsat => return Ok(Some(false)),
            Outcome::Sat(_) => {}
        }
    }
    Ok(Some(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{Structure, Vocabulary};
    use lb_graph::generators;

    fn gs(g: &lb_graph::Graph) -> Structure {
        Structure::from_graph(g)
    }

    fn is_core_u(a: &Structure) -> bool {
        is_core(a, &Budget::unlimited()).0.unwrap_sat()
    }

    fn core_u(a: &Structure) -> (Structure, Vec<usize>) {
        compute_core(a, &Budget::unlimited()).0.unwrap_sat()
    }

    fn equiv_u(a: &Structure, b: &Structure) -> bool {
        hom_equivalent(a, b, &Budget::unlimited()).0.unwrap_sat()
    }

    #[test]
    fn cliques_are_cores() {
        for k in 1..=4 {
            assert!(is_core_u(&gs(&generators::clique(k))), "K{k}");
        }
    }

    #[test]
    fn odd_cycles_are_cores() {
        assert!(is_core_u(&gs(&generators::cycle(5))));
        assert!(is_core_u(&gs(&generators::cycle(7))));
    }

    #[test]
    fn even_cycle_core_is_edge() {
        // Bipartite graphs with an edge retract to K2.
        let (core, _) = core_u(&gs(&generators::cycle(6)));
        assert_eq!(core.universe(), 2);
        assert!(equiv_u(&core, &gs(&generators::clique(2))));
    }

    #[test]
    fn path_core_is_edge() {
        let (core, ids) = core_u(&gs(&generators::path(5)));
        assert_eq!(core.universe(), 2);
        assert_eq!(ids.len(), 2);
        assert!(is_core_u(&core));
    }

    #[test]
    fn core_is_hom_equivalent_to_original() {
        let g = generators::grid(2, 3); // bipartite
        let s = gs(&g);
        let (core, _) = core_u(&s);
        assert!(equiv_u(&s, &core));
        assert!(is_core_u(&core));
        assert_eq!(core.universe(), 2);
    }

    #[test]
    fn disjoint_clique_and_triangle() {
        // K3 + K2 (disjoint): core is K3 (K2 maps into K3).
        let mut g = lb_graph::Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(3, 4);
        let (core, _) = core_u(&gs(&g));
        assert_eq!(core.universe(), 3);
        assert!(equiv_u(&core, &gs(&generators::clique(3))));
    }

    #[test]
    fn single_vertex_is_core() {
        let s = gs(&lb_graph::Graph::new(1));
        assert!(is_core_u(&s));
        let (core, ids) = core_u(&s);
        assert_eq!(core.universe(), 1);
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn edgeless_graph_core_is_single_vertex() {
        let s = gs(&lb_graph::Graph::new(4));
        let (core, _) = core_u(&s);
        assert_eq!(core.universe(), 1);
    }

    #[test]
    fn directed_path_core() {
        // Directed path 0→1→2→3 is hom-equivalent to... itself? A directed
        // path of length 3 has no shorter retract (height argument), and is
        // a core iff every endomorphism is onto. For the transitive-free
        // path, the only endomorphism is the identity.
        let voc = Vocabulary::digraph();
        let mut p = Structure::new(&voc, 4);
        p.add_tuple(0, vec![0, 1]);
        p.add_tuple(0, vec![1, 2]);
        p.add_tuple(0, vec![2, 3]);
        assert!(is_core_u(&p));
    }

    #[test]
    fn theorem_5_3_parameter_core_treewidth() {
        // The quantity Theorem 5.3 cares about: treewidth of the core. For
        // a big bipartite grid the core is K2 with treewidth 1, even though
        // the grid itself has larger treewidth.
        let g = generators::grid(3, 3);
        let s = gs(&g);
        let (core, _) = core_u(&s);
        let core_tw = lb_graph::treewidth::treewidth_exact(&core.gaifman_graph());
        assert_eq!(core_tw, 1);
        let grid_tw = lb_graph::treewidth::treewidth_exact(&g);
        assert!(grid_tw > core_tw);
    }

    #[test]
    fn tiny_budget_exhausts() {
        let s = gs(&generators::cycle(6));
        let b = Budget::ticks(0); // the delegated hom search exhausts at once
        assert!(is_core(&s, &b).0.is_exhausted());
        assert!(compute_core(&s, &b).0.is_exhausted());
        assert!(hom_equivalent(&s, &gs(&generators::clique(2)), &b)
            .0
            .is_exhausted());
    }
}
