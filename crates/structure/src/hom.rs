//! Homomorphism search between relational structures.
//!
//! Backtracking over the elements of A with candidate pruning: before the
//! search, a fixpoint of arc-consistency over the constraint "every tuple of
//! A must map into a tuple of B" shrinks each element's candidate set. The
//! search itself is the |B|^{|A|} brute force that Theorem 5.3 says cannot
//! be beaten in general (unless the cores of the A-side have bounded
//! treewidth).
//!
//! Engine mapping: one [`RunStats::propagations`] per support check in the
//! arc-consistency fixpoint and per tuple-compatibility check during the
//! search, one [`RunStats::nodes`] per candidate image tried, and one
//! [`RunStats::tuples`] per complete homomorphism visited.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations
//! [`RunStats::tuples`]: lb_engine::RunStats::tuples

use crate::structure::Structure;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Finds a homomorphism from `a` to `b`. `Sat(hom)`, `Unsat`, or
/// `Exhausted`.
pub fn find_homomorphism(
    a: &Structure,
    b: &Structure,
    budget: &Budget,
) -> (Outcome<Vec<usize>>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let mut result = None;
    let r = search(
        a,
        b,
        &mut |h| {
            result = Some(h.to_vec());
            true
        },
        &mut ticker,
    );
    ticker.finish(r.map(|_| result))
}

/// Counts all homomorphisms from `a` to `b`. `Sat(count)` or `Exhausted`.
pub fn count_homomorphisms(
    a: &Structure,
    b: &Structure,
    budget: &Budget,
) -> (Outcome<u64>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let mut n = 0u64;
    let r = search(
        a,
        b,
        &mut |_| {
            n += 1;
            false
        },
        &mut ticker,
    );
    ticker.finish(r.map(|_| Some(n)))
}

/// Enumerates homomorphisms through a callback; `true` stops the search.
/// `Sat(stopped_early)` or `Exhausted`.
pub fn enumerate_homomorphisms<F: FnMut(&[usize]) -> bool>(
    a: &Structure,
    b: &Structure,
    budget: &Budget,
    visit: &mut F,
) -> (Outcome<bool>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let r = search(a, b, visit, &mut ticker);
    ticker.finish(r.map(Some))
}

/// True iff `a` maps homomorphically into `b`. `Sat(exists)` or
/// `Exhausted`.
pub fn hom_exists(a: &Structure, b: &Structure, budget: &Budget) -> (Outcome<bool>, RunStats) {
    let (out, stats) = find_homomorphism(a, b, budget);
    let out = match out {
        Outcome::Sat(_) => Outcome::Sat(true),
        Outcome::Unsat => Outcome::Sat(false),
        Outcome::Exhausted(r) => Outcome::Exhausted(r),
    };
    (out, stats)
}

fn search<F: FnMut(&[usize]) -> bool>(
    a: &Structure,
    b: &Structure,
    visit: &mut F,
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    assert_eq!(
        a.num_relations(),
        b.num_relations(),
        "structures must share a vocabulary"
    );
    let na = a.universe();
    let nb = b.universe();
    if na == 0 {
        ticker.tuple()?;
        return Ok(visit(&[]));
    }
    if nb == 0 {
        return Ok(false);
    }

    // Candidate sets after arc-consistency pre-pruning.
    let mut candidates: Vec<Vec<bool>> = vec![vec![true; nb]; na];
    if !prune(a, b, &mut candidates, ticker)? {
        return Ok(false);
    }

    let mut h: Vec<Option<usize>> = vec![None; na];
    backtrack(a, b, &candidates, &mut h, visit, ticker)
}

/// Arc-consistency fixpoint: x can map to v only if every A-tuple through x
/// extends to a B-tuple with v at x's position (checking each tuple
/// position-wise against B's tuples). Returns false if a candidate set
/// empties.
fn prune(
    a: &Structure,
    b: &Structure,
    candidates: &mut [Vec<bool>],
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    loop {
        let mut changed = false;
        for sym in 0..a.num_relations() {
            for t in a.tuples(sym) {
                for (pos, &x) in t.iter().enumerate() {
                    for v in 0..b.universe() {
                        if !candidates[x][v] {
                            continue;
                        }
                        ticker.propagation()?;
                        // Is there a B-tuple with v at `pos` whose other
                        // coordinates are still candidates?
                        let supported = b.tuples(sym).iter().any(|u| {
                            u[pos] == v && t.iter().zip(u).all(|(&ax, &bv)| candidates[ax][bv])
                        });
                        if !supported {
                            candidates[x][v] = false;
                            changed = true;
                        }
                    }
                    if candidates[x].iter().all(|&c| !c) {
                        return Ok(false);
                    }
                }
            }
        }
        if !changed {
            return Ok(true);
        }
    }
}

fn backtrack<F: FnMut(&[usize]) -> bool>(
    a: &Structure,
    b: &Structure,
    candidates: &[Vec<bool>],
    h: &mut Vec<Option<usize>>,
    visit: &mut F,
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    // Most-constrained element first.
    let next = (0..a.universe())
        .filter(|&x| h[x].is_none())
        .min_by_key(|&x| candidates[x].iter().filter(|&&c| c).count());
    let x = match next {
        Some(x) => x,
        None => {
            // lb-lint: allow(no-panic) -- invariant: a complete homomorphism assigns every vertex
            let full: Vec<usize> = h.iter().map(|o| o.expect("complete")).collect();
            debug_assert!(a.is_homomorphism_to(b, &full));
            ticker.tuple()?;
            return Ok(visit(&full));
        }
    };
    for v in 0..b.universe() {
        if !candidates[x][v] {
            continue;
        }
        ticker.node()?;
        h[x] = Some(v);
        if consistent(a, b, h, x, ticker)? && backtrack(a, b, candidates, h, visit, ticker)? {
            return Ok(true);
        }
    }
    h[x] = None;
    Ok(false)
}

/// Checks every A-tuple that involves `x`: if fully mapped it must land in
/// B; if partially mapped some compatible B-tuple must remain.
fn consistent(
    a: &Structure,
    b: &Structure,
    h: &[Option<usize>],
    x: usize,
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    for sym in 0..a.num_relations() {
        for t in a.tuples(sym) {
            if !t.contains(&x) {
                continue;
            }
            ticker.propagation()?;
            let compatible = b.tuples(sym).iter().any(|u| {
                t.iter()
                    .zip(u)
                    .all(|(&ax, &bv)| h[ax].is_none_or(|hv| hv == bv))
            });
            if !compatible {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{Structure, Vocabulary};
    use lb_graph::generators;

    fn graph_structure(g: &lb_graph::Graph) -> Structure {
        Structure::from_graph(g)
    }

    fn exists(a: &Structure, b: &Structure) -> bool {
        hom_exists(a, b, &Budget::unlimited()).0.unwrap_sat()
    }

    fn count(a: &Structure, b: &Structure) -> u64 {
        count_homomorphisms(a, b, &Budget::unlimited())
            .0
            .unwrap_sat()
    }

    #[test]
    fn graph_coloring_as_homomorphism() {
        // G → K_k homomorphisms = proper k-colorings. C5 is 3-chromatic.
        let c5 = graph_structure(&generators::cycle(5));
        let k2 = graph_structure(&generators::clique(2));
        let k3 = graph_structure(&generators::clique(3));
        assert!(!exists(&c5, &k2));
        assert!(exists(&c5, &k3));
        // Count: proper 3-colorings of C5 = (3−1)^5 + (−1)^5·(3−1) = 30.
        assert_eq!(count(&c5, &k3), 30);
    }

    #[test]
    fn even_cycle_is_bipartite() {
        let c6 = graph_structure(&generators::cycle(6));
        let k2 = graph_structure(&generators::clique(2));
        assert!(exists(&c6, &k2));
        // 2-colorings of an even cycle: 2.
        assert_eq!(count(&c6, &k2), 2);
    }

    #[test]
    fn clique_to_smaller_clique_fails() {
        let k4 = graph_structure(&generators::clique(4));
        let k3 = graph_structure(&generators::clique(3));
        assert!(!exists(&k4, &k3));
        assert!(exists(&k3, &k4));
        // Injective maps K3 → K4: 4·3·2 = 24.
        assert_eq!(count(&k3, &k4), 24);
    }

    #[test]
    fn homomorphism_is_verified() {
        let p3 = graph_structure(&generators::path(3));
        let k2 = graph_structure(&generators::clique(2));
        let h = find_homomorphism(&p3, &k2, &Budget::unlimited())
            .0
            .unwrap_sat();
        assert!(p3.is_homomorphism_to(&k2, &h));
    }

    #[test]
    fn directed_structures() {
        // Directed path 0→1→2 has no hom into a single arc 0→1 (needs the
        // image of 1 to have an out-arc), but maps into a 2-cycle.
        let voc = Vocabulary::digraph();
        let mut dpath = Structure::new(&voc, 3);
        dpath.add_tuple(0, vec![0, 1]);
        dpath.add_tuple(0, vec![1, 2]);
        let mut arc = Structure::new(&voc, 2);
        arc.add_tuple(0, vec![0, 1]);
        assert!(!exists(&dpath, &arc));
        let mut two_cycle = Structure::new(&voc, 2);
        two_cycle.add_tuple(0, vec![0, 1]);
        two_cycle.add_tuple(0, vec![1, 0]);
        assert!(exists(&dpath, &two_cycle));
    }

    #[test]
    fn empty_a_has_one_hom() {
        let voc = Vocabulary::digraph();
        let a = Structure::new(&voc, 0);
        let b = Structure::new(&voc, 3);
        assert_eq!(count(&a, &b), 1);
    }

    #[test]
    fn empty_b_has_none() {
        let voc = Vocabulary::digraph();
        let a = Structure::new(&voc, 2);
        let b = Structure::new(&voc, 0);
        assert_eq!(count(&a, &b), 0);
    }

    #[test]
    fn no_tuples_means_all_maps() {
        let voc = Vocabulary::digraph();
        let a = Structure::new(&voc, 3);
        let b = Structure::new(&voc, 4);
        assert_eq!(count(&a, &b), 64);
    }

    #[test]
    fn multi_symbol_vocabulary() {
        // Two unary-ish… use two binary symbols R, S; A requires R-arc and
        // S-arc between the same pair; B has them on different pairs.
        let voc = Vocabulary::new(vec![("R".into(), 2), ("S".into(), 2)]);
        let mut a = Structure::new(&voc, 2);
        a.add_tuple(0, vec![0, 1]);
        a.add_tuple(1, vec![0, 1]);
        let mut b = Structure::new(&voc, 3);
        b.add_tuple(0, vec![0, 1]);
        b.add_tuple(1, vec![1, 2]);
        assert!(!exists(&a, &b));
        let mut b2 = Structure::new(&voc, 3);
        b2.add_tuple(0, vec![0, 1]);
        b2.add_tuple(1, vec![0, 1]);
        assert!(exists(&a, &b2));
    }

    #[test]
    fn tiny_budget_exhausts() {
        let c5 = graph_structure(&generators::cycle(5));
        let k3 = graph_structure(&generators::clique(3));
        let b = Budget::ticks(0); // the first support check exhausts
        assert!(find_homomorphism(&c5, &k3, &b).0.is_exhausted());
        assert!(count_homomorphisms(&c5, &k3, &b).0.is_exhausted());
        assert!(hom_exists(&c5, &k3, &b).0.is_exhausted());
    }

    #[test]
    fn counters_monotone_in_budget() {
        let c5 = graph_structure(&generators::cycle(5));
        let k3 = graph_structure(&generators::clique(3));
        let (_, small) = count_homomorphisms(&c5, &k3, &Budget::ticks(40));
        let (_, large) = count_homomorphisms(&c5, &k3, &Budget::unlimited());
        assert!(small.le(&large));
    }
}
