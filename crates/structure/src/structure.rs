//! Vocabularies and relational structures (paper §2.4).

use lb_graph::Graph;

/// A vocabulary: named relation symbols with fixed arities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vocabulary {
    symbols: Vec<(String, usize)>,
}

impl Vocabulary {
    /// Builds a vocabulary from `(name, arity)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate symbol names or zero arities.
    pub fn new(symbols: Vec<(String, usize)>) -> Self {
        for (i, (name, arity)) in symbols.iter().enumerate() {
            assert!(*arity >= 1, "symbol {name} has arity 0");
            assert!(
                symbols[i + 1..].iter().all(|(n, _)| n != name),
                "duplicate symbol {name}"
            );
        }
        Vocabulary { symbols }
    }

    /// The vocabulary of digraphs: one binary symbol `E`.
    pub fn digraph() -> Self {
        Vocabulary::new(vec![("E".to_string(), 2)])
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True iff there are no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Arity of symbol `i`.
    pub fn arity(&self, i: usize) -> usize {
        self.symbols[i].1
    }

    /// Name of symbol `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.symbols[i].0
    }

    /// Maximum arity over all symbols (the paper's "arity of τ").
    pub fn max_arity(&self) -> usize {
        self.symbols.iter().map(|&(_, a)| a).max().unwrap_or(0)
    }
}

/// A τ-structure: universe `0..universe` and, for each symbol, a set of
/// tuples over the universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Structure {
    universe: usize,
    /// `relations[sym]` is the sorted tuple set of symbol `sym`.
    relations: Vec<Vec<Vec<usize>>>,
}

impl Structure {
    /// Creates a structure with all relations empty.
    pub fn new(vocabulary: &Vocabulary, universe: usize) -> Self {
        Structure {
            universe,
            relations: vec![Vec::new(); vocabulary.len()],
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of relations (must match the vocabulary).
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Adds a tuple to symbol `sym`.
    ///
    /// # Panics
    /// Panics if an element is outside the universe.
    pub fn add_tuple(&mut self, sym: usize, tuple: Vec<usize>) {
        assert!(
            tuple.iter().all(|&x| x < self.universe),
            "tuple element outside universe"
        );
        let rel = &mut self.relations[sym];
        match rel.binary_search(&tuple) {
            Ok(_) => {}
            Err(pos) => rel.insert(pos, tuple),
        }
    }

    /// The tuples of symbol `sym` (sorted).
    pub fn tuples(&self, sym: usize) -> &[Vec<usize>] {
        &self.relations[sym]
    }

    /// Membership test.
    pub fn contains(&self, sym: usize, tuple: &[usize]) -> bool {
        self.relations[sym]
            .binary_search_by(|t| t.as_slice().cmp(tuple))
            .is_ok()
    }

    /// Total number of tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Validates a mapping `h` as a homomorphism from `self` to `other`.
    pub fn is_homomorphism_to(&self, other: &Structure, h: &[usize]) -> bool {
        if h.len() != self.universe || self.relations.len() != other.relations.len() {
            return false;
        }
        if h.iter().any(|&x| x >= other.universe) {
            return false;
        }
        for (sym, rel) in self.relations.iter().enumerate() {
            for t in rel {
                let image: Vec<usize> = t.iter().map(|&x| h[x]).collect();
                if !other.contains(sym, &image) {
                    return false;
                }
            }
        }
        true
    }

    /// The induced substructure on `elements`, with elements renumbered in
    /// the given order. Tuples mentioning dropped elements are removed.
    /// Returns the substructure and the old-id list (`map[new] = old`).
    pub fn induced_substructure(&self, elements: &[usize]) -> (Structure, Vec<usize>) {
        let mut new_of = vec![usize::MAX; self.universe];
        for (new, &old) in elements.iter().enumerate() {
            new_of[old] = new;
        }
        let relations = self
            .relations
            .iter()
            .map(|rel| {
                let mut out: Vec<Vec<usize>> = rel
                    .iter()
                    .filter(|t| t.iter().all(|&x| new_of[x] != usize::MAX))
                    .map(|t| t.iter().map(|&x| new_of[x]).collect())
                    .collect();
                out.sort_unstable();
                out
            })
            .collect();
        (
            Structure {
                universe: elements.len(),
                relations,
            },
            elements.to_vec(),
        )
    }

    /// A directed graph as a structure over [`Vocabulary::digraph`]: arcs in
    /// both directions for each undirected edge.
    pub fn from_graph(g: &Graph) -> Structure {
        let mut s = Structure {
            universe: g.num_vertices(),
            relations: vec![Vec::new()],
        };
        for (u, v) in g.edges() {
            s.add_tuple(0, vec![u, v]);
            s.add_tuple(0, vec![v, u]);
        }
        s
    }

    /// The Gaifman graph of the structure: elements adjacent iff they
    /// co-occur in a tuple.
    pub fn gaifman_graph(&self) -> Graph {
        let mut g = Graph::new(self.universe);
        for rel in &self.relations {
            for t in rel {
                for (i, &u) in t.iter().enumerate() {
                    for &v in &t[i + 1..] {
                        if u != v && !g.has_edge(u, v) {
                            g.add_edge(u, v);
                        }
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_basics() {
        let voc = Vocabulary::new(vec![("R".into(), 2), ("S".into(), 3)]);
        assert_eq!(voc.len(), 2);
        assert_eq!(voc.arity(1), 3);
        assert_eq!(voc.max_arity(), 3);
        assert_eq!(voc.name(0), "R");
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_symbol_rejected() {
        let _ = Vocabulary::new(vec![("R".into(), 2), ("R".into(), 2)]);
    }

    #[test]
    fn structure_tuples() {
        let voc = Vocabulary::digraph();
        let mut s = Structure::new(&voc, 3);
        s.add_tuple(0, vec![0, 1]);
        s.add_tuple(0, vec![0, 1]); // dedup
        s.add_tuple(0, vec![1, 2]);
        assert_eq!(s.total_tuples(), 2);
        assert!(s.contains(0, &[0, 1]));
        assert!(!s.contains(0, &[1, 0]));
    }

    #[test]
    fn homomorphism_check() {
        // Path 0→1→2 maps into a single loop-free edge 0→1? No. Into an
        // alternating structure with 1→0 as well? Yes via 0,1,0.
        let voc = Vocabulary::digraph();
        let mut path = Structure::new(&voc, 3);
        path.add_tuple(0, vec![0, 1]);
        path.add_tuple(0, vec![1, 2]);
        let mut edge2 = Structure::new(&voc, 2);
        edge2.add_tuple(0, vec![0, 1]);
        edge2.add_tuple(0, vec![1, 0]);
        assert!(path.is_homomorphism_to(&edge2, &[0, 1, 0]));
        assert!(!path.is_homomorphism_to(&edge2, &[0, 1, 1]));
        let mut one_arc = Structure::new(&voc, 2);
        one_arc.add_tuple(0, vec![0, 1]);
        assert!(!path.is_homomorphism_to(&one_arc, &[0, 1, 0]));
    }

    #[test]
    fn induced_substructure_filters_tuples() {
        let voc = Vocabulary::digraph();
        let mut s = Structure::new(&voc, 4);
        s.add_tuple(0, vec![0, 1]);
        s.add_tuple(0, vec![1, 2]);
        s.add_tuple(0, vec![2, 3]);
        let (sub, map) = s.induced_substructure(&[1, 2]);
        assert_eq!(sub.universe(), 2);
        assert_eq!(sub.tuples(0), &[vec![0, 1]]); // old (1,2) renamed
        assert_eq!(map, vec![1, 2]);
    }

    #[test]
    fn graph_roundtrip_and_gaifman() {
        let g = lb_graph::generators::cycle(4);
        let s = Structure::from_graph(&g);
        assert_eq!(s.total_tuples(), 8);
        let gg = s.gaifman_graph();
        assert_eq!(gg.edges(), g.edges());
    }

    #[test]
    fn is_homomorphism_rejects_bad_shapes() {
        let voc = Vocabulary::digraph();
        let s = Structure::new(&voc, 2);
        let t = Structure::new(&voc, 2);
        assert!(!s.is_homomorphism_to(&t, &[0])); // wrong length
        assert!(!s.is_homomorphism_to(&t, &[0, 5])); // out of range
    }
}
