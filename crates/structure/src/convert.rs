//! CSP ⇄ homomorphism translations (paper §2.4).
//!
//! Every CSP instance I = (V, D, C) with constraints c_i = ⟨s_i, R_i⟩
//! becomes a pair of structures over a vocabulary with one symbol Q_i per
//! constraint: A has universe V with Q_i^A = {s_i}, B has universe D with
//! Q_i^B = R_i. Then solutions of I are exactly the homomorphisms A → B.
//! The inverse translation turns any structure pair back into a CSP. These
//! are the bridges the integration tests drive end-to-end.

use crate::structure::{Structure, Vocabulary};
use lb_csp::{Constraint, CspInstance, Relation, Value};
use std::sync::Arc;

/// The structure pair (A, B) of a CSP instance: solutions of the instance
/// correspond one-to-one with homomorphisms A → B.
pub fn csp_to_structures(inst: &CspInstance) -> (Vocabulary, Structure, Structure) {
    let voc = Vocabulary::new(
        (0..inst.constraints.len())
            .map(|i| (format!("Q{i}"), inst.constraints[i].scope.len()))
            .collect(),
    );
    let mut a = Structure::new(&voc, inst.num_vars);
    let mut b = Structure::new(&voc, inst.domain_size);
    for (i, c) in inst.constraints.iter().enumerate() {
        a.add_tuple(i, c.scope.clone());
        for t in c.relation.tuples() {
            b.add_tuple(i, t.iter().map(|&x| x as usize).collect());
        }
    }
    (voc, a, b)
}

/// The CSP instance of a structure pair (A, B) over a shared vocabulary:
/// variables = universe of A, domain = universe of B, one constraint per
/// A-tuple with the corresponding B-relation.
pub fn structures_to_csp(a: &Structure, b: &Structure) -> CspInstance {
    assert_eq!(
        a.num_relations(),
        b.num_relations(),
        "structures must share a vocabulary"
    );
    let mut inst = CspInstance::new(a.universe(), b.universe());
    for sym in 0..a.num_relations() {
        let rel = Arc::new(Relation::new(
            arity_of(a, b, sym),
            b.tuples(sym)
                .iter()
                .map(|t| t.iter().map(|&x| x as Value).collect())
                .collect(),
        ));
        for t in a.tuples(sym) {
            inst.add_constraint(Constraint::new(t.clone(), rel.clone()));
        }
    }
    inst
}

fn arity_of(a: &Structure, b: &Structure, sym: usize) -> usize {
    a.tuples(sym)
        .first()
        .or_else(|| b.tuples(sym).first())
        .map(|t| t.len())
        .unwrap_or(1)
}

/// Graph homomorphism as CSP (paper §2.3): variables = V(H), domain = V(G),
/// one adjacency constraint per edge of H. Solutions = homomorphisms H → G.
pub fn graph_hom_to_csp(h: &lb_graph::Graph, g: &lb_graph::Graph) -> CspInstance {
    let mut inst = CspInstance::new(h.num_vertices(), g.num_vertices());
    let adj = Arc::new(Relation::graph_adjacency(g));
    for (u, v) in h.edges() {
        inst.add_constraint(Constraint::new(vec![u, v], adj.clone()));
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::{count_homomorphisms, find_homomorphism};
    use lb_csp::solver::bruteforce;
    use lb_engine::{Budget, Outcome};
    use lb_graph::generators;

    fn csp_count(inst: &CspInstance) -> u64 {
        bruteforce::count(inst, &Budget::unlimited()).0.unwrap_sat()
    }

    fn hom_count(a: &Structure, b: &Structure) -> u64 {
        count_homomorphisms(a, b, &Budget::unlimited())
            .0
            .unwrap_sat()
    }

    #[test]
    fn csp_solutions_equal_homomorphisms() {
        for seed in 0..5u64 {
            let g = generators::gnp(5, 0.5, seed);
            let inst = lb_csp::generators::random_binary_csp(&g, 3, 0.3, seed);
            let (_, a, b) = csp_to_structures(&inst);
            assert_eq!(csp_count(&inst), hom_count(&a, &b), "seed {seed}");
        }
    }

    #[test]
    fn hom_found_is_csp_solution() {
        let g = generators::cycle(5);
        let inst = lb_csp::generators::random_binary_csp(&g, 3, 0.2, 9);
        let (_, a, b) = csp_to_structures(&inst);
        if let Outcome::Sat(h) = find_homomorphism(&a, &b, &Budget::unlimited()).0 {
            let assignment: Vec<Value> = h.iter().map(|&x| x as Value).collect();
            assert!(inst.eval(&assignment));
        }
    }

    #[test]
    fn roundtrip_csp_structures_csp() {
        let g = generators::path(4);
        let inst = lb_csp::generators::random_binary_csp(&g, 2, 0.4, 3);
        let (_, a, b) = csp_to_structures(&inst);
        let back = structures_to_csp(&a, &b);
        assert_eq!(csp_count(&inst), csp_count(&back));
    }

    #[test]
    fn graph_hom_csp_counts_colorings() {
        // Homomorphisms C5 → K3 = proper 3-colorings of C5 = 30.
        let inst = graph_hom_to_csp(&generators::cycle(5), &generators::clique(3));
        assert_eq!(csp_count(&inst), 30);
    }

    #[test]
    fn graph_hom_csp_matches_structure_hom() {
        let h = generators::path(4);
        let g = generators::cycle(6);
        let inst = graph_hom_to_csp(&h, &g);
        let sh = Structure::from_graph(&h);
        let sg = Structure::from_graph(&g);
        assert_eq!(csp_count(&inst), hom_count(&sh, &sg));
    }
}
