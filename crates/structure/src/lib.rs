//! Relational structures and the homomorphism problem (paper §2.4, §5).
//!
//! A τ-structure consists of a universe and one relation per symbol of the
//! vocabulary τ; a homomorphism A → B preserves every relation. This is the
//! most general of the paper's four domains: CSP, join queries and graph
//! homomorphism all embed into it, and Grohe's Theorem 5.3 classifies the
//! complexity of HOM(𝒜, _) by the treewidth of the **cores** of the
//! structures in 𝒜.
//!
//! * [`structure`] — vocabularies, structures, validation;
//! * [`hom`] — backtracking homomorphism search (find / count / all), with
//!   arc-consistency-style candidate pruning;
//! * [`core`] — core computation: the smallest retract, whose treewidth is
//!   the parameter of Theorem 5.3;
//! * [`convert`] — CSP instance ⇄ (A, B) structure pair, and graphs as
//!   single-binary-relation structures.
//!
//! Every search, counting, and core-computation entry point takes a
//! [`lb_engine::Budget`] and returns an [`lb_engine::Outcome`] paired with
//! [`lb_engine::RunStats`] operation counters.

#![forbid(unsafe_code)]

pub mod convert;
pub mod core;
pub mod grohe;
pub mod hom;
pub mod structure;

pub use crate::core::{compute_core, is_core};
pub use crate::grohe::solve_hom_via_core;
pub use crate::hom::{count_homomorphisms, find_homomorphism};
pub use crate::structure::{Structure, Vocabulary};
