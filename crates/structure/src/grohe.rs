//! The algorithmic side of Grohe's Theorem 5.3: solve HOM(A, B) through
//! the core of A.
//!
//! Theorem 5.3 says HOM(𝒜, _) is polynomial-time solvable iff the cores of
//! the structures in 𝒜 have bounded treewidth. The tractability direction
//! is an algorithm, implemented here: there is a homomorphism A → B iff
//! there is one core(A) → B (compose with the retraction / the inclusion),
//! and the latter is found by Freuder's dynamic program over a tree
//! decomposition of core(A)'s Gaifman graph — costing
//! ‖B‖^{tw(core(A)) + 1} instead of ‖B‖^{tw(A) + 1}.

use crate::convert::structures_to_csp;
use crate::core::compute_core;
use crate::hom::find_homomorphism;
use crate::structure::Structure;
use lb_csp::solver::treewidth_dp;
use lb_csp::Value;

/// Statistics of a [`solve_hom_via_core`] run, showing the treewidth saving
/// the core affords.
#[derive(Clone, Debug)]
pub struct CoreHomStats {
    /// Universe size of A.
    pub a_size: usize,
    /// Universe size of core(A).
    pub core_size: usize,
    /// Treewidth upper bound used for A's Gaifman graph.
    pub a_treewidth: usize,
    /// Treewidth upper bound used for core(A)'s Gaifman graph.
    pub core_treewidth: usize,
}

/// Decides HOM(A, B) via the core: computes core(A), solves the CSP of
/// (core(A), B) with the treewidth DP, and (if a homomorphism exists)
/// extends it to all of A by composing with a retraction A → core(A).
///
/// Returns the homomorphism (as a full map from A's universe) and the
/// statistics.
pub fn solve_hom_via_core(a: &Structure, b: &Structure) -> (Option<Vec<usize>>, CoreHomStats) {
    let (core, kept) = compute_core(a);
    let a_gaifman = a.gaifman_graph();
    let core_gaifman = core.gaifman_graph();
    let (a_tw, _) = lb_graph::treewidth::treewidth_upper_bound(&a_gaifman);
    let (core_tw, _) = lb_graph::treewidth::treewidth_upper_bound(&core_gaifman);
    let stats = CoreHomStats {
        a_size: a.universe(),
        core_size: core.universe(),
        a_treewidth: a_tw,
        core_treewidth: core_tw,
    };

    // Solve core(A) → B by the treewidth DP over core(A)'s Gaifman graph.
    let inst = structures_to_csp(&core, b);
    let result = treewidth_dp::solve_auto(&inst);
    let Some(core_hom) = result.solution else {
        return (None, stats);
    };
    let core_hom: Vec<usize> = core_hom.into_iter().map(|v: Value| v as usize).collect();
    debug_assert!(core.is_homomorphism_to(b, &core_hom));

    // Extend to A: find a retraction A → core(A) (guaranteed to exist) and
    // compose. The retraction is a homomorphism from A to the induced
    // substructure; search for it directly.
    let retraction = find_homomorphism(a, &core)
        // lb-lint: allow(no-panic) -- invariant: every finite structure retracts onto its core
        .expect("A retracts onto its core by definition");
    let full: Vec<usize> = retraction.iter().map(|&x| core_hom[x]).collect();
    debug_assert!(a.is_homomorphism_to(b, &full));
    let _ = kept;
    (Some(full), stats)
}

/// Counts homomorphisms A → B with the treewidth DP over A's Gaifman
/// graph — the counting analogue of Theorem 5.3's tractable side. (Counting
/// cannot go through the core: hom *counts* are not preserved by
/// retraction, only hom *existence* is, so the DP runs on A itself.)
pub fn count_hom_via_treewidth(a: &Structure, b: &Structure) -> u64 {
    let inst = structures_to_csp(a, b);
    treewidth_dp::solve_auto(&inst).count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::hom_exists;
    use lb_graph::generators;

    fn gs(g: &lb_graph::Graph) -> Structure {
        Structure::from_graph(g)
    }

    #[test]
    fn grid_pattern_collapses_to_edge() {
        // A is a 3×3 grid (tw 3, but bipartite → core K2, tw 1); B = C6.
        let a = gs(&generators::grid(3, 3));
        let b = gs(&generators::cycle(6));
        let (hom, stats) = solve_hom_via_core(&a, &b);
        assert!(hom.is_some());
        assert!(a.is_homomorphism_to(&b, &hom.unwrap()));
        assert_eq!(stats.core_size, 2);
        assert!(stats.core_treewidth < stats.a_treewidth);
    }

    #[test]
    fn no_hom_detected_via_core() {
        // Grid → odd cycle: bipartite → non-bipartite has homs? K2 → C5
        // needs an edge: C5 has edges, so K2 → C5 exists! Grid → C5 exists
        // too (map edge-wise). Use instead: C5 (core = itself) → K2: none.
        let a = gs(&generators::cycle(5));
        let b = gs(&generators::clique(2));
        let (hom, stats) = solve_hom_via_core(&a, &b);
        assert!(hom.is_none());
        assert_eq!(stats.core_size, 5);
    }

    #[test]
    fn agrees_with_direct_search_on_random_pairs() {
        for seed in 0..10u64 {
            let ga = generators::gnp(6, 0.4, seed);
            let gb = generators::gnp(5, 0.6, seed + 50);
            let a = gs(&ga);
            let b = gs(&gb);
            let (via_core, _) = solve_hom_via_core(&a, &b);
            let direct = hom_exists(&a, &b);
            assert_eq!(via_core.is_some(), direct, "seed {seed}");
            if let Some(h) = via_core {
                assert!(a.is_homomorphism_to(&b, &h), "seed {seed}");
            }
        }
    }

    #[test]
    fn counting_via_treewidth_matches_backtracking() {
        use crate::hom::count_homomorphisms;
        for seed in 0..8u64 {
            let a = gs(&generators::gnp(5, 0.5, seed));
            let b = gs(&generators::gnp(4, 0.6, seed + 30));
            assert_eq!(
                count_hom_via_treewidth(&a, &b),
                count_homomorphisms(&a, &b),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn counting_colorings_via_treewidth() {
        // hom(C5 → K3) = 30, via the DP route.
        let a = gs(&generators::cycle(5));
        let b = gs(&generators::clique(3));
        assert_eq!(count_hom_via_treewidth(&a, &b), 30);
    }

    #[test]
    fn large_bipartite_pattern_is_fast_via_core() {
        // A 4×5 grid has 20 vertices — direct |B|^20 search is hopeless in
        // principle; via the core it is a 2-variable CSP.
        let a = gs(&generators::grid(4, 5));
        let b = gs(&generators::gnp(8, 0.5, 3));
        let (hom, stats) = solve_hom_via_core(&a, &b);
        assert_eq!(stats.core_size, 2);
        // b has an edge with overwhelming probability under this seed.
        assert!(hom.is_some());
        assert!(a.is_homomorphism_to(&b, &hom.unwrap()));
    }
}
