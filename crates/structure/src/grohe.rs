//! The algorithmic side of Grohe's Theorem 5.3: solve HOM(A, B) through
//! the core of A.
//!
//! Theorem 5.3 says HOM(𝒜, _) is polynomial-time solvable iff the cores of
//! the structures in 𝒜 have bounded treewidth. The tractability direction
//! is an algorithm, implemented here: there is a homomorphism A → B iff
//! there is one core(A) → B (compose with the retraction / the inclusion),
//! and the latter is found by Freuder's dynamic program over a tree
//! decomposition of core(A)'s Gaifman graph — costing
//! ‖B‖^{tw(core(A)) + 1} instead of ‖B‖^{tw(A) + 1}.
//!
//! Engine mapping: [`solve_hom_via_core`] delegates its remaining budget to
//! core computation, the treewidth DP, and the retraction search in turn,
//! absorbing each stage's [`RunStats`]; the structural facts that used to
//! live in the ad-hoc `CoreHomStats` are reported as [`CoreHomReport`].
//!
//! [`RunStats`]: lb_engine::RunStats

use crate::convert::structures_to_csp;
use crate::core::compute_core;
use crate::hom::find_homomorphism;
use crate::structure::Structure;
use lb_csp::solver::treewidth_dp;
use lb_csp::Value;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Structural facts of a [`solve_hom_via_core`] run, showing the treewidth
/// saving the core affords. (Operation counts live in the accompanying
/// [`RunStats`](lb_engine::RunStats).)
#[derive(Clone, Debug)]
pub struct CoreHomReport {
    /// Universe size of A.
    pub a_size: usize,
    /// Universe size of core(A).
    pub core_size: usize,
    /// Treewidth upper bound used for A's Gaifman graph.
    pub a_treewidth: usize,
    /// Treewidth upper bound used for core(A)'s Gaifman graph.
    pub core_treewidth: usize,
}

/// Decides HOM(A, B) via the core: computes core(A), solves the CSP of
/// (core(A), B) with the treewidth DP, and (if a homomorphism exists)
/// extends it to all of A by composing with a retraction A → core(A).
///
/// On completion, `Sat((hom, report))` where `hom` is `None` when no
/// homomorphism exists — the report is part of the answer either way, so
/// the `Outcome` only distinguishes completion from exhaustion.
#[allow(clippy::type_complexity)]
pub fn solve_hom_via_core(
    a: &Structure,
    b: &Structure,
    budget: &Budget,
) -> (Outcome<(Option<Vec<usize>>, CoreHomReport)>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = via_core_inner(a, b, &mut ticker);
    ticker.finish(result)
}

#[allow(clippy::type_complexity)]
fn via_core_inner(
    a: &Structure,
    b: &Structure,
    ticker: &mut Ticker,
) -> Result<Option<(Option<Vec<usize>>, CoreHomReport)>, ExhaustReason> {
    let (core_out, core_stats) = compute_core(a, &ticker.remaining_budget());
    ticker.absorb(&core_stats);
    let (core, _kept) = match core_out {
        Outcome::Sat(x) => x,
        Outcome::Exhausted(r) => return Err(r),
        // lb-lint: allow(no-panic) -- invariant: compute_core completes with Sat or exhausts
        Outcome::Unsat => unreachable!("compute_core has no Unsat outcome"),
    };
    let a_gaifman = a.gaifman_graph();
    let core_gaifman = core.gaifman_graph();
    let (a_tw, _) = lb_graph::treewidth::treewidth_upper_bound(&a_gaifman);
    let (core_tw, _) = lb_graph::treewidth::treewidth_upper_bound(&core_gaifman);
    let report = CoreHomReport {
        a_size: a.universe(),
        core_size: core.universe(),
        a_treewidth: a_tw,
        core_treewidth: core_tw,
    };

    // Solve core(A) → B by the treewidth DP over core(A)'s Gaifman graph.
    let inst = structures_to_csp(&core, b);
    let (dp_out, dp_stats) = treewidth_dp::solve_auto(&inst, &ticker.remaining_budget());
    ticker.absorb(&dp_stats);
    let dp_result = match dp_out {
        Outcome::Sat(r) => r,
        Outcome::Exhausted(r) => return Err(r),
        // lb-lint: allow(no-panic) -- invariant: the treewidth DP completes with Sat or exhausts
        Outcome::Unsat => unreachable!("solve_auto has no Unsat outcome"),
    };
    let Some(core_hom) = dp_result.solution else {
        return Ok(Some((None, report)));
    };
    let core_hom: Vec<usize> = core_hom.into_iter().map(|v: Value| v as usize).collect();
    debug_assert!(core.is_homomorphism_to(b, &core_hom));

    // Extend to A: find a retraction A → core(A) (guaranteed to exist) and
    // compose. The retraction is a homomorphism from A to the induced
    // substructure; search for it directly.
    let (ret_out, ret_stats) = find_homomorphism(a, &core, &ticker.remaining_budget());
    ticker.absorb(&ret_stats);
    let retraction = match ret_out {
        Outcome::Sat(h) => h,
        Outcome::Exhausted(r) => return Err(r),
        // lb-lint: allow(no-panic) -- invariant: every finite structure retracts onto its core
        Outcome::Unsat => unreachable!("A retracts onto its core by definition"),
    };
    let full: Vec<usize> = retraction.iter().map(|&x| core_hom[x]).collect();
    debug_assert!(a.is_homomorphism_to(b, &full));
    Ok(Some((Some(full), report)))
}

/// Counts homomorphisms A → B with the treewidth DP over A's Gaifman
/// graph — the counting analogue of Theorem 5.3's tractable side. (Counting
/// cannot go through the core: hom *counts* are not preserved by
/// retraction, only hom *existence* is, so the DP runs on A itself.)
/// `Sat(count)` or `Exhausted`.
pub fn count_hom_via_treewidth(
    a: &Structure,
    b: &Structure,
    budget: &Budget,
) -> (Outcome<u64>, RunStats) {
    let inst = structures_to_csp(a, b);
    let (out, stats) = treewidth_dp::solve_auto(&inst, budget);
    (out.map(|r| r.count), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::hom_exists;
    use lb_graph::generators;

    fn gs(g: &lb_graph::Graph) -> Structure {
        Structure::from_graph(g)
    }

    fn via_core(a: &Structure, b: &Structure) -> (Option<Vec<usize>>, CoreHomReport) {
        solve_hom_via_core(a, b, &Budget::unlimited())
            .0
            .unwrap_sat()
    }

    #[test]
    fn grid_pattern_collapses_to_edge() {
        // A is a 3×3 grid (tw 3, but bipartite → core K2, tw 1); B = C6.
        let a = gs(&generators::grid(3, 3));
        let b = gs(&generators::cycle(6));
        let (hom, report) = via_core(&a, &b);
        assert!(hom.is_some());
        assert!(a.is_homomorphism_to(&b, &hom.unwrap()));
        assert_eq!(report.core_size, 2);
        assert!(report.core_treewidth < report.a_treewidth);
    }

    #[test]
    fn no_hom_detected_via_core() {
        // Grid → odd cycle: bipartite → non-bipartite has homs? K2 → C5
        // needs an edge: C5 has edges, so K2 → C5 exists! Grid → C5 exists
        // too (map edge-wise). Use instead: C5 (core = itself) → K2: none.
        let a = gs(&generators::cycle(5));
        let b = gs(&generators::clique(2));
        let (hom, report) = via_core(&a, &b);
        assert!(hom.is_none());
        assert_eq!(report.core_size, 5);
    }

    #[test]
    fn agrees_with_direct_search_on_random_pairs() {
        for seed in 0..10u64 {
            let ga = generators::gnp(6, 0.4, seed);
            let gb = generators::gnp(5, 0.6, seed + 50);
            let a = gs(&ga);
            let b = gs(&gb);
            let (hom, _) = via_core(&a, &b);
            let direct = hom_exists(&a, &b, &Budget::unlimited()).0.unwrap_sat();
            assert_eq!(hom.is_some(), direct, "seed {seed}");
            if let Some(h) = hom {
                assert!(a.is_homomorphism_to(&b, &h), "seed {seed}");
            }
        }
    }

    #[test]
    fn counting_via_treewidth_matches_backtracking() {
        use crate::hom::count_homomorphisms;
        for seed in 0..8u64 {
            let a = gs(&generators::gnp(5, 0.5, seed));
            let b = gs(&generators::gnp(4, 0.6, seed + 30));
            assert_eq!(
                count_hom_via_treewidth(&a, &b, &Budget::unlimited())
                    .0
                    .unwrap_sat(),
                count_homomorphisms(&a, &b, &Budget::unlimited())
                    .0
                    .unwrap_sat(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn counting_colorings_via_treewidth() {
        // hom(C5 → K3) = 30, via the DP route.
        let a = gs(&generators::cycle(5));
        let b = gs(&generators::clique(3));
        assert_eq!(
            count_hom_via_treewidth(&a, &b, &Budget::unlimited())
                .0
                .unwrap_sat(),
            30
        );
    }

    #[test]
    fn large_bipartite_pattern_is_fast_via_core() {
        // A 4×5 grid has 20 vertices — direct |B|^20 search is hopeless in
        // principle; via the core it is a 2-variable CSP.
        let a = gs(&generators::grid(4, 5));
        let b = gs(&generators::gnp(8, 0.5, 3));
        let (hom, report) = via_core(&a, &b);
        assert_eq!(report.core_size, 2);
        // b has an edge with overwhelming probability under this seed.
        assert!(hom.is_some());
        assert!(a.is_homomorphism_to(&b, &hom.unwrap()));
    }

    #[test]
    fn tiny_budget_exhausts() {
        let a = gs(&generators::grid(3, 3));
        let b = gs(&generators::cycle(6));
        let budget = Budget::ticks(0); // the core computation exhausts at once
        assert!(solve_hom_via_core(&a, &b, &budget).0.is_exhausted());
        assert!(count_hom_via_treewidth(&a, &b, &budget).0.is_exhausted());
    }
}
