//! Corpus test: every `bad_*.cnf` fixture must degrade to a typed
//! [`ParseError`] — never a panic, never a silently accepted formula —
//! and every `ok_*.cnf` fixture must parse.
//!
//! The corpus under `crates/sat/fixtures/` doubles as a regression store:
//! `bad_overflow_vars.cnf` captures an input that the pre-hardening parser
//! accepted while wrapping literal ids onto the wrong variables.

use lb_sat::cnf::CnfFormula;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn fixtures() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut out = Vec::new();
    for entry in fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "cnf") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = fs::read_to_string(&path).expect("fixture readable");
            out.push((name, text));
        }
    }
    out.sort();
    assert!(
        out.len() >= 12,
        "fixture corpus unexpectedly small: {} files",
        out.len()
    );
    out
}

#[test]
fn bad_fixtures_error_without_panicking() {
    for (name, text) in fixtures() {
        if !name.starts_with("bad_") {
            continue;
        }
        let result = catch_unwind(AssertUnwindSafe(|| CnfFormula::from_dimacs(&text)));
        let parsed = result.unwrap_or_else(|_| panic!("{name}: parser panicked"));
        let err = parsed.err().unwrap_or_else(|| {
            panic!("{name}: malformed fixture was accepted");
        });
        // Every diagnostic carries a usable position.
        assert!(err.line >= 1 && err.col >= 1, "{name}: bad position {err}");
    }
}

#[test]
fn ok_fixtures_parse() {
    for (name, text) in fixtures() {
        if !name.starts_with("ok_") {
            continue;
        }
        let f = CnfFormula::from_dimacs(&text)
            .unwrap_or_else(|e| panic!("{name}: valid fixture rejected: {e}"));
        assert!(f.num_clauses() >= 1, "{name}: parsed to empty formula");
    }
}
