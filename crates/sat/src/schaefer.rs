//! Schaefer's dichotomy (paper §4).
//!
//! Schaefer's theorem: for a finite set ℛ of Boolean relations, CSP(ℛ) is
//! polynomial-time solvable iff every relation in ℛ is 0-valid, or every one
//! is 1-valid, or all are Horn (closed under AND), or all are dual-Horn
//! (closed under OR), or all are affine (closed under ternary XOR), or all
//! are bijunctive (closed under majority); otherwise CSP(ℛ) is NP-hard.
//!
//! This module implements the *whole algorithmic content* of the theorem:
//! the closure-property classifier, and a dedicated polynomial-time solver
//! for each of the six tractable classes:
//!
//! * 0-valid / 1-valid — constant assignment;
//! * Horn — least-fixpoint of lower bounds (generalized unit propagation;
//!   AND-closure guarantees a unique minimal consistent tuple per constraint);
//! * dual-Horn — the mirror image with upper bounds;
//! * affine — each relation *is* an affine subspace of GF(2)^r; extract its
//!   linear equations and solve the global system by Gaussian elimination;
//! * bijunctive — majority-closed relations are 2-decomposable, so the
//!   instance reduces to 2SAT over the binary projections.
//!
//! Experiment E4 runs these against DPLL/brute-force to exhibit the
//! polynomial/NP-hard gap empirically.
//!
//! Engine mapping: fixpoint/Gaussian steps are [`RunStats::propagations`]
//! ticks, brute-force assignments tried are [`RunStats::nodes`]; the
//! bijunctive solver delegates to the budgeted 2SAT solver and folds its
//! counters in.
//!
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes

use crate::cnf::{CnfFormula, Lit};
use crate::twosat::solve_2sat;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// A Boolean relation: a set of allowed tuples of fixed arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BooleanRelation {
    arity: usize,
    tuples: Vec<Vec<bool>>,
}

impl BooleanRelation {
    /// Builds a relation; tuples are sorted and deduplicated.
    ///
    /// # Panics
    /// Panics if a tuple has the wrong arity.
    pub fn new(arity: usize, mut tuples: Vec<Vec<bool>>) -> Self {
        for t in &tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch");
        }
        tuples.sort_unstable();
        tuples.dedup();
        BooleanRelation { arity, tuples }
    }

    /// The relation of a SAT clause over `arity` positions: all tuples
    /// except the single falsifying one. `signs[i]` is the polarity of
    /// position i in the clause.
    pub fn clause(signs: &[bool]) -> Self {
        let arity = signs.len();
        let forbidden: Vec<bool> = signs.iter().map(|&s| !s).collect();
        let mut tuples = Vec::with_capacity((1 << arity) - 1);
        for bits in 0u32..(1u32 << arity) {
            let t: Vec<bool> = (0..arity).map(|i| bits >> i & 1 == 1).collect();
            if t != forbidden {
                tuples.push(t);
            }
        }
        BooleanRelation::new(arity, tuples)
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Allowed tuples (sorted).
    pub fn tuples(&self) -> &[Vec<bool>] {
        &self.tuples
    }

    /// Membership test.
    pub fn contains(&self, t: &[bool]) -> bool {
        self.tuples
            .binary_search_by(|u| u.as_slice().cmp(t))
            .is_ok()
    }

    /// True iff no tuple is allowed (any constraint with it is unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Contains the all-false tuple.
    pub fn is_zero_valid(&self) -> bool {
        self.contains(&vec![false; self.arity])
    }

    /// Contains the all-true tuple.
    pub fn is_one_valid(&self) -> bool {
        self.contains(&vec![true; self.arity])
    }

    /// Closed under componentwise AND (definable by Horn clauses).
    pub fn is_horn(&self) -> bool {
        self.closed_under_binary(|a, b| a & b)
    }

    /// Closed under componentwise OR (definable by dual-Horn clauses).
    pub fn is_dual_horn(&self) -> bool {
        self.closed_under_binary(|a, b| a | b)
    }

    /// Closed under ternary XOR (an affine subspace of GF(2)^arity).
    pub fn is_affine(&self) -> bool {
        self.closed_under_ternary(|a, b, c| a ^ b ^ c)
    }

    /// Closed under ternary majority (definable by 2-clauses).
    pub fn is_bijunctive(&self) -> bool {
        self.closed_under_ternary(|a, b, c| (a & b) | (a & c) | (b & c))
    }

    fn closed_under_binary(&self, op: fn(bool, bool) -> bool) -> bool {
        // lb-lint: allow(unbudgeted-loop) -- closure check over the tuple set, bounded by |R|^2
        for t in &self.tuples {
            // lb-lint: allow(unbudgeted-loop) -- closure check over the tuple set, bounded by |R|^2
            for u in &self.tuples {
                let combined: Vec<bool> = t.iter().zip(u).map(|(&a, &b)| op(a, b)).collect();
                if !self.contains(&combined) {
                    return false;
                }
            }
        }
        true
    }

    fn closed_under_ternary(&self, op: fn(bool, bool, bool) -> bool) -> bool {
        // lb-lint: allow(unbudgeted-loop) -- closure check over the tuple set, bounded by |R|^3
        for t in &self.tuples {
            // lb-lint: allow(unbudgeted-loop) -- closure check over the tuple set, bounded by |R|^3
            for u in &self.tuples {
                // lb-lint: allow(unbudgeted-loop) -- closure check over the tuple set, bounded by |R|^3
                for v in &self.tuples {
                    let combined: Vec<bool> = t
                        .iter()
                        .zip(u)
                        .zip(v)
                        .map(|((&a, &b), &c)| op(a, b, c))
                        .collect();
                    if !self.contains(&combined) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Projection onto positions `(i, j)`.
    fn project2(&self, i: usize, j: usize) -> Vec<(bool, bool)> {
        let mut out: Vec<(bool, bool)> = self.tuples.iter().map(|t| (t[i], t[j])).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Projection onto position `i`.
    fn project1(&self, i: usize) -> Vec<bool> {
        let mut out: Vec<bool> = self.tuples.iter().map(|t| t[i]).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The six tractable classes of Schaefer's theorem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchaeferClass {
    /// Every relation contains the all-false tuple.
    ZeroValid,
    /// Every relation contains the all-true tuple.
    OneValid,
    /// Every relation is closed under AND.
    Horn,
    /// Every relation is closed under OR.
    DualHorn,
    /// Every relation is closed under ternary XOR.
    Affine,
    /// Every relation is closed under majority.
    Bijunctive,
}

impl SchaeferClass {
    /// All six classes, in the order the solver dispatch prefers them
    /// (cheapest solvers first).
    pub const ALL: [SchaeferClass; 6] = [
        SchaeferClass::ZeroValid,
        SchaeferClass::OneValid,
        SchaeferClass::Horn,
        SchaeferClass::DualHorn,
        SchaeferClass::Affine,
        SchaeferClass::Bijunctive,
    ];

    fn holds_for(self, r: &BooleanRelation) -> bool {
        match self {
            SchaeferClass::ZeroValid => r.is_zero_valid(),
            SchaeferClass::OneValid => r.is_one_valid(),
            SchaeferClass::Horn => r.is_horn(),
            SchaeferClass::DualHorn => r.is_dual_horn(),
            SchaeferClass::Affine => r.is_affine(),
            SchaeferClass::Bijunctive => r.is_bijunctive(),
        }
    }
}

/// Why [`solve_schaefer`] could not run a tractable solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchaeferError {
    /// The relation set satisfies no tractable closure property — per
    /// Schaefer's theorem, CSP(ℛ) for this ℛ is NP-hard.
    NpHard,
    /// The instance failed structural validation (bad scope or relation
    /// index); the message is [`BoolCspInstance::validate`]'s.
    Invalid(String),
}

impl std::fmt::Display for SchaeferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchaeferError::NpHard => {
                write!(
                    f,
                    "relation set is in no tractable Schaefer class (NP-hard)"
                )
            }
            SchaeferError::Invalid(msg) => write!(f, "invalid instance: {msg}"),
        }
    }
}

impl std::error::Error for SchaeferError {}

/// Classifies a relation set: returns every tractable class that all
/// relations satisfy. Empty result = CSP(ℛ) is NP-hard (Schaefer).
pub fn classify_relation_set(rels: &[BooleanRelation]) -> Vec<SchaeferClass> {
    SchaeferClass::ALL
        .into_iter()
        .filter(|class| rels.iter().all(|r| class.holds_for(r)))
        .collect()
}

/// A Boolean CSP instance over a fixed relation set (the CSP(ℛ) form of §4).
#[derive(Clone, Debug)]
pub struct BoolCspInstance {
    /// Number of variables.
    pub num_vars: usize,
    /// The relation set ℛ.
    pub relations: Vec<BooleanRelation>,
    /// Constraints: (scope, index into `relations`).
    pub constraints: Vec<(Vec<usize>, usize)>,
}

impl BoolCspInstance {
    /// Validates scopes and relation indices.
    #[must_use = "a dropped validation result defeats the check entirely"]
    pub fn validate(&self) -> Result<(), String> {
        // lb-lint: allow(unbudgeted-loop) -- validation pass, linear in constraints; runs before solving
        for (i, (scope, rel)) in self.constraints.iter().enumerate() {
            if *rel >= self.relations.len() {
                return Err(format!("constraint {i}: relation index out of range"));
            }
            if scope.len() != self.relations[*rel].arity() {
                return Err(format!("constraint {i}: scope/arity mismatch"));
            }
            if scope.iter().any(|&v| v >= self.num_vars) {
                return Err(format!("constraint {i}: variable out of range"));
            }
        }
        Ok(())
    }

    /// Evaluates a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.constraints.iter().all(|(scope, rel)| {
            let t: Vec<bool> = scope.iter().map(|&v| assignment[v]).collect();
            self.relations[*rel].contains(&t)
        })
    }

    /// Brute-force solver (testing oracle): one [`RunStats::nodes`] tick per
    /// assignment tried.
    ///
    /// # Panics
    /// Panics if the instance has more than 25 variables.
    ///
    /// [`RunStats::nodes`]: lb_engine::RunStats::nodes
    pub fn solve_brute(&self, budget: &Budget) -> (Outcome<Vec<bool>>, RunStats) {
        assert!(self.num_vars <= 25, "brute force limited to 25 variables");
        let n = self.num_vars;
        let mut ticker = Ticker::new(budget);
        for bits in 0u32..(1u32 << n) {
            if let Err(reason) = ticker.node() {
                return ticker.finish(Err(reason));
            }
            let a: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
            if self.eval(&a) {
                return ticker.finish(Ok(Some(a)));
            }
        }
        ticker.finish(Ok(None))
    }
}

/// Solves an instance whose relation set lies in the given tractable class,
/// in polynomial time, under `budget`.
///
/// # Panics
/// Panics (in debug builds) if the relations do not actually satisfy the
/// class's closure property — the solvers are only correct under it.
pub fn solve_in_class(
    inst: &BoolCspInstance,
    class: SchaeferClass,
    budget: &Budget,
) -> (Outcome<Vec<bool>>, RunStats) {
    debug_assert!(
        inst.relations.iter().all(|r| class.holds_for(r)),
        "relation set is not {class:?}"
    );
    let mut ticker = Ticker::new(budget);
    if inst
        .constraints
        .iter()
        .any(|(_, r)| inst.relations[*r].is_empty())
    {
        return ticker.finish(Ok(None));
    }
    let result = match class {
        SchaeferClass::ZeroValid => Ok(Some(vec![false; inst.num_vars])),
        SchaeferClass::OneValid => Ok(Some(vec![true; inst.num_vars])),
        SchaeferClass::Horn => solve_horn(inst, false, &mut ticker),
        SchaeferClass::DualHorn => solve_horn(inst, true, &mut ticker),
        SchaeferClass::Affine => solve_affine(inst, &mut ticker),
        SchaeferClass::Bijunctive => solve_bijunctive(inst, &mut ticker),
    };
    ticker.finish(result)
}

/// Classifies and solves under `budget`: the outcome/stats pair if some
/// tractable class applies, [`SchaeferError::NpHard`] otherwise (and
/// [`SchaeferError::Invalid`] for malformed instances).
#[must_use = "dropping the result discards the satisfying assignment or the failure"]
pub fn solve_schaefer(
    inst: &BoolCspInstance,
    budget: &Budget,
) -> Result<(Outcome<Vec<bool>>, RunStats), SchaeferError> {
    inst.validate().map_err(SchaeferError::Invalid)?;
    match classify_relation_set(&inst.relations).first() {
        Some(&class) => Ok(solve_in_class(inst, class, budget)),
        None => Err(SchaeferError::NpHard),
    }
}

/// Horn fixpoint solver. With `dual = false`: raise lower bounds using AND
/// closure (least model); with `dual = true`: lower upper bounds using OR
/// closure (greatest model), implemented by negating the roles of the
/// bounds. One propagation tick per constraint visited per fixpoint pass.
fn solve_horn(
    inst: &BoolCspInstance,
    dual: bool,
    ticker: &mut Ticker,
) -> Result<Option<Vec<bool>>, ExhaustReason> {
    // bound[v]: current forced value in the extremal model. For Horn, start
    // all-false and raise; for dual-Horn, start all-true and lower.
    let start = dual;
    let mut bound = vec![start; inst.num_vars];
    loop {
        let mut changed = false;
        for (scope, rel_idx) in &inst.constraints {
            ticker.propagation()?;
            let rel = &inst.relations[*rel_idx];
            // Find the extremal tuple consistent with the current bounds:
            // Horn: AND of all tuples t with t ≥ bound|scope;
            // dual: OR of all tuples t with t ≤ bound|scope.
            let mut acc: Option<Vec<bool>> = None;
            // lb-lint: allow(unbudgeted-loop) -- polynomial Horn pass, bounded by relation tuples and arity
            for t in rel.tuples() {
                let consistent = if dual {
                    // t ≤ bound: wherever bound is false, t must be false.
                    scope.iter().zip(t).all(|(&v, &tv)| !tv || bound[v])
                } else {
                    // t ≥ bound: wherever bound is true, t must be true.
                    scope.iter().zip(t).all(|(&v, &tv)| tv || !bound[v])
                };
                if !consistent {
                    continue;
                }
                acc = Some(match acc {
                    None => t.clone(),
                    Some(prev) => prev
                        .iter()
                        .zip(t)
                        .map(|(&a, &b)| if dual { a | b } else { a & b })
                        .collect(),
                });
            }
            let Some(extremal) = acc else {
                // No consistent tuple → unsatisfiable.
                return Ok(None);
            };
            // lb-lint: allow(unbudgeted-loop) -- polynomial Horn pass, bounded by relation tuples and arity
            for (&v, &tv) in scope.iter().zip(&extremal) {
                if bound[v] != tv {
                    // Horn only raises (false→true); dual only lowers.
                    debug_assert_eq!(bound[v], start);
                    bound[v] = tv;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(inst.eval(&bound));
    Ok(Some(bound))
}

/// Affine solver: each relation equals its affine hull over GF(2); extract
/// the defining linear equations and solve the union by Gaussian
/// elimination. One propagation tick per equation extracted and per
/// elimination row-operation.
fn solve_affine(
    inst: &BoolCspInstance,
    ticker: &mut Ticker,
) -> Result<Option<Vec<bool>>, ExhaustReason> {
    let n = inst.num_vars;
    // Equations: bitmask over variables (Vec<u64>) plus RHS bit.
    let words = n.div_ceil(64).max(1);
    let mut rows: Vec<(Vec<u64>, bool)> = Vec::new();
    for (scope, rel_idx) in &inst.constraints {
        let rel = &inst.relations[*rel_idx];
        for (coeffs_local, rhs) in affine_equations(rel) {
            ticker.propagation()?;
            let mut row = vec![0u64; words];
            // lb-lint: allow(unbudgeted-loop) -- polynomial affine pass, bounded by constraint arity
            for (pos, &on) in coeffs_local.iter().enumerate() {
                if on {
                    let v = scope[pos];
                    row[v / 64] ^= 1 << (v % 64);
                }
            }
            // Repeated variables in a scope XOR-cancel correctly because we
            // used ^= above; rhs unchanged.
            rows.push((row, rhs));
            ticker.record_intermediate(rows.len() as u64);
        }
    }
    gaussian_solve_gf2(rows, n, words, ticker)
}

/// The defining equations of an affine relation: all (a, c) with a·t = c for
/// every tuple t, where a ranges over a basis of the orthogonal complement
/// of span{t ⊕ t0}.
fn affine_equations(rel: &BooleanRelation) -> Vec<(Vec<bool>, bool)> {
    let r = rel.arity();
    let tuples = rel.tuples();
    assert!(!tuples.is_empty());
    let t0 = &tuples[0];
    // Basis of span{t ⊕ t0} by Gaussian elimination over positions.
    let mut basis: Vec<u64> = Vec::new(); // r ≤ 64 assumed for relations
    assert!(r <= 64, "relation arity limited to 64");
    let to_mask = |t: &[bool]| -> u64 {
        t.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    };
    let m0 = to_mask(t0);
    // lb-lint: allow(unbudgeted-loop) -- GF(2) basis extraction, bounded by tuple count times arity
    for t in tuples {
        let mut v = to_mask(t) ^ m0;
        // lb-lint: allow(unbudgeted-loop) -- GF(2) basis extraction, bounded by tuple count times arity
        for &b in &basis {
            let pivot = 63 - b.leading_zeros();
            if v >> pivot & 1 == 1 {
                v ^= b;
            }
        }
        if v != 0 {
            basis.push(v); // lb-lint: allow(unbounded-growth) -- GF(2) basis over GF(2)^r: at most r <= 64 independent vectors
            basis.sort_unstable_by(|a, b| b.cmp(a));
        }
    }
    // Orthogonal complement: all a ∈ GF(2)^r with a·b = 0 for each basis b.
    // Solve by elimination: treat basis vectors as rows of a matrix; the
    // null space vectors are the equations' coefficient vectors.
    let null_basis = null_space(&basis, r);
    null_basis
        .into_iter()
        .map(|a| {
            let coeffs: Vec<bool> = (0..r).map(|i| a >> i & 1 == 1).collect();
            let c = (a & m0).count_ones() % 2 == 1;
            (coeffs, c)
        })
        .collect()
}

/// Null space of the row space spanned by `rows` inside GF(2)^dim.
fn null_space(rows: &[u64], dim: usize) -> Vec<u64> {
    // Row-reduce `rows` to echelon form with pivot tracking.
    let mut ech: Vec<u64> = Vec::new();
    // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, O(r^3) in relation arity
    for &row in rows {
        let mut v = row;
        // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, O(r^3) in relation arity
        for &e in &ech {
            let pivot = 63 - e.leading_zeros();
            if v >> pivot & 1 == 1 {
                v ^= e;
            }
        }
        if v != 0 {
            ech.push(v); // lb-lint: allow(unbounded-growth) -- GF(2) echelon basis: at most dim <= 64 independent rows
            ech.sort_unstable_by(|a, b| b.cmp(a));
        }
    }
    let pivots: Vec<usize> = ech
        .iter()
        .map(|&e| (63 - e.leading_zeros()) as usize)
        .collect();
    let free: Vec<usize> = (0..dim).filter(|i| !pivots.contains(i)).collect();
    // For each free column f, the null vector has a 1 at f and at each pivot
    // row whose reduced equation involves f.
    let mut out = Vec::new();
    // Fully reduce echelon form (back-substitution) for clean reads.
    let mut reduced = ech.clone();
    // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, O(r^3) in relation arity
    for i in 0..reduced.len() {
        let pivot = 63 - reduced[i].leading_zeros();
        // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, O(r^3) in relation arity
        for j in 0..reduced.len() {
            if i != j && reduced[j] >> pivot & 1 == 1 {
                reduced[j] ^= reduced[i];
            }
        }
    }
    // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, O(r^3) in relation arity
    for &f in &free {
        let mut v: u64 = 1 << f;
        // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, O(r^3) in relation arity
        for row in &reduced {
            let pivot = (63 - row.leading_zeros()) as usize;
            if row >> f & 1 == 1 {
                v |= 1 << pivot;
            }
        }
        out.push(v); // lb-lint: allow(unbounded-growth) -- one null vector per free column: at most dim <= 64
    }
    out
}

/// Solves a GF(2) linear system; returns any solution. One propagation tick
/// per elimination row-operation.
fn gaussian_solve_gf2(
    mut rows: Vec<(Vec<u64>, bool)>,
    n: usize,
    words: usize,
    ticker: &mut Ticker,
) -> Result<Option<Vec<bool>>, ExhaustReason> {
    let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row index, pivot col)
    let mut rank = 0usize;
    for col in 0..n {
        let (w, b) = (col / 64, col % 64);
        // Find a row at or below `rank` with a 1 in this column.
        let found = (rank..rows.len()).find(|&i| rows[i].0[w] >> b & 1 == 1);
        let Some(i) = found else { continue };
        rows.swap(rank, i);
        for j in 0..rows.len() {
            if j != rank && rows[j].0[w] >> b & 1 == 1 {
                ticker.propagation()?;
                let (head, tail) = rows.split_at_mut(rank.max(j));
                let (src, dst) = if j < rank {
                    (&tail[0], &mut head[j])
                } else {
                    (&head[rank], &mut tail[0])
                };
                // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, polynomial in instance size
                for k in 0..words {
                    dst.0[k] ^= src.0[k];
                }
                dst.1 ^= src.1;
            }
        }
        pivots.push((rank, col));
        ticker.record_intermediate(pivots.len() as u64);
        rank += 1;
    }
    // Inconsistent if some zero row has RHS 1.
    // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, polynomial in instance size
    for (row, rhs) in rows.iter().skip(rank) {
        if *rhs && row.iter().all(|&w| w == 0) {
            return Ok(None);
        }
    }
    // Also check rows within 0..rank that became zero (cannot happen: they
    // have pivots), and any remaining zero=1 rows above.
    // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, polynomial in instance size
    for (row, rhs) in rows.iter().take(rank) {
        if *rhs && row.iter().all(|&w| w == 0) {
            return Ok(None);
        }
    }
    let mut x = vec![false; n];
    // Free variables default to false; pivots read off the (fully reduced)
    // rows: x[pivot] = rhs ⊕ Σ_{free j in row} x[j] = rhs (free are false).
    // lb-lint: allow(unbudgeted-loop) -- GF(2) Gaussian elimination, polynomial in instance size
    for &(ri, col) in &pivots {
        x[col] = rows[ri].1;
    }
    Ok(Some(x))
}

/// Bijunctive solver: 2-decompose every constraint into its unary and binary
/// projections and solve the resulting 2SAT instance on the remaining
/// budget, folding its counters back in.
#[allow(clippy::needless_range_loop)] // index used across several arrays
fn solve_bijunctive(
    inst: &BoolCspInstance,
    ticker: &mut Ticker,
) -> Result<Option<Vec<bool>>, ExhaustReason> {
    let mut f = CnfFormula::new(inst.num_vars);
    for (scope, rel_idx) in &inst.constraints {
        ticker.propagation()?;
        let rel = &inst.relations[*rel_idx];
        let r = rel.arity();
        // lb-lint: allow(unbudgeted-loop) -- 2-SAT closure over O(r^2) value pairs, polynomial in instance size
        for i in 0..r {
            let proj = rel.project1(i);
            match proj.as_slice() {
                [] => return Ok(None),
                [only] => f.add_clause(vec![Lit::new(scope[i], *only)]),
                _ => {}
            }
        }
        // lb-lint: allow(unbudgeted-loop) -- 2-SAT closure over O(r^2) value pairs, polynomial in instance size
        for i in 0..r {
            // lb-lint: allow(unbudgeted-loop) -- 2-SAT closure over O(r^2) value pairs, polynomial in instance size
            for j in (i + 1)..r {
                let allowed = rel.project2(i, j);
                // lb-lint: allow(unbudgeted-loop) -- 2-SAT closure over O(r^2) value pairs, polynomial in instance size
                for a in [false, true] {
                    // lb-lint: allow(unbudgeted-loop) -- 2-SAT closure over O(r^2) value pairs, polynomial in instance size
                    for b in [false, true] {
                        if !allowed.contains(&(a, b)) {
                            if scope[i] == scope[j] {
                                // Same variable twice: forbidden (a,b) with
                                // a == b forces a unit clause; a != b is
                                // vacuous.
                                if a == b {
                                    f.add_clause(vec![Lit::new(scope[i], !a)]);
                                }
                            } else {
                                f.add_clause(vec![Lit::new(scope[i], !a), Lit::new(scope[j], !b)]);
                            }
                        }
                    }
                }
            }
        }
    }
    let (out, sub_stats) = solve_2sat(&f, &ticker.remaining_budget());
    ticker.absorb(&sub_stats);
    let model = match out {
        Outcome::Sat(m) => m,
        Outcome::Unsat => return Ok(None),
        Outcome::Exhausted(reason) => return Err(reason),
    };
    debug_assert!(
        inst.eval(&model),
        "2-decomposition must be exact for majority-closed relations"
    );
    Ok(Some(model))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(bits: &[u8]) -> Vec<bool> {
        bits.iter().map(|&b| b == 1).collect()
    }

    fn rel(arity: usize, rows: &[&[u8]]) -> BooleanRelation {
        BooleanRelation::new(arity, rows.iter().map(|r| t(r)).collect())
    }

    fn solve_class_unlimited(inst: &BoolCspInstance, class: SchaeferClass) -> Option<Vec<bool>> {
        solve_in_class(inst, class, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    fn brute_unlimited(inst: &BoolCspInstance) -> Option<Vec<bool>> {
        inst.solve_brute(&Budget::unlimited()).0.unwrap_decided()
    }

    /// x ∨ y (the 2SAT clause relation).
    fn or2() -> BooleanRelation {
        rel(2, &[&[0, 1], &[1, 0], &[1, 1]])
    }

    /// x ⊕ y = 1.
    fn xor2() -> BooleanRelation {
        rel(2, &[&[0, 1], &[1, 0]])
    }

    /// Horn implication ¬x ∨ y (x → y).
    fn imp() -> BooleanRelation {
        rel(2, &[&[0, 0], &[0, 1], &[1, 1]])
    }

    /// The 3SAT clause (x ∨ y ∨ z).
    fn or3() -> BooleanRelation {
        BooleanRelation::clause(&[true, true, true])
    }

    /// 1-in-3 SAT relation (NP-hard with Schaefer).
    fn one_in_three() -> BooleanRelation {
        rel(3, &[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]])
    }

    #[test]
    fn closure_properties() {
        assert!(imp().is_horn());
        assert!(imp().is_dual_horn());
        assert!(imp().is_zero_valid() && imp().is_one_valid());
        assert!(xor2().is_affine());
        assert!(!xor2().is_horn());
        assert!(!xor2().is_dual_horn());
        assert!(or2().is_bijunctive());
        assert!(or2().is_dual_horn());
        assert!(!or2().is_horn());
        assert!(!or3().is_horn());
        assert!(or3().is_one_valid());
        assert!(!one_in_three().is_affine());
        assert!(!one_in_three().is_bijunctive());
    }

    #[test]
    fn clause_relation_shape() {
        let c = BooleanRelation::clause(&[true, false]);
        // (x ∨ ¬y): forbidden tuple is (0, 1).
        assert!(!c.contains(&t(&[0, 1])));
        assert_eq!(c.tuples().len(), 3);
    }

    #[test]
    fn classify_examples() {
        // 2SAT relations: bijunctive (and dual-Horn for or2).
        assert!(classify_relation_set(&[or2(), imp()]).contains(&SchaeferClass::Bijunctive));
        // XOR system: affine (and also bijunctive — binary XOR is
        // majority-closed), but not Horn and not 0/1-valid.
        assert_eq!(
            classify_relation_set(&[xor2()]),
            vec![SchaeferClass::Affine, SchaeferClass::Bijunctive]
        );
        // 1-in-3 SAT: NP-hard.
        assert!(classify_relation_set(&[one_in_three()]).is_empty());
        // 3SAT clauses with mixed polarities: NP-hard.
        let all_pols: Vec<BooleanRelation> = (0..8u8)
            .map(|m| BooleanRelation::clause(&[(m & 1) != 0, (m & 2) != 0, (m & 4) != 0]))
            .collect();
        assert!(classify_relation_set(&all_pols).is_empty());
    }

    fn check_solver_matches_brute(inst: &BoolCspInstance) {
        inst.validate().unwrap();
        let classes = classify_relation_set(&inst.relations);
        assert!(!classes.is_empty(), "test instance must be tractable");
        let brute = brute_unlimited(inst);
        for &class in &classes {
            let got = solve_class_unlimited(inst, class);
            assert_eq!(got.is_some(), brute.is_some(), "class {class:?}");
            if let Some(m) = got {
                assert!(inst.eval(&m), "class {class:?} returned non-model");
            }
        }
    }

    #[test]
    fn horn_solver_sat() {
        // x0, x0→x1, x1→x2 : minimal model 111.
        let unit = rel(1, &[&[1]]);
        let inst = BoolCspInstance {
            num_vars: 3,
            relations: vec![unit, imp()],
            constraints: vec![(vec![0], 0), (vec![0, 1], 1), (vec![1, 2], 1)],
        };
        let m = solve_class_unlimited(&inst, SchaeferClass::Horn).unwrap();
        assert_eq!(m, vec![true, true, true]);
        check_solver_matches_brute(&inst);
    }

    #[test]
    fn horn_solver_unsat() {
        // x0 ∧ (x0 → x1) ∧ ¬x1.
        let unit_t = rel(1, &[&[1]]);
        let unit_f = rel(1, &[&[0]]);
        let inst = BoolCspInstance {
            num_vars: 2,
            relations: vec![unit_t, unit_f, imp()],
            constraints: vec![(vec![0], 0), (vec![0, 1], 2), (vec![1], 1)],
        };
        assert!(solve_class_unlimited(&inst, SchaeferClass::Horn).is_none());
        assert!(brute_unlimited(&inst).is_none());
    }

    #[test]
    fn dual_horn_solver() {
        // Dual-Horn: clauses with at most one negative literal... mirrored.
        // (x0 ∨ x1) is dual-Horn; ¬x0 forces x1.
        let unit_f = rel(1, &[&[0]]);
        let inst = BoolCspInstance {
            num_vars: 2,
            relations: vec![or2(), unit_f],
            constraints: vec![(vec![0, 1], 0), (vec![0], 1)],
        };
        let m = solve_class_unlimited(&inst, SchaeferClass::DualHorn).unwrap();
        assert!(inst.eval(&m));
        assert!(!m[0] && m[1]);
    }

    #[test]
    fn affine_solver_sat() {
        // x0⊕x1 = 1, x1⊕x2 = 1 → x0 = x2, x1 = ¬x0. Satisfiable.
        let inst = BoolCspInstance {
            num_vars: 3,
            relations: vec![xor2()],
            constraints: vec![(vec![0, 1], 0), (vec![1, 2], 0)],
        };
        let m = solve_class_unlimited(&inst, SchaeferClass::Affine).unwrap();
        assert!(inst.eval(&m));
        check_solver_matches_brute(&inst);
    }

    #[test]
    fn affine_solver_unsat() {
        // Odd XOR cycle: x0⊕x1 = 1, x1⊕x2 = 1, x2⊕x0 = 1 is unsatisfiable.
        let inst = BoolCspInstance {
            num_vars: 3,
            relations: vec![xor2()],
            constraints: vec![(vec![0, 1], 0), (vec![1, 2], 0), (vec![2, 0], 0)],
        };
        assert!(solve_class_unlimited(&inst, SchaeferClass::Affine).is_none());
        assert!(brute_unlimited(&inst).is_none());
    }

    #[test]
    fn affine_equations_of_xor() {
        // xor2 = {(0,1),(1,0)}: single equation x + y = 1.
        let eqs = affine_equations(&xor2());
        assert_eq!(eqs.len(), 1);
        let (coeffs, rhs) = &eqs[0];
        assert_eq!(coeffs, &vec![true, true]);
        assert!(*rhs);
    }

    #[test]
    fn bijunctive_solver() {
        // or2 constraints forming an implication structure.
        let inst = BoolCspInstance {
            num_vars: 4,
            relations: vec![or2(), xor2()],
            constraints: vec![(vec![0, 1], 0), (vec![1, 2], 1), (vec![2, 3], 1)],
        };
        // xor2 is also bijunctive? majority(001,010,100)... xor2 tuples are
        // (0,1),(1,0): maj((0,1),(0,1),(1,0)) = (0,1) ✓; any triple majority
        // stays in the set. So the set {or2, xor2} is bijunctive.
        assert!(xor2().is_bijunctive());
        check_solver_matches_brute(&inst);
    }

    #[test]
    fn bijunctive_unsat() {
        // x0⊕x1 = 1, x1⊕x2 = 1, x0⊕x2 = 1 via 2-decomposable xor2.
        let inst = BoolCspInstance {
            num_vars: 3,
            relations: vec![xor2()],
            constraints: vec![(vec![0, 1], 0), (vec![1, 2], 0), (vec![0, 2], 0)],
        };
        assert!(solve_class_unlimited(&inst, SchaeferClass::Bijunctive).is_none());
    }

    #[test]
    fn bijunctive_absorbs_twosat_counters() {
        let inst = BoolCspInstance {
            num_vars: 4,
            relations: vec![or2()],
            constraints: vec![(vec![0, 1], 0), (vec![1, 2], 0), (vec![2, 3], 0)],
        };
        let (out, stats) = solve_in_class(&inst, SchaeferClass::Bijunctive, &Budget::unlimited());
        assert!(out.is_sat());
        // The delegated 2SAT run resolves one node per variable; those
        // counters must surface in the combined stats.
        assert!(stats.nodes >= inst.num_vars as u64);
        assert!(stats.propagations >= inst.constraints.len() as u64);
    }

    #[test]
    fn zero_and_one_valid() {
        let zv = rel(2, &[&[0, 0], &[1, 1]]);
        let inst = BoolCspInstance {
            num_vars: 2,
            relations: vec![zv],
            constraints: vec![(vec![0, 1], 0)],
        };
        let m0 = solve_class_unlimited(&inst, SchaeferClass::ZeroValid).unwrap();
        assert_eq!(m0, vec![false, false]);
        let m1 = solve_class_unlimited(&inst, SchaeferClass::OneValid).unwrap();
        assert_eq!(m1, vec![true, true]);
    }

    #[test]
    fn solve_schaefer_dispatch() {
        let inst_tractable = BoolCspInstance {
            num_vars: 2,
            relations: vec![xor2()],
            constraints: vec![(vec![0, 1], 0)],
        };
        let (out, _) = solve_schaefer(&inst_tractable, &Budget::unlimited()).unwrap();
        assert!(out.is_sat());

        let inst_hard = BoolCspInstance {
            num_vars: 3,
            relations: vec![one_in_three()],
            constraints: vec![(vec![0, 1, 2], 0)],
        };
        assert_eq!(
            solve_schaefer(&inst_hard, &Budget::unlimited()).unwrap_err(),
            SchaeferError::NpHard
        );
    }

    #[test]
    fn solve_schaefer_rejects_invalid_instance() {
        let inst = BoolCspInstance {
            num_vars: 2,
            relations: vec![xor2()],
            constraints: vec![(vec![0, 1], 7)], // relation index out of range
        };
        match solve_schaefer(&inst, &Budget::unlimited()) {
            Err(SchaeferError::Invalid(msg)) => assert!(msg.contains("relation index")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn tiny_budget_exhausts_tractable_solvers() {
        // A Horn chain long enough that one tick cannot finish the fixpoint.
        let unit = rel(1, &[&[1]]);
        let inst = BoolCspInstance {
            num_vars: 6,
            relations: vec![unit, imp()],
            constraints: vec![
                (vec![0], 0),
                (vec![0, 1], 1),
                (vec![1, 2], 1),
                (vec![2, 3], 1),
                (vec![3, 4], 1),
                (vec![4, 5], 1),
            ],
        };
        let (out, _) = solve_in_class(&inst, SchaeferClass::Horn, &Budget::ticks(1));
        assert!(out.is_exhausted());
        let (out, _) = inst.solve_brute(&Budget::ticks(1));
        assert!(out.is_exhausted());
    }

    #[test]
    fn randomized_cross_check_all_classes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        // For each class, a small library of relations in that class.
        let libraries: Vec<(SchaeferClass, Vec<BooleanRelation>)> = vec![
            (
                SchaeferClass::Horn,
                vec![
                    imp(),
                    rel(1, &[&[1]]),
                    rel(1, &[&[0]]),
                    rel(
                        3,
                        &[&[0, 0, 0], &[0, 0, 1], &[0, 1, 1], &[1, 1, 1], &[0, 1, 0]],
                    ),
                ],
            ),
            (
                SchaeferClass::Affine,
                vec![
                    xor2(),
                    rel(2, &[&[0, 0], &[1, 1]]),
                    rel(3, &[&[0, 0, 0], &[1, 1, 0], &[1, 0, 1], &[0, 1, 1]]),
                ],
            ),
            (SchaeferClass::Bijunctive, vec![or2(), xor2(), imp()]),
            (SchaeferClass::DualHorn, vec![or2(), imp(), rel(1, &[&[0]])]),
        ];
        for (class, lib) in libraries {
            // Check library membership first.
            for r in &lib {
                assert!(class.holds_for(r), "{class:?}: {r:?}");
            }
            for _ in 0..30 {
                let num_vars = 6;
                let mut constraints = Vec::new();
                for _ in 0..rng.gen_range(1..8) {
                    let ri = rng.gen_range(0..lib.len());
                    let arity = lib[ri].arity();
                    let scope: Vec<usize> =
                        (0..arity).map(|_| rng.gen_range(0..num_vars)).collect();
                    constraints.push((scope, ri));
                }
                let inst = BoolCspInstance {
                    num_vars,
                    relations: lib.clone(),
                    constraints,
                };
                let got = solve_class_unlimited(&inst, class);
                let brute = brute_unlimited(&inst);
                assert_eq!(got.is_some(), brute.is_some(), "{class:?}");
                if let Some(m) = got {
                    assert!(inst.eval(&m), "{class:?} produced non-model");
                }
            }
        }
    }
}
