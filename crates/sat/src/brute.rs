//! Brute-force SAT: the 2^n baseline the SETH is about.
//!
//! Hypothesis 3 (paper §7) states CNF-SAT has no (2−ε)^n · m^{O(1)}
//! algorithm — i.e. that asymptotically one cannot do much better than this
//! module. Experiment E4/E9 measure its scaling against DPLL.

use crate::cnf::CnfFormula;

/// Tries all 2^n assignments; returns the first satisfying one.
///
/// # Panics
/// Panics if the formula has more than 63 variables (the enumeration
/// counter is a `u64`) — far beyond anything feasible anyway.
pub fn solve(f: &CnfFormula) -> Option<Vec<bool>> {
    let n = f.num_vars();
    assert!(n <= 63, "brute force limited to 63 variables");
    let mut assignment = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        for (v, a) in assignment.iter_mut().enumerate() {
            *a = bits >> v & 1 == 1;
        }
        if f.eval(&assignment) {
            return Some(assignment);
        }
    }
    None
}

/// Counts satisfying assignments by full enumeration.
pub fn count(f: &CnfFormula) -> u64 {
    let n = f.num_vars();
    assert!(n <= 63, "brute force limited to 63 variables");
    let mut assignment = vec![false; n];
    let mut total = 0u64;
    for bits in 0u64..(1u64 << n) {
        for (v, a) in assignment.iter_mut().enumerate() {
            *a = bits >> v & 1 == 1;
        }
        if f.eval(&assignment) {
            total += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;

    fn l(v: i64) -> Lit {
        Lit::new(v.unsigned_abs() as usize - 1, v > 0)
    }

    #[test]
    fn satisfiable_formula() {
        let f = CnfFormula::from_clauses(2, vec![vec![l(1)], vec![l(-2)]]);
        let a = solve(&f).unwrap();
        assert!(f.eval(&a));
        assert_eq!(a, vec![true, false]);
    }

    #[test]
    fn unsatisfiable_formula() {
        let f = CnfFormula::from_clauses(1, vec![vec![l(1)], vec![l(-1)]]);
        assert!(solve(&f).is_none());
        assert_eq!(count(&f), 0);
    }

    #[test]
    fn count_xor_like() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): exactly the two assignments with x1 ≠ x2.
        let f = CnfFormula::from_clauses(2, vec![vec![l(1), l(2)], vec![l(-1), l(-2)]]);
        assert_eq!(count(&f), 2);
    }

    #[test]
    fn empty_formula_all_assignments() {
        let f = CnfFormula::new(3);
        assert_eq!(count(&f), 8);
        assert!(solve(&f).is_some());
    }
}
