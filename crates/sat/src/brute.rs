//! Brute-force SAT: the 2^n baseline the SETH is about.
//!
//! Hypothesis 3 (paper §7) states CNF-SAT has no (2−ε)^n · m^{O(1)}
//! algorithm — i.e. that asymptotically one cannot do much better than this
//! module. Experiment E4/E9 measure its scaling against DPLL.
//!
//! Engine mapping: each assignment tried is one [`RunStats::nodes`] tick.

use crate::cnf::CnfFormula;
use lb_engine::{Budget, Outcome, RunStats, Ticker};

/// Tries all 2^n assignments; `Sat(model)` with the first satisfying one,
/// `Unsat`, or `Exhausted` if the budget ran out first.
///
/// # Panics
/// Panics if the formula has more than 63 variables (the enumeration
/// counter is a `u64`) — far beyond anything feasible anyway.
pub fn solve(f: &CnfFormula, budget: &Budget) -> (Outcome<Vec<bool>>, RunStats) {
    let n = f.num_vars();
    assert!(n <= 63, "brute force limited to 63 variables");
    let mut ticker = Ticker::new(budget);
    let mut assignment = vec![false; n];
    for bits in 0u64..(1u64 << n) {
        if let Err(reason) = ticker.node() {
            return ticker.finish(Err(reason));
        }
        // lb-lint: allow(unbudgeted-loop) -- odometer increment, bounded by num_vars per charged assignment
        for (v, a) in assignment.iter_mut().enumerate() {
            *a = bits >> v & 1 == 1;
        }
        if f.eval(&assignment) {
            return ticker.finish(Ok(Some(assignment)));
        }
    }
    ticker.finish(Ok(None))
}

/// Counts satisfying assignments by full enumeration: `Sat(count)` (zero
/// counts as completed) or `Exhausted`.
///
/// # Panics
/// Panics if the formula has more than 63 variables.
pub fn count(f: &CnfFormula, budget: &Budget) -> (Outcome<u64>, RunStats) {
    let n = f.num_vars();
    assert!(n <= 63, "brute force limited to 63 variables");
    let mut ticker = Ticker::new(budget);
    let mut assignment = vec![false; n];
    let mut total = 0u64;
    for bits in 0u64..(1u64 << n) {
        if let Err(reason) = ticker.node() {
            return ticker.finish(Err(reason));
        }
        // lb-lint: allow(unbudgeted-loop) -- odometer increment, bounded by num_vars per charged assignment
        for (v, a) in assignment.iter_mut().enumerate() {
            *a = bits >> v & 1 == 1;
        }
        if f.eval(&assignment) {
            total += 1;
        }
    }
    ticker.finish(Ok(Some(total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;

    fn l(v: i64) -> Lit {
        Lit::new(v.unsigned_abs() as usize - 1, v > 0)
    }

    #[test]
    fn satisfiable_formula() {
        let f = CnfFormula::from_clauses(2, vec![vec![l(1)], vec![l(-2)]]);
        let a = solve(&f, &Budget::unlimited()).0.unwrap_sat();
        assert!(f.eval(&a));
        assert_eq!(a, vec![true, false]);
    }

    #[test]
    fn unsatisfiable_formula() {
        let f = CnfFormula::from_clauses(1, vec![vec![l(1)], vec![l(-1)]]);
        assert!(solve(&f, &Budget::unlimited()).0.is_unsat());
        assert_eq!(count(&f, &Budget::unlimited()).0.unwrap_sat(), 0);
    }

    #[test]
    fn count_xor_like() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): exactly the two assignments with x1 ≠ x2.
        let f = CnfFormula::from_clauses(2, vec![vec![l(1), l(2)], vec![l(-1), l(-2)]]);
        assert_eq!(count(&f, &Budget::unlimited()).0.unwrap_sat(), 2);
    }

    #[test]
    fn empty_formula_all_assignments() {
        let f = CnfFormula::new(3);
        assert_eq!(count(&f, &Budget::unlimited()).0.unwrap_sat(), 8);
        assert!(solve(&f, &Budget::unlimited()).0.is_sat());
    }

    #[test]
    fn budget_exhausts_and_counters_track_work() {
        // (¬x1)…(¬x8) with the all-false model last in enumeration order is
        // irrelevant — all-false comes first; force work with an unsat core.
        let f = CnfFormula::from_clauses(6, vec![vec![l(1)], vec![l(-1)]]);
        let (out, stats) = count(&f, &Budget::ticks(5));
        assert!(out.is_exhausted());
        assert_eq!(stats.nodes, 6); // the op that crossed the limit is counted
        let (full, full_stats) = count(&f, &Budget::unlimited());
        assert_eq!(full.unwrap_sat(), 0);
        assert!(stats.le(&full_stats));
    }
}
