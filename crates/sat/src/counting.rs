//! #SAT: model counting by DPLL with unit propagation and connected
//! component splitting.
//!
//! The paper's problem statements come in three flavors — decide, find all,
//! count (§2.2) — and the counting flavor has its own lower-bound literature
//! (the paper cites tight counting bounds under ETH/SETH \[27\]). This module
//! provides an exact model counter: branching DPLL where (a) unit
//! propagation is applied (it preserves the model count on the *assigned*
//! variables), (b) free variables multiply the count by 2, and (c) the
//! clause-variable interaction graph is split into connected components
//! whose counts multiply — the classic decomposition that makes counting
//! feasible on loosely connected formulas.
//!
//! Engine mapping: branch values tried are [`RunStats::nodes`] ticks, unit
//! assignments are [`RunStats::propagations`], conflicts are
//! [`RunStats::backtracks`].
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations
//! [`RunStats::backtracks`]: lb_engine::RunStats::backtracks

use crate::cnf::{CnfFormula, Lit};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Counts satisfying assignments of `f` exactly (over all `num_vars`
/// variables, i.e. free variables contribute factors of 2): `Sat(count)`
/// when the count completes (zero is still `Sat(0)`), `Exhausted` when the
/// budget runs out first.
pub fn count_models(f: &CnfFormula, budget: &Budget) -> (Outcome<u64>, RunStats) {
    let clauses: Vec<Vec<Lit>> = f.clauses().to_vec();
    let mut assignment: Vec<Option<bool>> = vec![None; f.num_vars()];
    let vars: Vec<usize> = (0..f.num_vars()).collect();
    let mut ticker = Ticker::new(budget);
    let result = count_rec(&clauses, &mut assignment, &vars, &mut ticker).map(Some);
    ticker.finish(result)
}

/// Recursive counter over a sub-problem: `clauses` restricted to the
/// variables of `vars` (other mentioned variables are already assigned).
fn count_rec(
    clauses: &[Vec<Lit>],
    assignment: &mut Vec<Option<bool>>,
    vars: &[usize],
    ticker: &mut Ticker,
) -> Result<u64, ExhaustReason> {
    // Unit propagation with a local trail.
    let mut trail: Vec<usize> = Vec::new();
    macro_rules! bail_if_exhausted {
        ($tick:expr) => {
            if let Err(reason) = $tick {
                // lb-lint: allow(unbudgeted-loop) -- undoes the propagation trail; entries were charged when propagated
                for &v in &trail {
                    assignment[v] = None;
                }
                return Err(reason);
            }
        };
    }
    loop {
        let mut unit: Option<Lit> = None;
        let mut conflict = false;
        // lb-lint: allow(unbudgeted-loop) -- scans clauses for a unit; bounded by formula size per charged node
        for clause in clauses {
            let mut unassigned: Option<Lit> = None;
            let mut count = 0;
            let mut satisfied = false;
            // lb-lint: allow(unbudgeted-loop) -- scans one clause; bounded by clause width
            for &l in clause {
                match assignment[l.var()] {
                    Some(v) if v == l.is_positive() => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        unassigned = Some(l);
                        count += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match count {
                0 => {
                    conflict = true;
                    break;
                }
                1 => {
                    unit = unassigned;
                    break;
                }
                _ => {}
            }
        }
        if conflict {
            bail_if_exhausted!(ticker.backtrack());
            // lb-lint: allow(unbudgeted-loop) -- undoes the propagation trail; entries were charged when propagated
            for &v in &trail {
                assignment[v] = None;
            }
            return Ok(0);
        }
        match unit {
            Some(l) => {
                assignment[l.var()] = Some(l.is_positive());
                trail.push(l.var());
                ticker.record_intermediate(trail.len() as u64);
                bail_if_exhausted!(ticker.propagation());
            }
            None => break,
        }
    }

    // Active clauses and variables after propagation.
    let active: Vec<&Vec<Lit>> = clauses
        .iter()
        .filter(|c| {
            !c.iter()
                .any(|&l| assignment[l.var()] == Some(l.is_positive()))
        })
        .collect();
    let unassigned: Vec<usize> = vars
        .iter()
        .copied()
        .filter(|&v| assignment[v].is_none())
        .collect();

    let result = if active.is_empty() {
        // All clauses satisfied: free variables are unconstrained.
        1u64 << unassigned.len().min(63)
    } else {
        // Split into connected components of the variable interaction graph
        // (over unassigned variables only).
        let components = split_components(&active, &unassigned, assignment);
        let mut total: u64 = 1;
        // Variables in no active clause are free.
        let mut covered = 0usize;
        for (comp_vars, comp_clauses) in &components {
            covered += comp_vars.len();
            let sub = match branch_count(comp_clauses, assignment, comp_vars, ticker) {
                Ok(sub) => sub,
                Err(reason) => {
                    // lb-lint: allow(unbudgeted-loop) -- undoes the propagation trail; entries were charged when propagated
                    for &v in &trail {
                        assignment[v] = None;
                    }
                    return Err(reason);
                }
            };
            total = total.saturating_mul(sub);
            if total == 0 {
                break;
            }
        }
        let free = unassigned.len() - covered;
        total = total.saturating_mul(1u64 << free.min(63));
        total
    };

    // lb-lint: allow(unbudgeted-loop) -- undoes the propagation trail; entries were charged when propagated
    for &v in &trail {
        assignment[v] = None;
    }
    Ok(result)
}

/// Branches on the first variable of the component and recurses.
fn branch_count(
    clauses: &[Vec<Lit>],
    assignment: &mut Vec<Option<bool>>,
    vars: &[usize],
    ticker: &mut Ticker,
) -> Result<u64, ExhaustReason> {
    let v = vars[0];
    debug_assert!(assignment[v].is_none());
    let mut total = 0u64;
    for value in [false, true] {
        if let Err(reason) = ticker.node() {
            assignment[v] = None;
            return Err(reason);
        }
        assignment[v] = Some(value);
        match count_rec(clauses, assignment, vars, ticker) {
            Ok(sub) => total = total.saturating_add(sub),
            Err(reason) => {
                assignment[v] = None;
                return Err(reason);
            }
        }
        assignment[v] = None;
    }
    Ok(total)
}

/// Connected components of the clause-variable interaction graph restricted
/// to unassigned variables; returns (variables, clauses) per component.
fn split_components(
    active: &[&Vec<Lit>],
    unassigned: &[usize],
    assignment: &[Option<bool>],
) -> Vec<(Vec<usize>, Vec<Vec<Lit>>)> {
    // Union-find over unassigned variables.
    let mut index = std::collections::HashMap::new();
    // lb-lint: allow(unbudgeted-loop) -- component decomposition, linear in the active formula per charged branch node
    for (i, &v) in unassigned.iter().enumerate() {
        index.insert(v, i); // lb-lint: allow(unbounded-growth) -- linear in the active formula, charged at the enclosing branch node
    }
    let mut parent: Vec<usize> = (0..unassigned.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    // lb-lint: allow(unbudgeted-loop) -- component decomposition, linear in the active formula per charged branch node
    for clause in active {
        let vs: Vec<usize> = clause
            .iter()
            .filter(|l| assignment[l.var()].is_none())
            .map(|l| index[&l.var()])
            .collect();
        // lb-lint: allow(unbudgeted-loop) -- component decomposition, linear in the active formula per charged branch node
        for w in vs.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    // Group variables and clauses by root.
    let mut comp_vars: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    let mut touched: std::collections::HashSet<usize> = std::collections::HashSet::new();
    // lb-lint: allow(unbudgeted-loop) -- component decomposition, linear in the active formula per charged branch node
    for clause in active {
        // lb-lint: allow(unbudgeted-loop) -- component decomposition, linear in the active formula per charged branch node
        for l in clause.iter() {
            if assignment[l.var()].is_none() {
                touched.insert(l.var()); // lb-lint: allow(unbounded-growth) -- linear in the active formula, charged at the enclosing branch node
            }
        }
    }
    // lb-lint: allow(unbudgeted-loop) -- component decomposition, linear in the active formula per charged branch node
    for &v in unassigned {
        if touched.contains(&v) {
            let root = find(&mut parent, index[&v]);
            comp_vars.entry(root).or_default().push(v); // lb-lint: allow(unbounded-growth) -- linear in the active formula, charged at the enclosing branch node
        }
    }
    let mut out: Vec<(Vec<usize>, Vec<Vec<Lit>>)> = Vec::new();
    // lb-lint: allow(unbudgeted-loop) -- component decomposition, linear in the active formula per charged branch node
    for (root, vs) in comp_vars {
        let cs: Vec<Vec<Lit>> = active
            .iter()
            .filter(|c| {
                c.iter().any(|l| {
                    assignment[l.var()].is_none() && find(&mut parent, index[&l.var()]) == root
                })
            })
            .map(|c| (*c).clone())
            .collect();
        out.push((vs, cs)); // lb-lint: allow(unbounded-growth) -- linear in the active formula, charged at the enclosing branch node
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::generators;

    fn count_unlimited(f: &CnfFormula) -> u64 {
        count_models(f, &Budget::unlimited()).0.unwrap_sat()
    }

    #[test]
    fn matches_bruteforce_on_random_3sat() {
        for seed in 0..25u64 {
            let f = generators::random_ksat(10, 20, 3, seed);
            let expect = brute::count(&f, &Budget::unlimited()).0.unwrap_sat();
            assert_eq!(count_unlimited(&f), expect, "seed {seed}");
        }
    }

    #[test]
    fn matches_bruteforce_on_sparse_instances() {
        // Sparse instances exercise the component splitting.
        for seed in 0..15u64 {
            let f = generators::random_ksat(14, 7, 2, seed);
            let expect = brute::count(&f, &Budget::unlimited()).0.unwrap_sat();
            assert_eq!(count_unlimited(&f), expect, "seed {seed}");
        }
    }

    #[test]
    fn free_variables_multiply() {
        use crate::cnf::Lit;
        // One clause over x0; x1, x2 free → 1 · 2² + ... (x0 true) = 4.
        let f = CnfFormula::from_clauses(3, vec![vec![Lit::pos(0)]]);
        assert_eq!(count_unlimited(&f), 4);
    }

    #[test]
    fn empty_formula() {
        let f = CnfFormula::new(5);
        assert_eq!(count_unlimited(&f), 32);
    }

    #[test]
    fn unsat_counts_zero() {
        use crate::cnf::Lit;
        let f = CnfFormula::from_clauses(2, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert_eq!(count_unlimited(&f), 0);
    }

    #[test]
    fn disconnected_components_multiply() {
        use crate::cnf::Lit;
        // (x0 ∨ x1) ∧ (x2 ∨ x3): 3 · 3 = 9 models.
        let f = CnfFormula::from_clauses(
            4,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::pos(2), Lit::pos(3)],
            ],
        );
        assert_eq!(count_unlimited(&f), 9);
    }

    #[test]
    fn large_sparse_formula_fast() {
        // 40 variables in 20 independent 2-clauses: count = 3^20, far past
        // brute force but instant with component splitting.
        use crate::cnf::Lit;
        let clauses: Vec<Vec<Lit>> = (0..20)
            .map(|i| vec![Lit::pos(2 * i), Lit::pos(2 * i + 1)])
            .collect();
        let f = CnfFormula::from_clauses(40, clauses);
        assert_eq!(count_unlimited(&f), 3u64.pow(20));
    }

    #[test]
    fn tiny_budget_exhausts_instead_of_undercounting() {
        let f = generators::random_ksat(12, 24, 3, 1);
        let (out, stats) = count_models(&f, &Budget::ticks(3));
        assert!(out.is_exhausted());
        let (_, full) = count_models(&f, &Budget::unlimited());
        assert!(stats.le(&full));
    }
}
