//! DPLL: backtracking SAT with unit propagation and pure literals.
//!
//! This is the "real" solver whose still-exponential scaling experiment E4
//! measures against the 2^n brute force; the ETH (§6) asserts the
//! exponential cannot be removed. Unit propagation and pure-literal
//! elimination can be toggled off individually — the ablation axis called
//! out in DESIGN.md.
//!
//! Engine mapping: branching decisions are [`RunStats::nodes`], unit/pure
//! assignments are [`RunStats::propagations`], dead ends are
//! [`RunStats::backtracks`].
//!
//! # Preemption safety
//!
//! The search runs on an explicit decision stack (no recursion) structured
//! as a micro-step machine: every counted operation applies its effect and
//! advances the phase to the continuation point *before* spending the
//! tick. When the budget fails mid-charge the operation is already done and
//! counted, so [`DpllSolver::solve_resumable`] can serialize the frontier —
//! decision stack, assignment, simplification trail, scan position — into a
//! [`Checkpoint`] and a later call continues with the *next* operation.
//! Chained resumes therefore produce the same verdict and the same summed
//! [`RunStats`] as one uninterrupted run (the slice-equivalence invariant,
//! machine-checked in `tests/resume_properties.rs`).

use crate::cnf::{CnfFormula, Lit};
use lb_engine::checkpoint::{
    Checkpoint, CheckpointError, Digest, PayloadReader, PayloadWriter, ResumableOutcome,
    SolverFamily,
};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Payload version of DPLL checkpoints; bumped whenever the frontier
/// encoding below changes.
pub const CHECKPOINT_PAYLOAD_VERSION: u16 = 1;

/// Branching heuristics for the DPLL search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Branching {
    /// Pick the lowest-numbered unassigned variable.
    FirstUnassigned,
    /// Pick the unassigned variable occurring in the most unresolved clauses.
    MostFrequent,
}

/// Feature toggles for ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DpllConfig {
    /// Propagate unit clauses before branching.
    pub unit_propagation: bool,
    /// Assign pure literals (variables occurring with one polarity only).
    pub pure_literal: bool,
    /// Branching heuristic.
    pub branching: Branching,
}

impl Default for DpllConfig {
    fn default() -> Self {
        DpllConfig {
            unit_propagation: true,
            pure_literal: true,
            branching: Branching::MostFrequent,
        }
    }
}

/// A configurable DPLL solver.
#[derive(Clone, Debug, Default)]
pub struct DpllSolver {
    config: DpllConfig,
}

/// Clause status under a partial assignment.
enum ClauseState {
    Satisfied,
    /// All literals false.
    Conflict,
    /// Exactly one literal unassigned, the rest false.
    Unit(Lit),
    /// Two or more literals unassigned.
    Open,
}

/// Where the machine resumes within the current decision level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Scanning clauses from index `clause` for units/conflicts. `changed`
    /// records whether this fixpoint iteration assigned anything yet.
    UnitScan { clause: usize, changed: bool },
    /// Scanning variables from `var` against the stored purity snapshot.
    PureScan { var: usize, changed: bool },
    /// Simplification reached fixpoint: check satisfaction, then branch.
    Choose,
    /// The current subtree failed: flip or pop decisions.
    Unwind,
}

/// One committed branching decision.
#[derive(Clone, Debug)]
struct Frame {
    /// The decision variable.
    var: usize,
    /// False while the `true` branch is active; true once `false` is tried.
    tried_false: bool,
    /// Simplification assignments made at this level before the decision.
    trail: Vec<usize>,
}

/// The explicit-stack DPLL search state. Everything needed to continue the
/// run lives here; the formula and configuration are supplied externally
/// and cross-checked via an FNV digest at resume time.
#[derive(Clone, Debug)]
struct Machine {
    assignment: Vec<Option<bool>>,
    /// Simplification trail of the current (deepest) level.
    trail: Vec<usize>,
    frames: Vec<Frame>,
    /// Purity snapshot for the active `PureScan`, empty otherwise. Stored —
    /// not recomputed on resume — because purity is not monotone under the
    /// pure assignments the scan itself makes.
    pure_pos: Vec<bool>,
    pure_neg: Vec<bool>,
    phase: Phase,
}

impl Machine {
    fn fresh(f: &CnfFormula) -> Machine {
        Machine {
            assignment: vec![None; f.num_vars()],
            trail: Vec::new(),
            frames: Vec::new(),
            pure_pos: Vec::new(),
            pure_neg: Vec::new(),
            phase: Phase::UnitScan {
                clause: 0,
                changed: false,
            },
        }
    }

    /// Undoes the current level's simplification trail and starts unwinding.
    fn fail_level(&mut self) {
        // lb-lint: allow(unbudgeted-loop) -- drains the trail of a failed level; entries were charged when assigned
        for v in self.trail.drain(..) {
            // lb-lint: allow(no-unchecked-index, panic-reachability) -- the trail only holds assigned variable ids < num_vars
            self.assignment[v] = None;
        }
        self.phase = Phase::Unwind;
    }

    /// Computes the purity snapshot over unresolved clauses.
    fn compute_purity(&mut self, f: &CnfFormula) {
        let n = f.num_vars();
        self.pure_pos = vec![false; n];
        self.pure_neg = vec![false; n];
        // lb-lint: allow(unbudgeted-loop) -- single purity scan, linear in the clause database
        for clause in f.clauses() {
            if matches!(
                DpllSolver::clause_state(clause, &self.assignment),
                ClauseState::Satisfied
            ) {
                continue;
            }
            // lb-lint: allow(unbudgeted-loop) -- single purity scan, linear in the clause database
            for &l in clause {
                // lb-lint: allow(no-unchecked-index, panic-reachability) -- l.var() < num_vars, validated by CnfFormula::add_clause
                if self.assignment[l.var()].is_none() {
                    if l.is_positive() {
                        self.pure_pos[l.var()] = true; // lb-lint: allow(no-unchecked-index, panic-reachability) -- l.var() < num_vars, validated by CnfFormula::add_clause
                    } else {
                        self.pure_neg[l.var()] = true; // lb-lint: allow(no-unchecked-index, panic-reachability) -- l.var() < num_vars, validated by CnfFormula::add_clause
                    }
                }
            }
        }
    }

    /// Runs micro-steps until a verdict or a failed charge. Every counted
    /// operation updates the machine to its continuation point *before*
    /// spending the tick, so an `Err` return leaves the machine resumable
    /// with nothing redone and nothing double-counted.
    fn run(
        &mut self,
        f: &CnfFormula,
        config: &DpllConfig,
        ticker: &mut Ticker,
    ) -> Result<bool, ExhaustReason> {
        loop {
            match self.phase {
                Phase::UnitScan { clause, changed } => {
                    let mut i = clause;
                    let mut changed = changed;
                    let mut conflict = false;
                    while let Some(c) = f.clauses().get(i) {
                        match DpllSolver::clause_state(c, &self.assignment) {
                            ClauseState::Conflict => {
                                conflict = true;
                                break;
                            }
                            ClauseState::Unit(l) if config.unit_propagation => {
                                // lb-lint: allow(no-unchecked-index, panic-reachability) -- l.var() < num_vars, validated by CnfFormula::add_clause
                                self.assignment[l.var()] = Some(l.is_positive());
                                self.trail.push(l.var());
                                ticker.record_intermediate(self.trail.len() as u64);
                                changed = true;
                                i += 1;
                                self.phase = Phase::UnitScan { clause: i, changed };
                                ticker.propagation()?;
                            }
                            _ => i += 1,
                        }
                    }
                    if conflict {
                        self.fail_level();
                        ticker.backtrack()?;
                    } else if config.pure_literal && !changed {
                        self.compute_purity(f);
                        self.phase = Phase::PureScan {
                            var: 0,
                            changed: false,
                        };
                    } else if changed {
                        self.phase = Phase::UnitScan {
                            clause: 0,
                            changed: false,
                        };
                    } else {
                        self.phase = Phase::Choose;
                    }
                }
                Phase::PureScan { var, changed } => {
                    let n = f.num_vars();
                    let mut v = var;
                    let mut changed = changed;
                    while v < n {
                        // lb-lint: allow(no-unchecked-index) -- v < num_vars = len of the per-variable vectors
                        let pure =
                            self.assignment[v].is_none() && (self.pure_pos[v] ^ self.pure_neg[v]); // lb-lint: allow(no-unchecked-index, panic-reachability) -- v < num_vars = len of the per-variable vectors
                        if pure {
                            self.assignment[v] = Some(self.pure_pos[v]); // lb-lint: allow(no-unchecked-index, panic-reachability) -- v < num_vars = len of the per-variable vectors
                            self.trail.push(v);
                            ticker.record_intermediate(self.trail.len() as u64);
                            changed = true;
                            v += 1;
                            self.phase = Phase::PureScan { var: v, changed };
                            ticker.propagation()?;
                        } else {
                            v += 1;
                        }
                    }
                    self.pure_pos.clear();
                    self.pure_neg.clear();
                    self.phase = if changed {
                        Phase::UnitScan {
                            clause: 0,
                            changed: false,
                        }
                    } else {
                        Phase::Choose
                    };
                }
                Phase::Choose => {
                    let all_satisfied = f.clauses().iter().all(|c| {
                        matches!(
                            DpllSolver::clause_state(c, &self.assignment),
                            ClauseState::Satisfied
                        )
                    });
                    if all_satisfied {
                        return Ok(true);
                    }
                    let var = match config.branching {
                        Branching::FirstUnassigned => {
                            self.assignment.iter().position(|a| a.is_none())
                        }
                        Branching::MostFrequent => {
                            let mut count = vec![0usize; f.num_vars()];
                            // lb-lint: allow(unbudgeted-loop) -- unit scan, linear in the clause database per charged node
                            for clause in f.clauses() {
                                if matches!(
                                    DpllSolver::clause_state(clause, &self.assignment),
                                    ClauseState::Satisfied
                                ) {
                                    continue;
                                }
                                // lb-lint: allow(unbudgeted-loop) -- scans one clause; bounded by clause width
                                for &l in clause {
                                    // lb-lint: allow(no-unchecked-index, panic-reachability) -- l.var() < num_vars, validated by CnfFormula::add_clause
                                    if self.assignment[l.var()].is_none() {
                                        count[l.var()] += 1; // lb-lint: allow(no-unchecked-index, panic-reachability) -- l.var() < num_vars, validated by CnfFormula::add_clause
                                    }
                                }
                            }
                            (0..f.num_vars())
                                .filter(|&v| self.assignment[v].is_none()) // lb-lint: allow(no-unchecked-index, panic-reachability) -- v < num_vars = len of the per-variable vectors
                                .max_by_key(|&v| count[v]) // lb-lint: allow(no-unchecked-index, panic-reachability) -- v < num_vars = len of the per-variable vectors
                        }
                    };
                    match var {
                        None => {
                            // No unassigned variables but not all clauses
                            // satisfied: dead end.
                            self.fail_level();
                            ticker.backtrack()?;
                        }
                        Some(var) => {
                            let trail = std::mem::take(&mut self.trail);
                            self.frames.push(Frame {
                                var,
                                tried_false: false,
                                trail,
                            });
                            ticker.record_intermediate(self.frames.len() as u64);
                            self.assignment[var] = Some(true); // lb-lint: allow(no-unchecked-index, panic-reachability) -- var came from an index over 0..num_vars
                            self.phase = Phase::UnitScan {
                                clause: 0,
                                changed: false,
                            };
                            ticker.node()?;
                        }
                    }
                }
                Phase::Unwind => match self.frames.last_mut() {
                    None => return Ok(false),
                    Some(top) => {
                        if !top.tried_false {
                            top.tried_false = true;
                            let var = top.var;
                            self.assignment[var] = Some(false); // lb-lint: allow(no-unchecked-index, panic-reachability) -- frame vars came from an index over 0..num_vars
                            self.phase = Phase::UnitScan {
                                clause: 0,
                                changed: false,
                            };
                        } else if let Some(frame) = self.frames.pop() {
                            self.assignment[frame.var] = None; // lb-lint: allow(no-unchecked-index, panic-reachability) -- frame vars came from an index over 0..num_vars
                                                               // lb-lint: allow(unbudgeted-loop) -- unwinds one frame's trail; assignments were charged when made
                            for v in frame.trail {
                                self.assignment[v] = None; // lb-lint: allow(no-unchecked-index, panic-reachability) -- the trail only holds assigned variable ids < num_vars
                            }
                        }
                    }
                },
            }
        }
    }

    /// The witness for a `Sat` verdict: unconstrained vars default to false.
    fn witness(&self) -> Vec<bool> {
        self.assignment.iter().map(|a| a.unwrap_or(false)).collect()
    }

    fn encode(&self, digest: u64) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(digest).usize(self.assignment.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for a in &self.assignment {
            w.u8(match a {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
        }
        w.seq_usize(&self.trail);
        w.usize(self.frames.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for frame in &self.frames {
            w.usize(frame.var).bool(frame.tried_false);
            w.seq_usize(&frame.trail);
        }
        match self.phase {
            Phase::UnitScan { clause, changed } => {
                w.u8(0).usize(clause).bool(changed);
            }
            Phase::PureScan { var, changed } => {
                w.u8(1).usize(var).bool(changed);
                // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
                for i in 0..self.assignment.len() {
                    w.bool(self.pure_pos.get(i).copied().unwrap_or(false));
                    w.bool(self.pure_neg.get(i).copied().unwrap_or(false));
                }
            }
            Phase::Choose => {
                w.u8(2);
            }
            Phase::Unwind => {
                w.u8(3);
            }
        }
        w.finish()
    }

    fn decode(f: &CnfFormula, digest: u64, ck: &Checkpoint) -> Result<Machine, CheckpointError> {
        ck.verify(SolverFamily::Dpll, CHECKPOINT_PAYLOAD_VERSION)?;
        let mut r = PayloadReader::new(ck.payload());
        let found = r.u64()?;
        if found != digest {
            return Err(CheckpointError::InstanceMismatch {
                family: SolverFamily::Dpll,
                expected: digest,
                found,
            });
        }
        let n = f.num_vars();
        let stored_n = r.usize()?;
        if stored_n != n {
            return Err(CheckpointError::Malformed {
                what: format!("checkpoint has {stored_n} variables, formula has {n}"),
                offset: r.offset(),
            });
        }
        let mut assignment = Vec::with_capacity(n);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..n {
            let at = r.offset();
            // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            assignment.push(match r.u8()? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                b => {
                    return Err(CheckpointError::Malformed {
                        what: format!("invalid assignment byte {b}"),
                        offset: at,
                    })
                }
            });
        }
        let read_trail = |r: &mut PayloadReader<'_>| -> Result<Vec<usize>, CheckpointError> {
            let len = r.seq_len(8, "trail")?;
            let mut out = Vec::with_capacity(len);
            // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
            for _ in 0..len {
                out.push(r.usize_below(n, "trail var")?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            }
            Ok(out)
        };
        let trail = read_trail(&mut r)?;
        let frame_count = r.seq_len(17, "decision stack")?;
        let mut frames = Vec::with_capacity(frame_count);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..frame_count {
            let var = r.usize_below(n, "decision var")?;
            let tried_false = r.bool()?;
            let frame_trail = read_trail(&mut r)?;
            // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            frames.push(Frame {
                var,
                tried_false,
                trail: frame_trail,
            });
        }
        let tag_at = r.offset();
        let (phase, pure_pos, pure_neg) = match r.u8()? {
            0 => {
                let clause = r.usize_at_most(f.clauses().len(), "clause index")?;
                let changed = r.bool()?;
                (Phase::UnitScan { clause, changed }, Vec::new(), Vec::new())
            }
            1 => {
                let var = r.usize_at_most(n, "pure-scan var")?;
                let changed = r.bool()?;
                let mut pos = Vec::with_capacity(n);
                let mut neg = Vec::with_capacity(n);
                // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
                for _ in 0..n {
                    pos.push(r.bool()?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
                    neg.push(r.bool()?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
                }
                (Phase::PureScan { var, changed }, pos, neg)
            }
            2 => (Phase::Choose, Vec::new(), Vec::new()),
            3 => (Phase::Unwind, Vec::new(), Vec::new()),
            b => {
                return Err(CheckpointError::Malformed {
                    what: format!("invalid phase tag {b}"),
                    offset: tag_at,
                })
            }
        };
        r.finish()?;
        Ok(Machine {
            assignment,
            trail,
            frames,
            pure_pos,
            pure_neg,
            phase,
        })
    }
}

impl DpllSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: DpllConfig) -> Self {
        DpllSolver { config }
    }

    /// FNV digest binding a checkpoint to (formula, configuration).
    fn digest(&self, f: &CnfFormula) -> u64 {
        let mut d = Digest::new();
        d.str("dpll").usize(f.num_vars()).usize(f.clauses().len());
        // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in the formula; runs once per resume
        for clause in f.clauses() {
            d.usize(clause.len());
            // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in the formula; runs once per resume
            for &l in clause {
                d.usize(l.code());
            }
        }
        d.u64(u64::from(self.config.unit_propagation))
            .u64(u64::from(self.config.pure_literal))
            .u64(match self.config.branching {
                Branching::FirstUnassigned => 0,
                Branching::MostFrequent => 1,
            });
        d.finish()
    }

    /// Decides satisfiability under `budget`: `Sat(model)`, `Unsat`, or
    /// `Exhausted` if the budget ran out first, plus run counters.
    pub fn solve(&self, f: &CnfFormula, budget: &Budget) -> (Outcome<Vec<bool>>, RunStats) {
        let mut machine = Machine::fresh(f);
        let mut ticker = Ticker::new(budget);
        let result = machine
            .run(f, &self.config, &mut ticker)
            .map(|sat| sat.then(|| machine.witness()));
        ticker.finish(result)
    }

    /// Like [`solve`](DpllSolver::solve), but exhaustion is a *pause*: the
    /// returned [`ResumableOutcome::Suspended`] carries a [`Checkpoint`]
    /// which, passed back as `from`, continues the search exactly where it
    /// stopped. Chained resumes match one uninterrupted run in verdict and
    /// summed [`RunStats`].
    #[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
    pub fn solve_resumable(
        &self,
        f: &CnfFormula,
        budget: &Budget,
        from: Option<&Checkpoint>,
    ) -> Result<(ResumableOutcome<Vec<bool>>, RunStats), CheckpointError> {
        let digest = self.digest(f);
        let mut machine = match from {
            Some(ck) => Machine::decode(f, digest, ck)?,
            None => Machine::fresh(f),
        };
        let mut ticker = Ticker::new(budget);
        let outcome = match machine.run(f, &self.config, &mut ticker) {
            Ok(true) => ResumableOutcome::Sat(machine.witness()),
            Ok(false) => ResumableOutcome::Unsat,
            Err(reason) => ResumableOutcome::Suspended {
                reason,
                checkpoint: Checkpoint::new(
                    SolverFamily::Dpll,
                    CHECKPOINT_PAYLOAD_VERSION,
                    machine.encode(digest),
                ),
            },
        };
        Ok((outcome, ticker.stats()))
    }

    fn clause_state(clause: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
        let mut unassigned: Option<Lit> = None;
        let mut unassigned_count = 0usize;
        // lb-lint: allow(unbudgeted-loop) -- scans one clause; bounded by clause width
        for &l in clause {
            // lb-lint: allow(no-unchecked-index, panic-reachability) -- l.var() < num_vars, validated by CnfFormula::add_clause
            match assignment[l.var()] {
                Some(v) if v == l.is_positive() => return ClauseState::Satisfied,
                Some(_) => {}
                None => {
                    unassigned = Some(l);
                    unassigned_count += 1;
                }
            }
        }
        match unassigned_count {
            0 => ClauseState::Conflict,
            // lb-lint: allow(no-panic, panic-reachability) -- invariant: exactly one unassigned literal was counted in this clause
            1 => ClauseState::Unit(unassigned.expect("counted one")),
            _ => ClauseState::Open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::cnf::Lit;
    use crate::generators;

    fn l(v: i64) -> Lit {
        Lit::new(v.unsigned_abs() as usize - 1, v > 0)
    }

    fn all_configs() -> Vec<DpllConfig> {
        let mut out = Vec::new();
        for up in [false, true] {
            for pl in [false, true] {
                for br in [Branching::FirstUnassigned, Branching::MostFrequent] {
                    out.push(DpllConfig {
                        unit_propagation: up,
                        pure_literal: pl,
                        branching: br,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn simple_sat() {
        let f = CnfFormula::from_clauses(
            3,
            vec![vec![l(1), l(2)], vec![l(-1), l(3)], vec![l(-2), l(-3)]],
        );
        for cfg in all_configs() {
            let (out, _) = DpllSolver::new(cfg).solve(&f, &Budget::unlimited());
            let m = out.unwrap_decided().expect("satisfiable");
            assert!(f.eval(&m));
        }
    }

    #[test]
    fn simple_unsat() {
        // (x1) ∧ (¬x1 ∨ x2) ∧ (¬x2) is unsatisfiable.
        let f = CnfFormula::from_clauses(2, vec![vec![l(1)], vec![l(-1), l(2)], vec![l(-2)]]);
        for cfg in all_configs() {
            let (out, _) = DpllSolver::new(cfg).solve(&f, &Budget::unlimited());
            assert!(out.is_unsat());
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_3sat() {
        for seed in 0..20u64 {
            let f = generators::random_ksat(8, 30, 3, seed);
            let brute_sat = brute::solve(&f, &Budget::unlimited())
                .0
                .unwrap_decided()
                .is_some();
            for cfg in all_configs() {
                let (out, _) = DpllSolver::new(cfg).solve(&f, &Budget::unlimited());
                let model = out.unwrap_decided();
                assert_eq!(model.is_some(), brute_sat, "seed {seed}, cfg {cfg:?}");
                if let Some(m) = model {
                    assert!(f.eval(&m), "invalid model, seed {seed}");
                }
            }
        }
    }

    #[test]
    fn unit_propagation_reduces_decisions() {
        // Chain of implications: x1, x1→x2, ..., x9→x10. Pure DPLL without
        // propagation needs decisions; with it, zero.
        let mut clauses = vec![vec![l(1)]];
        for i in 1..10 {
            clauses.push(vec![Lit::neg(i - 1), Lit::pos(i)]);
        }
        let f = CnfFormula::from_clauses(10, clauses);
        let with = DpllSolver::new(DpllConfig {
            unit_propagation: true,
            pure_literal: false,
            branching: Branching::FirstUnassigned,
        });
        let (out, stats) = with.solve(&f, &Budget::unlimited());
        assert!(out.is_sat());
        assert_eq!(stats.nodes, 0);
        assert!(stats.propagations >= 10);
    }

    #[test]
    fn pure_literal_solves_monotone_formula() {
        // All-positive clauses: every variable is pure.
        let f = CnfFormula::from_clauses(4, vec![vec![l(1), l(2)], vec![l(3), l(4)]]);
        let solver = DpllSolver::new(DpllConfig {
            unit_propagation: false,
            pure_literal: true,
            branching: Branching::FirstUnassigned,
        });
        let (out, stats) = solver.solve(&f, &Budget::unlimited());
        assert!(out.is_sat());
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn planted_instance_is_satisfied() {
        let (f, planted) = generators::planted_ksat(12, 40, 3, 7);
        assert!(f.eval(&planted));
        let (out, _) = DpllSolver::default().solve(&f, &Budget::unlimited());
        assert!(f.eval(&out.unwrap_sat()));
    }

    #[test]
    fn tiny_budget_exhausts_without_wrong_verdict() {
        let f = generators::random_ksat(10, 42, 3, 3);
        let (out, stats) = DpllSolver::default().solve(&f, &Budget::ticks(2));
        assert!(out.is_exhausted(), "2 ticks cannot decide 42 clauses");
        assert!(stats.total_ops() >= 2);
    }

    #[test]
    fn sliced_resume_matches_one_shot() {
        for seed in 0..6u64 {
            let f = generators::random_ksat(8, 30, 3, seed);
            for cfg in all_configs() {
                let solver = DpllSolver::new(cfg);
                let (one_shot, full) = solver.solve(&f, &Budget::unlimited());
                let mut from: Option<Checkpoint> = None;
                let mut summed = RunStats::default();
                let sliced = loop {
                    let (out, stats) = solver
                        .solve_resumable(&f, &Budget::ticks(7), from.as_ref())
                        .expect("clean resume");
                    summed.absorb(&stats);
                    match out {
                        ResumableOutcome::Suspended { checkpoint, .. } => {
                            // Round-trip through bytes, like a real restart.
                            let bytes = checkpoint.to_bytes();
                            from = Some(Checkpoint::from_bytes(&bytes).expect("round trip"));
                        }
                        done => break done.into_outcome(),
                    }
                };
                assert_eq!(sliced, one_shot, "seed {seed}, cfg {cfg:?}");
                assert_eq!(summed, full, "seed {seed}, cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn wrong_family_checkpoint_is_rejected() {
        let f = generators::random_ksat(6, 20, 3, 1);
        let solver = DpllSolver::default();
        let (out, _) = solver
            .solve_resumable(&f, &Budget::ticks(3), None)
            .expect("fresh start");
        let ck = out.checkpoint().expect("suspended").clone();
        let alien = Checkpoint::new(SolverFamily::GenericJoin, 1, ck.payload().to_vec());
        let err = solver
            .solve_resumable(&f, &Budget::unlimited(), Some(&alien))
            .unwrap_err();
        assert!(matches!(err, CheckpointError::WrongFamily { .. }));
    }

    #[test]
    fn wrong_instance_checkpoint_is_rejected() {
        let f1 = generators::random_ksat(8, 30, 3, 1);
        let f2 = generators::random_ksat(8, 30, 3, 2);
        let solver = DpllSolver::default();
        let (out, _) = solver
            .solve_resumable(&f1, &Budget::ticks(3), None)
            .expect("fresh start");
        let ck = out.checkpoint().expect("suspended").clone();
        let err = solver
            .solve_resumable(&f2, &Budget::unlimited(), Some(&ck))
            .unwrap_err();
        assert!(matches!(err, CheckpointError::InstanceMismatch { .. }));
    }
}
