//! DPLL: backtracking SAT with unit propagation and pure literals.
//!
//! This is the "real" solver whose still-exponential scaling experiment E4
//! measures against the 2^n brute force; the ETH (§6) asserts the
//! exponential cannot be removed. Unit propagation and pure-literal
//! elimination can be toggled off individually — the ablation axis called
//! out in DESIGN.md.
//!
//! Engine mapping: branching decisions are [`RunStats::nodes`], unit/pure
//! assignments are [`RunStats::propagations`], dead ends are
//! [`RunStats::backtracks`].

use crate::cnf::{CnfFormula, Lit};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};

/// Branching heuristics for the DPLL search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Branching {
    /// Pick the lowest-numbered unassigned variable.
    FirstUnassigned,
    /// Pick the unassigned variable occurring in the most unresolved clauses.
    MostFrequent,
}

/// Feature toggles for ablation.
#[derive(Clone, Copy, Debug)]
pub struct DpllConfig {
    /// Propagate unit clauses before branching.
    pub unit_propagation: bool,
    /// Assign pure literals (variables occurring with one polarity only).
    pub pure_literal: bool,
    /// Branching heuristic.
    pub branching: Branching,
}

impl Default for DpllConfig {
    fn default() -> Self {
        DpllConfig {
            unit_propagation: true,
            pure_literal: true,
            branching: Branching::MostFrequent,
        }
    }
}

/// A configurable DPLL solver.
#[derive(Clone, Debug, Default)]
pub struct DpllSolver {
    config: DpllConfig,
}

/// Clause status under a partial assignment.
enum ClauseState {
    Satisfied,
    /// All literals false.
    Conflict,
    /// Exactly one literal unassigned, the rest false.
    Unit(Lit),
    /// Two or more literals unassigned.
    Open,
}

impl DpllSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: DpllConfig) -> Self {
        DpllSolver { config }
    }

    /// Decides satisfiability under `budget`: `Sat(model)`, `Unsat`, or
    /// `Exhausted` if the budget ran out first, plus run counters.
    pub fn solve(&self, f: &CnfFormula, budget: &Budget) -> (Outcome<Vec<bool>>, RunStats) {
        let mut assignment: Vec<Option<bool>> = vec![None; f.num_vars()];
        let mut ticker = Ticker::new(budget);
        let result = self.search(f, &mut assignment, &mut ticker).map(|sat| {
            sat.then(|| {
                assignment
                    .iter()
                    .map(|a| a.unwrap_or(false)) // unconstrained vars: any value
                    .collect()
            })
        });
        ticker.finish(result)
    }

    fn clause_state(clause: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
        let mut unassigned: Option<Lit> = None;
        let mut unassigned_count = 0usize;
        for &l in clause {
            // lb-lint: allow(no-unchecked-index) -- l.var() < num_vars, validated by CnfFormula::add_clause
            match assignment[l.var()] {
                Some(v) if v == l.is_positive() => return ClauseState::Satisfied,
                Some(_) => {}
                None => {
                    unassigned = Some(l);
                    unassigned_count += 1;
                }
            }
        }
        match unassigned_count {
            0 => ClauseState::Conflict,
            // lb-lint: allow(no-panic) -- invariant: exactly one unassigned literal was counted in this clause
            1 => ClauseState::Unit(unassigned.expect("counted one")),
            _ => ClauseState::Open,
        }
    }

    /// Returns `Ok(true)` if satisfiable with the current partial
    /// assignment, `Err` if the budget ran out mid-branch.
    fn search(
        &self,
        f: &CnfFormula,
        assignment: &mut Vec<Option<bool>>,
        ticker: &mut Ticker,
    ) -> Result<bool, ExhaustReason> {
        // Trail of variables assigned at this level, for backtracking.
        let mut trail: Vec<usize> = Vec::new();
        let undo = |assignment: &mut Vec<Option<bool>>, trail: &[usize]| {
            for &v in trail {
                assignment[v] = None; // lb-lint: allow(no-unchecked-index) -- the trail only holds assigned variable ids < num_vars
            }
        };
        // Budget exhaustion aborts the whole search, so the partial
        // assignment need not be restored — but route through a single
        // cleanup point anyway to keep the solver reusable.
        macro_rules! bail_if_exhausted {
            ($tick:expr) => {
                if let Err(reason) = $tick {
                    undo(assignment, &trail);
                    return Err(reason);
                }
            };
        }

        // Simplification loop: unit propagation + pure literals to fixpoint.
        loop {
            let mut changed = false;
            let mut conflict = false;
            if self.config.unit_propagation {
                for clause in f.clauses() {
                    match Self::clause_state(clause, assignment) {
                        ClauseState::Conflict => {
                            conflict = true;
                            break;
                        }
                        ClauseState::Unit(l) => {
                            // lb-lint: allow(no-unchecked-index) -- l.var() < num_vars, validated by CnfFormula::add_clause
                            assignment[l.var()] = Some(l.is_positive());
                            trail.push(l.var());
                            bail_if_exhausted!(ticker.propagation());
                            changed = true;
                        }
                        _ => {}
                    }
                }
            } else {
                // Still must detect conflicts to terminate branches.
                conflict = f
                    .clauses()
                    .iter()
                    .any(|c| matches!(Self::clause_state(c, assignment), ClauseState::Conflict));
            }
            if conflict {
                bail_if_exhausted!(ticker.backtrack());
                undo(assignment, &trail);
                return Ok(false);
            }
            if self.config.pure_literal && !changed {
                // Polarities over unresolved clauses.
                let n = f.num_vars();
                let mut pos = vec![false; n];
                let mut neg = vec![false; n];
                for clause in f.clauses() {
                    if matches!(
                        Self::clause_state(clause, assignment),
                        ClauseState::Satisfied
                    ) {
                        continue;
                    }
                    for &l in clause {
                        // lb-lint: allow(no-unchecked-index) -- l.var() < num_vars, validated by CnfFormula::add_clause
                        if assignment[l.var()].is_none() {
                            if l.is_positive() {
                                pos[l.var()] = true; // lb-lint: allow(no-unchecked-index) -- l.var() < num_vars, validated by CnfFormula::add_clause
                            } else {
                                neg[l.var()] = true; // lb-lint: allow(no-unchecked-index) -- l.var() < num_vars, validated by CnfFormula::add_clause
                            }
                        }
                    }
                }
                for v in 0..n {
                    // lb-lint: allow(no-unchecked-index) -- v < num_vars = len of the per-variable vectors
                    if assignment[v].is_none() && (pos[v] ^ neg[v]) {
                        assignment[v] = Some(pos[v]); // lb-lint: allow(no-unchecked-index) -- v < num_vars = len of the per-variable vectors
                        trail.push(v);
                        bail_if_exhausted!(ticker.propagation());
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // All clauses satisfied?
        let all_satisfied = f
            .clauses()
            .iter()
            .all(|c| matches!(Self::clause_state(c, assignment), ClauseState::Satisfied));
        if all_satisfied {
            return Ok(true);
        }

        // Branch.
        let var = match self.config.branching {
            Branching::FirstUnassigned => assignment.iter().position(|a| a.is_none()),
            Branching::MostFrequent => {
                let mut count = vec![0usize; f.num_vars()];
                for clause in f.clauses() {
                    if matches!(
                        Self::clause_state(clause, assignment),
                        ClauseState::Satisfied
                    ) {
                        continue;
                    }
                    for &l in clause {
                        // lb-lint: allow(no-unchecked-index) -- l.var() < num_vars, validated by CnfFormula::add_clause
                        if assignment[l.var()].is_none() {
                            count[l.var()] += 1; // lb-lint: allow(no-unchecked-index) -- l.var() < num_vars, validated by CnfFormula::add_clause
                        }
                    }
                }
                (0..f.num_vars())
                    .filter(|&v| assignment[v].is_none()) // lb-lint: allow(no-unchecked-index) -- v < num_vars = len of the per-variable vectors
                    .max_by_key(|&v| count[v]) // lb-lint: allow(no-unchecked-index) -- v < num_vars = len of the per-variable vectors
            }
        };
        let var = match var {
            Some(v) => v,
            None => {
                // No unassigned variables but not all clauses satisfied.
                bail_if_exhausted!(ticker.backtrack());
                undo(assignment, &trail);
                return Ok(false);
            }
        };

        bail_if_exhausted!(ticker.node());
        for value in [true, false] {
            assignment[var] = Some(value); // lb-lint: allow(no-unchecked-index) -- var came from an index over 0..num_vars
            match self.search(f, assignment, ticker) {
                Ok(true) => return Ok(true),
                Ok(false) => {}
                Err(reason) => {
                    undo(assignment, &trail);
                    return Err(reason);
                }
            }
        }
        // lb-lint: allow(no-unchecked-index) -- var came from an index over 0..num_vars
        assignment[var] = None;
        undo(assignment, &trail);
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::cnf::Lit;
    use crate::generators;

    fn l(v: i64) -> Lit {
        Lit::new(v.unsigned_abs() as usize - 1, v > 0)
    }

    fn all_configs() -> Vec<DpllConfig> {
        let mut out = Vec::new();
        for up in [false, true] {
            for pl in [false, true] {
                for br in [Branching::FirstUnassigned, Branching::MostFrequent] {
                    out.push(DpllConfig {
                        unit_propagation: up,
                        pure_literal: pl,
                        branching: br,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn simple_sat() {
        let f = CnfFormula::from_clauses(
            3,
            vec![vec![l(1), l(2)], vec![l(-1), l(3)], vec![l(-2), l(-3)]],
        );
        for cfg in all_configs() {
            let (out, _) = DpllSolver::new(cfg).solve(&f, &Budget::unlimited());
            let m = out.unwrap_decided().expect("satisfiable");
            assert!(f.eval(&m));
        }
    }

    #[test]
    fn simple_unsat() {
        // (x1) ∧ (¬x1 ∨ x2) ∧ (¬x2) is unsatisfiable.
        let f = CnfFormula::from_clauses(2, vec![vec![l(1)], vec![l(-1), l(2)], vec![l(-2)]]);
        for cfg in all_configs() {
            let (out, _) = DpllSolver::new(cfg).solve(&f, &Budget::unlimited());
            assert!(out.is_unsat());
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_3sat() {
        for seed in 0..20u64 {
            let f = generators::random_ksat(8, 30, 3, seed);
            let brute_sat = brute::solve(&f, &Budget::unlimited())
                .0
                .unwrap_decided()
                .is_some();
            for cfg in all_configs() {
                let (out, _) = DpllSolver::new(cfg).solve(&f, &Budget::unlimited());
                let model = out.unwrap_decided();
                assert_eq!(model.is_some(), brute_sat, "seed {seed}, cfg {cfg:?}");
                if let Some(m) = model {
                    assert!(f.eval(&m), "invalid model, seed {seed}");
                }
            }
        }
    }

    #[test]
    fn unit_propagation_reduces_decisions() {
        // Chain of implications: x1, x1→x2, ..., x9→x10. Pure DPLL without
        // propagation needs decisions; with it, zero.
        let mut clauses = vec![vec![l(1)]];
        for i in 1..10 {
            clauses.push(vec![Lit::neg(i - 1), Lit::pos(i)]);
        }
        let f = CnfFormula::from_clauses(10, clauses);
        let with = DpllSolver::new(DpllConfig {
            unit_propagation: true,
            pure_literal: false,
            branching: Branching::FirstUnassigned,
        });
        let (out, stats) = with.solve(&f, &Budget::unlimited());
        assert!(out.is_sat());
        assert_eq!(stats.nodes, 0);
        assert!(stats.propagations >= 10);
    }

    #[test]
    fn pure_literal_solves_monotone_formula() {
        // All-positive clauses: every variable is pure.
        let f = CnfFormula::from_clauses(4, vec![vec![l(1), l(2)], vec![l(3), l(4)]]);
        let solver = DpllSolver::new(DpllConfig {
            unit_propagation: false,
            pure_literal: true,
            branching: Branching::FirstUnassigned,
        });
        let (out, stats) = solver.solve(&f, &Budget::unlimited());
        assert!(out.is_sat());
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn planted_instance_is_satisfied() {
        let (f, planted) = generators::planted_ksat(12, 40, 3, 7);
        assert!(f.eval(&planted));
        let (out, _) = DpllSolver::default().solve(&f, &Budget::unlimited());
        assert!(f.eval(&out.unwrap_sat()));
    }

    #[test]
    fn tiny_budget_exhausts_without_wrong_verdict() {
        let f = generators::random_ksat(10, 42, 3, 3);
        let (out, stats) = DpllSolver::default().solve(&f, &Budget::ticks(2));
        assert!(out.is_exhausted(), "2 ticks cannot decide 42 clauses");
        assert!(stats.total_ops() >= 2);
    }
}
