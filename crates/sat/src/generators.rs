//! Random SAT instance generators for the scaling experiments.

use crate::cnf::{CnfFormula, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random k-SAT: `m` clauses, each with `k` distinct variables and
/// random polarities.
///
/// # Panics
/// Panics if `k > n` or `k == 0`.
pub fn random_ksat(n: usize, m: usize, k: usize, seed: u64) -> CnfFormula {
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = CnfFormula::new(n);
    for _ in 0..m {
        f.add_clause(random_clause(&mut rng, n, k));
    }
    f
}

/// Random k-SAT planted around a hidden satisfying assignment: every clause
/// is checked to be satisfied by the plant, so the instance is always
/// satisfiable. Returns `(formula, planted_assignment)`.
pub fn planted_ksat(n: usize, m: usize, k: usize, seed: u64) -> (CnfFormula, Vec<bool>) {
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let mut rng = StdRng::seed_from_u64(seed);
    let plant: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut f = CnfFormula::new(n);
    for _ in 0..m {
        loop {
            let clause = random_clause(&mut rng, n, k);
            if clause.iter().any(|&l| l.eval(&plant)) {
                f.add_clause(clause);
                break;
            }
        }
    }
    (f, plant)
}

/// A "sparsified" 3SAT instance in the sense relevant to Hypothesis 2
/// (paper §6): the number of clauses is linear in the number of variables,
/// `m = ⌈c·n⌉`. The ratio `c = 4.27` sits near the 3SAT phase transition,
/// where random instances are empirically hardest.
pub fn sparse_3sat(n: usize, clause_ratio: f64, seed: u64) -> CnfFormula {
    let m = (clause_ratio * n as f64).ceil() as usize;
    random_ksat(n, m, 3, seed)
}

fn random_clause(rng: &mut StdRng, n: usize, k: usize) -> Vec<Lit> {
    // k distinct variables by partial Fisher–Yates over a small reservoir.
    let mut vars: Vec<usize> = Vec::with_capacity(k);
    while vars.len() < k {
        let v = rng.gen_range(0..n);
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.into_iter().map(|v| Lit::new(v, rng.gen())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let f = random_ksat(10, 30, 3, 1);
        assert_eq!(f.num_vars(), 10);
        assert_eq!(f.num_clauses(), 30);
        assert!(f.clauses().iter().all(|c| c.len() == 3));
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(random_ksat(8, 20, 3, 5), random_ksat(8, 20, 3, 5));
        assert_ne!(random_ksat(8, 20, 3, 5), random_ksat(8, 20, 3, 6));
    }

    #[test]
    fn planted_is_satisfiable() {
        for seed in 0..10 {
            let (f, plant) = planted_ksat(15, 60, 3, seed);
            assert!(f.eval(&plant), "seed {seed}");
        }
    }

    #[test]
    fn sparse_linear_clause_count() {
        let f = sparse_3sat(100, 4.27, 3);
        assert_eq!(f.num_clauses(), 427);
    }

    #[test]
    fn distinct_vars_in_clause() {
        let f = random_ksat(5, 50, 3, 9);
        for c in f.clauses() {
            let mut vars: Vec<usize> = c.iter().map(|l| l.var()).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }
}
