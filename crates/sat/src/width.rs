//! Clause-width reduction: CNF-SAT → 3SAT (paper §6).
//!
//! The ETH is stated for 3SAT; the standard width reduction splits a wide
//! clause (l₁ ∨ … ∨ l_k) into a chain
//! (l₁ ∨ l₂ ∨ y₁) ∧ (¬y₁ ∨ l₃ ∨ y₂) ∧ … ∧ (¬y_{k−3} ∨ l_{k−1} ∨ l_k)
//! with k − 3 fresh variables. The output is equisatisfiable, linear in the
//! input size, and any model restricted to the original variables satisfies
//! the original formula — which is why ETH lower bounds proved against 3SAT
//! apply to CNF-SAT with arbitrary clause width too (in terms of n + m).

use crate::cnf::{CnfFormula, Lit};

/// The result of a width reduction.
#[derive(Clone, Debug)]
pub struct WidthReduction {
    /// The 3SAT formula (original variables come first).
    pub formula: CnfFormula,
    /// Number of original variables (the prefix of any model that maps
    /// back).
    pub original_vars: usize,
}

/// Reduces an arbitrary-width CNF to 3SAT.
pub fn reduce_to_3sat(f: &CnfFormula) -> WidthReduction {
    let mut next_aux = f.num_vars();
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    for clause in f.clauses() {
        if clause.len() <= 3 {
            clauses.push(clause.clone());
            continue;
        }
        // Chain split.
        let k = clause.len();
        let mut fresh = || {
            next_aux += 1;
            next_aux - 1
        };
        let first_aux = fresh();
        clauses.push(vec![clause[0], clause[1], Lit::pos(first_aux)]);
        let mut prev = first_aux;
        for &lit in &clause[2..k - 2] {
            let aux = fresh();
            clauses.push(vec![Lit::neg(prev), lit, Lit::pos(aux)]);
            prev = aux;
        }
        clauses.push(vec![Lit::neg(prev), clause[k - 2], clause[k - 1]]);
    }
    WidthReduction {
        formula: CnfFormula::from_clauses(next_aux, clauses),
        original_vars: f.num_vars(),
    }
}

/// Restricts a model of the reduced formula to the original variables.
pub fn model_back(r: &WidthReduction, model: &[bool]) -> Vec<bool> {
    model[..r.original_vars].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute, generators, DpllSolver};
    use lb_engine::Budget;

    #[test]
    fn narrow_clauses_untouched() {
        let f = generators::random_ksat(6, 15, 3, 1);
        let r = reduce_to_3sat(&f);
        assert_eq!(r.formula, f);
    }

    #[test]
    fn equisatisfiable_on_wide_formulas() {
        for seed in 0..15u64 {
            let f = generators::random_ksat(8, 10, 6, seed);
            let r = reduce_to_3sat(&f);
            assert!(r.formula.is_ksat(3));
            let expect = brute::solve(&f, &Budget::unlimited()).0.is_sat();
            let (out, _) = DpllSolver::default().solve(&r.formula, &Budget::unlimited());
            let model = out.unwrap_decided();
            assert_eq!(model.is_some(), expect, "seed {seed}");
            if let Some(m) = model {
                assert!(f.eval(&model_back(&r, &m)), "seed {seed}");
            }
        }
    }

    #[test]
    fn linear_blowup() {
        // One clause of width k becomes k − 2 clauses with k − 3 aux vars.
        let f = generators::random_ksat(10, 1, 8, 3);
        let r = reduce_to_3sat(&f);
        assert_eq!(r.formula.num_clauses(), 6);
        assert_eq!(r.formula.num_vars(), 10 + 5);
    }

    #[test]
    fn width_four_boundary() {
        let f = generators::random_ksat(5, 4, 4, 9);
        let r = reduce_to_3sat(&f);
        assert!(r.formula.is_ksat(3));
        assert_eq!(
            brute::solve(&f, &Budget::unlimited()).0.is_sat(),
            brute::solve(&r.formula, &Budget::unlimited()).0.is_sat()
        );
    }

    #[test]
    fn every_original_model_extends() {
        // The other direction of equisatisfiability: a model of f extends
        // to one of the reduction (set y_i = "no satisfied literal yet").
        for seed in 0..10u64 {
            let (f, plant) = generators::planted_ksat(7, 8, 5, seed);
            let r = reduce_to_3sat(&f);
            let (out, _) = DpllSolver::default().solve(&r.formula, &Budget::unlimited());
            let m = out
                .sat()
                .expect("satisfiable original ⇒ satisfiable reduction");
            assert!(f.eval(&model_back(&r, &m)));
            assert!(f.eval(&plant));
        }
    }
}
