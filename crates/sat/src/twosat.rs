//! Linear-time 2SAT via implication-graph SCCs.
//!
//! The polynomial-time case the paper contrasts with 3SAT in §4: with
//! |D| = 2 and binary constraints, CSP degenerates to 2SAT. Each 2-clause
//! (a ∨ b) contributes implications ¬a → b and ¬b → a; the formula is
//! satisfiable iff no variable shares an SCC with its negation, and a model
//! is read off the reverse topological order of the condensation.
//!
//! Engine mapping: each implication arc added is a
//! [`RunStats::propagations`] tick; each variable resolved against the
//! condensation is a [`RunStats::nodes`] tick.

use crate::cnf::{CnfFormula, Lit};
use lb_engine::{Budget, Outcome, RunStats, Ticker};
use lb_graph::DiGraph;

/// Solves a 2SAT formula under `budget`: `Sat(model)`, `Unsat`, or
/// `Exhausted`.
///
/// # Panics
/// Panics if some clause has more than 2 literals.
#[allow(clippy::needless_range_loop)] // index used across several arrays
pub fn solve_2sat(f: &CnfFormula, budget: &Budget) -> (Outcome<Vec<bool>>, RunStats) {
    assert!(f.is_ksat(2), "solve_2sat requires clauses of width ≤ 2");
    let n = f.num_vars();
    let mut ticker = Ticker::new(budget);
    let mut g = DiGraph::new(2 * n);
    for clause in f.clauses() {
        if let Err(reason) = ticker.propagation() {
            return ticker.finish(Err(reason));
        }
        match clause.as_slice() {
            [a] => {
                // Unit clause (a): ¬a → a.
                g.add_arc(a.negated().code(), a.code());
            }
            [a, b] => {
                g.add_arc(a.negated().code(), b.code());
                g.add_arc(b.negated().code(), a.code());
            }
            // lb-lint: allow(no-panic, panic-reachability) -- invariant: clause width was checked to be <= 2 above
            _ => unreachable!("width checked above"),
        }
    }
    let scc = g.tarjan_scc();
    let mut model = vec![false; n];
    for v in 0..n {
        if let Err(reason) = ticker.node() {
            return ticker.finish(Err(reason));
        }
        // lb-lint: allow(no-unchecked-index, panic-reachability) -- literal codes are < 2n, the graph size
        let pos = scc.comp[Lit::pos(v).code()];
        // lb-lint: allow(no-unchecked-index, panic-reachability) -- literal codes are < 2n, the graph size
        let neg = scc.comp[Lit::neg(v).code()];
        if pos == neg {
            return ticker.finish(Ok(None));
        }
        // Tarjan numbers components in reverse topological order, so the
        // literal whose component index is *smaller* is "later" in
        // topological order and must be set true.
        model[v] = pos < neg; // lb-lint: allow(no-unchecked-index, panic-reachability) -- v ranges over 0..n = model.len()
    }
    debug_assert!(f.eval(&model), "2SAT model must satisfy the formula");
    ticker.finish(Ok(Some(model)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::cnf::Lit;
    use crate::generators;

    fn l(v: i64) -> Lit {
        Lit::new(v.unsigned_abs() as usize - 1, v > 0)
    }

    #[test]
    fn satisfiable_chain() {
        // (x1 ∨ x2) ∧ (¬x2 ∨ x3) ∧ (¬x1)
        let f = CnfFormula::from_clauses(3, vec![vec![l(1), l(2)], vec![l(-2), l(3)], vec![l(-1)]]);
        let m = solve_2sat(&f, &Budget::unlimited()).0.unwrap_sat();
        assert!(f.eval(&m));
        assert!(!m[0] && m[1] && m[2]);
    }

    #[test]
    fn unsatisfiable_pair() {
        // (x1 ∨ x1) ∧ (¬x1 ∨ ¬x1)
        let f = CnfFormula::from_clauses(1, vec![vec![l(1)], vec![l(-1)]]);
        assert!(solve_2sat(&f, &Budget::unlimited()).0.is_unsat());
    }

    #[test]
    fn classic_unsat_square() {
        // x1≠x2, x2≠x3, x3≠x1 (odd anti-cycle) is unsatisfiable:
        // encode x≠y as (x∨y) ∧ (¬x∨¬y).
        let ne = |a: i64, b: i64| vec![vec![l(a), l(b)], vec![l(-a), l(-b)]];
        let mut clauses = Vec::new();
        clauses.extend(ne(1, 2));
        clauses.extend(ne(2, 3));
        clauses.extend(ne(3, 1));
        let f = CnfFormula::from_clauses(3, clauses);
        assert!(solve_2sat(&f, &Budget::unlimited()).0.is_unsat());
    }

    #[test]
    fn agrees_with_brute_force() {
        for seed in 0..50u64 {
            let f = generators::random_ksat(10, 25, 2, seed);
            let expect = brute::solve(&f, &Budget::unlimited()).0.is_sat();
            let got = solve_2sat(&f, &Budget::unlimited()).0.unwrap_decided();
            assert_eq!(got.is_some(), expect, "seed {seed}");
            if let Some(m) = got {
                assert!(f.eval(&m));
            }
        }
    }

    #[test]
    fn large_instance_is_fast() {
        // 50k variables, implication chain: trivially satisfiable; mostly a
        // no-stack-overflow / linearity smoke test.
        let n = 50_000;
        let mut clauses = Vec::with_capacity(n - 1);
        for i in 0..n - 1 {
            clauses.push(vec![Lit::neg(i), Lit::pos(i + 1)]);
        }
        let f = CnfFormula::from_clauses(n, clauses);
        let (out, stats) = solve_2sat(&f, &Budget::unlimited());
        assert!(out.is_sat());
        assert_eq!(stats.propagations, (n - 1) as u64);
    }

    #[test]
    fn budget_exhausts_mid_build() {
        let n = 1000;
        let clauses: Vec<_> = (0..n - 1)
            .map(|i| vec![Lit::neg(i), Lit::pos(i + 1)])
            .collect();
        let f = CnfFormula::from_clauses(n, clauses);
        let (out, _) = solve_2sat(&f, &Budget::ticks(10));
        assert!(out.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn wide_clause_rejected() {
        let f = CnfFormula::from_clauses(3, vec![vec![l(1), l(2), l(3)]]);
        let _ = solve_2sat(&f, &Budget::unlimited());
    }
}
