//! CNF formulas: literals, clauses, evaluation, DIMACS I/O.

use lb_engine::parse::{tokens, ParseError, ParseErrorKind};
use std::fmt;

/// The largest variable count a DIMACS header may declare. [`Lit`] packs
/// `2·var + sign` into a `u32`, so anything larger would silently wrap
/// literal ids onto the wrong variables.
pub const MAX_DIMACS_VARS: usize = (u32::MAX >> 1) as usize;

/// A literal: variable index `0..n` plus a sign.
///
/// Internally encoded as `2·var + negated`, so literals pack densely into
/// implication-graph vertex ids (see `twosat`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: usize) -> Lit {
        Lit((var as u32) << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: usize) -> Lit {
        Lit(((var as u32) << 1) | 1)
    }

    /// Builds from a variable and a sign (`true` = positive).
    pub fn new(var: usize, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// True iff this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense code in `0..2n` (used as an implication-graph vertex id).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Evaluates under an assignment (`assignment[var]` is the value).
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var()] == self.is_positive()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}",
            if self.is_positive() { "" } else { "¬" },
            self.var()
        )
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula over variables `0..num_vars`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// An empty formula (trivially satisfiable).
    pub fn new(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Builds from clause data; deduplicates literals within a clause.
    ///
    /// # Panics
    /// Panics if a clause mentions a variable ≥ `num_vars` or is empty
    /// after deduplication (an empty clause makes the formula trivially
    /// unsatisfiable — represent that case explicitly if you need it).
    pub fn from_clauses(num_vars: usize, clauses: Vec<Clause>) -> Self {
        let mut f = CnfFormula::new(num_vars);
        // lb-lint: allow(unbudgeted-loop) -- formula construction, linear in input
        for c in clauses {
            f.add_clause(c);
        }
        f
    }

    /// Adds a clause (literals are sorted and deduplicated).
    pub fn add_clause(&mut self, mut clause: Clause) {
        clause.sort_unstable();
        clause.dedup();
        assert!(!clause.is_empty(), "empty clause");
        // lb-lint: allow(unbudgeted-loop) -- scans one clause; bounded by clause width
        for &l in &clause {
            assert!(l.var() < self.num_vars, "literal variable out of range");
        }
        self.clauses.push(clause);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Maximum clause width (k of "k-SAT").
    pub fn width(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// True iff every clause has at most `k` literals.
    pub fn is_ksat(&self, k: usize) -> bool {
        self.width() <= k
    }

    /// Evaluates the formula under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|&l| l.eval(assignment)))
    }

    /// A clause is *tautological* if it contains both a literal and its
    /// negation; removes such clauses (they constrain nothing).
    pub fn remove_tautologies(&mut self) {
        self.clauses
            .retain(|c| !c.iter().any(|&l| c.contains(&l.negated())));
    }

    /// Serializes in DIMACS CNF format (variables are 1-based there).
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for &l in c {
                let v = (l.var() + 1) as i64;
                let signed = if l.is_positive() { v } else { -v };
                out.push_str(&signed.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses DIMACS CNF. Lines starting with `c` are comments.
    ///
    /// Validated ingestion: every malformed input — a bad token, a literal
    /// outside the declared variable range, a variable count that would wrap
    /// the [`Lit`] encoding, an empty clause, trailing tokens after the
    /// final declared clause, a clause-count mismatch — degrades to a typed
    /// [`ParseError`] with exact line/column, never a panic and never a
    /// silently garbled formula.
    #[must_use = "dropping the result discards the parsed formula or the parse error"]
    pub fn from_dimacs(text: &str) -> Result<Self, ParseError> {
        let mut num_vars: Option<usize> = None;
        let mut declared_clauses = 0usize;
        let mut clauses: Vec<Clause> = Vec::new();
        let mut current: Clause = Vec::new();
        // Position of the open clause's first literal, for the
        // missing-terminator diagnostic.
        let mut open_clause_at = (0usize, 0usize);
        let mut last_line = 0usize;
        // lb-lint: allow(unbudgeted-loop) -- single parsing pass, linear in the input text
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            last_line = lineno;
            let trimmed = raw_line.trim_start();
            if trimmed.is_empty() || trimmed.starts_with('c') {
                continue;
            }
            if trimmed.starts_with('p') {
                let header_col = raw_line.len() - trimmed.len() + 1;
                if num_vars.is_some() {
                    return Err(ParseError::new(
                        lineno,
                        header_col,
                        ParseErrorKind::Duplicate {
                            what: "problem line".into(),
                        },
                    ));
                }
                let toks: Vec<(usize, &str)> = tokens(raw_line).collect();
                if toks.len() != 4 || toks[0].1 != "p" || toks[1].1 != "cnf" {
                    return Err(ParseError::new(
                        lineno,
                        header_col,
                        ParseErrorKind::Malformed {
                            what: "problem line (expected `p cnf <vars> <clauses>`)".into(),
                        },
                    ));
                }
                let (vars_col, vars_tok) = toks[2];
                let nv: usize = vars_tok.parse().map_err(|_| {
                    ParseError::new(
                        lineno,
                        vars_col,
                        ParseErrorKind::InvalidNumber {
                            what: "variable count".into(),
                            token: vars_tok.to_string(),
                        },
                    )
                })?;
                if nv > MAX_DIMACS_VARS {
                    return Err(ParseError::new(
                        lineno,
                        vars_col,
                        ParseErrorKind::OutOfRange {
                            what: "variable count".into(),
                            token: vars_tok.to_string(),
                            limit: format!("at most {MAX_DIMACS_VARS}"),
                        },
                    ));
                }
                let (count_col, count_tok) = toks[3];
                declared_clauses = count_tok.parse().map_err(|_| {
                    ParseError::new(
                        lineno,
                        count_col,
                        ParseErrorKind::InvalidNumber {
                            what: "clause count".into(),
                            token: count_tok.to_string(),
                        },
                    )
                })?;
                num_vars = Some(nv);
                continue;
            }
            // lb-lint: allow(unbudgeted-loop) -- single parsing pass, linear in the input text
            for (col, tok) in tokens(raw_line) {
                let Some(nv) = num_vars else {
                    return Err(ParseError::new(
                        lineno,
                        col,
                        ParseErrorKind::Missing {
                            what: "problem line before clauses".into(),
                        },
                    ));
                };
                if clauses.len() == declared_clauses && current.is_empty() {
                    // Every declared clause is complete: whatever follows
                    // the final terminating `0` is garbage, not input.
                    return Err(ParseError::new(
                        lineno,
                        col,
                        ParseErrorKind::TrailingGarbage {
                            token: tok.to_string(),
                        },
                    ));
                }
                let v: i64 = tok.parse().map_err(|_| {
                    ParseError::new(
                        lineno,
                        col,
                        ParseErrorKind::InvalidNumber {
                            what: "literal".into(),
                            token: tok.to_string(),
                        },
                    )
                })?;
                if v == 0 {
                    if current.is_empty() {
                        return Err(ParseError::new(lineno, col, ParseErrorKind::EmptyClause));
                    }
                    clauses.push(std::mem::take(&mut current)); // lb-lint: allow(unbounded-growth) -- parser output, linear in the input text and capped by the declared clause count
                } else {
                    // Range-check before narrowing so ids beyond the `Lit`
                    // encoding cannot wrap onto the wrong variable.
                    let var = v.unsigned_abs() - 1;
                    if var >= nv as u64 {
                        return Err(ParseError::new(
                            lineno,
                            col,
                            ParseErrorKind::OutOfRange {
                                what: "literal".into(),
                                token: tok.to_string(),
                                limit: format!("declared {nv} variables"),
                            },
                        ));
                    }
                    if current.is_empty() {
                        open_clause_at = (lineno, col);
                    }
                    current.push(Lit::new(var as usize, v > 0)); // lb-lint: allow(unbounded-growth) -- parser output, linear in the input text
                }
            }
        }
        if !current.is_empty() {
            return Err(ParseError::new(
                open_clause_at.0,
                open_clause_at.1,
                ParseErrorKind::Missing {
                    what: "terminating `0` for this clause".into(),
                },
            ));
        }
        let Some(nv) = num_vars else {
            return Err(ParseError::at_eof(
                last_line + 1,
                ParseErrorKind::Missing {
                    what: "problem line".into(),
                },
            ));
        };
        if clauses.len() != declared_clauses {
            return Err(ParseError::at_eof(
                last_line + 1,
                ParseErrorKind::CountMismatch {
                    what: "clauses".into(),
                    declared: declared_clauses,
                    found: clauses.len(),
                },
            ));
        }
        Ok(CnfFormula::from_clauses(nv, clauses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(v: i64) -> Lit {
        Lit::new(v.unsigned_abs() as usize - 1, v > 0)
    }

    #[test]
    fn literal_encoding() {
        let p = Lit::pos(3);
        let n = Lit::neg(3);
        assert_eq!(p.var(), 3);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn eval_simple() {
        // (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
        let f = CnfFormula::from_clauses(3, vec![vec![l(1), l(-2)], vec![l(2), l(3)]]);
        assert!(f.eval(&[true, true, false]));
        assert!(!f.eval(&[false, true, false]));
        assert_eq!(f.width(), 2);
        assert!(f.is_ksat(2));
        assert!(!f.is_ksat(1));
    }

    #[test]
    fn clause_dedup() {
        let f = CnfFormula::from_clauses(2, vec![vec![l(1), l(1), l(2)]]);
        assert_eq!(f.clauses()[0].len(), 2);
    }

    #[test]
    fn tautology_removal() {
        let mut f = CnfFormula::from_clauses(2, vec![vec![l(1), l(-1)], vec![l(2)]]);
        f.remove_tautologies();
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn dimacs_roundtrip() {
        let f = CnfFormula::from_clauses(
            3,
            vec![vec![l(1), l(-3), l(2)], vec![l(-1), l(2)], vec![l(3)]],
        );
        let text = f.to_dimacs();
        let g = CnfFormula::from_dimacs(&text).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn dimacs_with_comments() {
        let text = "c a comment\np cnf 2 2\n1 -2 0\n2 0\n";
        let f = CnfFormula::from_dimacs(text).unwrap();
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.num_clauses(), 2);
    }

    #[test]
    fn dimacs_errors_are_typed_and_positioned() {
        let e = CnfFormula::from_dimacs("1 2 0").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Missing { .. }));
        assert_eq!((e.line, e.col), (1, 1));

        let e = CnfFormula::from_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::OutOfRange { .. }));
        assert_eq!((e.line, e.col), (2, 1));

        let e = CnfFormula::from_dimacs("p cnf 2 2\n1 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::CountMismatch { .. }));

        let e = CnfFormula::from_dimacs("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Missing { .. }));
        assert_eq!((e.line, e.col), (2, 1));
    }

    #[test]
    fn dimacs_rejects_empty_clause_line() {
        let e = CnfFormula::from_dimacs("p cnf 2 2\n1 0\n0\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::EmptyClause);
        assert_eq!((e.line, e.col), (3, 1));
    }

    #[test]
    fn dimacs_rejects_trailing_garbage_after_final_clause() {
        let e = CnfFormula::from_dimacs("p cnf 2 1\n1 2 0\n-1 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::TrailingGarbage { .. }));
        assert_eq!((e.line, e.col), (3, 1));
        // Same line:
        let e = CnfFormula::from_dimacs("p cnf 2 1\n1 2 0 junk\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::TrailingGarbage { .. }));
        assert_eq!((e.line, e.col), (2, 7));
    }

    #[test]
    fn dimacs_rejects_var_count_that_would_wrap_lit_encoding() {
        // Regression: `Lit` packs `2·var + sign` into a `u32`. Before the
        // `MAX_DIMACS_VARS` guard, a header like this one was accepted and
        // literal 4294967297 wrapped onto variable 0 — a silently garbled
        // formula, the worst possible parse outcome.
        let text = "p cnf 4294967298 1\n4294967297 0\n";
        let e = CnfFormula::from_dimacs(text).unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::OutOfRange { .. }));
        assert_eq!((e.line, e.col), (1, 7));
        // A literal past the (valid) declared range is likewise caught
        // before any narrowing cast can wrap it.
        let e = CnfFormula::from_dimacs("p cnf 3 1\n4294967297 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::OutOfRange { .. }));
        assert_eq!((e.line, e.col), (2, 1));
    }

    #[test]
    fn dimacs_rejects_duplicate_and_malformed_headers() {
        let e = CnfFormula::from_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Duplicate { .. }));
        let e = CnfFormula::from_dimacs("p cnf 1\n1 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Malformed { .. }));
        let e = CnfFormula::from_dimacs("p cnf x 1\n1 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::InvalidNumber { .. }));
    }

    #[test]
    fn dimacs_accepts_clauses_spanning_and_sharing_lines() {
        let f = CnfFormula::from_dimacs("p cnf 3 3\n1 2\n0 -1 0\n3 0\n").unwrap();
        assert_eq!(f.num_clauses(), 3);
    }

    #[test]
    #[should_panic(expected = "empty clause")]
    fn empty_clause_rejected() {
        let _ = CnfFormula::from_clauses(1, vec![vec![]]);
    }
}
