//! CNF formulas: literals, clauses, evaluation, DIMACS I/O.

use std::fmt;

/// A literal: variable index `0..n` plus a sign.
///
/// Internally encoded as `2·var + negated`, so literals pack densely into
/// implication-graph vertex ids (see `twosat`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: usize) -> Lit {
        Lit((var as u32) << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: usize) -> Lit {
        Lit(((var as u32) << 1) | 1)
    }

    /// Builds from a variable and a sign (`true` = positive).
    pub fn new(var: usize, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// True iff this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense code in `0..2n` (used as an implication-graph vertex id).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Evaluates under an assignment (`assignment[var]` is the value).
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var()] == self.is_positive()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}",
            if self.is_positive() { "" } else { "¬" },
            self.var()
        )
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula over variables `0..num_vars`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// An empty formula (trivially satisfiable).
    pub fn new(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Builds from clause data; deduplicates literals within a clause.
    ///
    /// # Panics
    /// Panics if a clause mentions a variable ≥ `num_vars` or is empty
    /// after deduplication (an empty clause makes the formula trivially
    /// unsatisfiable — represent that case explicitly if you need it).
    pub fn from_clauses(num_vars: usize, clauses: Vec<Clause>) -> Self {
        let mut f = CnfFormula::new(num_vars);
        for c in clauses {
            f.add_clause(c);
        }
        f
    }

    /// Adds a clause (literals are sorted and deduplicated).
    pub fn add_clause(&mut self, mut clause: Clause) {
        clause.sort_unstable();
        clause.dedup();
        assert!(!clause.is_empty(), "empty clause");
        for &l in &clause {
            assert!(l.var() < self.num_vars, "literal variable out of range");
        }
        self.clauses.push(clause);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Maximum clause width (k of "k-SAT").
    pub fn width(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// True iff every clause has at most `k` literals.
    pub fn is_ksat(&self, k: usize) -> bool {
        self.width() <= k
    }

    /// Evaluates the formula under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|&l| l.eval(assignment)))
    }

    /// A clause is *tautological* if it contains both a literal and its
    /// negation; removes such clauses (they constrain nothing).
    pub fn remove_tautologies(&mut self) {
        self.clauses
            .retain(|c| !c.iter().any(|&l| c.contains(&l.negated())));
    }

    /// Serializes in DIMACS CNF format (variables are 1-based there).
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for &l in c {
                let v = (l.var() + 1) as i64;
                let signed = if l.is_positive() { v } else { -v };
                out.push_str(&signed.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses DIMACS CNF. Lines starting with `c` are comments.
    #[must_use = "dropping the result discards the parsed formula or the parse error"]
    pub fn from_dimacs(text: &str) -> Result<Self, String> {
        let mut num_vars: Option<usize> = None;
        let mut declared_clauses = 0usize;
        let mut clauses: Vec<Clause> = Vec::new();
        let mut current: Clause = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("p cnf") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 2 {
                    return Err(format!("malformed problem line: {line}"));
                }
                num_vars = Some(
                    parts[0]
                        .parse()
                        .map_err(|e| format!("bad var count: {e}"))?,
                );
                declared_clauses = parts[1]
                    .parse()
                    .map_err(|e| format!("bad clause count: {e}"))?;
                continue;
            }
            let nv = num_vars.ok_or("clause before problem line")?;
            for tok in line.split_whitespace() {
                let v: i64 = tok.parse().map_err(|e| format!("bad literal {tok}: {e}"))?;
                if v == 0 {
                    if current.is_empty() {
                        return Err("empty clause in DIMACS input".into());
                    }
                    clauses.push(std::mem::take(&mut current));
                } else {
                    let var = v.unsigned_abs() as usize - 1;
                    if var >= nv {
                        return Err(format!("literal {v} out of declared range"));
                    }
                    current.push(Lit::new(var, v > 0));
                }
            }
        }
        if !current.is_empty() {
            return Err("unterminated clause (missing trailing 0)".into());
        }
        let nv = num_vars.ok_or("missing problem line")?;
        if clauses.len() != declared_clauses {
            return Err(format!(
                "declared {declared_clauses} clauses, found {}",
                clauses.len()
            ));
        }
        Ok(CnfFormula::from_clauses(nv, clauses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(v: i64) -> Lit {
        Lit::new(v.unsigned_abs() as usize - 1, v > 0)
    }

    #[test]
    fn literal_encoding() {
        let p = Lit::pos(3);
        let n = Lit::neg(3);
        assert_eq!(p.var(), 3);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn eval_simple() {
        // (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
        let f = CnfFormula::from_clauses(3, vec![vec![l(1), l(-2)], vec![l(2), l(3)]]);
        assert!(f.eval(&[true, true, false]));
        assert!(!f.eval(&[false, true, false]));
        assert_eq!(f.width(), 2);
        assert!(f.is_ksat(2));
        assert!(!f.is_ksat(1));
    }

    #[test]
    fn clause_dedup() {
        let f = CnfFormula::from_clauses(2, vec![vec![l(1), l(1), l(2)]]);
        assert_eq!(f.clauses()[0].len(), 2);
    }

    #[test]
    fn tautology_removal() {
        let mut f = CnfFormula::from_clauses(2, vec![vec![l(1), l(-1)], vec![l(2)]]);
        f.remove_tautologies();
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn dimacs_roundtrip() {
        let f = CnfFormula::from_clauses(
            3,
            vec![vec![l(1), l(-3), l(2)], vec![l(-1), l(2)], vec![l(3)]],
        );
        let text = f.to_dimacs();
        let g = CnfFormula::from_dimacs(&text).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn dimacs_with_comments() {
        let text = "c a comment\np cnf 2 2\n1 -2 0\n2 0\n";
        let f = CnfFormula::from_dimacs(text).unwrap();
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.num_clauses(), 2);
    }

    #[test]
    fn dimacs_errors() {
        assert!(CnfFormula::from_dimacs("1 2 0").is_err());
        assert!(CnfFormula::from_dimacs("p cnf 1 1\n2 0\n").is_err());
        assert!(CnfFormula::from_dimacs("p cnf 2 2\n1 0\n").is_err());
        assert!(CnfFormula::from_dimacs("p cnf 2 1\n1 2\n").is_err());
    }

    #[test]
    #[should_panic(expected = "empty clause")]
    fn empty_clause_rejected() {
        let _ = CnfFormula::from_clauses(1, vec![vec![]]);
    }
}
