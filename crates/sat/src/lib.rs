//! Boolean satisfiability toolkit.
//!
//! SAT is the paper's anchor problem: the Exponential-Time Hypothesis (§6)
//! and the Strong Exponential-Time Hypothesis (§7) are assumptions about how
//! fast 3SAT / CNF-SAT can be solved, and every conditional lower bound in
//! the paper ultimately reduces from a satisfiability question. This crate
//! provides:
//!
//! * [`cnf`] — literals, clauses, CNF formulas, DIMACS I/O;
//! * [`dpll`] — a DPLL solver with unit propagation and pure-literal
//!   elimination (the "good" algorithm whose exponential scaling E4
//!   measures), with feature toggles for ablation;
//! * [`brute`] — brute-force 2^n enumeration (the baseline SETH speaks of);
//! * [`twosat`] — the linear-time 2SAT algorithm via implication-graph SCCs
//!   (the polynomial case contrasted with 3SAT in §4);
//! * [`schaefer`] — Schaefer's dichotomy (§4): classify a finite set of
//!   Boolean relations as polynomial-time or NP-hard, with dedicated
//!   polynomial solvers for all six tractable classes;
//! * [`generators`] — random and planted k-SAT instance generators.
//!
//! Every solver entry point takes a [`lb_engine::Budget`] and returns an
//! [`lb_engine::Outcome`] paired with [`lb_engine::RunStats`] counters.

#![forbid(unsafe_code)]

pub mod brute;
pub mod cnf;
pub mod counting;
pub mod dpll;
pub mod generators;
pub mod schaefer;
pub mod twosat;
pub mod width;

pub use cnf::{Clause, CnfFormula, Lit};
pub use counting::count_models;
pub use dpll::{Branching, DpllConfig, DpllSolver};
pub use schaefer::{classify_relation_set, BooleanRelation, SchaeferClass, SchaeferError};
pub use twosat::solve_2sat;
pub use width::reduce_to_3sat;
