//! Typed parse errors for validated ingestion.
//!
//! Every text format the workspace ingests — DIMACS CNF, graph edge lists,
//! CSP instance files, join-query strings, fault-plan specs — reports
//! malformed input through one shared [`ParseError`]: a 1-based line and
//! column plus a typed [`ParseErrorKind`]. The type lives in the engine
//! crate (the bottom of the workspace) so `lb-sat`, `lb-join`, the CLI, and
//! the chaos harness all speak the same error language, and a CLI can print
//! every diagnostic in the conventional `file:line:col: message` shape:
//!
//! ```
//! use lb_engine::parse::{ParseError, ParseErrorKind};
//!
//! let err = ParseError::new(3, 7, ParseErrorKind::InvalidNumber {
//!     what: "literal".into(),
//!     token: "12x".into(),
//! });
//! assert_eq!(format!("input.cnf:{err}"), "input.cnf:3:7: invalid literal `12x`");
//! ```
//!
//! The design goal is the panic-free public API guarantee: a parser that
//! returns `ParseError` degrades hostile input to a diagnostic and an exit
//! code — never a panic, and never a silently garbled instance.

use std::fmt;

/// What went wrong, structurally. `Display` renders the human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Something required was absent (a header, a field, a token).
    Missing {
        /// What was expected.
        what: String,
    },
    /// A token that should have been a number was not, or did not fit.
    InvalidNumber {
        /// What the number represents ("vertex count", "literal", …).
        what: String,
        /// The offending token.
        token: String,
    },
    /// A well-formed value outside its permitted range.
    OutOfRange {
        /// What the value represents.
        what: String,
        /// The offending token.
        token: String,
        /// Human-readable statement of the permitted range.
        limit: String,
    },
    /// An empty clause in a CNF input (trivially unsatisfiable; DIMACS
    /// inputs must state unsatisfiability with real clauses, not typos).
    EmptyClause,
    /// Tokens after the input (or a construct) was already complete.
    TrailingGarbage {
        /// The first unexpected token.
        token: String,
    },
    /// A declared count disagrees with what the body actually contains.
    CountMismatch {
        /// What was counted ("clauses", "constraints", …).
        what: String,
        /// The declared count.
        declared: usize,
        /// The count actually found.
        found: usize,
    },
    /// A header or declaration that may appear only once appeared again.
    Duplicate {
        /// What was duplicated.
        what: String,
    },
    /// A construct that does not fit the grammar at all.
    Malformed {
        /// Description of the offending construct.
        what: String,
    },
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::Missing { what } => write!(f, "missing {what}"),
            ParseErrorKind::InvalidNumber { what, token } => {
                write!(f, "invalid {what} `{token}`")
            }
            ParseErrorKind::OutOfRange { what, token, limit } => {
                write!(f, "{what} `{token}` out of range ({limit})")
            }
            ParseErrorKind::EmptyClause => write!(f, "empty clause"),
            ParseErrorKind::TrailingGarbage { token } => {
                write!(f, "trailing garbage `{token}`")
            }
            ParseErrorKind::CountMismatch {
                what,
                declared,
                found,
            } => write!(f, "declared {declared} {what}, found {found}"),
            ParseErrorKind::Duplicate { what } => write!(f, "duplicate {what}"),
            ParseErrorKind::Malformed { what } => write!(f, "malformed {what}"),
        }
    }
}

/// A parse failure at an exact source position.
///
/// `Display` renders `line:col: message`; prefix the file name yourself
/// (`format!("{path}:{err}")`) for the conventional compiler-style
/// diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (byte-based within the line).
    pub col: usize,
    /// The typed failure.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Builds an error at `line:col`.
    pub fn new(line: usize, col: usize, kind: ParseErrorKind) -> ParseError {
        ParseError { line, col, kind }
    }

    /// An error with no meaningful position (end of input): `line` is the
    /// line count + 1, column 1.
    pub fn at_eof(line: usize, kind: ParseErrorKind) -> ParseError {
        ParseError { line, col: 1, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.kind)
    }
}

impl std::error::Error for ParseError {}

/// Splits a line into whitespace-separated tokens with their 1-based
/// starting columns — the shared tokenizer of the line-oriented formats.
pub fn tokens(line: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut rest = line;
    let mut offset = 0usize;
    std::iter::from_fn(move || {
        let trimmed = rest.trim_start();
        offset += rest.len() - trimmed.len();
        if trimmed.is_empty() {
            return None;
        }
        let end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
        let tok = &trimmed[..end];
        let col = offset + 1;
        rest = &trimmed[end..];
        offset += end;
        Some((col, tok))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compiler_style() {
        let e = ParseError::new(
            2,
            5,
            ParseErrorKind::Missing {
                what: "problem line".into(),
            },
        );
        assert_eq!(e.to_string(), "2:5: missing problem line");
        assert_eq!(format!("f.cnf:{e}"), "f.cnf:2:5: missing problem line");
    }

    #[test]
    fn kinds_render() {
        let cases: Vec<(ParseErrorKind, &str)> = vec![
            (
                ParseErrorKind::InvalidNumber {
                    what: "literal".into(),
                    token: "x".into(),
                },
                "invalid literal `x`",
            ),
            (
                ParseErrorKind::OutOfRange {
                    what: "literal".into(),
                    token: "9".into(),
                    limit: "declared 3 variables".into(),
                },
                "literal `9` out of range (declared 3 variables)",
            ),
            (ParseErrorKind::EmptyClause, "empty clause"),
            (
                ParseErrorKind::TrailingGarbage { token: "zz".into() },
                "trailing garbage `zz`",
            ),
            (
                ParseErrorKind::CountMismatch {
                    what: "clauses".into(),
                    declared: 2,
                    found: 3,
                },
                "declared 2 clauses, found 3",
            ),
            (
                ParseErrorKind::Duplicate {
                    what: "problem line".into(),
                },
                "duplicate problem line",
            ),
            (
                ParseErrorKind::Malformed {
                    what: "atom `R(`".into(),
                },
                "malformed atom `R(`",
            ),
        ];
        for (kind, want) in cases {
            assert_eq!(kind.to_string(), want);
        }
    }

    #[test]
    fn tokenizer_reports_columns() {
        let toks: Vec<(usize, &str)> = tokens("  a bb   ccc").collect();
        assert_eq!(toks, vec![(3, "a"), (5, "bb"), (10, "ccc")]);
        assert_eq!(tokens("").count(), 0);
        assert_eq!(tokens("   ").count(), 0);
    }
}
