//! Checkpoint/resume: preemption-safe persisted solver frontiers.
//!
//! Every solver family in this workspace is a long-running search. Under
//! multi-tenant load the engine's [`Budget`](crate::Budget) preempts runs,
//! and before this module a preemption *discarded* all work done: the only
//! artifact of an exhausted run was `Outcome::Exhausted(reason)`. This
//! module turns exhaustion into a pause. A solver's `solve_resumable` entry
//! point returns a [`ResumableOutcome`]: either a final verdict, or
//! `Suspended { reason, checkpoint }` where the [`Checkpoint`] captures the
//! exact search frontier — DPLL decision stack + assignment, CSP
//! backtracking state, WCOJ trie-iterator positions, triangle/clique loop
//! indices. Feeding the checkpoint back continues the run as if it had
//! never stopped.
//!
//! # Container format
//!
//! A checkpoint serializes to a versioned, checksummed, length-prefixed
//! binary container (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "LBCK"
//! 4       2     container format version (FORMAT_VERSION)
//! 6       2     solver family tag (SolverFamily)
//! 8       2     family payload version
//! 10      8     payload length `n` (u64)
//! 18      n     family payload (opaque to the container)
//! 18+n    8     FNV-1a-64 checksum over bytes [0, 18+n)
//! ```
//!
//! Decoding is strict: truncation, a flipped bit, a version skew, an
//! unknown family tag, or trailing garbage each produce a typed
//! [`CheckpointError`] with the byte offset where decoding failed — never a
//! panic, never a silently wrong frontier. Family payloads embed an
//! instance digest (FNV-1a over a canonical encoding of the instance plus
//! solver configuration) so resuming against the *wrong* instance is a
//! typed [`CheckpointError::InstanceMismatch`], not a wrong verdict.
//!
//! # Versioning rules
//!
//! * The container `FORMAT_VERSION` bumps only when the layout above
//!   changes. Decoders reject any other version ([`CheckpointError::VersionSkew`]).
//! * Each family owns an independent payload version constant, bumped
//!   whenever that family's frontier encoding changes; skew is rejected
//!   before any payload byte is interpreted.
//! * Checkpoints are not a migration surface: a rejected checkpoint means
//!   "recompute from scratch", which is always sound.
//!
//! # The slice-equivalence invariant
//!
//! The machine-checked contract (see `tests/resume_properties.rs`): for
//! every solver family, splitting a budget into k slices and chaining
//! resumes yields the same verdict, the same witness validity, and the same
//! *summed* [`RunStats`](crate::RunStats) as one uninterrupted run — even
//! when the interruption points are chosen adversarially by
//! [`FaultPlan::from_seed`](crate::FaultPlan::from_seed). Solvers uphold it
//! by structuring every counted operation as *effect before charge*: the
//! state mutation lands, the phase advances to the continuation point, and
//! only then is the tick spent. When the charge fails the operation is
//! already done and counted, so the resumed run continues with the *next*
//! operation — nothing is redone, nothing is double-counted.

use crate::ExhaustReason;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// The 4-byte magic prefix of every checkpoint container.
pub const MAGIC: [u8; 4] = *b"LBCK";

/// Container format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed header length: magic + format version + family tag + payload
/// version + payload length.
const HEADER_LEN: usize = 4 + 2 + 2 + 2 + 8;

/// Trailing checksum length.
const CHECKSUM_LEN: usize = 8;

/// Hard cap on the declared payload length (64 MiB): a corrupted length
/// prefix must not drive allocation.
const MAX_PAYLOAD_LEN: u64 = 64 << 20;

/// The solver family a checkpoint belongs to. Tags are stable: they are
/// part of the on-disk format and must never be reused or renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolverFamily {
    /// DPLL SAT search (`lb_sat::dpll`).
    Dpll,
    /// Backtracking CSP search (`lb_csp::solver::backtracking`).
    CspBacktracking,
    /// Generic worst-case optimal join (`lb_join::wcoj`).
    GenericJoin,
    /// Edge-scan triangle detection/counting (`lb_graphalg::triangle`).
    TriangleScan,
    /// k-clique enumeration (`lb_graphalg::clique`).
    CliqueEnum,
}

impl SolverFamily {
    /// Every family, in tag order.
    pub const ALL: [SolverFamily; 5] = [
        SolverFamily::Dpll,
        SolverFamily::CspBacktracking,
        SolverFamily::GenericJoin,
        SolverFamily::TriangleScan,
        SolverFamily::CliqueEnum,
    ];

    /// The stable on-disk tag.
    pub fn tag(self) -> u16 {
        match self {
            SolverFamily::Dpll => 1,
            SolverFamily::CspBacktracking => 2,
            SolverFamily::GenericJoin => 3,
            SolverFamily::TriangleScan => 4,
            SolverFamily::CliqueEnum => 5,
        }
    }

    /// Decodes a tag; `None` for tags this build does not know.
    pub fn from_tag(tag: u16) -> Option<SolverFamily> {
        SolverFamily::ALL.into_iter().find(|f| f.tag() == tag)
    }

    /// Human-readable family name, used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            SolverFamily::Dpll => "dpll",
            SolverFamily::CspBacktracking => "csp-backtracking",
            SolverFamily::GenericJoin => "generic-join",
            SolverFamily::TriangleScan => "triangle-scan",
            SolverFamily::CliqueEnum => "clique-enum",
        }
    }
}

impl fmt::Display for SolverFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a checkpoint could not be decoded or resumed. Every variant carries
/// enough context to diagnose the failure without a debugger; none of them
/// is ever a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the declared structure did.
    Truncated {
        /// Byte offset at which more input was required.
        offset: usize,
        /// Bytes needed at that offset.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not `LBCK`: not a checkpoint file.
    BadMagic,
    /// The container format version is not one this build reads.
    VersionSkew {
        /// Version found in the header.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The trailing FNV-1a-64 checksum does not match the container bytes.
    Corrupted {
        /// Checksum recomputed over the received bytes.
        expected: u64,
        /// Checksum stored in the container.
        found: u64,
    },
    /// The family tag is not one this build knows.
    UnknownFamily {
        /// The unrecognized tag.
        tag: u16,
    },
    /// The checkpoint belongs to a different solver family than the one
    /// trying to resume from it.
    WrongFamily {
        /// The family the resuming solver expected.
        expected: SolverFamily,
        /// The family recorded in the checkpoint.
        found: SolverFamily,
    },
    /// The family payload version is not one this build's solver reads.
    PayloadVersionSkew {
        /// The family whose payload version skewed.
        family: SolverFamily,
        /// Version found in the header.
        found: u16,
        /// Version the solver supports.
        supported: u16,
    },
    /// The checkpoint was taken against a different instance (or solver
    /// configuration) than the one being resumed.
    InstanceMismatch {
        /// The family that detected the mismatch.
        family: SolverFamily,
        /// Digest of the instance being resumed.
        expected: u64,
        /// Digest recorded in the checkpoint.
        found: u64,
    },
    /// The payload is structurally invalid: an index out of bounds, an
    /// impossible phase tag, an inconsistent stack.
    Malformed {
        /// What was wrong.
        what: String,
        /// Byte offset within the payload where decoding failed.
        offset: usize,
    },
    /// Well-formed structure followed by extra bytes.
    TrailingGarbage {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
    /// A filesystem operation on a checkpoint file failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error, stringified.
        error: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated {
                offset,
                needed,
                have,
            } => write!(
                f,
                "checkpoint truncated at byte {offset}: needed {needed} more byte(s), have {have}"
            ),
            CheckpointError::BadMagic => {
                write!(f, "not a checkpoint: missing LBCK magic at byte 0")
            }
            CheckpointError::VersionSkew { found, supported } => write!(
                f,
                "checkpoint format version skew: file has v{found}, this build reads v{supported}"
            ),
            CheckpointError::Corrupted { expected, found } => write!(
                f,
                "checkpoint corrupted: checksum {found:#018x} recorded, {expected:#018x} computed"
            ),
            CheckpointError::UnknownFamily { tag } => {
                write!(f, "checkpoint names unknown solver family tag {tag}")
            }
            CheckpointError::WrongFamily { expected, found } => write!(
                f,
                "checkpoint is for solver family `{found}`, but `{expected}` tried to resume it"
            ),
            CheckpointError::PayloadVersionSkew {
                family,
                found,
                supported,
            } => write!(
                f,
                "`{family}` payload version skew: checkpoint has v{found}, solver reads v{supported}"
            ),
            CheckpointError::InstanceMismatch {
                family,
                expected,
                found,
            } => write!(
                f,
                "`{family}` checkpoint was taken against a different instance/configuration \
                 (digest {found:#018x} recorded, {expected:#018x} expected)"
            ),
            CheckpointError::Malformed { what, offset } => {
                write!(f, "malformed checkpoint payload at byte {offset}: {what}")
            }
            CheckpointError::TrailingGarbage { offset } => {
                write!(f, "checkpoint has trailing garbage starting at byte {offset}")
            }
            CheckpointError::Io { path, error } => {
                write!(f, "checkpoint io error on `{path}`: {error}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit hash: the workspace's zero-dependency checksum and
/// instance-digest primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a-64 digest builder, used by solvers to fingerprint
/// the (instance, configuration) pair a checkpoint was taken against.
#[derive(Clone, Debug)]
pub struct Digest {
    h: u64,
}

impl Digest {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Digest {
        Digest {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds raw bytes into the digest.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Folds a little-endian u64 into the digest.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds a usize (widened to u64) into the digest.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Folds a string (length-prefixed) into the digest.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len()).bytes(s.as_bytes())
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// A serialized solver frontier: family, payload version, and the family's
/// opaque payload bytes. Constructed by solvers at suspension points and
/// handed back to them to resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    family: SolverFamily,
    payload_version: u16,
    payload: Vec<u8>,
}

impl Checkpoint {
    /// Wraps a family payload in a checkpoint.
    pub fn new(family: SolverFamily, payload_version: u16, payload: Vec<u8>) -> Checkpoint {
        Checkpoint {
            family,
            payload_version,
            payload,
        }
    }

    /// The solver family this checkpoint belongs to.
    pub fn family(&self) -> SolverFamily {
        self.family
    }

    /// The family payload version.
    pub fn payload_version(&self) -> u16 {
        self.payload_version
    }

    /// The opaque family payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Guard used by solvers at resume entry: errors unless the checkpoint
    /// belongs to `expected` at payload version `supported`.
    #[must_use = "a failed family/version guard must abort the resume"]
    pub fn verify(&self, expected: SolverFamily, supported: u16) -> Result<(), CheckpointError> {
        if self.family != expected {
            return Err(CheckpointError::WrongFamily {
                expected,
                found: self.family,
            });
        }
        if self.payload_version != supported {
            return Err(CheckpointError::PayloadVersionSkew {
                family: expected,
                found: self.payload_version,
                supported,
            });
        }
        Ok(())
    }

    /// Serializes to the LBCK container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + CHECKSUM_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.family.tag().to_le_bytes());
        out.extend_from_slice(&self.payload_version.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes an LBCK container, validating magic, version, length, and
    /// checksum. The family payload is *not* interpreted here — that is the
    /// owning solver's job at resume time.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let need = |offset: usize, needed: usize| -> Result<(), CheckpointError> {
            if bytes.len() < offset + needed {
                Err(CheckpointError::Truncated {
                    offset,
                    needed: offset + needed - bytes.len(),
                    have: bytes.len().saturating_sub(offset),
                })
            } else {
                Ok(())
            }
        };
        need(0, 4)?;
        if bytes[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        need(4, 2)?;
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != FORMAT_VERSION {
            return Err(CheckpointError::VersionSkew {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        need(6, 2)?;
        let tag = u16::from_le_bytes([bytes[6], bytes[7]]);
        need(8, 2)?;
        let payload_version = u16::from_le_bytes([bytes[8], bytes[9]]);
        need(10, 8)?;
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bytes[10..18]);
        let payload_len = u64::from_le_bytes(len_bytes);
        if payload_len > MAX_PAYLOAD_LEN {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "declared payload length {payload_len} exceeds the {MAX_PAYLOAD_LEN}-byte cap"
                ),
                offset: 10,
            });
        }
        let payload_len = payload_len as usize;
        need(HEADER_LEN, payload_len + CHECKSUM_LEN)?;
        let body_end = HEADER_LEN + payload_len;
        let mut sum_bytes = [0u8; 8];
        sum_bytes.copy_from_slice(&bytes[body_end..body_end + CHECKSUM_LEN]);
        let recorded = u64::from_le_bytes(sum_bytes);
        let computed = fnv1a(&bytes[..body_end]);
        if recorded != computed {
            return Err(CheckpointError::Corrupted {
                expected: computed,
                found: recorded,
            });
        }
        if bytes.len() > body_end + CHECKSUM_LEN {
            return Err(CheckpointError::TrailingGarbage {
                offset: body_end + CHECKSUM_LEN,
            });
        }
        // Family tag is validated *after* the checksum: an unknown tag in a
        // checksummed container is a genuine version problem, not noise.
        let family = SolverFamily::from_tag(tag).ok_or(CheckpointError::UnknownFamily { tag })?;
        Ok(Checkpoint {
            family,
            payload_version,
            payload: bytes[HEADER_LEN..body_end].to_vec(),
        })
    }

    /// Writes the checkpoint to `path` atomically: the bytes land in
    /// `<path>.tmp`, are fsynced, and are renamed over `path`, so a crash —
    /// including `kill -9` — leaves either the old checkpoint or the new
    /// one, never a torn file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Reads and decodes a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = fs::read(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        Checkpoint::from_bytes(&bytes)
    }
}

/// The `.tmp` staging sibling of `path` used by [`atomic_write`]: the same
/// file name with `.tmp` appended (not a replaced extension, so
/// `job.lbck` stages through `job.lbck.tmp`).
pub fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    std::path::PathBuf::from(tmp)
}

/// Writes `bytes` to `path` atomically: the bytes land in the
/// [`tmp_sibling`], are fsynced, and are renamed over `path`, so a crash —
/// including `kill -9` — leaves either the old contents or the new ones,
/// never a torn file. At worst a stale `.tmp` sibling survives; recovery
/// paths remove it with [`cleanup_artifacts`].
///
/// Every stage consults the [`fault::IoFaultPlan`](crate::fault::IoFaultPlan)
/// installed by [`fault::with_io_plan`](crate::fault::with_io_plan), so the
/// chaos suite can force a torn tmp write, a failed fsync, or a failed
/// rename at an exact save attempt and prove the destination is still
/// either absent or a previous complete version. An injected `TmpWrite`
/// fault deliberately leaves a *half-written* `.tmp` behind before
/// returning the typed error — the realistic torn artifact the recovery
/// invariant is about.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let display = path.display().to_string();
    let io_err = |e: std::io::Error| CheckpointError::Io {
        path: display.clone(),
        error: e.to_string(),
    };
    let injected = |stage: &str| CheckpointError::Io {
        path: display.clone(),
        error: format!("injected io fault: {stage}"),
    };
    let tmp = tmp_sibling(path);
    let attempt = crate::fault::io_attempt_begin();
    let mut file = fs::File::create(&tmp).map_err(io_err)?;
    if crate::fault::io_should_fail(crate::fault::IoFaultKind::TmpWrite, attempt) {
        // Torn write: a prefix lands on disk, then the "device" gives out.
        file.write_all(&bytes[..bytes.len() / 2]).map_err(io_err)?;
        return Err(injected("tmp-write"));
    }
    file.write_all(bytes).map_err(io_err)?;
    if crate::fault::io_should_fail(crate::fault::IoFaultKind::Sync, attempt) {
        return Err(injected("fsync"));
    }
    file.sync_all().map_err(io_err)?;
    drop(file);
    if crate::fault::io_should_fail(crate::fault::IoFaultKind::Rename, attempt) {
        return Err(injected("rename"));
    }
    fs::rename(&tmp, path).map_err(io_err)?;
    Ok(())
}

/// Removes the artifact at `path` *and* any stale [`tmp_sibling`] left by a
/// save that was killed between tmp-write and rename. Missing files are
/// fine (cleanup is idempotent); the first real I/O error is returned as a
/// typed [`CheckpointError::Io`].
pub fn cleanup_artifacts(path: &Path) -> Result<(), CheckpointError> {
    let mut first_err = None;
    for target in [path.to_path_buf(), tmp_sibling(path)] {
        if let Err(e) = fs::remove_file(&target) {
            if e.kind() != std::io::ErrorKind::NotFound && first_err.is_none() {
                first_err = Some(CheckpointError::Io {
                    path: target.display().to_string(),
                    error: e.to_string(),
                });
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// The one shared resumable-vs-terminal exhaustion diagnostic, used by both
/// lbtool's exit-3 path and the server's terminal-verdict detail so the two
/// never drift apart. `saved` is the checkpoint that survives the
/// exhaustion, if any.
pub fn exhaustion_diagnostic(reason: &str, saved: Option<&Path>) -> String {
    match saved {
        Some(p) => format!(
            "{reason} (resumable: frontier saved to {}; rerun with --resume {} and a fresh --budget)",
            p.display(),
            p.display()
        ),
        None => format!("{reason} (terminal: progress lost; rerun with a larger --budget or --checkpoint)"),
    }
}

/// The verdict of a resumable solver run: a final answer, or a suspension
/// carrying the frontier needed to continue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResumableOutcome<W> {
    /// The run completed with witness/value `w`.
    Sat(W),
    /// The run completed: provably no witness.
    Unsat,
    /// The budget ran out (or a fault fired); the checkpoint resumes the
    /// run exactly where it stopped.
    Suspended {
        /// Why the run stopped.
        reason: ExhaustReason,
        /// The serialized frontier.
        checkpoint: Checkpoint,
    },
}

impl<W> ResumableOutcome<W> {
    /// True iff the run is suspended.
    pub fn is_suspended(&self) -> bool {
        matches!(self, ResumableOutcome::Suspended { .. })
    }

    /// The checkpoint, if suspended.
    pub fn checkpoint(&self) -> Option<&Checkpoint> {
        match self {
            ResumableOutcome::Suspended { checkpoint, .. } => Some(checkpoint),
            _ => None,
        }
    }

    /// Converts to a plain [`Outcome`](crate::Outcome), discarding any
    /// checkpoint.
    pub fn into_outcome(self) -> crate::Outcome<W> {
        match self {
            ResumableOutcome::Sat(w) => crate::Outcome::Sat(w),
            ResumableOutcome::Unsat => crate::Outcome::Unsat,
            ResumableOutcome::Suspended { reason, .. } => crate::Outcome::Exhausted(reason),
        }
    }
}

/// Append-only payload encoder: fixed-width little-endian primitives. The
/// matching [`PayloadReader`] validates every read.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> PayloadWriter {
        PayloadWriter { buf: Vec::new() }
    }

    /// Appends a u8.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a usize widened to u64.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Appends a length-prefixed sequence of usizes.
    pub fn seq_usize(&mut self, vs: &[usize]) -> &mut Self {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
        self
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Strict payload decoder: every read is bounds-checked and every failure
/// is a typed [`CheckpointError`] carrying the byte offset.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(bytes: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { bytes, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Malformed {
            what: "payload offset overflow".into(),
            offset: self.pos,
        })?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated {
                offset: self.pos,
                needed: end - self.bytes.len(),
                have: self.bytes.len() - self.pos,
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a u8.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Malformed {
                what: format!("expected bool (0/1), found {b}"),
                offset: at,
            }),
        }
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, CheckpointError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a usize (stored as u64); fails on platform overflow.
    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CheckpointError::Malformed {
            what: format!("value {v} does not fit a usize on this platform"),
            offset: at,
        })
    }

    /// Reads a usize and checks `v < bound`, naming `what` on failure.
    pub fn usize_below(&mut self, bound: usize, what: &str) -> Result<usize, CheckpointError> {
        let at = self.pos;
        let v = self.usize()?;
        if v >= bound {
            return Err(CheckpointError::Malformed {
                what: format!("{what} {v} out of range (< {bound} required)"),
                offset: at,
            });
        }
        Ok(v)
    }

    /// Reads a usize and checks `v <= bound`, naming `what` on failure.
    pub fn usize_at_most(&mut self, bound: usize, what: &str) -> Result<usize, CheckpointError> {
        let at = self.pos;
        let v = self.usize()?;
        if v > bound {
            return Err(CheckpointError::Malformed {
                what: format!("{what} {v} out of range (<= {bound} required)"),
                offset: at,
            });
        }
        Ok(v)
    }

    /// Reads a sequence length, guarding against lengths that could not
    /// possibly fit in the remaining bytes (each element needs at least
    /// `min_elem_bytes`).
    pub fn seq_len(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, CheckpointError> {
        let at = self.pos;
        let n = self.usize()?;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "{what} length {n} impossible: only {remaining} payload byte(s) remain"
                ),
                offset: at,
            });
        }
        Ok(n)
    }

    /// Asserts the payload is fully consumed.
    #[must_use = "an unfinished reader means the payload was not validated end to end"]
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.bytes.len() {
            return Err(CheckpointError::TrailingGarbage { offset: self.pos });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut w = PayloadWriter::new();
        w.u64(0xdead_beef).usize(7).bool(true).seq_usize(&[1, 2, 3]);
        Checkpoint::new(SolverFamily::Dpll, 3, w.finish())
    }

    #[test]
    fn round_trip_identity() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.family(), SolverFamily::Dpll);
        assert_eq!(back.payload_version(), 3);
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = sample().to_bytes();
        for n in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..n]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::BadMagic
                ),
                "prefix of {n} bytes: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_bitflip_is_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                assert!(
                    Checkpoint::from_bytes(&evil).is_err(),
                    "bit {bit} of byte {i}: flip decoded successfully"
                );
            }
        }
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        // Fix nothing else: version is checked before the checksum so old
        // readers bail before interpreting a layout they do not know.
        assert_eq!(
            Checkpoint::from_bytes(&bytes).unwrap_err(),
            CheckpointError::VersionSkew {
                found: 99,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn unknown_family_is_typed_after_checksum() {
        let ck = sample();
        let mut c = ck.clone();
        c.family = SolverFamily::CliqueEnum; // re-encode with a bogus tag below
        let mut bytes = c.to_bytes();
        bytes[6] = 0xfe;
        bytes[7] = 0xff;
        // Recompute the checksum so only the tag is "wrong".
        let body_end = bytes.len() - CHECKSUM_LEN;
        let sum = fnv1a(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(&bytes).unwrap_err(),
            CheckpointError::UnknownFamily { tag: 0xfffe }
        );
    }

    #[test]
    fn trailing_garbage_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            Checkpoint::from_bytes(&bytes).unwrap_err(),
            CheckpointError::TrailingGarbage {
                offset: bytes.len() - 1
            }
        );
    }

    #[test]
    fn huge_declared_length_does_not_allocate() {
        let mut bytes = sample().to_bytes();
        bytes[10..18].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes).unwrap_err(),
            CheckpointError::Malformed { .. }
        ));
    }

    #[test]
    fn verify_guards_family_and_version() {
        let ck = sample();
        assert!(ck.verify(SolverFamily::Dpll, 3).is_ok());
        assert_eq!(
            ck.verify(SolverFamily::GenericJoin, 3).unwrap_err(),
            CheckpointError::WrongFamily {
                expected: SolverFamily::GenericJoin,
                found: SolverFamily::Dpll
            }
        );
        assert_eq!(
            ck.verify(SolverFamily::Dpll, 4).unwrap_err(),
            CheckpointError::PayloadVersionSkew {
                family: SolverFamily::Dpll,
                found: 3,
                supported: 4
            }
        );
    }

    #[test]
    fn reader_validates_bounds_and_exhaustion() {
        let mut w = PayloadWriter::new();
        w.usize(5).u8(7);
        let payload = w.finish();
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.usize_below(6, "var").unwrap(), 5);
        let mut r2 = PayloadReader::new(&payload);
        assert!(matches!(
            r2.usize_below(5, "var").unwrap_err(),
            CheckpointError::Malformed { .. }
        ));
        assert!(matches!(
            r.finish().unwrap_err(),
            CheckpointError::TrailingGarbage { offset: 8 }
        ));
    }

    #[test]
    fn reader_truncation_is_typed() {
        let mut r = PayloadReader::new(&[1, 2]);
        assert!(matches!(
            r.u64().unwrap_err(),
            CheckpointError::Truncated {
                offset: 0,
                needed: 6,
                have: 2
            }
        ));
    }

    #[test]
    fn seq_len_rejects_impossible_lengths() {
        let mut w = PayloadWriter::new();
        w.usize(1 << 40);
        let payload = w.finish();
        let mut r = PayloadReader::new(&payload);
        assert!(matches!(
            r.seq_len(8, "frames").unwrap_err(),
            CheckpointError::Malformed { .. }
        ));
    }

    #[test]
    fn save_load_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join(format!("lbck-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.ck");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // A missing file is a typed Io error, not a panic.
        assert!(matches!(
            Checkpoint::load(&dir.join("missing.ck")).unwrap_err(),
            CheckpointError::Io { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resumable_outcome_conversions() {
        let s: ResumableOutcome<u64> = ResumableOutcome::Sat(9);
        assert!(!s.is_suspended());
        assert_eq!(s.into_outcome(), crate::Outcome::Sat(9));
        let u: ResumableOutcome<u64> = ResumableOutcome::Unsat;
        assert_eq!(u.into_outcome(), crate::Outcome::Unsat);
        let p = ResumableOutcome::<u64>::Suspended {
            reason: ExhaustReason::Ticks { limit: 4 },
            checkpoint: sample(),
        };
        assert!(p.is_suspended());
        assert!(p.checkpoint().is_some());
        assert!(p.into_outcome().is_exhausted());
    }
}
