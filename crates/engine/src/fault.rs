//! Deterministic fault injection (failpoints) for the engine layer.
//!
//! A [`FaultPlan`] is a *schedule* of faults, each pinned to an exact
//! operation count — not to wall-clock time, thread timing, or any other
//! machine-dependent quantity. Installing a plan with [`with_plan`] makes
//! every [`Ticker`](crate::Ticker) created inside the closure consult the
//! schedule, so a solver run under a plan is **replayable byte-for-byte**:
//! the same plan and the same instance produce the same
//! [`Outcome`](crate::Outcome) and the same [`RunStats`](crate::RunStats),
//! every time, on every machine.
//!
//! Four fault kinds cover the failure modes the chaos harness exercises:
//!
//! * [`FaultKind::Exhaust`] — the budget is forcibly exhausted at tick N
//!   with [`ExhaustReason::Injected`](crate::ExhaustReason::Injected), as if
//!   the tick limit had been reached there.
//! * [`FaultKind::Deadline`] — a simulated wall-clock deadline expiry at
//!   tick N: the solver observes
//!   [`ExhaustReason::Deadline`](crate::ExhaustReason::Deadline) without any
//!   real time passing, making deadline paths deterministic to test.
//! * [`FaultKind::TrieAdvance`] — the Nth sorted-index advance fails
//!   (Leapfrog-Triejoin-style iterator edge cases: an exhausted trie level
//!   mid-intersection). Solvers that never advance a trie never observe it.
//! * [`FaultKind::PoisonIntermediate`] — the Nth recorded intermediate-size
//!   high-water mark is poisoned to `u64::MAX`, simulating an overflowed
//!   size counter; downstream consumers of the telemetry must not misbehave.
//!
//! The soundness invariant under faults is the engine contract unchanged: a
//! fault may only ever cost *completeness* (the run reports `Exhausted`),
//! never *soundness* (a wrong `Sat`/`Unsat` verdict). The chaos harness
//! checks exactly that, differentially against brute-force oracles.
//!
//! # Example
//!
//! ```
//! use lb_engine::fault::{with_plan, FaultKind, FaultPlan};
//! use lb_engine::{Budget, ExhaustReason, Ticker};
//!
//! let plan = FaultPlan::new().with_point(FaultKind::Exhaust, 2);
//! let err = with_plan(&plan, || {
//!     let mut t = Ticker::new(&Budget::unlimited());
//!     assert!(t.node().is_ok());
//!     t.node().unwrap_err() // the second counted op hits the failpoint
//! });
//! assert_eq!(err, ExhaustReason::Injected { tick: 2 });
//! ```

use crate::parse::{ParseError, ParseErrorKind};
use std::cell::RefCell;
use std::fmt;

/// What a scheduled fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Force budget exhaustion (`ExhaustReason::Injected`) at tick N.
    Exhaust,
    /// Simulate wall-clock deadline expiry (`ExhaustReason::Deadline`) at
    /// tick N, without any real time passing.
    Deadline,
    /// Fail the Nth trie/sorted-index advance with
    /// `ExhaustReason::Injected`.
    TrieAdvance,
    /// Poison the Nth recorded intermediate-size high-water mark to
    /// `u64::MAX` (simulated size-counter overflow). Does not abort the run.
    PoisonIntermediate,
}

impl FaultKind {
    /// The stable name used in the serialized plan spec.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Exhaust => "exhaust",
            FaultKind::Deadline => "deadline",
            FaultKind::TrieAdvance => "trie",
            FaultKind::PoisonIntermediate => "poison",
        }
    }

    /// Parses a spec name.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        match name {
            "exhaust" => Some(FaultKind::Exhaust),
            "deadline" => Some(FaultKind::Deadline),
            "trie" => Some(FaultKind::TrieAdvance),
            "poison" => Some(FaultKind::PoisonIntermediate),
            _ => None,
        }
    }
}

/// One scheduled fault: `kind` fires at operation count `at` (1-based).
///
/// For [`FaultKind::Exhaust`] and [`FaultKind::Deadline`] the count is the
/// ticker's global tick; for [`FaultKind::TrieAdvance`] it is the Nth
/// trie-advance operation; for [`FaultKind::PoisonIntermediate`] the Nth
/// `record_intermediate` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPoint {
    /// The 1-based operation count at which the fault fires.
    pub at: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// A seeded, serializable schedule of injected faults.
///
/// Plans are value types: build one with [`FaultPlan::new`] +
/// [`FaultPlan::with_point`], derive one deterministically from a seed with
/// [`FaultPlan::from_seed`], or parse the textual spec emitted by
/// [`fmt::Display`] (round-trips exactly). Install with [`with_plan`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// The empty plan: no faults fire.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a scheduled fault (builder style). `at` is 1-based; an `at` of
    /// zero never fires.
    pub fn with_point(mut self, kind: FaultKind, at: u64) -> FaultPlan {
        self.points.push(FaultPoint { at, kind });
        self
    }

    /// Derives a plan deterministically from a seed: one to three fault
    /// points with log-distributed positions (small operation counts are
    /// likelier, so short solver runs still observe faults). The same seed
    /// always yields the same plan.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut state = seed;
        let mut plan = FaultPlan::new();
        let count = 1 + splitmix(&mut state) % 3;
        for _ in 0..count {
            let kind = match splitmix(&mut state) % 4 {
                0 => FaultKind::Exhaust,
                1 => FaultKind::Deadline,
                2 => FaultKind::TrieAdvance,
                _ => FaultKind::PoisonIntermediate,
            };
            // Log-distributed in [1, 2^16]: pick a magnitude, then a value.
            let magnitude = splitmix(&mut state) % 16;
            let at = 1 + splitmix(&mut state) % (1u64 << magnitude).max(1);
            plan.points.push(FaultPoint { at, kind });
        }
        plan
    }

    /// The scheduled fault points, in insertion order.
    pub fn points(&self) -> &[FaultPoint] {
        &self.points
    }

    /// True iff no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Parses the textual spec produced by [`fmt::Display`]:
    /// comma-separated `kind@count` entries, e.g. `exhaust@120,trie@5`.
    /// The empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, ParseError> {
        let mut plan = FaultPlan::new();
        let mut col = 1usize;
        for entry in spec.split(',') {
            let entry_col = col;
            col += entry.len() + 1;
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, at)) = entry.split_once('@') else {
                return Err(ParseError::new(
                    1,
                    entry_col,
                    ParseErrorKind::Malformed {
                        what: format!("fault point `{entry}` (expected `kind@count`)"),
                    },
                ));
            };
            let kind = FaultKind::from_name(name.trim()).ok_or_else(|| {
                ParseError::new(
                    1,
                    entry_col,
                    ParseErrorKind::Malformed {
                        what: format!("unknown fault kind `{}`", name.trim()),
                    },
                )
            })?;
            let at: u64 = at.trim().parse().map_err(|_| {
                ParseError::new(
                    1,
                    entry_col,
                    ParseErrorKind::InvalidNumber {
                        what: "fault operation count".into(),
                        token: at.trim().to_string(),
                    },
                )
            })?;
            plan.points.push(FaultPoint { at, kind });
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}@{}", p.kind.name(), p.at)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<FaultPlan, ParseError> {
        FaultPlan::parse(s)
    }
}

/// SplitMix64: the tiny deterministic generator behind
/// [`FaultPlan::from_seed`].
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// lb-lint: allow(send-hostile-state) -- the ambient-plan API is deliberately thread-scoped: a plan installed by `with_plan` must never leak to sibling test threads, and `Ticker::new` snapshots it into the (Send-clean) ticker before any checkpoint can observe it; plan-passing callers use `Ticker::with_fault_plan` instead
thread_local! {
    static ACTIVE_PLAN: RefCell<Option<FaultPlan>> = const { RefCell::new(None) };
}

/// Which stage of an atomic checkpoint save an [`IoFaultPlan`] point
/// targets. The atomic-save pipeline is tmp-write → fsync → rename; a fault
/// at any stage must leave the *destination* file untouched (the previous
/// checkpoint, or absence), with at most a torn `.tmp` sibling behind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum IoFaultKind {
    /// The write into the `.tmp` sibling fails partway: only a prefix of
    /// the bytes lands, simulating `ENOSPC`/a crashed writer. This is the
    /// fault that *manufactures* a torn spool file for recovery tests.
    TmpWrite,
    /// The `fsync` of the fully written `.tmp` file fails.
    Sync,
    /// The rename of the synced `.tmp` over the destination fails.
    Rename,
}

impl IoFaultKind {
    /// The stable name used in the serialized plan spec.
    pub fn name(self) -> &'static str {
        match self {
            IoFaultKind::TmpWrite => "save-write",
            IoFaultKind::Sync => "save-sync",
            IoFaultKind::Rename => "save-rename",
        }
    }

    /// Parses a spec name.
    pub fn from_name(name: &str) -> Option<IoFaultKind> {
        match name {
            "save-write" => Some(IoFaultKind::TmpWrite),
            "save-sync" => Some(IoFaultKind::Sync),
            "save-rename" => Some(IoFaultKind::Rename),
            _ => None,
        }
    }
}

/// One scheduled I/O fault: `kind` fires on the `at`-th atomic-save attempt
/// (1-based) observed inside the installing [`with_io_plan`] scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFaultPoint {
    /// The 1-based save-attempt count at which the fault fires.
    pub at: u64,
    /// Which pipeline stage fails.
    pub kind: IoFaultKind,
}

/// A deterministic schedule of injected I/O failures for the atomic
/// checkpoint-save pipeline (`lb_engine::checkpoint::atomic_write`).
///
/// Where [`FaultPlan`] counts solver operations, an `IoFaultPlan` counts
/// *save attempts*: the Nth `atomic_write` call inside a [`with_io_plan`]
/// scope fails at the scheduled stage with a typed
/// [`CheckpointError::Io`](crate::CheckpointError::Io) — never a panic, and
/// never a torn destination file. The chaos suite uses this to prove the
/// spool's crash-safety invariant without real disk failures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    points: Vec<IoFaultPoint>,
}

impl IoFaultPlan {
    /// The empty plan: every save succeeds.
    pub fn new() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// Adds a scheduled fault (builder style). `at` is 1-based; an `at` of
    /// zero never fires.
    pub fn with_point(mut self, kind: IoFaultKind, at: u64) -> IoFaultPlan {
        self.points.push(IoFaultPoint { at, kind });
        self
    }

    /// Derives a plan deterministically from a seed: one to three faults on
    /// the first few save attempts (saves are far rarer than solver ticks,
    /// so small attempt counts are the interesting ones).
    pub fn from_seed(seed: u64) -> IoFaultPlan {
        let mut state = seed ^ 0x10_fa17;
        let mut plan = IoFaultPlan::new();
        let count = 1 + splitmix(&mut state) % 3;
        for _ in 0..count {
            let kind = match splitmix(&mut state) % 3 {
                0 => IoFaultKind::TmpWrite,
                1 => IoFaultKind::Sync,
                _ => IoFaultKind::Rename,
            };
            let at = 1 + splitmix(&mut state) % 6;
            plan.points.push(IoFaultPoint { at, kind });
        }
        plan
    }

    /// The scheduled fault points, in insertion order.
    pub fn points(&self) -> &[IoFaultPoint] {
        &self.points
    }

    /// True iff no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Parses the textual spec produced by [`fmt::Display`]:
    /// comma-separated `stage@attempt` entries, e.g.
    /// `save-write@1,save-rename@3`. The empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<IoFaultPlan, ParseError> {
        let mut plan = IoFaultPlan::new();
        let mut col = 1usize;
        for entry in spec.split(',') {
            let entry_col = col;
            col += entry.len() + 1;
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, at)) = entry.split_once('@') else {
                return Err(ParseError::new(
                    1,
                    entry_col,
                    ParseErrorKind::Malformed {
                        what: format!("io fault point `{entry}` (expected `stage@attempt`)"),
                    },
                ));
            };
            let kind = IoFaultKind::from_name(name.trim()).ok_or_else(|| {
                ParseError::new(
                    1,
                    entry_col,
                    ParseErrorKind::Malformed {
                        what: format!("unknown io fault stage `{}`", name.trim()),
                    },
                )
            })?;
            let at: u64 = at.trim().parse().map_err(|_| {
                ParseError::new(
                    1,
                    entry_col,
                    ParseErrorKind::InvalidNumber {
                        what: "io fault attempt count".into(),
                        token: at.trim().to_string(),
                    },
                )
            })?;
            plan.points.push(IoFaultPoint { at, kind });
        }
        Ok(plan)
    }
}

impl fmt::Display for IoFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}@{}", p.kind.name(), p.at)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for IoFaultPlan {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<IoFaultPlan, ParseError> {
        IoFaultPlan::parse(s)
    }
}

/// Compiled I/O fault schedule with per-stage consumption cursors and the
/// scope's running save-attempt counter.
#[derive(Debug)]
struct ActiveIoFaults {
    write: Schedule,
    sync: Schedule,
    rename: Schedule,
    attempts: u64,
}

impl ActiveIoFaults {
    fn compile(plan: &IoFaultPlan) -> ActiveIoFaults {
        let mut f = ActiveIoFaults {
            write: Schedule::default(),
            sync: Schedule::default(),
            rename: Schedule::default(),
            attempts: 0,
        };
        for p in &plan.points {
            if p.at == 0 {
                continue; // 1-based counts: zero never fires
            }
            match p.kind {
                IoFaultKind::TmpWrite => f.write.at.push(p.at),
                IoFaultKind::Sync => f.sync.at.push(p.at),
                IoFaultKind::Rename => f.rename.at.push(p.at),
            }
        }
        f.write.at.sort_unstable();
        f.sync.at.sort_unstable();
        f.rename.at.sort_unstable();
        f
    }
}

// lb-lint: allow(send-hostile-state) -- like ACTIVE_PLAN above, the io-fault schedule is deliberately thread-scoped (a plan installed by `with_io_plan` must not leak to sibling test threads); `atomic_write` consults it synchronously and nothing Send-serializable captures it
thread_local! {
    static ACTIVE_IO: RefCell<Option<ActiveIoFaults>> = const { RefCell::new(None) };
}

/// Restores the previous I/O fault schedule (cursors included) when the
/// scope ends, panic or not.
struct RestoreIo(Option<ActiveIoFaults>);

impl Drop for RestoreIo {
    fn drop(&mut self) {
        let prev = self.0.take();
        ACTIVE_IO.with(|p| *p.borrow_mut() = prev);
    }
}

/// Runs `f` with `plan` installed as this thread's active I/O fault
/// schedule. Every `lb_engine::checkpoint::atomic_write` call inside `f`
/// counts as one save attempt and consults the schedule. Calls nest; the
/// previous schedule (with its consumption cursors) is restored when the
/// scope ends, panic or not.
pub fn with_io_plan<R>(plan: &IoFaultPlan, f: impl FnOnce() -> R) -> R {
    let compiled = ActiveIoFaults::compile(plan);
    let prev = ACTIVE_IO.with(|p| p.borrow_mut().replace(compiled));
    let _restore = RestoreIo(prev);
    f()
}

/// Begins one atomic-save attempt: bumps the scope's attempt counter and
/// returns its 1-based value, or 0 when no I/O plan is installed (the
/// fault-free fast path — [`io_should_fail`] never fires for attempt 0).
pub(crate) fn io_attempt_begin() -> u64 {
    ACTIVE_IO.with(|p| {
        p.borrow_mut().as_mut().map_or(0, |a| {
            a.attempts += 1;
            a.attempts
        })
    })
}

/// Whether the scheduled fault for `kind` fires on save attempt `attempt`.
/// Consumes the matching schedule point (each point fires once).
pub(crate) fn io_should_fail(kind: IoFaultKind, attempt: u64) -> bool {
    if attempt == 0 {
        return false;
    }
    ACTIVE_IO.with(|p| {
        p.borrow_mut().as_mut().is_some_and(|a| match kind {
            IoFaultKind::TmpWrite => a.write.fire(attempt),
            IoFaultKind::Sync => a.sync.fire(attempt),
            IoFaultKind::Rename => a.rename.fire(attempt),
        })
    })
}

/// Restores the previously installed plan when the scope ends (also on
/// panic, so a failing test cannot leak its plan into the next one).
struct Restore(Option<FaultPlan>);

impl Drop for Restore {
    fn drop(&mut self) {
        let prev = self.0.take();
        ACTIVE_PLAN.with(|p| *p.borrow_mut() = prev);
    }
}

/// Runs `f` with `plan` installed as this thread's active fault plan.
///
/// Every [`Ticker`](crate::Ticker) created inside `f` snapshots the plan at
/// construction and consults it on each counted operation. Calls nest: the
/// previous plan (if any) is restored when the scope ends, panic or not.
pub fn with_plan<R>(plan: &FaultPlan, f: impl FnOnce() -> R) -> R {
    let prev = ACTIVE_PLAN.with(|p| p.borrow_mut().replace(plan.clone()));
    let _restore = Restore(prev);
    f()
}

/// The plan a freshly constructed `Ticker` should snapshot, if any.
pub(crate) fn snapshot_active() -> Option<FaultPlan> {
    ACTIVE_PLAN.with(|p| p.borrow().clone())
}

/// A compiled plan: per-kind sorted firing schedules with consumption
/// cursors, checked in O(1) per operation.
#[derive(Debug)]
pub(crate) struct ActiveFaults {
    exhaust: Schedule,
    deadline: Schedule,
    trie: Schedule,
    poison: Schedule,
    /// `record_intermediate` calls seen so far (the poison index).
    pub(crate) intermediate_calls: u64,
}

#[derive(Debug, Default)]
struct Schedule {
    at: Vec<u64>,
    next: usize,
}

impl Schedule {
    /// Fires (once) when the operation count reaches or passes the next
    /// scheduled point. `<=` rather than `==` so bulk tick jumps (e.g.
    /// `Ticker::absorb`) cannot step over a scheduled fault.
    fn fire(&mut self, count: u64) -> bool {
        if self.next < self.at.len() && self.at[self.next] <= count {
            self.next += 1;
            true
        } else {
            false
        }
    }
}

impl ActiveFaults {
    pub(crate) fn compile(plan: &FaultPlan) -> ActiveFaults {
        let mut f = ActiveFaults {
            exhaust: Schedule::default(),
            deadline: Schedule::default(),
            trie: Schedule::default(),
            poison: Schedule::default(),
            intermediate_calls: 0,
        };
        for p in &plan.points {
            if p.at == 0 {
                continue; // 1-based counts: zero never fires
            }
            match p.kind {
                FaultKind::Exhaust => f.exhaust.at.push(p.at),
                FaultKind::Deadline => f.deadline.at.push(p.at),
                FaultKind::TrieAdvance => f.trie.at.push(p.at),
                FaultKind::PoisonIntermediate => f.poison.at.push(p.at),
            }
        }
        f.exhaust.at.sort_unstable();
        f.deadline.at.sort_unstable();
        f.trie.at.sort_unstable();
        f.poison.at.sort_unstable();
        f
    }

    pub(crate) fn fire_exhaust(&mut self, tick: u64) -> bool {
        self.exhaust.fire(tick)
    }

    pub(crate) fn fire_deadline(&mut self, tick: u64) -> bool {
        self.deadline.fire(tick)
    }

    pub(crate) fn fire_trie(&mut self, nth_advance: u64) -> bool {
        self.trie.fire(nth_advance)
    }

    pub(crate) fn fire_poison(&mut self, nth_call: u64) -> bool {
        self.poison.fire(nth_call)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, ExhaustReason, Ticker};
    use std::time::Duration;

    #[test]
    fn spec_round_trips() {
        let plan = FaultPlan::new()
            .with_point(FaultKind::Exhaust, 120)
            .with_point(FaultKind::TrieAdvance, 5)
            .with_point(FaultKind::Deadline, 9)
            .with_point(FaultKind::PoisonIntermediate, 2);
        let spec = plan.to_string();
        assert_eq!(spec, "exhaust@120,trie@5,deadline@9,poison@2");
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        assert!(FaultPlan::parse("exhaust").is_err());
        assert!(FaultPlan::parse("nosuch@4").is_err());
        assert!(FaultPlan::parse("exhaust@x").is_err());
    }

    #[test]
    fn from_seed_is_deterministic_and_nonempty() {
        for seed in 0..50u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            assert!(a.points().iter().all(|p| p.at >= 1));
        }
        assert_ne!(FaultPlan::from_seed(1), FaultPlan::from_seed(2));
    }

    #[test]
    fn injected_exhaust_fires_at_exact_tick() {
        let plan = FaultPlan::new().with_point(FaultKind::Exhaust, 3);
        with_plan(&plan, || {
            let mut t = Ticker::new(&Budget::unlimited());
            assert!(t.node().is_ok());
            assert!(t.propagation().is_ok());
            let err = t.tuple().unwrap_err();
            assert_eq!(err, ExhaustReason::Injected { tick: 3 });
        });
    }

    #[test]
    fn injected_deadline_is_deterministic() {
        let plan = FaultPlan::new().with_point(FaultKind::Deadline, 2);
        with_plan(&plan, || {
            let mut t = Ticker::new(&Budget::unlimited());
            assert!(t.node().is_ok());
            let err = t.node().unwrap_err();
            assert_eq!(
                err,
                ExhaustReason::Deadline {
                    limit: Duration::ZERO
                }
            );
        });
    }

    #[test]
    fn trie_fault_hits_only_trie_advances() {
        let plan = FaultPlan::new().with_point(FaultKind::TrieAdvance, 2);
        with_plan(&plan, || {
            let mut t = Ticker::new(&Budget::unlimited());
            // Non-trie operations sail past the trie failpoint.
            for _ in 0..10 {
                assert!(t.node().is_ok());
            }
            assert!(t.trie_advance().is_ok());
            let err = t.trie_advance().unwrap_err();
            assert!(matches!(err, ExhaustReason::Injected { .. }));
        });
    }

    #[test]
    fn poison_overflows_the_high_water_mark() {
        let plan = FaultPlan::new().with_point(FaultKind::PoisonIntermediate, 2);
        with_plan(&plan, || {
            let mut t = Ticker::new(&Budget::unlimited());
            t.record_intermediate(7);
            assert_eq!(t.stats().max_intermediate, 7);
            t.record_intermediate(3); // poisoned
            assert_eq!(t.stats().max_intermediate, u64::MAX);
        });
    }

    #[test]
    fn plans_scope_and_nest() {
        let outer = FaultPlan::new().with_point(FaultKind::Exhaust, 1);
        let inner = FaultPlan::new().with_point(FaultKind::Exhaust, 2);
        with_plan(&outer, || {
            with_plan(&inner, || {
                let mut t = Ticker::new(&Budget::unlimited());
                assert!(t.node().is_ok()); // inner plan: tick 1 passes
                assert!(t.node().is_err());
            });
            // Outer plan restored: tick 1 faults.
            let mut t = Ticker::new(&Budget::unlimited());
            assert!(t.node().is_err());
        });
        // No plan: nothing fires.
        let mut t = Ticker::new(&Budget::unlimited());
        assert!(t.node().is_ok());
    }

    #[test]
    fn ticker_snapshots_plan_at_construction() {
        let plan = FaultPlan::new().with_point(FaultKind::Exhaust, 1);
        let mut t = with_plan(&plan, || Ticker::new(&Budget::unlimited()));
        // The ticker keeps its snapshot even after the scope ended.
        assert!(t.node().is_err());
    }

    #[test]
    fn explicit_plan_matches_ambient_plan() {
        let plan = FaultPlan::new()
            .with_point(FaultKind::Exhaust, 4)
            .with_point(FaultKind::PoisonIntermediate, 1);
        let run = |mut t: Ticker| {
            t.record_intermediate(9);
            let mut ops = 0u64;
            let err = loop {
                ops += 1;
                if let Err(e) = t.node() {
                    break e;
                }
            };
            (ops, err, t.stats())
        };
        let ambient = with_plan(&plan, || run(Ticker::new(&Budget::unlimited())));
        let explicit = run(Ticker::with_fault_plan(&Budget::unlimited(), &plan));
        assert_eq!(
            ambient, explicit,
            "the two plan APIs must compile identically"
        );
    }

    #[test]
    fn explicit_plan_ignores_the_ambient_plan() {
        let ambient = FaultPlan::new().with_point(FaultKind::Exhaust, 1);
        let explicit = FaultPlan::new(); // empty: nothing may fire
        let mut t = with_plan(&ambient, || {
            Ticker::with_fault_plan(&Budget::unlimited(), &explicit)
        });
        assert!(t.node().is_ok(), "ambient exhaust@1 must not leak in");
    }

    #[test]
    fn bulk_tick_jumps_cannot_skip_faults() {
        let plan = FaultPlan::new().with_point(FaultKind::Exhaust, 5);
        with_plan(&plan, || {
            let mut t = Ticker::new(&Budget::unlimited());
            let sub = crate::RunStats {
                nodes: 50,
                ..crate::RunStats::default()
            };
            t.absorb(&sub); // jumps ticks from 0 to 50, over the failpoint
            assert!(t.node().is_err(), "the next op observes the passed fault");
        });
    }
}
