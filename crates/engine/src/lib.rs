//! The shared solver execution layer: outcomes, budgets, and
//! machine-independent run telemetry.
//!
//! Every solver in this workspace — DPLL, Freuder's treewidth DP, the
//! worst-case optimal join, the clique/dominating-set brute forces, … — is
//! an implementation whose *scaling* a theorem of the paper bounds. The
//! engine layer gives them all one execution discipline:
//!
//! * [`Outcome`] — the three-valued verdict `Sat(witness)` / `Unsat` /
//!   `Exhausted(reason)`. A budget-limited run never lies: it either
//!   completes with the same answer the unbudgeted run would produce, or it
//!   reports exhaustion.
//! * [`Budget`] — a tick (operation) limit plus an optional wall-clock
//!   deadline. Exponential-time solvers driven from a CLI or a test can
//!   always be stopped.
//! * [`Ticker`] — the amortized budget checker solvers thread through their
//!   inner loops. Every counted operation is one tick; the deadline is only
//!   consulted every [`DEADLINE_CHECK_INTERVAL`] ticks so the common path
//!   is a single integer compare.
//! * [`RunStats`] — the unified counter set (nodes expanded, propagations,
//!   trie advances, tuples materialized, backtracks). Counters are
//!   machine-independent: Ngo's WCOJ survey and Veldhuizen's Leapfrog
//!   Triejoin paper measure trie advances and comparisons precisely because
//!   wall time obscures the exponents the theory predicts. The experiment
//!   harness fits exponents against these counters, so the E2–E8 fits are
//!   deterministic across machines.
//!
//! # How a solver adopts the engine
//!
//! ```
//! use lb_engine::{Budget, Outcome, RunStats, Ticker};
//!
//! /// Finds the first even number, engine-style.
//! fn find_even(xs: &[u64], budget: &Budget) -> (Outcome<u64>, RunStats) {
//!     let mut t = Ticker::new(budget);
//!     for &x in xs {
//!         // One counted operation per candidate; `?`-free variant shown.
//!         if let Err(reason) = t.node() {
//!             return (Outcome::Exhausted(reason), t.stats());
//!         }
//!         if x % 2 == 0 {
//!             return (Outcome::Sat(x), t.stats());
//!         }
//!     }
//!     (Outcome::Unsat, t.stats())
//! }
//!
//! let (out, stats) = find_even(&[1, 3, 5, 8], &Budget::unlimited());
//! assert_eq!(out, Outcome::Sat(8));
//! assert_eq!(stats.nodes, 4);
//!
//! let (out, _) = find_even(&[1, 3, 5, 8], &Budget::ticks(2));
//! assert!(out.is_exhausted());
//! ```
//!
//! Solvers with recursive searches typically let exhaustion propagate with
//! `?` as a `Result<_, ExhaustReason>` and convert at the entry point via
//! [`Ticker::finish`].
//!
//! Three satellite modules extend the execution discipline to hostile
//! conditions:
//!
//! * [`fault`] — deterministic fault injection: a seeded, serializable
//!   [`FaultPlan`] schedule the `Ticker` consults, so any solver run can be
//!   replayed byte-for-byte with faults at exact operation counts.
//! * [`parse`] — the shared typed [`ParseError`] (line, column, kind) every
//!   ingestion path reports malformed input through, keeping the public API
//!   panic-free end to end.
//! * [`checkpoint`] — preemption-safe persisted frontiers: exhaustion
//!   becomes a pause, not a failure. A suspended run serializes to a
//!   versioned, checksummed [`Checkpoint`] and resumes exactly where it
//!   stopped, with summed [`RunStats`] equal to an uninterrupted run.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod fault;
pub mod parse;

pub use checkpoint::{
    atomic_write, cleanup_artifacts, exhaustion_diagnostic, tmp_sibling, Checkpoint,
    CheckpointError, Digest, PayloadReader, PayloadWriter, ResumableOutcome, SolverFamily,
};
pub use fault::{FaultKind, FaultPlan, FaultPoint, IoFaultKind, IoFaultPlan, IoFaultPoint};
pub use parse::{ParseError, ParseErrorKind};

use fault::ActiveFaults;
use std::fmt;
use std::time::{Duration, Instant};

/// Why a run stopped before reaching a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The tick (operation) limit was reached.
    Ticks {
        /// The budget's tick limit.
        limit: u64,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// The budget's wall-clock limit.
        limit: Duration,
    },
    /// A fault installed via [`fault::with_plan`] fired: the run was cut
    /// short deterministically at this tick. Like every other exhaustion,
    /// the run makes no claim about satisfiability.
    Injected {
        /// The tick at which the scheduled fault fired.
        tick: u64,
    },
}

impl fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustReason::Ticks { limit } => write!(f, "budget exhausted: {limit} ticks"),
            ExhaustReason::Deadline { limit } => {
                write!(f, "budget exhausted: deadline {limit:?}")
            }
            ExhaustReason::Injected { tick } => {
                write!(f, "budget exhausted: fault injected at tick {tick}")
            }
        }
    }
}

/// The verdict of a budgeted solver run.
///
/// `Sat(w)` means the run completed and produced the witness/value `w` (for
/// counting and enumeration solvers this is "completed with value" — a count
/// of zero is still `Sat(0)`). `Unsat` means the search space was exhausted
/// and no solution exists. `Exhausted` means the budget ran out first; the
/// run makes **no claim** about satisfiability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome<W> {
    /// Completed: a witness (or computed value) was found.
    Sat(W),
    /// Completed: provably no solution.
    Unsat,
    /// The budget ran out before a verdict was reached.
    Exhausted(ExhaustReason),
}

impl<W> Outcome<W> {
    /// True iff the run completed with a witness/value.
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }

    /// True iff the run completed with a proof of unsatisfiability.
    pub fn is_unsat(&self) -> bool {
        matches!(self, Outcome::Unsat)
    }

    /// True iff the budget ran out before a verdict.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Outcome::Exhausted(_))
    }

    /// True iff the run reached a verdict (`Sat` or `Unsat`).
    pub fn is_decided(&self) -> bool {
        !self.is_exhausted()
    }

    /// The witness, if any (`Unsat`/`Exhausted` → `None`).
    pub fn sat(self) -> Option<W> {
        match self {
            Outcome::Sat(w) => Some(w),
            _ => None,
        }
    }

    /// A reference to the witness, if any.
    pub fn sat_ref(&self) -> Option<&W> {
        match self {
            Outcome::Sat(w) => Some(w),
            _ => None,
        }
    }

    /// `Some(Some(w))` on `Sat`, `Some(None)` on `Unsat`, `None` when
    /// exhausted — the shape pre-engine solvers returned, still useful when
    /// the caller handles exhaustion separately.
    pub fn decided(self) -> Option<Option<W>> {
        match self {
            Outcome::Sat(w) => Some(Some(w)),
            Outcome::Unsat => Some(None),
            Outcome::Exhausted(_) => None,
        }
    }

    /// Maps the witness, preserving the verdict.
    pub fn map<U>(self, f: impl FnOnce(W) -> U) -> Outcome<U> {
        match self {
            Outcome::Sat(w) => Outcome::Sat(f(w)),
            Outcome::Unsat => Outcome::Unsat,
            Outcome::Exhausted(r) => Outcome::Exhausted(r),
        }
    }

    /// The exhaustion reason, if the run was cut short.
    pub fn exhaust_reason(&self) -> Option<ExhaustReason> {
        match self {
            Outcome::Exhausted(r) => Some(*r),
            _ => None,
        }
    }

    /// Unwraps `Sat(w)` → `w`.
    ///
    /// # Panics
    /// Panics on `Unsat` or `Exhausted`. Intended for tests, benches, and
    /// binaries running under [`Budget::unlimited`], where counting/join
    /// solvers always complete.
    #[track_caller]
    pub fn unwrap_sat(self) -> W {
        match self {
            Outcome::Sat(w) => w,
            // lb-lint: allow(no-panic) -- documented panic: test/bench convenience accessor, the library paths use `sat()`/`decided()`
            Outcome::Unsat => panic!("called unwrap_sat() on Outcome::Unsat"),
            Outcome::Exhausted(r) => {
                // lb-lint: allow(no-panic) -- documented panic: test/bench convenience accessor, the library paths use `sat()`/`decided()`
                panic!("called unwrap_sat() on Outcome::Exhausted ({r})")
            }
        }
    }

    /// Unwraps a decided outcome: `Sat(w)` → `Some(w)`, `Unsat` → `None`.
    ///
    /// # Panics
    /// Panics on `Exhausted`. Intended for tests, benches, and binaries
    /// running under a budget known to suffice.
    #[track_caller]
    pub fn unwrap_decided(self) -> Option<W> {
        match self {
            Outcome::Sat(w) => Some(w),
            Outcome::Unsat => None,
            Outcome::Exhausted(r) => {
                // lb-lint: allow(no-panic) -- documented panic: test/bench convenience accessor, the library paths use `sat()`/`decided()`
                panic!("called unwrap_decided() on Outcome::Exhausted ({r})")
            }
        }
    }
}

impl<W> From<Result<Option<W>, ExhaustReason>> for Outcome<W> {
    /// The canonical bridge from a recursive search: `Ok(Some(w))` → `Sat`,
    /// `Ok(None)` → `Unsat`, `Err(reason)` → `Exhausted`.
    fn from(r: Result<Option<W>, ExhaustReason>) -> Self {
        match r {
            Ok(Some(w)) => Outcome::Sat(w),
            Ok(None) => Outcome::Unsat,
            Err(reason) => Outcome::Exhausted(reason),
        }
    }
}

/// Resource limits for one solver run: a tick (counted-operation) limit and
/// an optional wall-clock deadline. [`Budget::default`] is unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    max_ticks: Option<u64>,
    time_limit: Option<Duration>,
}

impl Budget {
    /// No limits: the solver runs to completion.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// At most `n` counted operations.
    pub fn ticks(n: u64) -> Budget {
        Budget {
            max_ticks: Some(n),
            time_limit: None,
        }
    }

    /// At most `limit` of wall-clock time (checked amortized, so overshoot
    /// by a few thousand cheap operations is possible).
    pub fn deadline(limit: Duration) -> Budget {
        Budget {
            max_ticks: None,
            time_limit: Some(limit),
        }
    }

    /// Adds/replaces the tick limit.
    pub fn with_ticks(mut self, n: u64) -> Budget {
        self.max_ticks = Some(n);
        self
    }

    /// Adds/replaces the wall-clock deadline.
    pub fn with_deadline(mut self, limit: Duration) -> Budget {
        self.time_limit = Some(limit);
        self
    }

    /// The tick limit, if any.
    pub fn max_ticks(&self) -> Option<u64> {
        self.max_ticks
    }

    /// The wall-clock limit, if any.
    pub fn time_limit(&self) -> Option<Duration> {
        self.time_limit
    }

    /// True when neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_ticks.is_none() && self.time_limit.is_none()
    }
}

/// The machine-independent counters of one solver run.
///
/// Each solver bumps the counters that match its work (a SAT solver has no
/// trie to advance; a join has no clauses to propagate); unused counters
/// stay zero. Every bump is one budget tick, so `Budget::ticks(n)` bounds
/// the *sum* of these counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Search nodes expanded (decisions, assignments tried, candidates
    /// extended, DP tree nodes processed).
    pub nodes: u64,
    /// Inference steps (unit propagations, forward-checking updates,
    /// arc-consistency revisions, fixpoint/Gaussian elimination steps).
    pub propagations: u64,
    /// Sorted-index advances (galloping binary searches and range
    /// narrowings inside the WCOJ and other index walks).
    pub trie_advances: u64,
    /// Tuples materialized (join outputs, intermediates, DP table entries).
    pub tuples: u64,
    /// Dead ends: conflicts, prunings, and retreats from failed branches.
    pub backtracks: u64,
    /// Largest single materialized intermediate (tuples). Not a tick
    /// counter: a high-water mark, interesting for binary join plans where
    /// it is the quantity that blows up on AGM-worst-case inputs.
    pub max_intermediate: u64,
}

impl RunStats {
    /// Total counted operations (excludes the `max_intermediate`
    /// high-water mark).
    pub fn total_ops(&self) -> u64 {
        self.nodes + self.propagations + self.trie_advances + self.tuples + self.backtracks
    }

    /// Accumulates another run's counters into this one (high-water marks
    /// take the max).
    pub fn absorb(&mut self, other: &RunStats) {
        self.nodes += other.nodes;
        self.propagations += other.propagations;
        self.trie_advances += other.trie_advances;
        self.tuples += other.tuples;
        self.backtracks += other.backtracks;
        self.max_intermediate = self.max_intermediate.max(other.max_intermediate);
    }

    /// Componentwise `≤` on the tick counters — the monotonicity the budget
    /// property tests check (a smaller budget never does more work).
    pub fn le(&self, other: &RunStats) -> bool {
        self.nodes <= other.nodes
            && self.propagations <= other.propagations
            && self.trie_advances <= other.trie_advances
            && self.tuples <= other.tuples
            && self.backtracks <= other.backtracks
    }

    /// Equality against a fault-free `baseline`, tolerating exactly one
    /// deviation: a [`FaultKind::PoisonIntermediate`](fault::FaultKind)
    /// failpoint pinning `max_intermediate` to `u64::MAX`. Every tick
    /// counter must still match exactly — poison is telemetry-only and may
    /// never change the work performed.
    pub fn eq_allowing_poisoned_intermediate(&self, baseline: &RunStats) -> bool {
        self.nodes == baseline.nodes
            && self.propagations == baseline.propagations
            && self.trie_advances == baseline.trie_advances
            && self.tuples == baseline.tuples
            && self.backtracks == baseline.backtracks
            && (self.max_intermediate == baseline.max_intermediate
                || self.max_intermediate == u64::MAX)
    }
}

/// How many ticks pass between wall-clock deadline checks. `Instant::now`
/// costs tens of nanoseconds; counted operations can be single compares, so
/// the deadline is only consulted once per interval.
pub const DEADLINE_CHECK_INTERVAL: u64 = 1024;

/// The amortized budget checker a solver threads through its inner loops.
///
/// Each counter method ([`Ticker::node`], [`Ticker::propagation`], …) bumps
/// the matching [`RunStats`] field, spends one tick, and returns
/// `Err(ExhaustReason)` once the budget is exceeded. Recursive searches
/// propagate that with `?`; entry points convert to an [`Outcome`] via
/// [`Ticker::finish`].
#[derive(Debug)]
pub struct Ticker {
    stats: RunStats,
    ticks: u64,
    limit: u64,
    start: Instant,
    time_limit: Option<Duration>,
    next_deadline_check: u64,
    /// Compiled snapshot of the fault plan active (via [`fault::with_plan`])
    /// when this ticker was constructed; `None` on the common, fault-free
    /// path. Boxed to keep the no-faults `Ticker` small.
    faults: Option<Box<ActiveFaults>>,
}

impl Ticker {
    /// Starts the clock on a fresh run under `budget`.
    ///
    /// Snapshots the thread's active [`FaultPlan`] (if one is installed via
    /// [`fault::with_plan`]) so the whole run replays the same schedule even
    /// if the plan changes mid-run.
    pub fn new(budget: &Budget) -> Ticker {
        Ticker::build(budget, fault::snapshot_active())
    }

    /// Starts a run under `budget` with an **explicit** fault plan, ignoring
    /// any ambient plan installed via [`fault::with_plan`].
    ///
    /// This is the plan-passing alternative to the thread-local ambient API:
    /// harnesses that construct the ticker themselves can thread the plan as
    /// a value instead of scoping a closure, and the two paths compile the
    /// identical schedule (see `fault` tests). An empty plan is the
    /// fault-free fast path.
    pub fn with_fault_plan(budget: &Budget, plan: &fault::FaultPlan) -> Ticker {
        Ticker::build(budget, Some(plan.clone()))
    }

    fn build(budget: &Budget, plan: Option<fault::FaultPlan>) -> Ticker {
        Ticker {
            stats: RunStats::default(),
            ticks: 0,
            limit: budget.max_ticks().unwrap_or(u64::MAX),
            // lb-lint: allow(no-adhoc-timing) -- the engine is where wall-clock budgets are implemented
            start: Instant::now(),
            time_limit: budget.time_limit(),
            // The first counted op consults the clock, so an already-expired
            // deadline exhausts immediately (mirroring `Budget::ticks(0)`);
            // after that, checks are amortized per interval.
            next_deadline_check: 1,
            faults: plan
                .filter(|p| !p.is_empty())
                .map(|p| Box::new(ActiveFaults::compile(&p))),
        }
    }

    fn spend(&mut self) -> Result<(), ExhaustReason> {
        self.ticks += 1;
        if self.ticks > self.limit {
            return Err(ExhaustReason::Ticks { limit: self.limit });
        }
        if let Some(f) = &mut self.faults {
            if f.fire_exhaust(self.ticks) {
                return Err(ExhaustReason::Injected { tick: self.ticks });
            }
            if f.fire_deadline(self.ticks) {
                // A simulated expiry: the solver observes the same reason a
                // real deadline would produce, with no wall time involved.
                return Err(ExhaustReason::Deadline {
                    limit: self.time_limit.unwrap_or(Duration::ZERO),
                });
            }
        }
        if let Some(limit) = self.time_limit {
            if self.ticks >= self.next_deadline_check {
                self.next_deadline_check = self.ticks + DEADLINE_CHECK_INTERVAL;
                if self.start.elapsed() >= limit {
                    return Err(ExhaustReason::Deadline { limit });
                }
            }
        }
        Ok(())
    }

    /// Counts one search node expanded.
    pub fn node(&mut self) -> Result<(), ExhaustReason> {
        self.stats.nodes += 1;
        self.spend()
    }

    /// Counts one inference/propagation step.
    pub fn propagation(&mut self) -> Result<(), ExhaustReason> {
        self.stats.propagations += 1;
        self.spend()
    }

    /// Counts one sorted-index advance (binary search / range narrowing).
    ///
    /// This is the operation a [`FaultKind::TrieAdvance`] failpoint targets:
    /// the scheduled Nth advance fails with [`ExhaustReason::Injected`],
    /// exercising the iterator edge cases (exhausted trie levels
    /// mid-intersection) that WCOJ implementations are fragile under.
    pub fn trie_advance(&mut self) -> Result<(), ExhaustReason> {
        self.stats.trie_advances += 1;
        let nth = self.stats.trie_advances;
        if let Some(f) = &mut self.faults {
            if f.fire_trie(nth) {
                self.ticks += 1; // the failing advance is still a counted op
                return Err(ExhaustReason::Injected { tick: self.ticks });
            }
        }
        self.spend()
    }

    /// Counts one tuple materialized.
    pub fn tuple(&mut self) -> Result<(), ExhaustReason> {
        self.stats.tuples += 1;
        self.spend()
    }

    /// Counts `n` tuples materialized in one step (one tick: bulk
    /// materialization like a hash-join output batch is one operation from
    /// the budget's point of view, but the telemetry records every tuple).
    pub fn tuples(&mut self, n: u64) -> Result<(), ExhaustReason> {
        self.stats.tuples += n;
        self.spend()
    }

    /// Counts one backtrack/pruning/conflict.
    pub fn backtrack(&mut self) -> Result<(), ExhaustReason> {
        self.stats.backtracks += 1;
        self.spend()
    }

    /// Records an intermediate-result high-water mark (no tick).
    ///
    /// A scheduled [`FaultKind::PoisonIntermediate`] failpoint poisons the
    /// Nth recorded size to `u64::MAX` — a simulated size-counter overflow
    /// that downstream telemetry consumers must survive.
    pub fn record_intermediate(&mut self, size: u64) {
        let mut size = size;
        if let Some(f) = &mut self.faults {
            f.intermediate_calls += 1;
            let nth = f.intermediate_calls;
            if f.fire_poison(nth) {
                size = u64::MAX;
            }
        }
        self.stats.max_intermediate = self.stats.max_intermediate.max(size);
    }

    /// Folds another run's counters into this one (no tick; used when a
    /// solver delegates to a budgeted sub-solver that kept its own stats).
    pub fn absorb(&mut self, other: &RunStats) {
        self.stats.absorb(other);
        self.ticks += other.total_ops();
    }

    /// The unspent remainder of this run's budget, for handing to a
    /// budgeted sub-solver (whose stats are then folded back in with
    /// [`Ticker::absorb`]). Unlimited dimensions stay unlimited; the
    /// wall-clock limit becomes the time still left on this run's deadline.
    pub fn remaining_budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if self.limit != u64::MAX {
            b = b.with_ticks(self.limit.saturating_sub(self.ticks));
        }
        if let Some(limit) = self.time_limit {
            b = b.with_deadline(limit.saturating_sub(self.start.elapsed()));
        }
        b
    }

    /// The counters so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Ticks spent so far.
    pub fn ticks_spent(&self) -> u64 {
        self.ticks
    }

    /// Finishes the run: pairs the search result (in the canonical
    /// `Result<Option<W>, ExhaustReason>` shape) with the collected stats.
    pub fn finish<W>(self, result: Result<Option<W>, ExhaustReason>) -> (Outcome<W>, RunStats) {
        (Outcome::from(result), self.stats)
    }

    /// Finishes the run with an already-built outcome.
    pub fn finish_with<W>(self, outcome: Outcome<W>) -> (Outcome<W>, RunStats) {
        (outcome, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut t = Ticker::new(&Budget::unlimited());
        for _ in 0..100_000 {
            t.node().expect("unlimited");
        }
        assert_eq!(t.stats().nodes, 100_000);
        assert_eq!(t.ticks_spent(), 100_000);
    }

    #[test]
    fn tick_limit_is_exact() {
        let mut t = Ticker::new(&Budget::ticks(3));
        assert!(t.node().is_ok());
        assert!(t.propagation().is_ok());
        assert!(t.backtrack().is_ok());
        let err = t.tuple().unwrap_err();
        assert_eq!(err, ExhaustReason::Ticks { limit: 3 });
        // Counters still record the operation that crossed the limit.
        assert_eq!(t.stats().tuples, 1);
        assert_eq!(t.stats().total_ops(), 4);
    }

    #[test]
    fn zero_budget_exhausts_on_first_op() {
        let mut t = Ticker::new(&Budget::ticks(0));
        assert!(t.node().is_err());
    }

    #[test]
    fn deadline_in_the_past_exhausts_on_first_op() {
        // Mirrors the `Budget::ticks(0)` guarantee: an already-expired
        // deadline exhausts on the very first counted operation.
        let mut t = Ticker::new(&Budget::deadline(Duration::ZERO));
        let err = t.node().unwrap_err();
        assert!(matches!(err, ExhaustReason::Deadline { .. }));
        assert_eq!(t.stats().total_ops(), 1, "the crossing op is counted");
    }

    #[test]
    fn outcome_accessors() {
        let sat: Outcome<u32> = Outcome::Sat(7);
        assert!(sat.is_sat() && sat.is_decided());
        assert_eq!(sat.sat(), Some(7));
        assert_eq!(sat.map(|x| x + 1), Outcome::Sat(8));
        let unsat: Outcome<u32> = Outcome::Unsat;
        assert!(unsat.is_unsat());
        assert_eq!(unsat.decided(), Some(None));
        let ex: Outcome<u32> = Outcome::Exhausted(ExhaustReason::Ticks { limit: 1 });
        assert!(ex.is_exhausted() && !ex.is_decided());
        assert_eq!(ex.decided(), None);
        assert_eq!(ex.exhaust_reason(), Some(ExhaustReason::Ticks { limit: 1 }));
    }

    #[test]
    #[should_panic(expected = "unwrap_sat")]
    fn unwrap_sat_panics_on_unsat() {
        let _ = Outcome::<u32>::Unsat.unwrap_sat();
    }

    #[test]
    #[should_panic(expected = "Exhausted")]
    fn unwrap_decided_panics_on_exhausted() {
        let _ = Outcome::<u32>::Exhausted(ExhaustReason::Ticks { limit: 0 }).unwrap_decided();
    }

    #[test]
    fn from_result_bridge() {
        assert_eq!(Outcome::from(Ok(Some(1u32))), Outcome::Sat(1));
        assert_eq!(Outcome::from(Ok(None::<u32>)), Outcome::Unsat);
        assert!(Outcome::<u32>::from(Err(ExhaustReason::Ticks { limit: 9 })).is_exhausted());
    }

    #[test]
    fn stats_absorb_and_le() {
        let mut a = RunStats {
            nodes: 1,
            propagations: 2,
            trie_advances: 0,
            tuples: 3,
            backtracks: 0,
            max_intermediate: 10,
        };
        let b = RunStats {
            nodes: 4,
            max_intermediate: 5,
            ..RunStats::default()
        };
        assert!(b.le(&RunStats {
            nodes: 4,
            propagations: 9,
            ..RunStats::default()
        }));
        a.absorb(&b);
        assert_eq!(a.nodes, 5);
        assert_eq!(a.max_intermediate, 10);
        assert_eq!(a.total_ops(), 10);
    }

    #[test]
    fn ticker_absorb_spends_ticks() {
        let mut t = Ticker::new(&Budget::ticks(10));
        let sub = RunStats {
            nodes: 7,
            ..RunStats::default()
        };
        t.absorb(&sub);
        assert_eq!(t.ticks_spent(), 7);
        assert!(t.node().is_ok());
        assert!(t.node().is_ok());
        assert!(t.node().is_ok());
        assert!(t.node().is_err());
    }

    #[test]
    fn remaining_budget_shrinks_with_spend() {
        let mut t = Ticker::new(&Budget::unlimited());
        t.node().expect("unlimited");
        assert!(t.remaining_budget().is_unlimited());

        let mut t = Ticker::new(&Budget::ticks(5));
        t.node().expect("within budget");
        t.node().expect("within budget");
        assert_eq!(t.remaining_budget().max_ticks(), Some(3));
        for _ in 0..10 {
            let _ = t.node();
        }
        assert_eq!(t.remaining_budget().max_ticks(), Some(0));
    }

    #[test]
    fn budget_builders() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        let b = Budget::ticks(5).with_deadline(Duration::from_millis(1));
        assert_eq!(b.max_ticks(), Some(5));
        assert!(b.time_limit().is_some());
        assert!(!b.is_unlimited());
    }
}
