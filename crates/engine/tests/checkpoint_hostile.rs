//! Hostile checkpoint corpus: every fixture under `fixtures/checkpoints/`
//! is a corrupted, truncated, version-skewed, or mis-tagged container, and
//! decoding each must yield the matching typed [`CheckpointError`] — never
//! a panic. The two container-*valid* fixtures (`wrong-family.ck`,
//! `garbage-payload.ck`) decode here and are rejected by the solver layer
//! instead (see the workspace-level `resume_properties` tests).
//!
//! The corpus is checked in; `regenerate_fixtures` (ignored by default)
//! rebuilds it deterministically:
//! `cargo test -p lb-engine --test checkpoint_hostile -- --ignored`

use lb_engine::checkpoint::{Checkpoint, CheckpointError, SolverFamily, FORMAT_VERSION};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/checkpoints")
}

/// The well-formed container every hostile fixture is derived from. The
/// payload is synthetic — container-level fixtures never reach a solver's
/// payload decoder.
fn base() -> Vec<u8> {
    Checkpoint::new(
        SolverFamily::Dpll,
        1,
        b"synthetic frontier payload for hostile container fixtures".to_vec(),
    )
    .to_bytes()
}

/// Patches the FNV-1a-64 trailer so corruption *before* the checksum is
/// attributed to the right field, not reported as `Corrupted`.
fn refresh_checksum(bytes: &mut [u8]) {
    let body_end = bytes.len() - 8;
    let sum = lb_engine::checkpoint::fnv1a(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
}

/// `(file name, fixture bytes)` for the whole corpus.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let full = base();
    let truncated = full[..12].to_vec();
    let mut bad_magic = full.clone();
    bad_magic[0] = b'X';
    let mut wrong_version = full.clone();
    wrong_version[4..6].copy_from_slice(&0xffffu16.to_le_bytes());
    let mut bit_flipped = full.clone();
    bit_flipped[24] ^= 0x01; // one payload bit
    let mut unknown_family = full.clone();
    unknown_family[6..8].copy_from_slice(&0x7777u16.to_le_bytes());
    refresh_checksum(&mut unknown_family);
    let mut trailing = full.clone();
    trailing.push(0u8);
    // Container-valid, solver-hostile: a well-formed CSP-tagged container
    // handed to DPLL, and a well-formed DPLL-tagged container whose payload
    // is garbage to the DPLL payload decoder.
    let wrong_family = Checkpoint::new(
        SolverFamily::CspBacktracking,
        1,
        b"well-formed container, wrong solver family".to_vec(),
    )
    .to_bytes();
    let garbage_payload = full.clone();
    vec![
        ("truncated.ck", truncated),
        ("bad-magic.ck", bad_magic),
        ("wrong-version.ck", wrong_version),
        ("bit-flipped.ck", bit_flipped),
        ("unknown-family.ck", unknown_family),
        ("trailing-garbage.ck", trailing),
        ("wrong-family.ck", wrong_family),
        ("garbage-payload.ck", garbage_payload),
    ]
}

/// Rebuilds the checked-in corpus. Deterministic: rerunning produces
/// byte-identical files.
#[test]
#[ignore = "regenerates the checked-in fixture corpus"]
fn regenerate_fixtures() {
    let dir = fixtures_dir();
    std::fs::create_dir_all(&dir).expect("create fixtures dir");
    for (name, bytes) in corpus() {
        std::fs::write(dir.join(name), bytes).expect("write fixture");
    }
}

/// The checked-in corpus matches what `regenerate_fixtures` would write —
/// a drifted fixture is a silent loss of coverage.
#[test]
fn corpus_is_current() {
    for (name, expected) in corpus() {
        let on_disk = std::fs::read(fixtures_dir().join(name))
            .unwrap_or_else(|e| panic!("fixture {name} unreadable ({e}); run the regenerator"));
        assert_eq!(on_disk, expected, "fixture {name} drifted; regenerate");
    }
}

/// Every fixture decodes to a *typed* error (or, for the two
/// container-valid ones, to a checkpoint the solver layer must reject) —
/// never a panic, from bytes or from disk.
#[test]
fn every_fixture_yields_a_typed_error_never_a_panic() {
    let mut seen = 0;
    for entry in std::fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("ck") {
            continue;
        }
        seen += 1;
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let bytes = std::fs::read(&path).expect("read fixture");
        let from_bytes = catch_unwind(AssertUnwindSafe(|| Checkpoint::from_bytes(&bytes)))
            .unwrap_or_else(|_| panic!("{name}: from_bytes panicked"));
        let from_disk = catch_unwind(AssertUnwindSafe(|| Checkpoint::load(&path)))
            .unwrap_or_else(|_| panic!("{name}: load panicked"));
        // Both decode paths agree on accept/reject.
        assert_eq!(
            from_bytes.is_ok(),
            from_disk.is_ok(),
            "{name}: from_bytes and load disagree"
        );
        match name.as_str() {
            "truncated.ck" => {
                assert!(
                    matches!(from_bytes, Err(CheckpointError::Truncated { .. })),
                    "{name}"
                )
            }
            "bad-magic.ck" => {
                assert!(
                    matches!(from_bytes, Err(CheckpointError::BadMagic)),
                    "{name}"
                )
            }
            "wrong-version.ck" => assert!(
                matches!(
                    from_bytes,
                    Err(CheckpointError::VersionSkew { found: 0xffff, supported }) if supported == FORMAT_VERSION
                ),
                "{name}"
            ),
            "bit-flipped.ck" => {
                assert!(
                    matches!(from_bytes, Err(CheckpointError::Corrupted { .. })),
                    "{name}"
                )
            }
            "unknown-family.ck" => assert!(
                matches!(
                    from_bytes,
                    Err(CheckpointError::UnknownFamily { tag: 0x7777 })
                ),
                "{name}"
            ),
            "trailing-garbage.ck" => assert!(
                matches!(from_bytes, Err(CheckpointError::TrailingGarbage { .. })),
                "{name}"
            ),
            "wrong-family.ck" => assert!(
                matches!(&from_bytes, Ok(ck) if ck.family() == SolverFamily::CspBacktracking),
                "{name}: expected a container-valid CSP-tagged checkpoint"
            ),
            "garbage-payload.ck" => assert!(
                matches!(&from_bytes, Ok(ck) if ck.family() == SolverFamily::Dpll),
                "{name}: expected a container-valid DPLL-tagged checkpoint"
            ),
            other => panic!("unknown fixture {other}; add an expectation for it"),
        }
    }
    assert_eq!(seen, corpus().len(), "fixture count drifted");
}
