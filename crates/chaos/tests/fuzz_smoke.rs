//! The standing tier-1 fuzz gate: the full smoke configuration — 1000
//! hostile instances per input family under seeded fault plans and tick
//! budgets — must produce zero panics and zero oracle divergences.
//!
//! This is the same run CI executes via `cargo run -p lb-chaos -- smoke`;
//! having it as a test means plain `cargo test` enforces the panic-free
//! public API guarantee too.

use lb_chaos::harness::{smoke, SMOKE_COUNT};

/// The skewed heavy-hitter generator feeds every fourth join seed (both
/// differentials route `seed % 4 == 0` through it), so the smoke run
/// above exercises the leapfrog heavy path ~250 times per family pass.
/// This leg pins the sharper oracle: the new leapfrog join must produce
/// byte-identical answers to the frozen pre-leapfrog reference machine.
#[test]
fn skewed_instances_agree_with_the_reference_machine() {
    use lb_engine::Budget;
    for seed in 0..50u64 {
        let (q, db) = lb_chaos::hostile::skewed_join_instance(seed);
        db.validate_for(&q)
            .expect("skewed instances are well-formed");
        let new = lb_join::wcoj::join(&q, &db, None, &Budget::unlimited())
            .expect("accepted")
            .0
            .unwrap_sat();
        let old = lb_join::reference::join(&q, &db, None, &Budget::unlimited())
            .expect("accepted")
            .0
            .unwrap_sat();
        assert_eq!(new, old, "seed {seed}");
    }
}

#[test]
fn smoke_configuration_is_clean() {
    let reports = smoke();
    assert_eq!(reports.len(), 4, "one report per family");
    for report in reports {
        assert_eq!(
            report.instances,
            SMOKE_COUNT,
            "[{}] fuzz run stopped early",
            report.family.name()
        );
        if let Some(failure) = report.failures.first() {
            panic!("{failure}");
        }
    }
}
