//! The standing tier-1 fuzz gate: the full smoke configuration — 1000
//! hostile instances per input family under seeded fault plans and tick
//! budgets — must produce zero panics and zero oracle divergences.
//!
//! This is the same run CI executes via `cargo run -p lb-chaos -- smoke`;
//! having it as a test means plain `cargo test` enforces the panic-free
//! public API guarantee too.

use lb_chaos::harness::{smoke, SMOKE_COUNT};

#[test]
fn smoke_configuration_is_clean() {
    let reports = smoke();
    assert_eq!(reports.len(), 4, "one report per family");
    for report in reports {
        assert_eq!(
            report.instances,
            SMOKE_COUNT,
            "[{}] fuzz run stopped early",
            report.family.name()
        );
        if let Some(failure) = report.failures.first() {
            panic!("{failure}");
        }
    }
}
