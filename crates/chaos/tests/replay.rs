//! Replay determinism: the same `FaultPlan` + instance must yield
//! byte-identical `Outcome` and `RunStats` across independent runs, for at
//! least one solver in every family (sat, csp, join, graphalg).
//!
//! This is the acceptance test for the fault-injection contract: faults
//! are keyed on deterministic operation counts, never the wall clock, so a
//! failure seen once is a failure reproducible forever.

use lb_chaos::hostile;
use lb_engine::fault::with_plan;
use lb_engine::{Budget, ExhaustReason, FaultKind, FaultPlan, Outcome};

/// Runs `f` twice under `plan` and asserts both runs are identical;
/// returns one of them.
fn twice<R: PartialEq + std::fmt::Debug>(plan: &FaultPlan, f: impl Fn() -> R) -> R {
    let a = with_plan(plan, &f);
    let b = with_plan(plan, &f);
    assert_eq!(a, b, "two runs under the same FaultPlan diverged");
    a
}

fn injected(reason: &ExhaustReason) -> bool {
    matches!(reason, ExhaustReason::Injected { .. })
}

#[test]
fn sat_replay_is_deterministic() {
    let f = hostile::cnf(0xbeef);
    let plan = FaultPlan::new().with_point(FaultKind::Exhaust, 2);
    let budget = Budget::unlimited();
    let (outcome, stats) = twice(&plan, || lb_sat::DpllSolver::default().solve(&f, &budget));
    // The plan must actually fire mid-search (the instance is big enough).
    match outcome {
        Outcome::Exhausted(r) => assert!(injected(&r), "wrong exhaust reason: {r}"),
        other => panic!("fault did not fire: {other:?}"),
    }
    assert!(stats.total_ops() > 0);
}

#[test]
fn csp_replay_is_deterministic() {
    // Seed picked for a non-trivial instance (several constraints).
    let inst = hostile::csp(11);
    assert!(!inst.constraints.is_empty());
    let plan = FaultPlan::from_seed(7);
    let budget = Budget::ticks(500);
    let first = twice(&plan, || lb_csp::solver::solve(&inst, &budget));
    // And a plan-free replay is *also* deterministic (control).
    let clean = twice(&FaultPlan::new(), || lb_csp::solver::solve(&inst, &budget));
    assert!(
        first.0.is_exhausted() || first.0 == clean.0,
        "a fault plan may only push a run toward Exhausted, never flip a verdict"
    );
}

#[test]
fn join_replay_is_deterministic() {
    use lb_join::{wcoj, Database, JoinQuery, Table};
    let q = JoinQuery::triangle();
    let mut db = Database::new();
    let rows: Vec<Vec<u64>> = (0..8u64)
        .flat_map(|x| (0..8u64).map(move |y| vec![x, y]))
        .collect();
    for name in ["R", "S", "T"] {
        db.insert(name, Table::from_rows(2, rows.clone()));
    }
    let plan = FaultPlan::new().with_point(FaultKind::TrieAdvance, 25);
    let budget = Budget::unlimited();
    let result = twice(&plan, || wcoj::join(&q, &db, None, &budget));
    let (outcome, stats) = result.expect("valid database");
    match outcome {
        Outcome::Exhausted(r) => assert!(injected(&r), "wrong exhaust reason: {r}"),
        other => panic!("trie-advance fault did not fire: {other:?}"),
    }
    assert!(stats.trie_advances > 0);
}

#[test]
fn graphalg_replay_is_deterministic() {
    let g = hostile::graph(5);
    let plan = FaultPlan::new().with_point(FaultKind::Exhaust, 10);
    let budget = Budget::unlimited();
    let (a_out, a_stats) = twice(&plan, || {
        lb_graphalg::triangle::count_triangles(&g, &budget)
    });
    // Determinism must also hold between this pair and a third run.
    let (b_out, b_stats) = with_plan(&plan, || {
        lb_graphalg::triangle::count_triangles(&g, &budget)
    });
    assert_eq!(a_out, b_out);
    assert_eq!(a_stats, b_stats);
}

#[test]
fn poison_fault_replays_and_only_touches_telemetry() {
    use lb_join::{wcoj, Database, JoinQuery, Table};
    let q = JoinQuery::triangle();
    let mut db = Database::new();
    let rows: Vec<Vec<u64>> = (0..4u64)
        .flat_map(|x| (0..4u64).map(move |y| vec![x, y]))
        .collect();
    for name in ["R", "S", "T"] {
        db.insert(name, Table::from_rows(2, rows.clone()));
    }
    let plan = FaultPlan::new().with_point(FaultKind::PoisonIntermediate, 1);
    let budget = Budget::unlimited();
    let (poisoned, poisoned_stats) =
        twice(&plan, || wcoj::count(&q, &db, None, &budget)).expect("valid database");
    let (clean, _) = wcoj::count(&q, &db, None, &budget).expect("valid database");
    // Poisoning the intermediate-size telemetry must never change the
    // verdict — only the high-water mark.
    assert_eq!(poisoned, clean);
    if poisoned_stats.max_intermediate != 0 {
        assert_eq!(poisoned_stats.max_intermediate, u64::MAX);
    }
}
