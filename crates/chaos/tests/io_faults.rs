//! Injected I/O faults against the atomic checkpoint save path.
//!
//! The claim under test is the spool's crash-safety contract: no matter
//! where a save dies — during the tmp write, the fsync, or the rename —
//! the destination file is always either *absent* or *the previous valid
//! version*, a torn `.tmp` sibling is the worst surviving debris, and
//! reading any of it back yields a typed [`CheckpointError`], never a
//! panic and never a conjured frontier.

use lb_engine::checkpoint::{tmp_sibling, Checkpoint, CheckpointError, SolverFamily};
use lb_engine::fault::with_io_plan;
use lb_engine::{IoFaultKind, IoFaultPlan};
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lb-io-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn ck(tag: u8) -> Checkpoint {
    Checkpoint::new(
        SolverFamily::Dpll,
        1,
        (0..64).map(|i| i ^ tag).collect::<Vec<u8>>(),
    )
}

/// The invariant every fault must preserve: the destination is absent or
/// loads as a complete previous version.
fn assert_absent_or_valid(path: &Path, valid: &[Checkpoint]) {
    if !path.exists() {
        return;
    }
    let loaded = Checkpoint::load(path).expect("destination must never be torn");
    assert!(
        valid.iter().any(|c| c.to_bytes() == loaded.to_bytes()),
        "destination holds bytes that were never a completed save"
    );
}

#[test]
fn every_stage_fault_leaves_destination_absent_or_valid() {
    for (kind, stage) in [
        (IoFaultKind::TmpWrite, "save-write"),
        (IoFaultKind::Sync, "save-sync"),
        (IoFaultKind::Rename, "save-rename"),
    ] {
        let path = scratch(&format!("stage-{stage}.lbck"));
        let _fresh = std::fs::remove_file(&path);
        let _debris = std::fs::remove_file(tmp_sibling(&path));
        let old = ck(0x11);
        let new = ck(0x22);
        old.save(&path).expect("baseline save");

        let plan = IoFaultPlan::new().with_point(kind, 1);
        let err = with_io_plan(&plan, || new.save(&path))
            .expect_err("injected fault must surface as an error");
        match err {
            CheckpointError::Io { error, .. } => {
                assert!(
                    error.contains("injected"),
                    "{stage}: expected the injected marker, got `{error}`"
                );
            }
            other => panic!("{stage}: expected CheckpointError::Io, got {other:?}"),
        }
        // The old version must still load; the new one must not be visible.
        assert_absent_or_valid(&path, std::slice::from_ref(&old));
        let survived = Checkpoint::load(&path).expect("old version intact");
        assert_eq!(survived.to_bytes(), old.to_bytes());

        // A retry with no plan active lands the new version cleanly.
        new.save(&path).expect("retry must succeed");
        assert_eq!(
            Checkpoint::load(&path).expect("new version").to_bytes(),
            new.to_bytes()
        );
    }
}

#[test]
fn first_ever_save_fault_leaves_no_destination() {
    for kind in [
        IoFaultKind::TmpWrite,
        IoFaultKind::Sync,
        IoFaultKind::Rename,
    ] {
        let path = scratch(&format!("first-{}.lbck", kind.name()));
        let _fresh = std::fs::remove_file(&path);
        let _debris = std::fs::remove_file(tmp_sibling(&path));
        let plan = IoFaultPlan::new().with_point(kind, 1);
        with_io_plan(&plan, || ck(0x33).save(&path)).expect_err("injected fault must surface");
        assert!(
            !path.exists(),
            "{}: a failed first save must not create the destination",
            kind.name()
        );
    }
}

#[test]
fn torn_tmp_is_a_typed_error_never_a_frontier() {
    let path = scratch("torn.lbck");
    let _fresh = std::fs::remove_file(&path);
    let plan = IoFaultPlan::new().with_point(IoFaultKind::TmpWrite, 1);
    with_io_plan(&plan, || ck(0x44).save(&path)).expect_err("fault fires");
    let tmp = tmp_sibling(&path);
    assert!(tmp.exists(), "TmpWrite leaves the torn prefix behind");
    // The torn prefix must decode as a typed error, not a checkpoint and
    // not a panic — exactly what a restart's recovery sweep relies on.
    let torn = Checkpoint::load(&tmp);
    assert!(torn.is_err(), "a half-written blob must not decode");
}

#[test]
fn seeded_fault_storms_never_tear_the_destination() {
    let path = scratch("storm.lbck");
    let _fresh = std::fs::remove_file(&path);
    let _debris = std::fs::remove_file(tmp_sibling(&path));
    let mut valid: Vec<Checkpoint> = Vec::new();
    for seed in 0..200u64 {
        let next = ck((seed % 251) as u8);
        let plan = IoFaultPlan::from_seed(seed);
        let landed = with_io_plan(&plan, || {
            // Several saves per scope so multi-point plans hit attempts > 1;
            // any one success makes `next` a legitimately completed version.
            let mut landed = false;
            for _ in 0..3 {
                if next.save(&path).is_ok() {
                    landed = true;
                }
            }
            landed
        });
        if landed {
            valid.push(next);
        }
        assert_absent_or_valid(&path, &valid);
    }
    assert!(!valid.is_empty(), "some storms must let a save through");
}

#[test]
fn io_plans_round_trip_their_spec_string() {
    let plan = IoFaultPlan::new()
        .with_point(IoFaultKind::TmpWrite, 2)
        .with_point(IoFaultKind::Rename, 1);
    let spec = plan.to_string();
    let reparsed: IoFaultPlan = spec.parse().expect("rendered spec must reparse");
    assert_eq!(reparsed.to_string(), spec);
    assert!(IoFaultPlan::from_seed(7)
        .to_string()
        .parse::<IoFaultPlan>()
        .is_ok());
    assert!("save-write@".parse::<IoFaultPlan>().is_err());
    assert!("save-frobnicate@1".parse::<IoFaultPlan>().is_err());
}
