//! The fuzz harness: drive N seeds through each family's differential
//! check and report.

use crate::differential::{check, check_resume, Failure, Family};

/// Outcome of fuzzing one family.
#[derive(Clone, Debug)]
pub struct FamilyReport {
    /// Which family ran.
    pub family: Family,
    /// How many hostile instances were checked.
    pub instances: u64,
    /// Every check failure, in seed order.
    pub failures: Vec<Failure>,
}

impl FamilyReport {
    /// True iff every instance passed.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `count` seeds (`base_seed..base_seed + count`) of `checker`
/// through `family`, stopping after `max_failures` failures (0 = collect
/// all).
fn drive(
    family: Family,
    base_seed: u64,
    count: u64,
    max_failures: usize,
    checker: impl Fn(Family, u64) -> Result<(), Failure>,
) -> FamilyReport {
    let mut failures = Vec::new();
    let mut instances = 0;
    for seed in base_seed..base_seed.saturating_add(count) {
        instances += 1;
        if let Err(f) = checker(family, seed) {
            failures.push(f);
            if max_failures != 0 && failures.len() >= max_failures {
                break;
            }
        }
    }
    FamilyReport {
        family,
        instances,
        failures,
    }
}

/// Runs `count` seeds (`base_seed..base_seed + count`) through `family`,
/// stopping after `max_failures` failures (0 = collect all).
pub fn run_family(family: Family, base_seed: u64, count: u64, max_failures: usize) -> FamilyReport {
    drive(family, base_seed, count, max_failures, check)
}

/// Like [`run_family`], but for the checkpoint/resume slice-equivalence
/// differential: each seed runs a solver once uninterrupted and once
/// chained through adversarial slices, and the two must agree.
pub fn run_resume_family(
    family: Family,
    base_seed: u64,
    count: u64,
    max_failures: usize,
) -> FamilyReport {
    drive(family, base_seed, count, max_failures, check_resume)
}

/// The smoke configuration: the fixed seed set CI runs. 1000 hostile
/// instances per family, zero tolerance.
pub const SMOKE_BASE_SEED: u64 = 0x10b5;
/// Instances per family in the smoke configuration.
pub const SMOKE_COUNT: u64 = 1000;
/// Instances per family in the resume configuration (each seed runs many
/// slices, so the default is smaller than [`SMOKE_COUNT`]).
pub const RESUME_COUNT: u64 = 150;

/// Runs the smoke configuration over `families` (CI shards by passing a
/// subset via `--families`).
pub fn smoke_families(families: &[Family]) -> Vec<FamilyReport> {
    families
        .iter()
        .map(|&f| run_family(f, SMOKE_BASE_SEED, SMOKE_COUNT, 3))
        .collect()
}

/// Runs the smoke configuration over every family.
pub fn smoke() -> Vec<FamilyReport> {
    smoke_families(&Family::ALL)
}

/// Runs the resume differential configuration over `families`.
pub fn resume_smoke(families: &[Family]) -> Vec<FamilyReport> {
    families
        .iter()
        .map(|&f| run_resume_family(f, SMOKE_BASE_SEED, RESUME_COUNT, 3))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_clean_per_family() {
        for family in Family::ALL {
            let report = run_family(family, 1, 25, 0);
            assert_eq!(report.instances, 25);
            if let Some(f) = report.failures.first() {
                panic!("{f}");
            }
        }
    }

    #[test]
    fn tiny_resume_run_is_clean_per_family() {
        for family in Family::ALL {
            let report = run_resume_family(family, 1, 10, 0);
            assert_eq!(report.instances, 10);
            if let Some(f) = report.failures.first() {
                panic!("{f}");
            }
        }
    }
}
