//! Seeded hostile-instance generators, one per input family.
//!
//! "Hostile" means *legal but degenerate*: the shapes that break fragile
//! solver code without violating any documented precondition — empty
//! formulas, unit and duplicate clauses, tautologies, empty CSP domains,
//! empty relations, duplicate tuples, skewed join tables, repeated query
//! attributes, isolated vertices, star graphs. (Veldhuizen's leapfrog
//! triejoin paper and Ngo's WCOJ survey both call out exactly these
//! iterator edge cases.) Separate generators produce *malformed text* for
//! the ingestion layer, which must reject it with a typed error.
//!
//! Every generator is a pure function of its seed.

use crate::rng::Rng;
use lb_csp::{Constraint, CspInstance, Relation};
use lb_graph::Graph;
use lb_join::{Atom, Database, JoinQuery, Table};
use lb_sat::{CnfFormula, Lit};
use std::sync::Arc;

/// A hostile CNF formula: ≤ 10 variables (so the brute-force oracle stays
/// instant), duplicate/unit/tautological clauses encouraged.
pub fn cnf(seed: u64) -> CnfFormula {
    let mut rng = Rng::new(seed ^ 0x5a71);
    let num_vars = rng.range(1, 10) as usize;
    let num_clauses = rng.range(0, 18) as usize;
    let mut f = CnfFormula::new(num_vars);
    let mut prev: Option<Vec<Lit>> = None;
    for _ in 0..num_clauses {
        // Occasionally repeat the previous clause verbatim.
        if let Some(p) = prev.as_ref().filter(|_| rng.chance(10)) {
            f.add_clause(p.clone());
            continue;
        }
        let width = rng.range(1, 4) as usize;
        let mut clause = Vec::with_capacity(width + 1);
        for _ in 0..width {
            let var = rng.below(num_vars as u64) as usize;
            clause.push(Lit::new(var, rng.chance(50)));
        }
        // Inject a duplicate literal or a tautological pair.
        if rng.chance(20) {
            let l = *rng.pick(&clause);
            clause.push(if rng.chance(50) { l } else { l.negated() });
        }
        prev = Some(clause.clone());
        f.add_clause(clause);
    }
    f
}

/// Malformed DIMACS text: a valid serialization of [`cnf`] run through
/// 1–3 random corruptions. The parser must reject (or, rarely, still
/// accept) it — but never panic and never mis-parse.
pub fn malformed_dimacs(seed: u64) -> String {
    let mut rng = Rng::new(seed ^ 0xd1ac5);
    let mut text = cnf(seed).to_dimacs();
    for _ in 0..rng.range(1, 3) {
        text = corrupt(&mut rng, &text);
    }
    text
}

fn corrupt(rng: &mut Rng, text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    match rng.below(8) {
        // Truncate at a random byte (on a char boundary).
        0 => {
            let mut cut = rng.below(text.len() as u64 + 1) as usize;
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_string()
        }
        // Drop a random line (possibly the header).
        1 if !lines.is_empty() => {
            let skip = rng.below(lines.len() as u64) as usize;
            lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, l)| format!("{l}\n"))
                .collect()
        }
        // Duplicate a random line.
        2 if !lines.is_empty() => {
            let dup = rng.below(lines.len() as u64) as usize;
            let mut out = String::new();
            for (i, l) in lines.iter().enumerate() {
                out.push_str(l);
                out.push('\n');
                if i == dup {
                    out.push_str(l);
                    out.push('\n');
                }
            }
            out
        }
        // Append a garbage token, a bare `0`, or an unterminated literal.
        3 => format!("{text}{}\n", rng.pick(&["zz -1a 0", "0", "7"])),
        // Prepend a clause before the header.
        4 => format!("1 -1 0\n{text}"),
        // Replace a random digit with a non-digit.
        5 => {
            let digits: Vec<usize> = text
                .char_indices()
                .filter(|(_, c)| c.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            if digits.is_empty() {
                format!("{text}x")
            } else {
                let at = *rng.pick(&digits);
                let mut s = text.to_string();
                // The deref pins `pick`'s element type to `&str`; without it
                // inference collapses to unsized `str`.
                #[allow(clippy::explicit_auto_deref)]
                s.replace_range(at..at + 1, *rng.pick(&["x", "-", "!", " "]));
                s
            }
        }
        // Blow up a number far past every declared range (and past u32).
        6 => {
            let huge = rng.pick(&["4294967297", "-4294967297", "99999999999999999999"]);
            let mut replaced = false;
            let out: Vec<String> = text
                .lines()
                .map(|l| {
                    if !replaced && !l.starts_with('p') && !l.trim().is_empty() {
                        replaced = true;
                        format!("{huge} {l}")
                    } else {
                        l.to_string()
                    }
                })
                .collect();
            out.join("\n") + "\n"
        }
        // Mangle the header arity.
        _ => text.replacen("p cnf", "p cnf 1", 1),
    }
}

/// A hostile CSP instance: tiny variable counts and domains (including the
/// empty domain), empty and full relations, duplicate tuples, repeated
/// scope variables.
pub fn csp(seed: u64) -> CspInstance {
    let mut rng = Rng::new(seed ^ 0xc59);
    let num_vars = rng.range(0, 5) as usize;
    // Domain 0 (every constraint trivially unsatisfiable if any variable
    // exists) and domain 1 (no choice at all) are the hostile extremes.
    let domain = rng.range(0, 3) as usize;
    let mut inst = CspInstance::new(num_vars, domain);
    if num_vars == 0 {
        return inst;
    }
    let num_constraints = rng.range(0, 6) as usize;
    for _ in 0..num_constraints {
        let arity = rng.range(1, 3) as usize;
        let scope: Vec<usize> = (0..arity)
            .map(|_| rng.below(num_vars as u64) as usize)
            .collect();
        let num_tuples = if domain == 0 { 0 } else { rng.range(0, 8) };
        let mut tuples = Vec::new();
        for _ in 0..num_tuples {
            tuples.push(
                (0..arity)
                    .map(|_| rng.below(domain as u64) as u32)
                    .collect::<Vec<u32>>(),
            );
        }
        // Duplicate tuples survive until Relation::new dedups them; an
        // empty tuple list is the always-false constraint.
        inst.add_constraint(Constraint::new(
            scope,
            Arc::new(Relation::new(arity, tuples)),
        ));
    }
    inst
}

/// A hostile graph: up to 12 vertices, with self-loops and duplicate edges
/// in the raw edge list (dropped by construction), isolated vertices, and
/// star-like skew.
pub fn graph(seed: u64) -> Graph {
    let mut rng = Rng::new(seed ^ 0x6eaf);
    let n = rng.range(0, 12) as usize;
    if n == 0 {
        return Graph::new(0);
    }
    let num_edges = rng.range(0, (n * n / 2).max(1) as u64) as usize;
    let hub = rng.below(n as u64) as usize;
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = if rng.chance(30) {
            hub
        } else {
            rng.below(n as u64) as usize
        };
        // Self-loops (u == v) and repeats are generated on purpose.
        let v = rng.below(n as u64) as usize;
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges)
}

/// A hostile join instance: 1–3 atoms over a 4-attribute pool with
/// repeated attributes (`R(x,x)` diagonals), shared relation names, empty
/// and duplicate-heavy skewed tables. With small probability the database
/// is *broken* (missing table or arity mismatch) — the solver must report
/// `JoinError`, not panic.
pub fn join_instance(seed: u64) -> (JoinQuery, Database) {
    let mut rng = Rng::new(seed ^ 0x901f);
    let attr_pool = ["a", "b", "c", "d"];
    // Relation names must be distinct per atom (self-joins are aliased in
    // this workspace), so they are indexed, not drawn from a pool.
    let rel_pool = ["R", "S", "T"];
    let num_atoms = rng.range(1, 3) as usize;
    let mut atoms = Vec::with_capacity(num_atoms);
    for name in rel_pool.iter().take(num_atoms) {
        let arity = rng.range(1, 3) as usize;
        let attrs: Vec<&str> = (0..arity).map(|_| *rng.pick(&attr_pool)).collect();
        atoms.push(Atom::new(name, &attrs));
    }
    let q = JoinQuery::new(atoms);
    let mut db = Database::new();
    for atom in &q.atoms {
        let mut arity = atom.attrs.len();
        if rng.chance(3) {
            // Arity mismatch: must surface as JoinError::BadDatabase.
            arity += 1;
        }
        if rng.chance(3) {
            // Missing table: likewise.
            continue;
        }
        let num_rows = rng.range(0, 10) as usize;
        let mut rows = Vec::with_capacity(num_rows);
        for _ in 0..num_rows {
            // Skew: value 0 is heavily over-represented.
            rows.push(
                (0..arity)
                    .map(|_| if rng.chance(40) { 0 } else { rng.below(4) })
                    .collect::<Vec<u64>>(),
            );
        }
        db.insert(&atom.relation, Table::from_rows(arity, rows));
    }
    (q, db)
}

/// A hostile *skewed* join instance: two or three atoms sharing the
/// attribute `a`, with heavy-hitter (Zipf-like) tables — value 0 carries
/// ~40% of the mass, and each table seeds four distinct leading values so
/// the first variable's intersection is a *heavy* block (the WCOJ
/// heavy/light threshold floors at 4). Always well-formed — the
/// broken-database legs stay with [`join_instance`] — and small enough
/// (≤ 12 rows, domain ≤ 6) that the nested-loop oracle stays cheap.
pub fn skewed_join_instance(seed: u64) -> (JoinQuery, Database) {
    let mut rng = Rng::new(seed ^ 0x5fe1);
    let tail_pool = ["b", "c", "d"];
    let mut atoms = vec![
        Atom::new("R", &["a", *rng.pick(&tail_pool)]),
        Atom::new("S", &["a", *rng.pick(&tail_pool)]),
    ];
    if rng.chance(50) {
        let x = *rng.pick(&tail_pool);
        let y = *rng.pick(&tail_pool);
        atoms.push(Atom::new("T", &[x, y]));
    }
    let q = JoinQuery::new(atoms);
    let mut db = Database::new();
    for atom in &q.atoms {
        let arity = atom.attrs.len();
        let mut rows: Vec<Vec<u64>> = Vec::new();
        // Four distinct leading values guarantee the first variable's
        // range clears the heavy threshold in every participant.
        for lead in 0..4u64 {
            rows.push(
                (0..arity)
                    .map(|col| if col == 0 { lead } else { rng.below(6) })
                    .collect(),
            );
        }
        let extra = rng.range(4, 8) as usize;
        for _ in 0..extra {
            // Zipf-ish: the hub value 0 is heavily over-represented.
            rows.push(
                (0..arity)
                    .map(|_| if rng.chance(40) { 0 } else { rng.below(6) })
                    .collect::<Vec<u64>>(),
            );
        }
        db.insert(&atom.relation, Table::from_rows(arity, rows));
    }
    (q, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(cnf(9).to_dimacs(), cnf(9).to_dimacs());
        assert_eq!(malformed_dimacs(9), malformed_dimacs(9));
        assert_eq!(csp(9).size(), csp(9).size());
        assert_eq!(graph(9).edges(), graph(9).edges());
        let (q1, _) = join_instance(9);
        let (q2, _) = join_instance(9);
        assert_eq!(q1.atoms.len(), q2.atoms.len());
        let (q3, db3) = skewed_join_instance(9);
        let (q4, db4) = skewed_join_instance(9);
        assert_eq!(q3.atoms.len(), q4.atoms.len());
        assert_eq!(db3.max_table_size(), db4.max_table_size());
    }

    #[test]
    fn skewed_join_instances_clear_the_heavy_threshold() {
        for seed in 0..100u64 {
            let (q, db) = skewed_join_instance(seed);
            db.validate_for(&q).expect("always well-formed");
            // R and S share `a` as their first attribute, and each table
            // holds at least four distinct leading values — the floor of
            // the WCOJ heavy threshold — so the first variable's
            // intersection runs in leapfrog (heavy) mode.
            for name in ["R", "S"] {
                let t = db.table(name).expect("present");
                let mut leads: Vec<u64> = t.rows().iter().map(|r| r[0]).collect();
                leads.sort_unstable();
                leads.dedup();
                assert!(leads.len() >= 4, "seed {seed}: {name} lead width");
            }
        }
    }

    #[test]
    fn generators_cover_degenerate_shapes() {
        let mut saw_empty_cnf = false;
        let mut saw_unit = false;
        let mut saw_domain0 = false;
        let mut saw_empty_graph = false;
        for seed in 0..200 {
            saw_empty_cnf |= cnf(seed).num_clauses() == 0;
            saw_unit |= cnf(seed).clauses().iter().any(|c| c.len() == 1);
            saw_domain0 |= csp(seed).domain_size == 0;
            saw_empty_graph |= graph(seed).num_vertices() == 0;
        }
        assert!(saw_empty_cnf && saw_unit && saw_domain0 && saw_empty_graph);
    }
}
