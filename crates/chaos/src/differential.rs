//! Differential checks: one hostile instance, one fault plan, one verdict.
//!
//! Each family check generates a hostile instance from the seed, derives a
//! deterministic fault plan and tick budget from the same seed, runs the
//! production solver under [`lb_engine::fault::with_plan`], and compares
//! against a brute-force oracle run with no faults and no budget. The
//! soundness-under-faults contract being enforced:
//!
//! * the solver **never panics** (checked with `catch_unwind`);
//! * a completed verdict (`Sat`/`Unsat`) **agrees with the oracle**, and a
//!   `Sat` witness actually satisfies the instance;
//! * under faults or tight budgets the only extra permitted outcome is
//!   `Exhausted` — injected faults may cost completeness, never soundness.

use crate::hostile;
use crate::rng::Rng;
use lb_engine::fault::with_plan;
use lb_engine::{Budget, FaultPlan, Outcome};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The input families the fuzzer covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// CNF satisfiability (DPLL, 2SAT, model counting, DIMACS ingestion).
    Sat,
    /// Constraint satisfaction (backtracking vs. brute force).
    Csp,
    /// Join evaluation (generic WCOJ vs. nested-loop oracle).
    Join,
    /// Graph algorithms (triangle finding/counting, clique finding).
    Graphalg,
}

impl Family {
    /// All families, in reporting order.
    pub const ALL: [Family; 4] = [Family::Sat, Family::Csp, Family::Join, Family::Graphalg];

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Sat => "sat",
            Family::Csp => "csp",
            Family::Join => "join",
            Family::Graphalg => "graphalg",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }
}

/// A fuzz failure: the seed replays it, the detail explains it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Which family's check failed.
    pub family: Family,
    /// The seed that reproduces the failure.
    pub seed: u64,
    /// `true` when the solver panicked, `false` on an oracle divergence.
    pub panicked: bool,
    /// Human-readable description, including a shrunk reproducer when the
    /// instance family supports shrinking.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] seed {}: {}: {}",
            self.family.name(),
            self.seed,
            if self.panicked { "PANIC" } else { "DIVERGENCE" },
            self.detail
        )
    }
}

/// The fault plan and budget a seed implies. Roughly a third of runs get
/// injected faults, a third get a tight tick budget, and a third run clean
/// (so the differential also exercises the no-fault path).
pub fn plan_for_seed(seed: u64) -> (FaultPlan, Budget) {
    let mut rng = Rng::new(seed ^ 0xfa17);
    let plan = if rng.chance(40) {
        FaultPlan::from_seed(rng.next_u64())
    } else {
        FaultPlan::new()
    };
    let budget = if rng.chance(30) {
        Budget::ticks(rng.below(2_000))
    } else {
        Budget::unlimited()
    };
    (plan, budget)
}

/// Runs `f` guarding against panics; `Err` carries the panic payload text.
fn no_panic<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| {
        p.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

fn fail(family: Family, seed: u64, panicked: bool, detail: String) -> Failure {
    Failure {
        family,
        seed,
        panicked,
        detail,
    }
}

/// Checks one SAT seed: DPLL (and 2SAT when applicable, model counting,
/// and the SAT→CSP reduction round-trip) against the brute-force oracle,
/// plus malformed-DIMACS ingestion.
pub fn check_sat(seed: u64) -> Result<(), Failure> {
    use lb_sat::{brute, count_models, solve_2sat, CnfFormula, DpllSolver};

    // Ingestion leg: malformed text must produce Ok or a typed error,
    // never a panic.
    let text = hostile::malformed_dimacs(seed);
    no_panic(|| {
        // lb-lint: allow(swallowed-result) -- the probe only cares panic vs no-panic; a typed parse error is a pass
        let _ = CnfFormula::from_dimacs(&text);
    })
    .map_err(|p| {
        fail(
            Family::Sat,
            seed,
            true,
            format!("from_dimacs panicked: {p}\ninput:\n{text}"),
        )
    })?;

    let f = hostile::cnf(seed);
    let (plan, budget) = plan_for_seed(seed);
    let (oracle, _) = brute::solve(&f, &Budget::unlimited());
    let oracle_sat = oracle.is_sat();

    let shrunk = |f: &CnfFormula| crate::shrink::shrink_cnf(f, seed);

    let (outcome, _) = no_panic(|| with_plan(&plan, || DpllSolver::default().solve(&f, &budget)))
        .map_err(|p| {
        fail(
            Family::Sat,
            seed,
            true,
            format!("dpll panicked: {p}\n{}", shrunk(&f)),
        )
    })?;
    match outcome {
        Outcome::Sat(m) => {
            if !f.eval(&m) {
                return Err(fail(
                    Family::Sat,
                    seed,
                    false,
                    format!("dpll returned a non-model\n{}", shrunk(&f)),
                ));
            }
            if !oracle_sat {
                return Err(fail(
                    Family::Sat,
                    seed,
                    false,
                    format!("dpll Sat, oracle Unsat\n{}", shrunk(&f)),
                ));
            }
        }
        Outcome::Unsat if oracle_sat => {
            return Err(fail(
                Family::Sat,
                seed,
                false,
                format!("dpll Unsat, oracle Sat\n{}", shrunk(&f)),
            ));
        }
        _ => {}
    }

    // 2SAT leg, on width-≤2 formulas only.
    if f.is_ksat(2) {
        let (outcome, _) = no_panic(|| with_plan(&plan, || solve_2sat(&f, &budget)))
            .map_err(|p| fail(Family::Sat, seed, true, format!("2sat panicked: {p}")))?;
        match outcome {
            Outcome::Sat(m) if !f.eval(&m) || !oracle_sat => {
                return Err(fail(
                    Family::Sat,
                    seed,
                    false,
                    format!("2sat bogus Sat\n{}", shrunk(&f)),
                ));
            }
            Outcome::Unsat if oracle_sat => {
                return Err(fail(
                    Family::Sat,
                    seed,
                    false,
                    format!("2sat Unsat, oracle Sat\n{}", shrunk(&f)),
                ));
            }
            _ => {}
        }
    }

    // Counting leg.
    let (oracle_count, _) = brute::count(&f, &Budget::unlimited());
    let (outcome, _) = no_panic(|| with_plan(&plan, || count_models(&f, &budget)))
        .map_err(|p| fail(Family::Sat, seed, true, format!("count panicked: {p}")))?;
    if let (Outcome::Sat(got), Outcome::Sat(want)) = (&outcome, &oracle_count) {
        if got != want {
            return Err(fail(
                Family::Sat,
                seed,
                false,
                format!("count {got} ≠ oracle {want}\n{}", shrunk(&f)),
            ));
        }
    }

    // Reduction leg: SAT→CSP must preserve the verdict (exercised on a
    // quarter of the seeds; the reduction itself is deterministic).
    if seed.is_multiple_of(4) {
        let inst = no_panic(|| lb_reductions::sat_to_csp::reduce(&f))
            .map_err(|p| fail(Family::Sat, seed, true, format!("sat_to_csp panicked: {p}")))?;
        let (outcome, _) =
            no_panic(|| lb_csp::solver::bruteforce::solve(&inst, &Budget::unlimited()))
                .map_err(|p| fail(Family::Sat, seed, true, format!("csp-of-sat panicked: {p}")))?;
        match outcome {
            Outcome::Sat(a) => {
                let back = lb_reductions::sat_to_csp::solution_back(&a);
                if !f.eval(&back) || !oracle_sat {
                    return Err(fail(
                        Family::Sat,
                        seed,
                        false,
                        format!("sat_to_csp produced a non-model\n{}", shrunk(&f)),
                    ));
                }
            }
            Outcome::Unsat if oracle_sat => {
                return Err(fail(
                    Family::Sat,
                    seed,
                    false,
                    format!("sat_to_csp lost satisfiability\n{}", shrunk(&f)),
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Checks one CSP seed: default backtracking against the brute-force
/// oracle, for both deciding and counting.
pub fn check_csp(seed: u64) -> Result<(), Failure> {
    use lb_csp::solver;

    let inst = hostile::csp(seed);
    let (plan, budget) = plan_for_seed(seed);
    let (oracle, _) = solver::bruteforce::solve(&inst, &Budget::unlimited());
    let oracle_sat = oracle.is_sat();
    let shrunk = |detail: &str| {
        format!(
            "{detail}\nshrunk: {}",
            crate::shrink::shrink_csp(&inst, seed)
        )
    };

    let (outcome, _) =
        no_panic(|| with_plan(&plan, || solver::solve(&inst, &budget))).map_err(|p| {
            fail(
                Family::Csp,
                seed,
                true,
                shrunk(&format!("backtracking panicked: {p}")),
            )
        })?;
    match outcome {
        Outcome::Sat(a) => {
            if !inst.eval(&a) {
                return Err(fail(
                    Family::Csp,
                    seed,
                    false,
                    shrunk("backtracking returned a non-solution"),
                ));
            }
            if !oracle_sat {
                return Err(fail(
                    Family::Csp,
                    seed,
                    false,
                    shrunk("backtracking Sat, oracle Unsat"),
                ));
            }
        }
        Outcome::Unsat if oracle_sat => {
            return Err(fail(
                Family::Csp,
                seed,
                false,
                shrunk("backtracking Unsat, oracle Sat"),
            ));
        }
        _ => {}
    }

    let (oracle_count, _) = solver::bruteforce::count(&inst, &Budget::unlimited());
    let (outcome, _) = no_panic(|| with_plan(&plan, || solver::count(&inst, &budget)))
        .map_err(|p| fail(Family::Csp, seed, true, format!("count panicked: {p}")))?;
    if let (Outcome::Sat(got), Outcome::Sat(want)) = (&outcome, &oracle_count) {
        if got != want {
            return Err(fail(
                Family::Csp,
                seed,
                false,
                shrunk(&format!("count {got} ≠ oracle {want}")),
            ));
        }
    }
    Ok(())
}

/// Checks one join seed: leapfrog WCOJ against the nested-loop oracle.
/// Broken databases must yield `JoinError` from both, never a panic.
/// Every fourth seed draws a skewed heavy-hitter instance instead of the
/// generic hostile one, so the heavy/light split's leapfrog path gets
/// dedicated differential coverage.
pub fn check_join(seed: u64) -> Result<(), Failure> {
    use lb_join::wcoj;

    let (q, db) = if seed.is_multiple_of(4) {
        hostile::skewed_join_instance(seed)
    } else {
        hostile::join_instance(seed)
    };
    let (plan, budget) = plan_for_seed(seed);
    let oracle = wcoj::nested_loop_join(&q, &db, &Budget::unlimited());

    let result =
        no_panic(|| with_plan(&plan, || wcoj::join(&q, &db, None, &budget))).map_err(|p| {
            fail(
                Family::Join,
                seed,
                true,
                format!("wcoj::join panicked: {p}"),
            )
        })?;
    match (result, oracle) {
        (Err(_), Err(_)) => {} // both reject the broken database
        (Err(e), Ok(_)) => {
            return Err(fail(
                Family::Join,
                seed,
                false,
                format!("wcoj rejected ({e}) what the oracle accepted"),
            ));
        }
        (Ok(_), Err(e)) => {
            return Err(fail(
                Family::Join,
                seed,
                false,
                format!("wcoj accepted what the oracle rejected ({e})"),
            ));
        }
        (Ok((outcome, _)), Ok((oracle_outcome, _))) => {
            if let (Outcome::Sat(got), Outcome::Sat(want)) = (&outcome, &oracle_outcome) {
                if got != want {
                    return Err(fail(
                        Family::Join,
                        seed,
                        false,
                        format!(
                            "wcoj answer ≠ nested-loop answer ({} vs {} tuples)",
                            got.len(),
                            want.len()
                        ),
                    ));
                }
            }
            // Emptiness leg: early-exit variant must agree too.
            if let Outcome::Sat(want) = &oracle_outcome {
                let result =
                    no_panic(|| with_plan(&plan, || wcoj::is_empty(&q, &db, None, &budget)))
                        .map_err(|p| {
                            fail(
                                Family::Join,
                                seed,
                                true,
                                format!("wcoj::is_empty panicked: {p}"),
                            )
                        })?;
                if let Ok((Outcome::Sat(empty), _)) = result {
                    if empty != want.is_empty() {
                        return Err(fail(
                            Family::Join,
                            seed,
                            false,
                            "wcoj::is_empty disagrees with materialized answer".to_string(),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks one graphalg seed: triangle counting/finding (three algorithms)
/// and clique finding against brute-force enumeration.
pub fn check_graphalg(seed: u64) -> Result<(), Failure> {
    use lb_graphalg::{clique, triangle};

    let g = hostile::graph(seed);
    let (plan, budget) = plan_for_seed(seed);
    let n = g.num_vertices();

    // Oracle: enumerate all triangles directly.
    let mut oracle_triangles = 0u64;
    for u in 0..n {
        for v in u + 1..n {
            for w in v + 1..n {
                if g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w) {
                    oracle_triangles += 1;
                }
            }
        }
    }

    let (outcome, _) = no_panic(|| with_plan(&plan, || triangle::count_triangles(&g, &budget)))
        .map_err(|p| {
            fail(
                Family::Graphalg,
                seed,
                true,
                format!("count_triangles panicked: {p}"),
            )
        })?;
    if let Outcome::Sat(got) = outcome {
        if got != oracle_triangles {
            return Err(fail(
                Family::Graphalg,
                seed,
                false,
                format!("count_triangles {got} ≠ oracle {oracle_triangles}"),
            ));
        }
    }

    for (name, finder) in [
        ("naive", triangle::find_triangle_naive as fn(_, _) -> _),
        ("matmul", triangle::find_triangle_matmul),
        ("ayz", triangle::find_triangle_ayz),
    ] {
        let (outcome, _) = no_panic(|| with_plan(&plan, || finder(&g, &budget))).map_err(|p| {
            fail(
                Family::Graphalg,
                seed,
                true,
                format!("find_triangle_{name} panicked: {p}"),
            )
        })?;
        match outcome {
            Outcome::Sat(t) if !triangle::is_triangle(&g, &t) => {
                return Err(fail(
                    Family::Graphalg,
                    seed,
                    false,
                    format!("find_triangle_{name} returned a non-triangle {t:?}"),
                ));
            }
            Outcome::Unsat if oracle_triangles > 0 => {
                return Err(fail(
                    Family::Graphalg,
                    seed,
                    false,
                    format!("find_triangle_{name} Unsat but {oracle_triangles} triangles exist"),
                ));
            }
            _ => {}
        }
    }

    // Clique leg: k = 3 cliques are exactly triangles.
    let (outcome, _) = no_panic(|| with_plan(&plan, || clique::find_clique(&g, 3, &budget)))
        .map_err(|p| {
            fail(
                Family::Graphalg,
                seed,
                true,
                format!("find_clique panicked: {p}"),
            )
        })?;
    match outcome {
        Outcome::Sat(c) => {
            let ok = c.len() == 3
                && c.iter().all(|&v| v < n)
                && g.has_edge(c[0], c[1])
                && g.has_edge(c[1], c[2])
                && g.has_edge(c[0], c[2]);
            if !ok {
                return Err(fail(
                    Family::Graphalg,
                    seed,
                    false,
                    format!("find_clique returned a non-clique {c:?}"),
                ));
            }
        }
        Outcome::Unsat if oracle_triangles > 0 => {
            return Err(fail(
                Family::Graphalg,
                seed,
                false,
                "find_clique Unsat but a triangle exists".to_string(),
            ));
        }
        _ => {}
    }
    Ok(())
}

/// Dispatches a seed to its family's check.
pub fn check(family: Family, seed: u64) -> Result<(), Failure> {
    match family {
        Family::Sat => check_sat(seed),
        Family::Csp => check_csp(seed),
        Family::Join => check_join(seed),
        Family::Graphalg => check_graphalg(seed),
    }
}

// ---------------------------------------------------------------------------
// Resume differential: sliced checkpoint/resume vs. one uninterrupted run.
// ---------------------------------------------------------------------------

use lb_engine::checkpoint::{Checkpoint, ResumableOutcome};
use lb_engine::RunStats;

/// Generous convergence cap: every slice makes at least one op of
/// progress, so a run needing this many slices is a livelock bug, not a
/// slow instance.
const MAX_SLICES: u32 = 100_000;

/// A resumable solver entry point as driven by the differential: one
/// budget slice, optionally continuing from a checkpoint.
type ResumableRun<'a, W> =
    dyn FnMut(&Budget, Option<&Checkpoint>) -> Result<(ResumableOutcome<W>, RunStats), String> + 'a;

/// The core slice-equivalence check (the tentpole invariant): run the
/// solver once uninterrupted, then again chained through adversarially
/// small slices — some throttled by tiny tick budgets, some cut short by
/// an injected [`FaultPlan`] — with every intermediate [`Checkpoint`]
/// round-tripped through its byte encoding. The verdict and the summed
/// [`RunStats`] must be identical.
fn resume_differential<W: PartialEq + std::fmt::Debug>(
    family: Family,
    seed: u64,
    what: &str,
    run: &mut ResumableRun<'_, W>,
) -> Result<(), Failure> {
    let wrap = |panicked: bool, detail: String| fail(family, seed, panicked, detail);

    // Baseline: one uninterrupted, fault-free run.
    let (one_shot, full_stats) = no_panic(|| run(&Budget::unlimited(), None))
        .map_err(|p| wrap(true, format!("{what}: one-shot run panicked: {p}")))?
        .map_err(|e| wrap(false, format!("{what}: one-shot run errored: {e}")))?;
    if one_shot.is_suspended() {
        return Err(wrap(
            false,
            format!("{what}: suspended under an unlimited budget with no faults"),
        ));
    }

    // Sliced: adversarial interruption points from the seed.
    let mut rng = Rng::new(seed ^ 0x5e5e);
    let mut from: Option<Checkpoint> = None;
    let mut summed = RunStats::default();
    let mut slices = 0u32;
    let sliced = loop {
        slices += 1;
        if slices > MAX_SLICES {
            return Err(wrap(
                false,
                format!("{what}: no verdict after {MAX_SLICES} slices (resume livelock)"),
            ));
        }
        let budget = Budget::ticks(1 + rng.below(40));
        let plan = if rng.chance(50) {
            FaultPlan::from_seed(rng.next_u64())
        } else {
            FaultPlan::new()
        };
        let step = no_panic(|| with_plan(&plan, || run(&budget, from.as_ref())))
            .map_err(|p| wrap(true, format!("{what}: slice {slices} panicked: {p}")))?
            .map_err(|e| wrap(false, format!("{what}: slice {slices} errored: {e}")))?;
        let (out, stats) = step;
        summed.absorb(&stats);
        match out {
            ResumableOutcome::Suspended { checkpoint, .. } => {
                // Round-trip through bytes: what resumes is what persists.
                let bytes = checkpoint.to_bytes();
                let reloaded = Checkpoint::from_bytes(&bytes).map_err(|e| {
                    wrap(
                        false,
                        format!("{what}: checkpoint failed to round-trip: {e}"),
                    )
                })?;
                from = Some(reloaded);
            }
            done => break done,
        }
    };

    if sliced != one_shot {
        return Err(wrap(
            false,
            format!("{what}: sliced verdict diverged from the one-shot run"),
        ));
    }
    // Exact equality, except that an injected PoisonIntermediate may have
    // pinned a slice's `max_intermediate` to u64::MAX; the tick counters
    // must still match exactly (poison is telemetry-only).
    if !summed.eq_allowing_poisoned_intermediate(&full_stats) {
        return Err(wrap(
            false,
            format!("{what}: summed slice stats {summed:?} ≠ one-shot stats {full_stats:?}"),
        ));
    }
    Ok(())
}

/// Checks one seed's slice-equivalence for `family`'s resumable solvers.
pub fn check_resume(family: Family, seed: u64) -> Result<(), Failure> {
    match family {
        Family::Sat => {
            let f = hostile::cnf(seed);
            let solver = lb_sat::DpllSolver::default();
            resume_differential(family, seed, "dpll", &mut |b, from| {
                solver
                    .solve_resumable(&f, b, from)
                    .map_err(|e| e.to_string())
            })
        }
        Family::Csp => {
            use lb_csp::solver::{backtracking, BacktrackConfig};
            let inst = hostile::csp(seed);
            let config = BacktrackConfig::default();
            resume_differential(family, seed, "csp-solve", &mut |b, from| {
                backtracking::solve_resumable(&inst, config, b, from).map_err(|e| e.to_string())
            })?;
            resume_differential(family, seed, "csp-count", &mut |b, from| {
                backtracking::count_resumable(&inst, config, b, from).map_err(|e| e.to_string())
            })
        }
        Family::Join => {
            use lb_join::wcoj;
            // Every fourth seed exercises the heavy/light split's leapfrog
            // frames (Bind-phase checkpoints) instead of the generic shape.
            let (q, db) = if seed.is_multiple_of(4) {
                hostile::skewed_join_instance(seed)
            } else {
                hostile::join_instance(seed)
            };
            // Broken databases are the *other* differential's concern; the
            // resume check only runs on instances the solver accepts.
            if wcoj::count(&q, &db, None, &Budget::ticks(0)).is_err() {
                return Ok(());
            }
            resume_differential(family, seed, "join-count", &mut |b, from| {
                wcoj::count_resumable(&q, &db, None, b, from).map_err(|e| e.to_string())
            })?;
            resume_differential(family, seed, "join-is-empty", &mut |b, from| {
                wcoj::is_empty_resumable(&q, &db, None, b, from).map_err(|e| e.to_string())
            })
        }
        Family::Graphalg => {
            use lb_graphalg::{clique, triangle};
            let g = hostile::graph(seed);
            resume_differential(family, seed, "triangle-count", &mut |b, from| {
                triangle::count_triangles_resumable(&g, b, from).map_err(|e| e.to_string())
            })?;
            resume_differential(family, seed, "triangle-find", &mut |b, from| {
                triangle::find_triangle_naive_resumable(&g, b, from).map_err(|e| e.to_string())
            })?;
            resume_differential(family, seed, "clique-find", &mut |b, from| {
                clique::find_clique_resumable(&g, 3, b, from).map_err(|e| e.to_string())
            })?;
            resume_differential(family, seed, "clique-count", &mut |b, from| {
                clique::count_cliques_resumable(&g, 3, b, from).map_err(|e| e.to_string())
            })
        }
    }
}
