//! `lb-chaos serve` — the network-level chaos soak against a live
//! `lb-serve` process.
//!
//! One *storm* is one seeded end-to-end pass: spawn the real server
//! binary with every chaos knob on (`--net-fault-seed` injects torn
//! writes, disconnects, slow-loris trickle, and read timeouts into every
//! second connection; `--io-fault-seed` injects spool faults into every
//! fourth settle), drive it with a deterministic job mix plus a raft of
//! raw hostile connections, SIGKILL it mid-flight on even seeds and
//! restart it on the same spool, then settle everything and check the
//! survival-layer invariant:
//!
//! * **verdict or quarantine, nothing else** — every acknowledged job
//!   ends either `done` with a verdict byte-equal to the uninterrupted
//!   in-process reference, or `quarantined` with non-empty evidence;
//! * **no lost jobs** — every acknowledged id answers `STATUS` to a
//!   terminal state before the deadline;
//! * **no hangs, no leaked slots** — after the storm a fresh connection
//!   still gets `PONG` and the server drains and exits promptly.
//!
//! Every failure line carries its seed; `lb-chaos serve --seed N
//! --storms 1` replays the identical storm (the fault schedules are pure
//! functions of the seed).

use lb_serve::bench::{self, connect_patiently};
use lb_serve::client::{retry_with_backoff, Backoff, Client, ClientError};
use lb_serve::job::JobSpec;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Storm-soak knobs.
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// The `lb-serve` binary to spawn.
    pub server_bin: PathBuf,
    /// First storm seed; storm `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// How many storms to run.
    pub storms: u64,
    /// Tenants per storm.
    pub tenants: usize,
    /// Jobs per tenant per storm.
    pub jobs_per_tenant: usize,
    /// Per-storm settle deadline, ms.
    pub deadline_ms: u64,
    /// Keep the spool directory of a failing storm on disk (CI uploads it
    /// as the quarantine-evidence artifact).
    pub keep_failed_spool: bool,
}

impl StormConfig {
    /// Defaults around `server_bin`: 8 storms of 2×2 tiny jobs.
    pub fn new(server_bin: PathBuf) -> StormConfig {
        StormConfig {
            server_bin,
            base_seed: 1,
            storms: 8,
            tenants: 2,
            jobs_per_tenant: 2,
            deadline_ms: 60_000,
            keep_failed_spool: true,
        }
    }
}

/// What a storm run observed, summed across storms.
#[derive(Debug, Default)]
pub struct StormReport {
    /// Storms completed (including failing ones).
    pub storms: u64,
    /// Jobs acknowledged across all storms.
    pub jobs: usize,
    /// Jobs that settled `done` with the reference verdict.
    pub settled: usize,
    /// Jobs that ended `quarantined` with evidence.
    pub quarantined: usize,
    /// SIGKILL/restart cycles taken.
    pub kills: u64,
    /// Invariant violations; each line carries its replay seed.
    pub failures: Vec<String>,
}

/// Locates the sibling `lb-serve` binary next to the running executable
/// (both land in `target/<profile>/`), for the CLI default.
pub fn sibling_server_bin() -> Option<PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop();
    // Test binaries live one level deeper, in target/<profile>/deps/.
    [dir.join("lb-serve"), dir.parent()?.join("lb-serve")]
        .into_iter()
        .find(|candidate| candidate.is_file())
}

struct StormServer {
    child: Child,
    addr: String,
}

/// Spawns the server with every chaos knob derived from `seed`. Slices
/// are small so jobs preempt; retry backoff is short so the ladder climbs
/// within the storm's deadline.
fn spawn_server(cfg: &StormConfig, spool: &PathBuf, seed: u64) -> Result<StormServer, String> {
    let seed_s = seed.to_string();
    let mut child = Command::new(&cfg.server_bin)
        .args(["run", "--spool"])
        .arg(spool)
        .args(["--addr", "127.0.0.1:0"])
        .args(["--slice-ticks", "16", "--workers", "2"])
        .args(["--max-attempts", "3", "--retry-backoff-ms", "5"])
        .args(["--retry-after-ms", "20"])
        .args(["--read-timeout-ms", "500", "--idle-timeout-ms", "2000"])
        .args(["--io-fault-seed", &seed_s, "--net-fault-seed", &seed_s])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", cfg.server_bin.display()))?;
    let stdout = child.stdout.take().ok_or("server stdout missing")?;
    let first = BufReader::new(stdout)
        .lines()
        .next()
        .ok_or("server exited before its banner")?
        .map_err(|e| format!("read banner: {e}"))?;
    let addr = first
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected banner `{first}`"))?
        .to_string();
    Ok(StormServer { child, addr })
}

impl Drop for StormServer {
    fn drop(&mut self) {
        let _cleanup = self.child.kill();
        let _status = self.child.wait();
    }
}

/// Throws a handful of raw hostile connections at the server: garbage,
/// an oversize line, a torn SUBMIT header, and a silent close. All errors
/// are ignored — the server's reaction is judged by whether well-behaved
/// clients still settle afterwards.
fn hostile_leg(addr: &str, seed: u64) {
    let legs: [&[u8]; 4] = [
        b"\x00\xffgarbage with no protocol\n",
        b"SUBMIT tenant0 sat 5\np cnf 2 1\n", // declares 5 payload lines, sends 1, hangs up
        &[b'x'; 70_000],                      // oversize, no newline
        b"",                                  // connect and slam shut
    ];
    for (i, leg) in legs.iter().enumerate() {
        // Skew which legs run by seed so storms differ, but keep ≥2 legs.
        if seed.wrapping_add(i as u64).is_multiple_of(3) && i > 1 {
            continue;
        }
        let Ok(mut s) = std::net::TcpStream::connect(addr) else {
            continue;
        };
        // lb-lint: allow(swallowed-result) -- a hostile leg is fire-and-forget by design; the socket may already be sabotaged
        let _cfg = s.set_write_timeout(Some(Duration::from_millis(500)));
        let _sent = s.write_all(leg);
        if !leg.is_empty() && !leg.ends_with(b"\n") {
            let _sent = s.write_all(b"\n");
        }
    }
}

/// Polls one job to a terminal state, reconnecting through injected
/// connection faults. Returns the terminal report or an error string.
fn poll_terminal(
    addr: &str,
    id: &str,
    deadline: Instant,
) -> Result<lb_serve::protocol::StatusReport, String> {
    let mut client: Option<Client> = None;
    loop {
        if Instant::now() >= deadline {
            return Err(format!("{id}: not terminal by the storm deadline"));
        }
        if client.is_none() {
            client = connect_patiently(
                addr,
                Duration::from_millis(2_000),
                deadline.saturating_duration_since(Instant::now()),
            )
            // lb-lint: allow(swallowed-result) -- converted to Option and handled as a terminal error on the next line
            .ok();
            if client.is_none() {
                return Err(format!("{id}: could not reconnect before the deadline"));
            }
        }
        let Some(c) = client.as_mut() else {
            continue;
        };
        match c.status(id) {
            Ok(s) if s.state == "done" || s.state == "quarantined" => return Ok(s),
            Ok(_running) => std::thread::sleep(Duration::from_millis(20)),
            // Unknown-job is terminal trouble only if it persists; an ERR
            // without a hint here is most likely our own faulted read —
            // reconnect and ask again.
            Err(ClientError::Io(_)) | Err(ClientError::Unexpected(_)) => client = None,
            Err(ClientError::Rejected { line, .. }) if line.contains("unknown-job") => {
                return Err(format!("{id}: server forgot an acknowledged job: {line}"));
            }
            Err(_rejected) => client = None,
        }
    }
}

/// Runs one storm; failure strings go into `report`.
fn run_storm(cfg: &StormConfig, seed: u64, report: &mut StormReport) {
    let replay = format!("replay: lb-chaos serve --seed {seed} --storms 1");
    let spool = std::env::temp_dir().join(format!("lb-storm-{}-{seed}", std::process::id()));
    let _fresh = std::fs::remove_dir_all(&spool);
    let fail = |report: &mut StormReport, what: String| {
        report
            .failures
            .push(format!("seed={seed}: {what}; {replay}"));
    };
    let mut server = match spawn_server(cfg, &spool, seed) {
        Ok(s) => s,
        Err(e) => return fail(report, e),
    };
    let deadline = Instant::now() + Duration::from_millis(cfg.deadline_ms);

    // Submit the deterministic mix, one fresh connection per try so the
    // submissions themselves run the net-fault gauntlet. A torn ack may
    // admit a job we never learn the id of; that job still settles
    // server-side, and the invariant quantifies over acknowledged ids.
    let specs = bench::generate_specs(cfg.tenants, cfg.jobs_per_tenant, seed);
    let policy = Backoff {
        base_ms: 5,
        cap_ms: 200,
        attempts: 12,
        seed,
    };
    let mut acked: Vec<(String, JobSpec)> = Vec::new();
    for spec in specs {
        let submitted = retry_with_backoff(&policy, |_attempt| {
            let mut c = Client::connect(&server.addr, Duration::from_millis(2_000))?;
            c.submit(&spec)
        });
        match submitted {
            Ok((id, _backoffs)) => acked.push((id, spec)),
            Err(e) => fail(report, format!("submit never acknowledged: {e}")),
        }
    }
    report.jobs += acked.len();

    hostile_leg(&server.addr, seed);

    // Even seeds take a SIGKILL mid-flight and restart on the same spool.
    if seed.is_multiple_of(2) {
        std::thread::sleep(Duration::from_millis(120));
        let _kill = server.child.kill();
        let _status = server.child.wait();
        report.kills += 1;
        server = match spawn_server(cfg, &spool, seed) {
            Ok(s) => s,
            Err(e) => return fail(report, format!("restart after kill: {e}")),
        };
        hostile_leg(&server.addr, seed.wrapping_add(1));
    }

    // Settle every acknowledged job: verdict ≡ reference, or quarantined
    // with evidence. Nothing else, and nothing unsettled.
    for (id, spec) in &acked {
        let status = match poll_terminal(&server.addr, id, deadline) {
            Ok(s) => s,
            Err(e) => {
                fail(report, e);
                continue;
            }
        };
        if status.state == "quarantined" {
            match status.evidence.as_deref() {
                Some(ev) if !ev.trim().is_empty() => report.quarantined += 1,
                _ => fail(report, format!("{id}: quarantined without evidence")),
            }
            continue;
        }
        let Some(verdict) = status.verdict else {
            fail(report, format!("{id}: done without a verdict"));
            continue;
        };
        match bench::reference_verdict(spec) {
            Ok(reference) if reference == verdict => report.settled += 1,
            Ok(reference) => fail(
                report,
                format!(
                    "{id}: served `{}` but reference says `{}`",
                    verdict.to_line(),
                    reference.to_line()
                ),
            ),
            Err(e) => fail(report, format!("{id}: reference run failed: {e}")),
        }
    }

    // The server must still answer PING — retried over fresh connections,
    // because half of them are (by design) served through the fault
    // wrapper and may be reset under us. Failing *every* try is the hang.
    let alive = retry_with_backoff(&policy, |_attempt| {
        let mut c = Client::connect(&server.addr, Duration::from_millis(2_000))?;
        c.ping().map(|()| c)
    });
    let mut drain_client = match alive {
        Ok((c, _backoffs)) => c,
        Err(e) => return fail(report, format!("no PONG after the storm: {e}")),
    };
    // ...and drain to a prompt exit — a wedged worker or leaked handler
    // thread shows up here as a hang. The DRAIN ack line may itself be
    // torn; drain latches server-side before the ack is written, so a
    // torn ack with a subsequent exit still counts.
    if drain_client.drain().is_err() {
        // Retry on fresh connections; if drain already latched, connects
        // start failing — the exit-wait below is the real judge either way.
        let _retried = retry_with_backoff(&policy, |_attempt| {
            let mut c = Client::connect(&server.addr, Duration::from_millis(2_000))?;
            c.drain()
        });
    }
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match server.child.try_wait() {
            Ok(Some(_status)) => break,
            Ok(None) if Instant::now() < drain_deadline => {
                std::thread::sleep(Duration::from_millis(50))
            }
            Ok(None) => return fail(report, "server did not exit within 30s of DRAIN".into()),
            Err(e) => return fail(report, format!("wait after drain: {e}")),
        }
    }

    let failed = report.failures.iter().any(|f| f.contains(&replay));
    if failed && cfg.keep_failed_spool {
        eprintln!(
            "seed={seed}: spool kept for inspection: {}",
            spool.display()
        );
    } else {
        let _cleanup = std::fs::remove_dir_all(&spool);
    }
}

/// Runs `cfg.storms` seeded storms and sums what they saw.
pub fn run_storms(cfg: &StormConfig) -> StormReport {
    let mut report = StormReport::default();
    for i in 0..cfg.storms {
        run_storm(cfg, cfg.base_seed + i, &mut report);
        report.storms += 1;
    }
    report
}
