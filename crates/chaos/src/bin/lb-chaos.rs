//! `lb-chaos` — run the adversarial fuzz harness from the command line.
//!
//! ```text
//! lb-chaos smoke                          the CI gate: 1000 instances per
//!                                         family, fixed seeds, exit 1 on
//!                                         any panic or oracle divergence
//! lb-chaos --seed N [--count K]           fuzz all families from seed N
//! lb-chaos --family sat --seed N          replay/fuzz one family
//! ```
//!
//! Every failure line carries the seed that reproduces it; rerunning with
//! `--family <f> --seed <n> --count 1` replays the identical instance,
//! fault plan, and budget.

use lb_chaos::harness::{run_family, smoke, FamilyReport, SMOKE_COUNT};
use lb_chaos::Family;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lb-chaos smoke\n       lb-chaos --seed <n> [--count <k>] [--family <sat|csp|join|graphalg>]"
    );
    ExitCode::from(2)
}

fn report(reports: &[FamilyReport]) -> ExitCode {
    let mut dirty = false;
    for r in reports {
        println!(
            "{:<9} {} instances, {} failure(s)",
            r.family.name(),
            r.instances,
            r.failures.len()
        );
        for f in &r.failures {
            dirty = true;
            println!("{f}");
        }
    }
    if dirty {
        ExitCode::FAILURE
    } else {
        println!("ok: no panics, no oracle divergences");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        return report(&smoke());
    }

    let mut seed: Option<u64> = None;
    let mut count: u64 = SMOKE_COUNT;
    let mut families: Vec<Family> = Family::ALL.to_vec();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = Some(v),
                _ => return usage(),
            },
            "--count" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => count = v,
                _ => return usage(),
            },
            "--family" => match it.next().and_then(|v| Family::from_name(v)) {
                Some(f) => families = vec![f],
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(seed) = seed else {
        return usage();
    };
    let reports: Vec<FamilyReport> = families
        .into_iter()
        .map(|f| run_family(f, seed, count, 0))
        .collect();
    report(&reports)
}
