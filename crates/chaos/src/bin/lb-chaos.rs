//! `lb-chaos` — run the adversarial fuzz harness from the command line.
//!
//! ```text
//! lb-chaos smoke [--families <list>]      the CI gate: 1000 instances per
//!                                         family, fixed seeds, exit 1 on
//!                                         any panic or oracle divergence;
//!                                         --families sat,csp shards the
//!                                         run for parallel CI jobs
//! lb-chaos resume [--families <list>]     checkpoint/resume differential:
//!          [--seed N] [--count K]         sliced resumes must match the
//!                                         uninterrupted run in verdict
//!                                         and summed stats
//! lb-chaos serve [--seed N] [--storms K]  network-level chaos soak: seeded
//!          [--server-bin PATH]            storms of hostile connections,
//!          [--deadline-ms MS]             injected faults, and SIGKILLs
//!                                         against a live lb-serve; every
//!                                         job must end verdict-or-
//!                                         quarantine, never limbo
//! lb-chaos --seed N [--count K]           fuzz all families from seed N
//! lb-chaos --family sat --seed N          replay/fuzz one family
//! ```
//!
//! Every failure line carries the seed that reproduces it; rerunning with
//! `--family <f> --seed <n> --count 1` replays the identical instance,
//! fault plan, and budget. Even a defective shrinker cannot mask a
//! failure: a panic while shrinking is caught and the failing seed is
//! still printed, with a nonzero exit.

use lb_chaos::harness::{
    resume_smoke, run_family, run_resume_family, smoke_families, FamilyReport, SMOKE_COUNT,
};
use lb_chaos::storm::{run_storms, sibling_server_bin, StormConfig};
use lb_chaos::Family;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lb-chaos smoke [--families <f1,f2,..>]\n       lb-chaos resume [--families <f1,f2,..>] [--seed <n>] [--count <k>]\n       lb-chaos serve [--seed <n>] [--storms <k>] [--server-bin <path>] [--deadline-ms <ms>]\n       lb-chaos --seed <n> [--count <k>] [--family <sat|csp|join|graphalg>]"
    );
    ExitCode::from(2)
}

/// `lb-chaos serve` — run the storm soak and report per-seed failures,
/// each with its replay line.
fn cmd_serve(args: &[String]) -> ExitCode {
    let Some(default_bin) = sibling_server_bin() else {
        // Still allow an explicit --server-bin below.
        return cmd_serve_with(args, None);
    };
    cmd_serve_with(args, Some(default_bin))
}

fn cmd_serve_with(args: &[String], default_bin: Option<std::path::PathBuf>) -> ExitCode {
    let mut seed: u64 = 1;
    let mut storms: u64 = 8;
    let mut deadline_ms: u64 = 60_000;
    let mut bin = default_bin;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => return usage(),
            },
            "--storms" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => storms = v,
                _ => return usage(),
            },
            "--deadline-ms" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => deadline_ms = v,
                _ => return usage(),
            },
            "--server-bin" => match it.next() {
                Some(p) => bin = Some(std::path::PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(bin) = bin else {
        eprintln!("lb-chaos serve: no lb-serve binary next to lb-chaos; pass --server-bin PATH");
        return ExitCode::from(2);
    };
    let cfg = StormConfig {
        base_seed: seed,
        storms,
        deadline_ms,
        ..StormConfig::new(bin)
    };
    let report = run_storms(&cfg);
    println!(
        "serve soak: {} storms, {} jobs acknowledged, {} settled to the reference verdict, \
         {} quarantined with evidence, {} kill/restart cycles",
        report.storms, report.jobs, report.settled, report.quarantined, report.kills
    );
    if report.failures.is_empty() {
        println!("ok: every job ended verdict-or-quarantine; no hangs, no lost jobs");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            println!("storm FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}

fn report(reports: &[FamilyReport]) -> ExitCode {
    let mut dirty = false;
    for r in reports {
        println!(
            "{:<9} {} instances, {} failure(s)",
            r.family.name(),
            r.instances,
            r.failures.len()
        );
        for f in &r.failures {
            dirty = true;
            println!("{f}");
        }
    }
    if dirty {
        ExitCode::FAILURE
    } else {
        println!("ok: no panics, no oracle divergences");
        ExitCode::SUCCESS
    }
}

/// Parses a comma-separated family list (`sat,csp`); `None` on any
/// unknown name.
fn parse_families(spec: &str) -> Option<Vec<Family>> {
    spec.split(',')
        .map(|part| Family::from_name(part.trim()))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    if mode == Some("serve") {
        return cmd_serve(&args[1..]);
    }
    if matches!(mode, Some("smoke" | "resume")) {
        let mut families: Vec<Family> = Family::ALL.to_vec();
        let mut seed: Option<u64> = None;
        let mut count: Option<u64> = None;
        let mut it = args[1..].iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--families" => match it.next().and_then(|v| parse_families(v)) {
                    Some(fs) if !fs.is_empty() => families = fs,
                    _ => return usage(),
                },
                "--seed" if mode == Some("resume") => match it.next().map(|v| v.parse()) {
                    Some(Ok(v)) => seed = Some(v),
                    _ => return usage(),
                },
                "--count" if mode == Some("resume") => match it.next().map(|v| v.parse()) {
                    Some(Ok(v)) => count = Some(v),
                    _ => return usage(),
                },
                _ => return usage(),
            }
        }
        let reports = match mode {
            Some("smoke") => smoke_families(&families),
            _ => match (seed, count) {
                (None, None) => resume_smoke(&families),
                (s, c) => families
                    .into_iter()
                    .map(|f| {
                        run_resume_family(
                            f,
                            s.unwrap_or(lb_chaos::harness::SMOKE_BASE_SEED),
                            c.unwrap_or(lb_chaos::harness::RESUME_COUNT),
                            0,
                        )
                    })
                    .collect(),
            },
        };
        return report(&reports);
    }

    let mut seed: Option<u64> = None;
    let mut count: u64 = SMOKE_COUNT;
    let mut families: Vec<Family> = Family::ALL.to_vec();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = Some(v),
                _ => return usage(),
            },
            "--count" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => count = v,
                _ => return usage(),
            },
            "--family" => match it.next().and_then(|v| Family::from_name(v)) {
                Some(f) => families = vec![f],
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(seed) = seed else {
        return usage();
    };
    let reports: Vec<FamilyReport> = families
        .into_iter()
        .map(|f| run_family(f, seed, count, 0))
        .collect();
    report(&reports)
}
