//! `lb-chaos` — run the adversarial fuzz harness from the command line.
//!
//! ```text
//! lb-chaos smoke [--families <list>]      the CI gate: 1000 instances per
//!                                         family, fixed seeds, exit 1 on
//!                                         any panic or oracle divergence;
//!                                         --families sat,csp shards the
//!                                         run for parallel CI jobs
//! lb-chaos resume [--families <list>]     checkpoint/resume differential:
//!          [--seed N] [--count K]         sliced resumes must match the
//!                                         uninterrupted run in verdict
//!                                         and summed stats
//! lb-chaos --seed N [--count K]           fuzz all families from seed N
//! lb-chaos --family sat --seed N          replay/fuzz one family
//! ```
//!
//! Every failure line carries the seed that reproduces it; rerunning with
//! `--family <f> --seed <n> --count 1` replays the identical instance,
//! fault plan, and budget. Even a defective shrinker cannot mask a
//! failure: a panic while shrinking is caught and the failing seed is
//! still printed, with a nonzero exit.

use lb_chaos::harness::{
    resume_smoke, run_family, run_resume_family, smoke_families, FamilyReport, SMOKE_COUNT,
};
use lb_chaos::Family;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lb-chaos smoke [--families <f1,f2,..>]\n       lb-chaos resume [--families <f1,f2,..>] [--seed <n>] [--count <k>]\n       lb-chaos --seed <n> [--count <k>] [--family <sat|csp|join|graphalg>]"
    );
    ExitCode::from(2)
}

fn report(reports: &[FamilyReport]) -> ExitCode {
    let mut dirty = false;
    for r in reports {
        println!(
            "{:<9} {} instances, {} failure(s)",
            r.family.name(),
            r.instances,
            r.failures.len()
        );
        for f in &r.failures {
            dirty = true;
            println!("{f}");
        }
    }
    if dirty {
        ExitCode::FAILURE
    } else {
        println!("ok: no panics, no oracle divergences");
        ExitCode::SUCCESS
    }
}

/// Parses a comma-separated family list (`sat,csp`); `None` on any
/// unknown name.
fn parse_families(spec: &str) -> Option<Vec<Family>> {
    spec.split(',')
        .map(|part| Family::from_name(part.trim()))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    if matches!(mode, Some("smoke" | "resume")) {
        let mut families: Vec<Family> = Family::ALL.to_vec();
        let mut seed: Option<u64> = None;
        let mut count: Option<u64> = None;
        let mut it = args[1..].iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--families" => match it.next().and_then(|v| parse_families(v)) {
                    Some(fs) if !fs.is_empty() => families = fs,
                    _ => return usage(),
                },
                "--seed" if mode == Some("resume") => match it.next().map(|v| v.parse()) {
                    Some(Ok(v)) => seed = Some(v),
                    _ => return usage(),
                },
                "--count" if mode == Some("resume") => match it.next().map(|v| v.parse()) {
                    Some(Ok(v)) => count = Some(v),
                    _ => return usage(),
                },
                _ => return usage(),
            }
        }
        let reports = match mode {
            Some("smoke") => smoke_families(&families),
            _ => match (seed, count) {
                (None, None) => resume_smoke(&families),
                (s, c) => families
                    .into_iter()
                    .map(|f| {
                        run_resume_family(
                            f,
                            s.unwrap_or(lb_chaos::harness::SMOKE_BASE_SEED),
                            c.unwrap_or(lb_chaos::harness::RESUME_COUNT),
                            0,
                        )
                    })
                    .collect(),
            },
        };
        return report(&reports);
    }

    let mut seed: Option<u64> = None;
    let mut count: u64 = SMOKE_COUNT;
    let mut families: Vec<Family> = Family::ALL.to_vec();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = Some(v),
                _ => return usage(),
            },
            "--count" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => count = v,
                _ => return usage(),
            },
            "--family" => match it.next().and_then(|v| Family::from_name(v)) {
                Some(f) => families = vec![f],
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(seed) = seed else {
        return usage();
    };
    let reports: Vec<FamilyReport> = families
        .into_iter()
        .map(|f| run_family(f, seed, count, 0))
        .collect();
    report(&reports)
}
