//! Greedy shrinking: turn a failing hostile instance into a minimal
//! reproducer before reporting it.
//!
//! The loop is standard property-testing shrinking: propose structurally
//! smaller candidates, keep the first one that still fails the same check,
//! repeat until no candidate fails. Because every check is deterministic
//! (seeded fault plan, tick budgets, no wall clock), "still fails" is
//! well-defined and the shrunk instance is reproducible.

use crate::differential::plan_for_seed;
use lb_csp::CspInstance;
use lb_engine::fault::with_plan;
use lb_engine::{Budget, FaultPlan, Outcome};
use lb_sat::{brute, CnfFormula, DpllSolver};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Greedy shrink driver: repeatedly replaces `cur` by the first failing
/// candidate from `step` until none fails.
pub fn shrink<T: Clone>(mut cur: T, step: impl Fn(&T) -> Vec<T>, fails: impl Fn(&T) -> bool) -> T {
    // Bounded for safety; hostile instances are tiny, so this is never hit
    // in practice.
    for _ in 0..10_000 {
        let Some(next) = step(&cur).into_iter().find(|c| fails(c)) else {
            return cur;
        };
        cur = next;
    }
    cur
}

/// True iff DPLL (under the plan/budget) panics or disagrees with the
/// brute-force oracle on `f`.
fn dpll_check_fails(f: &CnfFormula, plan: &FaultPlan, budget: &Budget) -> bool {
    let run = catch_unwind(AssertUnwindSafe(|| {
        with_plan(plan, || DpllSolver::default().solve(f, budget))
    }));
    let Ok((outcome, _)) = run else {
        return true; // panicked
    };
    let (oracle, _) = brute::solve(f, &Budget::unlimited());
    match outcome {
        Outcome::Sat(m) => !f.eval(&m) || !oracle.is_sat(),
        Outcome::Unsat => oracle.is_sat(),
        Outcome::Exhausted(_) => false,
    }
}

fn cnf_candidates(f: &CnfFormula) -> Vec<CnfFormula> {
    let mut out = Vec::new();
    let clauses = f.clauses();
    // Drop one clause.
    for skip in 0..clauses.len() {
        let kept: Vec<_> = clauses
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != skip)
            .map(|(_, c)| c.clone())
            .collect();
        out.push(CnfFormula::from_clauses(f.num_vars(), kept));
    }
    // Drop one literal from one clause (keeping the clause non-empty).
    for (i, c) in clauses.iter().enumerate() {
        if c.len() <= 1 {
            continue;
        }
        for j in 0..c.len() {
            let mut shrunkc = c.clone();
            shrunkc.remove(j);
            let mut kept: Vec<_> = clauses.to_vec();
            kept[i] = shrunkc;
            out.push(CnfFormula::from_clauses(f.num_vars(), kept));
        }
    }
    out
}

/// Shrinks a CNF formula against the DPLL-vs-oracle check of `seed`'s plan
/// and budget, returning a printable reproducer (DIMACS).
///
/// Shrinking runs *after* a check has already failed, so a defect in the
/// shrinker itself must not mask the original failure: a panicking shrink
/// is caught and reported alongside the unshrunk reproducer (the failure —
/// and its nonzero exit — still carries the failing seed).
pub fn shrink_cnf(f: &CnfFormula, seed: u64) -> String {
    let guarded = catch_unwind(AssertUnwindSafe(|| shrink_cnf_inner(f, seed)));
    guarded.unwrap_or_else(|_| {
        format!(
            "shrinker panicked (replay with seed {seed}); reproducer (unshrunk):\n{}",
            f.to_dimacs()
        )
    })
}

fn shrink_cnf_inner(f: &CnfFormula, seed: u64) -> String {
    let (plan, budget) = plan_for_seed(seed);
    if !dpll_check_fails(f, &plan, &budget) {
        // The failure came from a different leg (2SAT, counting, the
        // reduction); report the original unshrunk.
        return format!("reproducer (unshrunk):\n{}", f.to_dimacs());
    }
    let min = shrink(f.clone(), cnf_candidates, |c| {
        dpll_check_fails(c, &plan, &budget)
    });
    format!("reproducer (shrunk):\n{}", min.to_dimacs())
}

/// True iff backtracking (under the plan/budget) panics or disagrees with
/// the brute-force oracle on `inst`.
fn csp_check_fails(inst: &CspInstance, plan: &FaultPlan, budget: &Budget) -> bool {
    let run = catch_unwind(AssertUnwindSafe(|| {
        with_plan(plan, || lb_csp::solver::solve(inst, budget))
    }));
    let Ok((outcome, _)) = run else {
        return true;
    };
    let (oracle, _) = lb_csp::solver::bruteforce::solve(inst, &Budget::unlimited());
    match outcome {
        Outcome::Sat(a) => !inst.eval(&a) || !oracle.is_sat(),
        Outcome::Unsat => oracle.is_sat(),
        Outcome::Exhausted(_) => false,
    }
}

fn csp_candidates(inst: &CspInstance) -> Vec<CspInstance> {
    let mut out = Vec::new();
    // Drop one constraint.
    for skip in 0..inst.constraints.len() {
        let mut smaller = inst.clone();
        smaller.constraints.remove(skip);
        out.push(smaller);
    }
    out
}

/// Shrinks a CSP instance against the backtracking-vs-oracle check of
/// `seed`'s plan and budget, returning a printable reproducer.
///
/// Like [`shrink_cnf`], a panicking shrink is caught and reported rather
/// than masking the original failure.
pub fn shrink_csp(inst: &CspInstance, seed: u64) -> String {
    let guarded = catch_unwind(AssertUnwindSafe(|| shrink_csp_inner(inst, seed)));
    guarded.unwrap_or_else(|_| {
        format!("shrinker panicked (replay with seed {seed}); reproducer (unshrunk): {inst:?}")
    })
}

fn shrink_csp_inner(inst: &CspInstance, seed: u64) -> String {
    let (plan, budget) = plan_for_seed(seed);
    if !csp_check_fails(inst, &plan, &budget) {
        return format!("reproducer (unshrunk): {inst:?}");
    }
    let min = shrink(inst.clone(), csp_candidates, |c| {
        csp_check_fails(c, &plan, &budget)
    });
    format!("reproducer (shrunk): {min:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_reaches_a_local_minimum() {
        // Shrink "has at least 2 items" from a 10-item vec: the greedy loop
        // must stop at exactly 2 items.
        let min = shrink(
            (0..10).collect::<Vec<i32>>(),
            |v| {
                (0..v.len())
                    .map(|i| {
                        let mut w = v.clone();
                        w.remove(i);
                        w
                    })
                    .collect()
            },
            |v| v.len() >= 2,
        );
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn shrink_cnf_reports_a_reproducer() {
        // A healthy solver never fails, so shrinking falls back to the
        // unshrunk report; the entry point must still terminate and print.
        let f = crate::hostile::cnf(3);
        let report = shrink_cnf(&f, 3);
        assert!(report.contains("reproducer"));
    }
}
