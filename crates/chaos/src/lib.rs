//! `lb-chaos` — deterministic fault injection and adversarial-input
//! fuzzing for the lowerbounds workspace.
//!
//! The paper's lower-bound arguments are only as good as the solvers the
//! machine-checked reductions run on: a solver that crashes or silently
//! mis-answers on a degenerate instance invalidates every claim built on
//! top of it. This crate enforces the two guarantees the rest of the
//! workspace promises:
//!
//! * **Panic-free public API**: every solver and parser entry point, fed
//!   hostile-but-legal instances or malformed text, returns a value
//!   (`Outcome`, `JoinError`, `ParseError`) — never panics.
//! * **Soundness under faults**: with an [`lb_engine::FaultPlan`]
//!   injecting forced exhaustion, simulated deadline expiry, trie-advance
//!   failures, or poisoned intermediate sizes, a solver may lose
//!   *completeness* (return `Exhausted`) but never *soundness* (a
//!   completed `Sat`/`Unsat` verdict always agrees with the brute-force
//!   oracle, and every `Sat` witness checks out).
//!
//! The pieces:
//!
//! * [`rng`] — SplitMix64; everything is a pure function of a seed;
//! * [`hostile`] — hostile-instance generators per input family (CNF,
//!   CSP, joins, graphs) plus malformed-text generators for the parsers;
//! * [`differential`] — the per-family checks against brute-force oracles
//!   under seeded fault plans, plus the checkpoint/resume differential
//!   (`lb-chaos resume`): sliced, adversarially interrupted runs must
//!   match the uninterrupted run in verdict and summed stats;
//! * [`shrink`] — greedy shrinking so every failure prints minimal;
//! * [`harness`] — the N-seeds-per-family driver and the fixed smoke
//!   configuration that CI runs (`cargo run -p lb-chaos -- smoke`);
//! * [`storm`] — the network-level chaos soak against a live `lb-serve`
//!   process (`lb-chaos serve`): seeded storms of hostile connections,
//!   injected spool and socket faults, and SIGKILL/restart cycles, with
//!   the verdict-or-quarantine invariant checked per job.
//!
//! Replay: a failure report's seed is its reproducer —
//! `cargo run -p lb-chaos -- --family sat --seed N` reruns exactly the
//! same instance, fault plan, and budget.

#![forbid(unsafe_code)]

pub mod differential;
pub mod harness;
pub mod hostile;
pub mod rng;
pub mod shrink;
pub mod storm;

pub use differential::{check, check_resume, Failure, Family};
pub use harness::{resume_smoke, run_family, run_resume_family, smoke, FamilyReport};
