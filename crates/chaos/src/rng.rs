//! SplitMix64 — the crate's only randomness source.
//!
//! Std-only, allocation-free, and fully determined by its seed: the same
//! seed always replays the same hostile instance, which is what makes every
//! fuzz failure a one-line reproducer (`lb-chaos --family sat --seed N`).

/// A seeded SplitMix64 stream.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream from a seed. Distinct seeds give independent-looking
    /// streams; the zero seed is fine.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform in `lo..=hi` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        debug_assert!(!items.is_empty());
        let i = self.below(items.len() as u64) as usize;
        // lb-lint: allow(no-panic) -- invariant: callers pass non-empty slices (debug-asserted)
        &items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(r.below(0), 0);
        assert!(!r.chance(0));
        assert!(r.chance(100));
    }
}
