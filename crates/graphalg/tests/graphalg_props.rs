//! Property tests for the §5–§8 algorithm zoo: independent implementations
//! agree, FPT answers match brute-force optima, and witnesses verify.

use lb_engine::Budget;
use lb_graph::generators;
use lb_graphalg::clique::{count_cliques, find_clique, find_clique_neipol};
use lb_graphalg::domset::{find_dominating_set_branching, find_dominating_set_brute};
use lb_graphalg::editdist::{edit_distance, edit_distance_banded};
use lb_graphalg::matmul::{BoolMatrix, IntMatrix};
use lb_graphalg::triangle::{
    count_triangles, find_triangle_ayz, find_triangle_matmul, find_triangle_naive, is_triangle,
};
use lb_graphalg::vertexcover::{min_vertex_cover_brute, vertex_cover_fpt};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clique: brute force, Nešetřil–Poljak, and the count agree.
    #[test]
    fn clique_routes_agree(n in 4usize..14, p in 0.2f64..0.8, seed in 0u64..10_000, k in 2usize..5) {
        let g = generators::gnp(n, p, seed);
        let unlimited = Budget::unlimited();
        let brute = find_clique(&g, k, &unlimited).0.unwrap_decided();
        let neipol = find_clique_neipol(&g, k, &unlimited).0.unwrap_decided();
        prop_assert_eq!(brute.is_some(), neipol.is_some());
        prop_assert_eq!(brute.is_some(), count_cliques(&g, k, &unlimited).0.unwrap_sat() > 0);
        if let Some(c) = neipol {
            prop_assert!(g.is_clique(&c));
            prop_assert_eq!(c.len(), k);
        }
    }

    /// Triangles: all three detectors and the counter agree; witnesses are
    /// real triangles.
    #[test]
    fn triangle_detectors_agree(n in 3usize..20, p in 0.05f64..0.6, seed in 0u64..10_000) {
        let g = generators::gnp(n, p, seed);
        let unlimited = Budget::unlimited();
        let nv = find_triangle_naive(&g, &unlimited).0.unwrap_decided();
        let mm = find_triangle_matmul(&g, &unlimited).0.unwrap_decided();
        let ayz = find_triangle_ayz(&g, &unlimited).0.unwrap_decided();
        prop_assert_eq!(nv.is_some(), mm.is_some());
        prop_assert_eq!(nv.is_some(), ayz.is_some());
        prop_assert_eq!(nv.is_some(), count_triangles(&g, &unlimited).0.unwrap_sat() > 0);
        for w in [nv, mm, ayz].into_iter().flatten() {
            prop_assert!(is_triangle(&g, &w));
        }
    }

    /// Strassen = naive on random integer matrices.
    #[test]
    fn strassen_matches_naive(n in 1usize..40, seed in 0u64..10_000) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = IntMatrix::from_fn(n, |_, _| rng.gen_range(-4..=4));
        let b = IntMatrix::from_fn(n, |_, _| rng.gen_range(-4..=4));
        prop_assert_eq!(a.multiply_naive(&b), a.multiply_strassen(&b));
    }

    /// Boolean matmul matches the definition.
    #[test]
    fn bool_matmul_definition(n in 1usize..30, seed in 0u64..10_000) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BoolMatrix::from_fn(n, |_, _| rng.gen::<f64>() < 0.3);
        let b = BoolMatrix::from_fn(n, |_, _| rng.gen::<f64>() < 0.3);
        let c = a.multiply(&b);
        for i in 0..n {
            for j in 0..n {
                let expect = (0..n).any(|k| a.get(i, k) && b.get(k, j));
                prop_assert_eq!(c.get(i, j), expect);
            }
        }
    }

    /// Dominating set: brute and branching agree; answers verify.
    #[test]
    fn domset_routes_agree(n in 3usize..10, p in 0.1f64..0.6, seed in 0u64..10_000, k in 1usize..4) {
        let g = generators::gnp(n, p, seed);
        let unlimited = Budget::unlimited();
        let a = find_dominating_set_brute(&g, k, &unlimited).0.unwrap_decided();
        let b = find_dominating_set_branching(&g, k, &unlimited).0.unwrap_decided();
        prop_assert_eq!(a.is_some(), b.is_some());
        for s in [a, b].into_iter().flatten() {
            prop_assert!(g.is_dominating_set(&s));
            prop_assert!(s.len() <= k);
        }
    }

    /// Vertex cover FPT pipeline matches the brute-force optimum exactly.
    #[test]
    fn vertex_cover_threshold(n in 3usize..11, p in 0.1f64..0.7, seed in 0u64..10_000) {
        let g = generators::gnp(n, p, seed);
        let unlimited = Budget::unlimited();
        let opt = min_vertex_cover_brute(&g, &unlimited).0.unwrap_sat().len();
        for k in 0..=n {
            let fpt = vertex_cover_fpt(&g, k, &unlimited).0.unwrap_decided();
            prop_assert_eq!(fpt.is_some(), k >= opt);
            if let Some(c) = fpt {
                prop_assert!(g.is_vertex_cover(&c));
            }
        }
    }

    /// Edit distance: metric axioms and banded agreement.
    #[test]
    fn edit_distance_metric(sa in "[ab]{0,12}", sb in "[ab]{0,12}") {
        let a = sa.as_bytes();
        let b = sb.as_bytes();
        let unlimited = Budget::unlimited();
        let d = edit_distance(a, b, &unlimited).0.unwrap_sat();
        prop_assert_eq!(edit_distance(b, a, &unlimited).0.unwrap_sat(), d);
        prop_assert_eq!(d == 0, a == b);
        prop_assert!(d <= a.len().max(b.len()));
        prop_assert!(d >= a.len().abs_diff(b.len()));
        prop_assert_eq!(edit_distance_banded(a, b, 12, &unlimited).0.unwrap_decided(), Some(d));
    }

    /// Budgets: an exhausted run never returns a verdict, and raising the
    /// budget is monotone in every counter.
    #[test]
    fn budget_never_lies(n in 4usize..12, p in 0.2f64..0.7, seed in 0u64..10_000) {
        let g = generators::gnp(n, p, seed);
        let (full, full_stats) = find_clique(&g, 3, &Budget::unlimited());
        let total = full_stats.total_ops();
        for ticks in [0, total / 2, total] {
            let (out, stats) = find_clique(&g, 3, &Budget::ticks(ticks));
            prop_assert!(stats.le(&full_stats) || out.is_exhausted());
            if !out.is_exhausted() {
                // A decided outcome under a smaller budget matches the full run.
                prop_assert_eq!(out.is_sat(), full.is_sat());
            }
        }
    }
}
