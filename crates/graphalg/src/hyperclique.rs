//! k-clique in d-uniform hypergraphs (paper §8, hyperclique conjecture).
//!
//! A k-hyperclique is a k-vertex set containing all C(k, d) possible
//! hyperedges. For d ≥ 3 no matrix-multiplication speedup analogous to
//! Nešetřil–Poljak is known, and the conjecture states none exists — brute
//! force n^{(1-ε)k} cannot be beaten. Experiment E11 contrasts the d = 2
//! case (where [`crate::clique::find_clique_neipol`] wins) with d = 3.
//!
//! Engine mapping: the backtracking enumerators tick one
//! [`RunStats::nodes`] per vertex tried, one [`RunStats::trie_advances`]
//! per hyperedge-membership lookup in the incremental d-subset check, and
//! one [`RunStats::tuples`] per complete hyperclique visited.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::trie_advances`]: lb_engine::RunStats::trie_advances
//! [`RunStats::tuples`]: lb_engine::RunStats::tuples

use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::Hypergraph;
use std::collections::HashSet;

/// Precomputed hyperedge set for O(1) membership tests.
pub struct HyperedgeIndex {
    d: usize,
    edges: HashSet<Vec<usize>>,
}

impl HyperedgeIndex {
    /// Indexes a d-uniform hypergraph.
    ///
    /// # Panics
    /// Panics if the hypergraph is not d-uniform for its own max arity.
    pub fn new(h: &Hypergraph) -> Self {
        let d = h.arity();
        assert!(h.is_uniform(d), "hypergraph must be uniform");
        HyperedgeIndex {
            d,
            edges: h.edges().iter().cloned().collect(),
        }
    }

    /// The uniformity d.
    pub fn uniformity(&self) -> usize {
        self.d
    }

    /// Is the (sorted) d-set a hyperedge?
    pub fn contains(&self, e: &[usize]) -> bool {
        self.edges.contains(e)
    }
}

/// Finds a k-hyperclique by ordered backtracking with incremental
/// d-subset checking: when vertex v joins the partial set S, only the
/// subsets that include v need checking. `Sat(set)`, `Unsat`, or
/// `Exhausted`.
pub fn find_hyperclique(
    h: &Hypergraph,
    k: usize,
    budget: &Budget,
) -> (Outcome<Vec<usize>>, RunStats) {
    let idx = HyperedgeIndex::new(h);
    let mut ticker = Ticker::new(budget);
    let mut found = None;
    let result = enumerate_hypercliques(
        h,
        &idx,
        k,
        &mut |s| {
            found = Some(s.to_vec());
            true
        },
        &mut ticker,
    );
    ticker.finish(result.map(|_| found))
}

/// Counts k-hypercliques. `Sat(count)` or `Exhausted`.
pub fn count_hypercliques(h: &Hypergraph, k: usize, budget: &Budget) -> (Outcome<u64>, RunStats) {
    let idx = HyperedgeIndex::new(h);
    let mut ticker = Ticker::new(budget);
    let mut n = 0u64;
    let result = enumerate_hypercliques(
        h,
        &idx,
        k,
        &mut |_| {
            n += 1;
            false
        },
        &mut ticker,
    );
    ticker.finish(result.map(|_| Some(n)))
}

fn enumerate_hypercliques<F: FnMut(&[usize]) -> bool>(
    h: &Hypergraph,
    idx: &HyperedgeIndex,
    k: usize,
    visit: &mut F,
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    if k < idx.d {
        // Any k-set vacuously contains all of its (zero) d-subsets.
        let mut current = Vec::with_capacity(k);
        return enumerate_ksets(h.num_vertices(), k, 0, &mut current, visit, ticker);
    }
    let mut current = Vec::with_capacity(k);
    extend(h, idx, k, 0, &mut current, visit, ticker)
}

fn enumerate_ksets<F: FnMut(&[usize]) -> bool>(
    n: usize,
    k: usize,
    start: usize,
    current: &mut Vec<usize>,
    visit: &mut F,
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    if current.len() == k {
        ticker.tuple()?;
        return Ok(visit(current));
    }
    for v in start..n {
        ticker.node()?;
        current.push(v);
        ticker.record_intermediate(current.len() as u64);
        let hit = enumerate_ksets(n, k, v + 1, current, visit, ticker);
        current.pop();
        if hit? {
            return Ok(true);
        }
    }
    Ok(false)
}

#[allow(clippy::too_many_arguments)]
fn extend<F: FnMut(&[usize]) -> bool>(
    h: &Hypergraph,
    idx: &HyperedgeIndex,
    k: usize,
    start: usize,
    current: &mut Vec<usize>,
    visit: &mut F,
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    if current.len() == k {
        ticker.tuple()?;
        return Ok(visit(current));
    }
    let n = h.num_vertices();
    // Not enough vertices left to finish.
    if n - start < k - current.len() {
        return Ok(false);
    }
    'vertices: for v in start..n {
        ticker.node()?;
        // Incremental check: if |current| ≥ d−1, every (d−1)-subset of
        // current together with v must be a hyperedge.
        if current.len() >= idx.d - 1 {
            let mut subset = vec![0usize; idx.d - 1];
            if !check_subsets(idx, current, v, &mut subset, 0, 0, ticker)? {
                continue 'vertices;
            }
        }
        current.push(v);
        ticker.record_intermediate(current.len() as u64);
        let hit = extend(h, idx, k, v + 1, current, visit, ticker);
        current.pop();
        if hit? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Checks that every (d−1)-subset of `current`, extended by `v`, forms a
/// hyperedge.
#[allow(clippy::too_many_arguments)]
fn check_subsets(
    idx: &HyperedgeIndex,
    current: &[usize],
    v: usize,
    subset: &mut Vec<usize>,
    pos: usize,
    start: usize,
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    if pos == subset.len() {
        ticker.trie_advance()?;
        let mut e: Vec<usize> = subset.clone();
        e.push(v);
        e.sort_unstable();
        return Ok(idx.contains(&e));
    }
    for i in start..current.len() {
        subset[pos] = current[i];
        if !check_subsets(idx, current, v, subset, pos + 1, i + 1, ticker)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    fn find_unlimited(h: &Hypergraph, k: usize) -> Option<Vec<usize>> {
        find_hyperclique(h, k, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    fn count_unlimited(h: &Hypergraph, k: usize) -> u64 {
        count_hypercliques(h, k, &Budget::unlimited())
            .0
            .unwrap_sat()
    }

    #[test]
    fn planted_hyperclique_found() {
        let (h, planted) = generators::planted_hyperclique(12, 3, 5, 0.05, 3);
        let found = find_unlimited(&h, 5).unwrap();
        assert_eq!(found, planted);
    }

    #[test]
    fn sparse_hypergraph_has_none() {
        // Very sparse random 3-uniform hypergraph: no 5-hyperclique
        // (needs C(5,3) = 10 specific edges).
        let h = generators::random_uniform_hypergraph(12, 3, 0.02, 7);
        assert!(find_unlimited(&h, 5).is_none());
    }

    #[test]
    fn count_matches_naive_enumeration() {
        for seed in 0..5u64 {
            let h = generators::random_uniform_hypergraph(9, 3, 0.5, seed);
            let idx = HyperedgeIndex::new(&h);
            // Naive: all 4-subsets, check all C(4,3) = 4 edges.
            let mut naive = 0u64;
            for a in 0..9 {
                for b in (a + 1)..9 {
                    for c in (b + 1)..9 {
                        for d in (c + 1)..9 {
                            let sets = [[a, b, c], [a, b, d], [a, c, d], [b, c, d]];
                            if sets.iter().all(|s| idx.contains(s.as_ref())) {
                                naive += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(count_unlimited(&h, 4), naive, "seed {seed}");
        }
    }

    #[test]
    fn k_equal_d_is_edge_search() {
        let h = generators::random_uniform_hypergraph(10, 3, 0.1, 11);
        assert_eq!(count_unlimited(&h, 3), h.num_edges() as u64);
    }

    #[test]
    fn graph_case_matches_clique_module() {
        // d = 2: hypercliques are ordinary cliques.
        for seed in 0..5u64 {
            let g = generators::gnp(10, 0.5, seed);
            let mut h = Hypergraph::new(10);
            for (u, v) in g.edges() {
                h.add_edge(vec![u, v]);
            }
            if h.num_edges() == 0 {
                continue;
            }
            for k in 2..=4 {
                assert_eq!(
                    count_unlimited(&h, k),
                    crate::clique::count_cliques(&g, k, &Budget::unlimited())
                        .0
                        .unwrap_sat(),
                    "seed {seed}, k {k}"
                );
            }
        }
    }

    #[test]
    fn tiny_budget_exhausts() {
        let h = generators::random_uniform_hypergraph(10, 3, 0.5, 1);
        let b = Budget::ticks(0); // the first vertex tried exhausts
        assert!(find_hyperclique(&h, 4, &b).0.is_exhausted());
        assert!(count_hypercliques(&h, 4, &b).0.is_exhausted());
    }
}
