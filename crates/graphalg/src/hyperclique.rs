//! k-clique in d-uniform hypergraphs (paper §8, hyperclique conjecture).
//!
//! A k-hyperclique is a k-vertex set containing all C(k, d) possible
//! hyperedges. For d ≥ 3 no matrix-multiplication speedup analogous to
//! Nešetřil–Poljak is known, and the conjecture states none exists — brute
//! force n^{(1-ε)k} cannot be beaten. Experiment E11 contrasts the d = 2
//! case (where [`crate::clique::find_clique_neipol`] wins) with d = 3.

use lb_graph::Hypergraph;
use std::collections::HashSet;

/// Precomputed hyperedge set for O(1) membership tests.
pub struct HyperedgeIndex {
    d: usize,
    edges: HashSet<Vec<usize>>,
}

impl HyperedgeIndex {
    /// Indexes a d-uniform hypergraph.
    ///
    /// # Panics
    /// Panics if the hypergraph is not d-uniform for its own max arity.
    pub fn new(h: &Hypergraph) -> Self {
        let d = h.arity();
        assert!(h.is_uniform(d), "hypergraph must be uniform");
        HyperedgeIndex {
            d,
            edges: h.edges().iter().cloned().collect(),
        }
    }

    /// The uniformity d.
    pub fn uniformity(&self) -> usize {
        self.d
    }

    /// Is the (sorted) d-set a hyperedge?
    pub fn contains(&self, e: &[usize]) -> bool {
        self.edges.contains(e)
    }
}

/// Finds a k-hyperclique by ordered backtracking with incremental
/// d-subset checking: when vertex v joins the partial set S, only the
/// subsets that include v need checking.
pub fn find_hyperclique(h: &Hypergraph, k: usize) -> Option<Vec<usize>> {
    let idx = HyperedgeIndex::new(h);
    let mut found = None;
    enumerate_hypercliques(h, &idx, k, &mut |s| {
        found = Some(s.to_vec());
        true
    });
    found
}

/// Counts k-hypercliques.
pub fn count_hypercliques(h: &Hypergraph, k: usize) -> u64 {
    let idx = HyperedgeIndex::new(h);
    let mut n = 0u64;
    enumerate_hypercliques(h, &idx, k, &mut |_| {
        n += 1;
        false
    });
    n
}

fn enumerate_hypercliques<F: FnMut(&[usize]) -> bool>(
    h: &Hypergraph,
    idx: &HyperedgeIndex,
    k: usize,
    visit: &mut F,
) {
    if k < idx.d {
        // Any k-set vacuously contains all of its (zero) d-subsets.
        let mut current = Vec::with_capacity(k);
        enumerate_ksets(h.num_vertices(), k, 0, &mut current, visit);
        return;
    }
    let mut current = Vec::with_capacity(k);
    extend(h, idx, k, 0, &mut current, visit);
}

fn enumerate_ksets<F: FnMut(&[usize]) -> bool>(
    n: usize,
    k: usize,
    start: usize,
    current: &mut Vec<usize>,
    visit: &mut F,
) -> bool {
    if current.len() == k {
        return visit(current);
    }
    for v in start..n {
        current.push(v);
        if enumerate_ksets(n, k, v + 1, current, visit) {
            return true;
        }
        current.pop();
    }
    false
}

fn extend<F: FnMut(&[usize]) -> bool>(
    h: &Hypergraph,
    idx: &HyperedgeIndex,
    k: usize,
    start: usize,
    current: &mut Vec<usize>,
    visit: &mut F,
) -> bool {
    if current.len() == k {
        return visit(current);
    }
    let n = h.num_vertices();
    // Not enough vertices left to finish.
    if n - start < k - current.len() {
        return false;
    }
    'vertices: for v in start..n {
        // Incremental check: if |current| ≥ d−1, every (d−1)-subset of
        // current together with v must be a hyperedge.
        if current.len() >= idx.d - 1 {
            let mut subset = vec![0usize; idx.d - 1];
            if !check_subsets(idx, current, v, &mut subset, 0, 0) {
                continue 'vertices;
            }
        }
        current.push(v);
        if extend(h, idx, k, v + 1, current, visit) {
            return true;
        }
        current.pop();
    }
    false
}

/// Checks that every (d−1)-subset of `current`, extended by `v`, forms a
/// hyperedge.
fn check_subsets(
    idx: &HyperedgeIndex,
    current: &[usize],
    v: usize,
    subset: &mut Vec<usize>,
    pos: usize,
    start: usize,
) -> bool {
    if pos == subset.len() {
        let mut e: Vec<usize> = subset.clone();
        e.push(v);
        e.sort_unstable();
        return idx.contains(&e);
    }
    for i in start..current.len() {
        subset[pos] = current[i];
        if !check_subsets(idx, current, v, subset, pos + 1, i + 1) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    #[test]
    fn planted_hyperclique_found() {
        let (h, planted) = generators::planted_hyperclique(12, 3, 5, 0.05, 3);
        let found = find_hyperclique(&h, 5).unwrap();
        assert_eq!(found, planted);
    }

    #[test]
    fn sparse_hypergraph_has_none() {
        // Very sparse random 3-uniform hypergraph: no 5-hyperclique
        // (needs C(5,3) = 10 specific edges).
        let h = generators::random_uniform_hypergraph(12, 3, 0.02, 7);
        assert!(find_hyperclique(&h, 5).is_none());
    }

    #[test]
    fn count_matches_naive_enumeration() {
        for seed in 0..5u64 {
            let h = generators::random_uniform_hypergraph(9, 3, 0.5, seed);
            let idx = HyperedgeIndex::new(&h);
            // Naive: all 4-subsets, check all C(4,3) = 4 edges.
            let mut naive = 0u64;
            for a in 0..9 {
                for b in (a + 1)..9 {
                    for c in (b + 1)..9 {
                        for d in (c + 1)..9 {
                            let sets = [[a, b, c], [a, b, d], [a, c, d], [b, c, d]];
                            if sets.iter().all(|s| idx.contains(s.as_ref())) {
                                naive += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(count_hypercliques(&h, 4), naive, "seed {seed}");
        }
    }

    #[test]
    fn k_equal_d_is_edge_search() {
        let h = generators::random_uniform_hypergraph(10, 3, 0.1, 11);
        assert_eq!(count_hypercliques(&h, 3), h.num_edges() as u64);
    }

    #[test]
    fn graph_case_matches_clique_module() {
        // d = 2: hypercliques are ordinary cliques.
        for seed in 0..5u64 {
            let g = generators::gnp(10, 0.5, seed);
            let mut h = Hypergraph::new(10);
            for (u, v) in g.edges() {
                h.add_edge(vec![u, v]);
            }
            if h.num_edges() == 0 {
                continue;
            }
            for k in 2..=4 {
                assert_eq!(
                    count_hypercliques(&h, k),
                    crate::clique::count_cliques(&g, k),
                    "seed {seed}, k {k}"
                );
            }
        }
    }
}
