//! The algorithms whose optimality the paper's lower bounds certify
//! (§5–§8).
//!
//! Each module pairs a problem with the algorithms the paper discusses:
//!
//! * [`matmul`] — boolean and integer matrix multiplication (naive and
//!   Strassen); the ω in every §8 conjecture. Strassen (ω ≈ 2.807) is our
//!   substitute for the Alman–Vassilevska Williams ω < 2.373 method — same
//!   mechanism, different constant, as recorded in DESIGN.md.
//! * [`clique`] — k-clique by branch-and-prune brute force (n^k) and by the
//!   Nešetřil–Poljak reduction to triangle detection (n^{ωk/3}); Theorem
//!   6.3 / the k-clique conjecture say these exponents are optimal.
//! * [`triangle`] — naive, matrix-multiplication, and Alon–Yuster–Zwick
//!   m^{2ω/(ω+1)} detection (§8, triangle conjecture).
//! * [`hyperclique`] — k-clique in d-uniform hypergraphs, where no
//!   matrix-multiplication speedup is known (§8, hyperclique conjecture).
//! * [`domset`] — k-Dominating Set in n^{k+O(1)}: the SETH-tight problem of
//!   Theorem 7.1.
//! * [`vertexcover`] — FPT vertex cover: Buss kernel + 2^k search tree (§5).
//! * [`subiso`] — partitioned subgraph isomorphism, the graph form of
//!   binary CSP (§2.3).
//! * [`editdist`] — the O(n²) edit-distance DP that SETH makes optimal (§7).
//! * [`ov`] — Orthogonal Vectors, the canonical intermediate problem of
//!   fine-grained complexity (§7).
//!
//! Every search and counting entry point takes a [`lb_engine::Budget`] and
//! returns an [`lb_engine::Outcome`] paired with [`lb_engine::RunStats`]
//! operation counters, so the n^k / n^ω / n² scaling the lower bounds talk
//! about can be measured machine-independently. Only [`matmul`] stays an
//! unbudgeted primitive; its callers tick before invoking it.

#![forbid(unsafe_code)]

pub mod clique;
pub mod domset;
pub mod editdist;
pub mod hyperclique;
pub mod matmul;
pub mod ov;
pub mod subiso;
pub mod triangle;
pub mod vertexcover;

pub use matmul::BoolMatrix;
