//! FPT Vertex Cover (paper §5).
//!
//! The paper's showcase fixed-parameter-tractable problem: a vertex cover
//! of size ≤ k can be found in 2^k · n^{O(1)} by the bounded search tree
//! (branch on either endpoint of an uncovered edge), optionally after the
//! Buss kernelization (any vertex of degree > k must be in the cover; a
//! reduced yes-instance has ≤ k² + k edges). Contrast this with Clique,
//! where no f(k)·n^{O(1)} algorithm is known — the FPT ≠ W\[1\] divide.
//!
//! Engine mapping: the search tree ticks one [`RunStats::nodes`] per branch
//! taken; the FPT pipeline additionally ticks one [`RunStats::propagations`]
//! per input edge before kernelizing (the budget-visible granularity of the
//! polynomial preprocessing). [`buss_kernel`] itself stays a pure function.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations

use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::Graph;

/// Finds a vertex cover of size ≤ k by the 2^k bounded search tree.
/// `Sat(cover)`, `Unsat`, or `Exhausted`.
pub fn vertex_cover_search_tree(
    g: &Graph,
    k: usize,
    budget: &Budget,
) -> (Outcome<Vec<usize>>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let edges = g.edges();
    let mut in_cover = vec![false; g.num_vertices()];
    let mut chosen = Vec::with_capacity(k);
    let result = branch(&edges, &mut in_cover, &mut chosen, k, &mut ticker).map(|found| {
        found.then(|| {
            chosen.sort_unstable();
            chosen
        })
    });
    ticker.finish(result)
}

fn branch(
    edges: &[(usize, usize)],
    in_cover: &mut Vec<bool>,
    chosen: &mut Vec<usize>,
    k: usize,
    ticker: &mut Ticker,
) -> Result<bool, ExhaustReason> {
    // First uncovered edge.
    let uncovered = edges.iter().find(|&&(u, v)| !in_cover[u] && !in_cover[v]);
    let Some(&(u, v)) = uncovered else {
        return Ok(true);
    };
    if chosen.len() == k {
        return Ok(false);
    }
    for w in [u, v] {
        ticker.node()?;
        in_cover[w] = true;
        chosen.push(w);
        if branch(edges, in_cover, chosen, k, ticker)? {
            return Ok(true);
        }
        chosen.pop();
        in_cover[w] = false;
    }
    Ok(false)
}

/// The Buss kernel: returns `None` if the instance is already decided
/// "no"; otherwise `Some((forced, kept_edges, k_remaining))` where `forced`
/// are high-degree vertices that must be in any ≤ k cover and `kept_edges`
/// are the edges of the kernel (≤ k'·(k'+1) of them).
#[allow(clippy::type_complexity)]
pub fn buss_kernel(g: &Graph, k: usize) -> Option<(Vec<usize>, Vec<(usize, usize)>, usize)> {
    let mut forced: Vec<usize> = Vec::new();
    let mut k_rem = k;
    let mut active_edges: Vec<(usize, usize)> = g.edges();
    loop {
        // Degrees in the current edge set.
        let mut deg = vec![0usize; g.num_vertices()];
        for &(u, v) in &active_edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        match (0..g.num_vertices()).find(|&v| deg[v] > k_rem) {
            Some(v) => {
                if k_rem == 0 {
                    return None;
                }
                forced.push(v);
                k_rem -= 1;
                active_edges.retain(|&(a, b)| a != v && b != v);
            }
            None => break,
        }
    }
    // Kernel size bound: a yes-instance has ≤ k_rem·(k_rem + 1) edges
    // (each cover vertex covers ≤ k_rem edges... the classical bound k²+k).
    if active_edges.len() > k_rem * (k_rem + 1) {
        return None;
    }
    forced.sort_unstable();
    Some((forced, active_edges, k_rem))
}

/// Kernelize-then-search: the standard FPT pipeline. `Sat(cover)`, `Unsat`,
/// or `Exhausted`.
pub fn vertex_cover_fpt(g: &Graph, k: usize, budget: &Budget) -> (Outcome<Vec<usize>>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = fpt_inner(g, k, &mut ticker);
    ticker.finish(result)
}

fn fpt_inner(
    g: &Graph,
    k: usize,
    ticker: &mut Ticker,
) -> Result<Option<Vec<usize>>, ExhaustReason> {
    // One tick per input edge before the polynomial kernelization pass.
    for _ in 0..g.num_edges() {
        ticker.propagation()?;
    }
    let Some((forced, kernel_edges, k_rem)) = buss_kernel(g, k) else {
        return Ok(None);
    };
    // Search on the kernel edges only.
    let mut in_cover = vec![false; g.num_vertices()];
    let mut chosen = Vec::new();
    if !branch(&kernel_edges, &mut in_cover, &mut chosen, k_rem, ticker)? {
        return Ok(None);
    }
    let mut out = forced;
    out.extend(chosen);
    out.sort_unstable();
    out.dedup();
    debug_assert!(g.is_vertex_cover(&out));
    debug_assert!(out.len() <= k);
    Ok(Some(out))
}

/// Brute-force minimum vertex cover (testing oracle, small graphs only).
/// `Sat(cover)` or `Exhausted`.
pub fn min_vertex_cover_brute(g: &Graph, budget: &Budget) -> (Outcome<Vec<usize>>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = brute_inner(g, &mut ticker).map(Some);
    ticker.finish(result)
}

fn brute_inner(g: &Graph, ticker: &mut Ticker) -> Result<Vec<usize>, ExhaustReason> {
    let n = g.num_vertices();
    assert!(n <= 20, "brute force limited to 20 vertices");
    let edges = g.edges();
    let mut best: Option<Vec<usize>> = None;
    for mask in 0u32..(1u32 << n) {
        ticker.node()?;
        let set: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
        if let Some(ref b) = best {
            if set.len() >= b.len() {
                continue;
            }
        }
        if edges
            .iter()
            .all(|&(u, v)| mask >> u & 1 == 1 || mask >> v & 1 == 1)
        {
            best = Some(set);
        }
    }
    // lb-lint: allow(no-panic) -- invariant: V(G) is always a vertex cover, so best is set
    Ok(best.expect("V(G) is always a cover"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    fn st(g: &Graph, k: usize) -> Option<Vec<usize>> {
        vertex_cover_search_tree(g, k, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    fn fpt(g: &Graph, k: usize) -> Option<Vec<usize>> {
        vertex_cover_fpt(g, k, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    fn brute(g: &Graph) -> Vec<usize> {
        min_vertex_cover_brute(g, &Budget::unlimited())
            .0
            .unwrap_sat()
    }

    #[test]
    fn star_cover_is_center() {
        let g = generators::star(8);
        assert_eq!(fpt(&g, 1), Some(vec![0]));
        assert_eq!(st(&g, 1), Some(vec![0]));
    }

    #[test]
    fn matching_needs_one_per_edge() {
        let g = lb_graph::Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        assert!(fpt(&g, 2).is_none());
        let c = fpt(&g, 3).unwrap();
        assert_eq!(c.len(), 3);
        assert!(g.is_vertex_cover(&c));
    }

    #[test]
    fn fpt_matches_brute_force_threshold() {
        for seed in 0..15u64 {
            let g = generators::gnp(12, 0.3, seed);
            let opt = brute(&g).len();
            for k in 0..=12 {
                let st_cover = st(&g, k);
                let fpt_cover = fpt(&g, k);
                assert_eq!(
                    st_cover.is_some(),
                    k >= opt,
                    "seed {seed}, k {k} (search tree)"
                );
                assert_eq!(fpt_cover.is_some(), k >= opt, "seed {seed}, k {k} (fpt)");
                if let Some(c) = fpt_cover {
                    assert!(g.is_vertex_cover(&c));
                    assert!(c.len() <= k);
                }
            }
        }
    }

    #[test]
    fn buss_kernel_forces_high_degree() {
        // Star with 5 leaves, k = 2: the center (degree 5 > 2) is forced.
        let g = generators::star(5);
        let (forced, kernel, k_rem) = buss_kernel(&g, 2).unwrap();
        assert_eq!(forced, vec![0]);
        assert!(kernel.is_empty());
        assert_eq!(k_rem, 1);
    }

    #[test]
    fn buss_kernel_rejects_dense() {
        // K6 needs a cover of 5; k = 2 is rejected by the kernel edge bound
        // or during forcing.
        let g = generators::clique(6);
        assert!(fpt(&g, 2).is_none());
    }

    #[test]
    fn edgeless_graph_zero_cover() {
        let g = lb_graph::Graph::new(5);
        assert_eq!(fpt(&g, 0), Some(vec![]));
    }

    #[test]
    fn tiny_budget_exhausts() {
        let g = generators::gnp(12, 0.3, 0);
        let b = Budget::ticks(0); // the very first counted op exhausts
        assert!(vertex_cover_search_tree(&g, 4, &b).0.is_exhausted());
        assert!(vertex_cover_fpt(&g, 4, &b).0.is_exhausted());
        assert!(min_vertex_cover_brute(&g, &b).0.is_exhausted());
    }

    #[test]
    fn counters_monotone_in_budget() {
        let g = generators::gnp(12, 0.3, 5);
        let (_, small) = vertex_cover_search_tree(&g, 4, &Budget::ticks(8));
        let (_, large) = vertex_cover_search_tree(&g, 4, &Budget::unlimited());
        assert!(small.le(&large));
    }
}
