//! Matrix multiplication: the ω inside every §8 conjecture.
//!
//! Two multipliers are provided:
//!
//! * [`BoolMatrix`] — boolean matrices with bit-packed rows; the product
//!   runs in O(n³/64) word operations, which is the workhorse behind the
//!   triangle and clique detectors.
//! * [`IntMatrix`] — exact i64 matrices with naive O(n³) and Strassen
//!   O(n^{2.807}) multiplication. Strassen stands in for the fast
//!   rectangular methods of Alman–Vassilevska Williams: what matters for
//!   reproducing the paper's *shape* is only that ω < 3.

/// A square boolean matrix with bit-packed rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoolMatrix {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl BoolMatrix {
    /// The n×n zero matrix.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        BoolMatrix {
            n,
            words,
            rows: vec![0; n * words],
        }
    }

    /// Builds from an adjacency predicate.
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(n: usize, mut f: F) -> Self {
        let mut m = BoolMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// The adjacency matrix of a graph.
    pub fn adjacency(g: &lb_graph::Graph) -> Self {
        let mut m = BoolMatrix::new(g.num_vertices());
        // lb-lint: allow(unbudgeted-loop) -- builds the adjacency matrix, linear in edges
        for (u, v) in g.edges() {
            m.set(u, v, true);
            m.set(v, u, true);
        }
        m
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Sets entry (i, j).
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        let idx = i * self.words + j / 64;
        if value {
            self.rows[idx] |= 1 << (j % 64);
        } else {
            self.rows[idx] &= !(1 << (j % 64));
        }
    }

    /// Gets entry (i, j).
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i * self.words + j / 64] >> (j % 64) & 1 == 1
    }

    /// Boolean product `self · other` in O(n³ / 64) word ops.
    pub fn multiply(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let w = self.words;
        let mut out = BoolMatrix::new(n);
        // lb-lint: allow(unbudgeted-loop) -- dense boolean matmul, fixed O(n^3/w) bounded by dimensions fixed at construction
        for i in 0..n {
            let arow = &self.rows[i * w..(i + 1) * w];
            let orow_start = i * w;
            // lb-lint: allow(unbudgeted-loop) -- dense boolean matmul, fixed O(n^3/w) bounded by dimensions fixed at construction
            for (kw, &bits) in arow.iter().enumerate() {
                let mut b = bits;
                // lb-lint: allow(unbudgeted-loop) -- dense boolean matmul, fixed O(n^3/w) bounded by dimensions fixed at construction
                while b != 0 {
                    let k = kw * 64 + b.trailing_zeros() as usize;
                    b &= b - 1;
                    let brow = &other.rows[k * w..(k + 1) * w];
                    // lb-lint: allow(unbudgeted-loop) -- dense boolean matmul, fixed O(n^3/w) bounded by dimensions fixed at construction
                    for (j, &bw) in brow.iter().enumerate() {
                        out.rows[orow_start + j] |= bw;
                    }
                }
            }
        }
        out
    }

    /// True iff some entry is set in both matrices — used for the
    /// `A² ∧ A ≠ 0` triangle test.
    pub fn intersects(&self, other: &BoolMatrix) -> bool {
        self.rows.iter().zip(&other.rows).any(|(&a, &b)| a & b != 0)
    }

    /// A common witness entry `(i, j)` set in both matrices, if any.
    pub fn intersection_witness(&self, other: &BoolMatrix) -> Option<(usize, usize)> {
        // lb-lint: allow(unbudgeted-loop) -- O(n*words) scan, bounded by matrix dimensions
        for i in 0..self.n {
            // lb-lint: allow(unbudgeted-loop) -- O(n*words) scan, bounded by matrix dimensions
            for w in 0..self.words {
                let bits = self.rows[i * self.words + w] & other.rows[i * self.words + w];
                if bits != 0 {
                    let j = w * 64 + bits.trailing_zeros() as usize;
                    return Some((i, j));
                }
            }
        }
        None
    }
}

/// A square exact integer matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntMatrix {
    n: usize,
    data: Vec<i64>,
}

impl IntMatrix {
    /// The n×n zero matrix.
    pub fn new(n: usize) -> Self {
        IntMatrix {
            n,
            data: vec![0; n * n],
        }
    }

    /// Builds from an entry function.
    pub fn from_fn<F: FnMut(usize, usize) -> i64>(n: usize, mut f: F) -> Self {
        let mut m = IntMatrix::new(n);
        // lb-lint: allow(unbudgeted-loop) -- fills an n x n matrix; bounded by dimensions
        for i in 0..n {
            // lb-lint: allow(unbudgeted-loop) -- fills an n x n matrix; bounded by dimensions
            for j in 0..n {
                m.data[i * n + j] = f(i, j);
            }
        }
        m
    }

    /// The 0/1 adjacency matrix of a graph.
    pub fn adjacency(g: &lb_graph::Graph) -> Self {
        IntMatrix::from_fn(g.num_vertices(), |i, j| g.has_edge(i, j) as i64)
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry (i, j).
    pub fn get(&self, i: usize, j: usize) -> i64 {
        self.data[i * self.n + j]
    }

    /// Sets entry (i, j).
    pub fn set(&mut self, i: usize, j: usize, v: i64) {
        self.data[i * self.n + j] = v;
    }

    /// Naive O(n³) product with a transposed inner loop (cache-friendly).
    pub fn multiply_naive(&self, other: &IntMatrix) -> IntMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut out = IntMatrix::new(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.data[i * n + k];
                if a == 0 {
                    continue;
                }
                let brow = &other.data[k * n..(k + 1) * n];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Strassen's O(n^{2.807}) product (exact; falls back to naive below a
    /// threshold). This is the fast-matrix-multiplication stand-in for the
    /// §8 conjectures.
    pub fn multiply_strassen(&self, other: &IntMatrix) -> IntMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        // Pad to the next power of two.
        let m = n.next_power_of_two();
        let a = self.padded(m);
        let b = other.padded(m);
        let c = strassen_rec(&a, &b, m);
        let mut out = IntMatrix::new(n);
        for i in 0..n {
            out.data[i * n..(i + 1) * n].copy_from_slice(&c[i * m..i * m + n]);
        }
        out
    }

    fn padded(&self, m: usize) -> Vec<i64> {
        let n = self.n;
        let mut out = vec![0i64; m * m];
        for i in 0..n {
            out[i * m..i * m + n].copy_from_slice(&self.data[i * n..(i + 1) * n]);
        }
        out
    }

    /// Trace of the matrix.
    pub fn trace(&self) -> i64 {
        (0..self.n).map(|i| self.get(i, i)).sum()
    }
}

const STRASSEN_CUTOFF: usize = 64;

fn strassen_rec(a: &[i64], b: &[i64], n: usize) -> Vec<i64> {
    if n <= STRASSEN_CUTOFF {
        let mut c = vec![0i64; n * n];
        for i in 0..n {
            for k in 0..n {
                let av = a[i * n + k];
                if av == 0 {
                    continue;
                }
                for j in 0..n {
                    c[i * n + j] += av * b[k * n + j];
                }
            }
        }
        return c;
    }
    let h = n / 2;
    let quad = |m: &[i64], qi: usize, qj: usize| -> Vec<i64> {
        let mut out = vec![0i64; h * h];
        for i in 0..h {
            let src = (qi * h + i) * n + qj * h;
            out[i * h..(i + 1) * h].copy_from_slice(&m[src..src + h]);
        }
        out
    };
    let add =
        |x: &[i64], y: &[i64]| -> Vec<i64> { x.iter().zip(y).map(|(&a, &b)| a + b).collect() };
    let sub =
        |x: &[i64], y: &[i64]| -> Vec<i64> { x.iter().zip(y).map(|(&a, &b)| a - b).collect() };

    let a11 = quad(a, 0, 0);
    let a12 = quad(a, 0, 1);
    let a21 = quad(a, 1, 0);
    let a22 = quad(a, 1, 1);
    let b11 = quad(b, 0, 0);
    let b12 = quad(b, 0, 1);
    let b21 = quad(b, 1, 0);
    let b22 = quad(b, 1, 1);

    let m1 = strassen_rec(&add(&a11, &a22), &add(&b11, &b22), h);
    let m2 = strassen_rec(&add(&a21, &a22), &b11, h);
    let m3 = strassen_rec(&a11, &sub(&b12, &b22), h);
    let m4 = strassen_rec(&a22, &sub(&b21, &b11), h);
    let m5 = strassen_rec(&add(&a11, &a12), &b22, h);
    let m6 = strassen_rec(&sub(&a21, &a11), &add(&b11, &b12), h);
    let m7 = strassen_rec(&sub(&a12, &a22), &add(&b21, &b22), h);

    let c11 = add(&sub(&add(&m1, &m4), &m5), &m7);
    let c12 = add(&m3, &m5);
    let c21 = add(&m2, &m4);
    let c22 = add(&add(&sub(&m1, &m2), &m3), &m6);

    let mut c = vec![0i64; n * n];
    for i in 0..h {
        c[i * n..i * n + h].copy_from_slice(&c11[i * h..(i + 1) * h]);
        c[i * n + h..i * n + n].copy_from_slice(&c12[i * h..(i + 1) * h]);
        c[(i + h) * n..(i + h) * n + h].copy_from_slice(&c21[i * h..(i + 1) * h]);
        c[(i + h) * n + h..(i + h) * n + n].copy_from_slice(&c22[i * h..(i + 1) * h]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bool_multiply_small() {
        // Permutation-like: A maps 0→1, 1→2; B maps 1→2, 2→0.
        let mut a = BoolMatrix::new(3);
        a.set(0, 1, true);
        a.set(1, 2, true);
        let mut b = BoolMatrix::new(3);
        b.set(1, 2, true);
        b.set(2, 0, true);
        let c = a.multiply(&b);
        assert!(c.get(0, 2));
        assert!(c.get(1, 0));
        assert!(!c.get(0, 0));
    }

    #[test]
    fn bool_multiply_matches_definition() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let n = 70; // crosses the 64-bit word boundary
            let a = BoolMatrix::from_fn(n, |_, _| rng.gen::<f64>() < 0.2);
            let b = BoolMatrix::from_fn(n, |_, _| rng.gen::<f64>() < 0.2);
            let c = a.multiply(&b);
            for i in 0..n {
                for j in 0..n {
                    let expect = (0..n).any(|k| a.get(i, k) && b.get(k, j));
                    assert_eq!(c.get(i, j), expect, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn int_strassen_matches_naive() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [1usize, 7, 33, 70, 100] {
            let a = IntMatrix::from_fn(n, |_, _| rng.gen_range(-5..=5));
            let b = IntMatrix::from_fn(n, |_, _| rng.gen_range(-5..=5));
            assert_eq!(a.multiply_naive(&b), a.multiply_strassen(&b), "n = {n}");
        }
    }

    #[test]
    fn trace_of_cube_counts_triangles() {
        // Triangle graph: trace(A³) = 6 (each triangle counted 6 times).
        let g = lb_graph::generators::clique(3);
        let a = IntMatrix::adjacency(&g);
        let a3 = a.multiply_naive(&a).multiply_naive(&a);
        assert_eq!(a3.trace(), 6);
    }

    #[test]
    fn intersection_witness() {
        let g = lb_graph::generators::clique(3);
        let a = BoolMatrix::adjacency(&g);
        let a2 = a.multiply(&a);
        assert!(a2.intersects(&a));
        let (i, j) = a2.intersection_witness(&a).unwrap();
        assert!(a.get(i, j));
        assert!(a2.get(i, j));
    }

    #[test]
    fn no_triangle_no_intersection() {
        let g = lb_graph::generators::cycle(4);
        let a = BoolMatrix::adjacency(&g);
        let a2 = a.multiply(&a);
        assert!(!a2.intersects(&a));
    }
}
