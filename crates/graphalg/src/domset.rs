//! k-Dominating Set (paper §7, Theorem 7.1).
//!
//! The trivial algorithm enumerates all O(n^k) k-subsets and checks each in
//! O(n²); Patrascu–Williams (Theorem 7.1) show that an O(n^{k−ε}) algorithm
//! for any k ≥ 3 would refute the SETH, so the exponent k is tight. Both a
//! plain enumerator and a closed-neighborhood branching variant (better in
//! practice, same worst-case exponent) are provided; experiment E8 measures
//! the n^k scaling and feeds the Theorem 7.2 reduction in `lb-reductions`.

use lb_graph::graph::BitSet;
use lb_graph::Graph;

/// Finds a dominating set of size ≤ k by enumerating subsets in increasing
/// lexicographic order (the paper's n^{k+O(1)} baseline).
pub fn find_dominating_set_brute(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let n = g.num_vertices();
    if n == 0 {
        return Some(vec![]);
    }
    if k == 0 {
        return None;
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    brute_rec(g, k, 0, &mut chosen)
}

fn brute_rec(g: &Graph, k: usize, start: usize, chosen: &mut Vec<usize>) -> Option<Vec<usize>> {
    if g.is_dominating_set(chosen) {
        return Some(chosen.clone());
    }
    if chosen.len() == k {
        return None;
    }
    for v in start..g.num_vertices() {
        chosen.push(v);
        if let Some(s) = brute_rec(g, k, v + 1, chosen) {
            return Some(s);
        }
        chosen.pop();
    }
    None
}

/// Finds a dominating set of size ≤ k by branching on an undominated
/// vertex's closed neighborhood (one of N\[v\] must be selected).
pub fn find_dominating_set_branching(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let n = g.num_vertices();
    let mut dominated = BitSet::new(n);
    let mut chosen = Vec::with_capacity(k);
    branch_rec(g, k, &mut dominated, &mut chosen)
}

fn branch_rec(
    g: &Graph,
    k: usize,
    dominated: &mut BitSet,
    chosen: &mut Vec<usize>,
) -> Option<Vec<usize>> {
    // First undominated vertex.
    let v = (0..g.num_vertices()).find(|&v| !dominated.contains(v));
    let Some(v) = v else {
        return Some(chosen.clone());
    };
    if chosen.len() == k {
        return None;
    }
    // One of N[v] must be in the solution.
    let mut candidates: Vec<usize> = vec![v];
    candidates.extend_from_slice(g.neighbors(v));
    for c in candidates {
        let closed = g.closed_neighborhood(c);
        // Record which vertices become newly dominated, for undo.
        let newly: Vec<usize> = closed.iter().filter(|&x| !dominated.contains(x)).collect();
        for &x in &newly {
            dominated.insert(x);
        }
        chosen.push(c);
        if let Some(s) = branch_rec(g, k, dominated, chosen) {
            return Some(s);
        }
        chosen.pop();
        for &x in &newly {
            dominated.remove(x);
        }
    }
    None
}

/// The minimum dominating set size (exponential; for small test graphs).
pub fn domination_number(g: &Graph) -> usize {
    for k in 0..=g.num_vertices() {
        if find_dominating_set_branching(g, k).is_some() {
            return k;
        }
    }
    // lb-lint: allow(no-panic) -- invariant: V(G) always dominates, so the subset search terminates before this
    unreachable!("V(G) always dominates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    #[test]
    fn star_dominated_by_center() {
        let g = generators::star(6);
        let s = find_dominating_set_brute(&g, 1).unwrap();
        assert_eq!(s, vec![0]);
        assert_eq!(domination_number(&g), 1);
    }

    #[test]
    fn path_domination_number() {
        // γ(P_n) = ⌈n/3⌉.
        for n in [3usize, 4, 6, 7, 9] {
            let g = generators::path(n);
            assert_eq!(domination_number(&g), n.div_ceil(3), "n = {n}");
        }
    }

    #[test]
    fn brute_and_branching_agree() {
        for seed in 0..15u64 {
            let g = generators::gnp(10, 0.25, seed);
            for k in 1..=4 {
                let a = find_dominating_set_brute(&g, k);
                let b = find_dominating_set_branching(&g, k);
                assert_eq!(a.is_some(), b.is_some(), "seed {seed}, k {k}");
                if let Some(s) = a {
                    assert!(g.is_dominating_set(&s));
                }
                if let Some(s) = b {
                    assert!(g.is_dominating_set(&s));
                }
            }
        }
    }

    #[test]
    fn cycle_domination() {
        // γ(C_6) = 2.
        let g = generators::cycle(6);
        assert!(find_dominating_set_brute(&g, 1).is_none());
        let s = find_dominating_set_brute(&g, 2).unwrap();
        assert!(g.is_dominating_set(&s));
    }

    #[test]
    fn empty_graph_trivially_dominated() {
        let g = lb_graph::Graph::new(0);
        assert_eq!(find_dominating_set_brute(&g, 0), Some(vec![]));
        assert_eq!(find_dominating_set_branching(&g, 0), Some(vec![]));
    }

    #[test]
    fn isolated_vertices_must_be_chosen() {
        let g = lb_graph::Graph::new(3); // three isolated vertices
        assert!(find_dominating_set_branching(&g, 2).is_none());
        let s = find_dominating_set_branching(&g, 3).unwrap();
        assert_eq!(s.len(), 3);
    }
}
