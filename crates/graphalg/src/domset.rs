//! k-Dominating Set (paper §7, Theorem 7.1).
//!
//! The trivial algorithm enumerates all O(n^k) k-subsets and checks each in
//! O(n²); Patrascu–Williams (Theorem 7.1) show that an O(n^{k−ε}) algorithm
//! for any k ≥ 3 would refute the SETH, so the exponent k is tight. Both a
//! plain enumerator and a closed-neighborhood branching variant (better in
//! practice, same worst-case exponent) are provided; experiment E8 measures
//! the n^k scaling and feeds the Theorem 7.2 reduction in `lb-reductions`.
//!
//! Engine mapping: both searches tick one [`RunStats::nodes`] per candidate
//! vertex added to the partial solution; [`domination_number`] delegates to
//! the branching search per k and absorbs its counters.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes

use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::graph::BitSet;
use lb_graph::Graph;

/// Finds a dominating set of size ≤ k by enumerating subsets in increasing
/// lexicographic order (the paper's n^{k+O(1)} baseline). `Sat(set)`,
/// `Unsat`, or `Exhausted`.
pub fn find_dominating_set_brute(
    g: &Graph,
    k: usize,
    budget: &Budget,
) -> (Outcome<Vec<usize>>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = brute_entry(g, k, &mut ticker);
    ticker.finish(result)
}

fn brute_entry(
    g: &Graph,
    k: usize,
    ticker: &mut Ticker,
) -> Result<Option<Vec<usize>>, ExhaustReason> {
    let n = g.num_vertices();
    if n == 0 {
        return Ok(Some(vec![]));
    }
    if k == 0 {
        return Ok(None);
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    brute_rec(g, k, 0, &mut chosen, ticker)
}

fn brute_rec(
    g: &Graph,
    k: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    ticker: &mut Ticker,
) -> Result<Option<Vec<usize>>, ExhaustReason> {
    if g.is_dominating_set(chosen) {
        return Ok(Some(chosen.clone()));
    }
    if chosen.len() == k {
        return Ok(None);
    }
    for v in start..g.num_vertices() {
        ticker.node()?;
        chosen.push(v);
        ticker.record_intermediate(chosen.len() as u64);
        let hit = brute_rec(g, k, v + 1, chosen, ticker);
        chosen.pop();
        if let Some(s) = hit? {
            return Ok(Some(s));
        }
    }
    Ok(None)
}

/// Finds a dominating set of size ≤ k by branching on an undominated
/// vertex's closed neighborhood (one of N\[v\] must be selected).
/// `Sat(set)`, `Unsat`, or `Exhausted`.
pub fn find_dominating_set_branching(
    g: &Graph,
    k: usize,
    budget: &Budget,
) -> (Outcome<Vec<usize>>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let n = g.num_vertices();
    let mut dominated = BitSet::new(n);
    let mut chosen = Vec::with_capacity(k);
    let result = branch_rec(g, k, &mut dominated, &mut chosen, &mut ticker);
    ticker.finish(result)
}

fn branch_rec(
    g: &Graph,
    k: usize,
    dominated: &mut BitSet,
    chosen: &mut Vec<usize>,
    ticker: &mut Ticker,
) -> Result<Option<Vec<usize>>, ExhaustReason> {
    // First undominated vertex.
    let v = (0..g.num_vertices()).find(|&v| !dominated.contains(v));
    let Some(v) = v else {
        return Ok(Some(chosen.clone()));
    };
    if chosen.len() == k {
        return Ok(None);
    }
    // One of N[v] must be in the solution.
    let mut candidates: Vec<usize> = vec![v];
    candidates.extend_from_slice(g.neighbors(v));
    for c in candidates {
        ticker.node()?;
        let closed = g.closed_neighborhood(c);
        // Record which vertices become newly dominated, for undo.
        let newly: Vec<usize> = closed.iter().filter(|&x| !dominated.contains(x)).collect();
        // lb-lint: allow(unbudgeted-loop) -- bookkeeping for one branching choice, bounded by a closed neighborhood; the branch itself is charged
        for &x in &newly {
            dominated.insert(x); // lb-lint: allow(unbounded-growth) -- fixed-capacity bitset over the n graph vertices
        }
        chosen.push(c);
        ticker.record_intermediate(chosen.len() as u64);
        let hit = branch_rec(g, k, dominated, chosen, ticker);
        chosen.pop();
        // lb-lint: allow(unbudgeted-loop) -- bookkeeping for one branching choice, bounded by a closed neighborhood; the branch itself is charged
        for &x in &newly {
            dominated.remove(x);
        }
        if let Some(s) = hit? {
            return Ok(Some(s));
        }
    }
    Ok(None)
}

/// The minimum dominating set size (exponential; for small test graphs).
/// `Sat(γ(G))` or `Exhausted`.
pub fn domination_number(g: &Graph, budget: &Budget) -> (Outcome<usize>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = domination_inner(g, &mut ticker);
    ticker.finish(result)
}

fn domination_inner(g: &Graph, ticker: &mut Ticker) -> Result<Option<usize>, ExhaustReason> {
    for k in 0..=g.num_vertices() {
        let (out, sub_stats) = find_dominating_set_branching(g, k, &ticker.remaining_budget());
        ticker.absorb(&sub_stats);
        match out {
            Outcome::Exhausted(r) => return Err(r),
            Outcome::Sat(_) => return Ok(Some(k)),
            Outcome::Unsat => {}
        }
    }
    // lb-lint: allow(no-panic) -- invariant: V(G) always dominates, so the subset search terminates before this
    unreachable!("V(G) always dominates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    fn brute(g: &Graph, k: usize) -> Option<Vec<usize>> {
        find_dominating_set_brute(g, k, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    fn branching(g: &Graph, k: usize) -> Option<Vec<usize>> {
        find_dominating_set_branching(g, k, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    fn gamma(g: &Graph) -> usize {
        domination_number(g, &Budget::unlimited()).0.unwrap_sat()
    }

    #[test]
    fn star_dominated_by_center() {
        let g = generators::star(6);
        let s = brute(&g, 1).unwrap();
        assert_eq!(s, vec![0]);
        assert_eq!(gamma(&g), 1);
    }

    #[test]
    fn path_domination_number() {
        // γ(P_n) = ⌈n/3⌉.
        for n in [3usize, 4, 6, 7, 9] {
            let g = generators::path(n);
            assert_eq!(gamma(&g), n.div_ceil(3), "n = {n}");
        }
    }

    #[test]
    fn brute_and_branching_agree() {
        for seed in 0..15u64 {
            let g = generators::gnp(10, 0.25, seed);
            for k in 1..=4 {
                let a = brute(&g, k);
                let b = branching(&g, k);
                assert_eq!(a.is_some(), b.is_some(), "seed {seed}, k {k}");
                if let Some(s) = a {
                    assert!(g.is_dominating_set(&s));
                }
                if let Some(s) = b {
                    assert!(g.is_dominating_set(&s));
                }
            }
        }
    }

    #[test]
    fn cycle_domination() {
        // γ(C_6) = 2.
        let g = generators::cycle(6);
        assert!(brute(&g, 1).is_none());
        let s = brute(&g, 2).unwrap();
        assert!(g.is_dominating_set(&s));
    }

    #[test]
    fn empty_graph_trivially_dominated() {
        let g = lb_graph::Graph::new(0);
        assert_eq!(brute(&g, 0), Some(vec![]));
        assert_eq!(branching(&g, 0), Some(vec![]));
    }

    #[test]
    fn isolated_vertices_must_be_chosen() {
        let g = lb_graph::Graph::new(3); // three isolated vertices
        assert!(branching(&g, 2).is_none());
        let s = branching(&g, 3).unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn tiny_budget_exhausts() {
        let g = generators::gnp(10, 0.25, 0);
        let b = Budget::ticks(0); // the first candidate vertex exhausts
        assert!(find_dominating_set_brute(&g, 3, &b).0.is_exhausted());
        assert!(find_dominating_set_branching(&g, 3, &b).0.is_exhausted());
        assert!(domination_number(&g, &b).0.is_exhausted());
    }

    #[test]
    fn counters_monotone_in_budget() {
        let g = generators::gnp(10, 0.25, 3);
        let (_, small) = find_dominating_set_brute(&g, 2, &Budget::ticks(10));
        let (_, large) = find_dominating_set_brute(&g, 2, &Budget::unlimited());
        assert!(small.le(&large));
    }
}
