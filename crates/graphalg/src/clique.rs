//! k-Clique: brute force vs. Nešetřil–Poljak (paper §5, §6.3, §8).
//!
//! * [`find_clique`] / [`count_cliques`] — branch-and-prune enumeration of
//!   k-cliques, the n^k baseline that Theorem 6.3 (ETH) says cannot be
//!   improved to n^{o(k)};
//! * [`find_clique_neipol`] — the Nešetřil–Poljak reduction: a 3t-clique in
//!   G is a triangle in the auxiliary graph whose vertices are the
//!   t-cliques of G, detected by boolean matrix multiplication — running
//!   time n^{ωk/3}. The k-clique conjecture (§8) says the ω/3 factor is
//!   optimal. k ≢ 0 (mod 3) is handled by guessing k mod 3 vertices first.
//!
//! Engine mapping: each vertex extension tried is a [`RunStats::nodes`]
//! tick; the Nešetřil–Poljak auxiliary-graph construction ticks one
//! [`RunStats::propagations`] per compatibility check and absorbs the
//! triangle detector's counters.
//!
//! # Preemption safety
//!
//! The branch-and-prune enumeration runs on an explicit frame stack (one
//! candidate list + cursor per level of the partial clique) and applies
//! each extension's effect before spending the tick, so
//! [`find_clique_resumable`] and [`count_cliques_resumable`] can suspend
//! any failed charge into a [`Checkpoint`] and continue later — same
//! verdict, same summed [`RunStats`] as an uninterrupted run. The
//! Nešetřil–Poljak detector is deliberately *not* resumable: its progress
//! lives inside whole matrix multiplies.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations
//! [`RunStats`]: lb_engine::RunStats

use crate::triangle::find_triangle_matmul;
use lb_engine::checkpoint::{
    Checkpoint, CheckpointError, Digest, PayloadReader, PayloadWriter, ResumableOutcome,
    SolverFamily,
};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::Graph;

/// Payload version of clique-enumeration checkpoints; bumped whenever the
/// frontier encoding below changes.
pub const CHECKPOINT_PAYLOAD_VERSION: u16 = 1;

/// One level of the partial clique: the candidate vertices compatible with
/// `current[..depth]`, ascending, with a scan cursor.
#[derive(Clone, Debug)]
struct Frame {
    cands: Vec<usize>,
    pos: usize,
}

/// Where the machine resumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Extend (or unwind) the deepest frame.
    Step,
    /// A complete clique's charge has been paid; deliver it, then ascend.
    Emit,
}

/// The explicit-stack enumeration state. Invariant: in `Step`,
/// `frames.len() == current.len() + 1` (or both empty once finished); in
/// `Emit`, `current.len() == k` and no frame was opened for the full level.
#[derive(Clone, Debug)]
struct Machine {
    current: Vec<usize>,
    frames: Vec<Frame>,
    phase: Phase,
}

impl Machine {
    fn fresh(g: &Graph, k: usize) -> Machine {
        if k == 0 {
            // The empty clique always exists: emit it, then finish.
            return Machine {
                current: Vec::new(),
                frames: Vec::new(),
                phase: Phase::Emit,
            };
        }
        Machine {
            current: Vec::new(),
            frames: vec![Frame {
                cands: (0..g.num_vertices()).collect(),
                pos: 0,
            }],
            phase: Phase::Step,
        }
    }

    /// Runs micro-steps until the next k-clique (`Ok(Some(..))`, vertices
    /// ascending, machine positioned to continue past it), the end of the
    /// search (`Ok(None)`), or a failed charge (`Err`, resumable).
    fn run(
        &mut self,
        g: &Graph,
        k: usize,
        ticker: &mut Ticker,
    ) -> Result<Option<Vec<usize>>, ExhaustReason> {
        loop {
            match self.phase {
                Phase::Emit => {
                    let out = self.current.clone();
                    // Position past the clique: drop its last vertex and
                    // continue scanning the frame that produced it.
                    self.current.pop();
                    self.phase = Phase::Step;
                    return Ok(Some(out));
                }
                Phase::Step => {
                    let Some(frame) = self.frames.last_mut() else {
                        return Ok(None);
                    };
                    let need = k - self.current.len();
                    if frame.cands.len() < need {
                        // Prune: too few candidates left (uncharged, as in
                        // the recursive formulation).
                        self.frames.pop();
                        self.current.pop();
                        continue;
                    }
                    let Some(&v) = frame.cands.get(frame.pos) else {
                        // Frame exhausted: ascend (uncharged).
                        self.frames.pop();
                        self.current.pop();
                        continue;
                    };
                    frame.pos += 1;
                    self.current.push(v);
                    ticker.record_intermediate(self.current.len() as u64);
                    if self.current.len() == k {
                        self.phase = Phase::Emit;
                        ticker.node()?;
                        continue;
                    }
                    // Candidates compatible with the extended clique. The
                    // full intersection is kept (the prune above counts
                    // vertices below the scan start, matching the
                    // recursion); the cursor skips to the first above `v`.
                    let cands: Vec<usize> = self
                        .frames
                        .last()
                        .map(|f| {
                            f.cands
                                .iter()
                                .copied()
                                .filter(|&x| g.has_edge(v, x))
                                .collect()
                        })
                        .unwrap_or_default();
                    let pos = cands.partition_point(|&x| x <= v);
                    self.frames.push(Frame { cands, pos });
                    ticker.record_intermediate(self.frames.len() as u64);
                    ticker.node()?;
                }
            }
        }
    }

    fn encode(&self, digest: u64, mode: u8, n: u64) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(digest).u8(mode).u64(n);
        w.seq_usize(&self.current);
        w.usize(self.frames.len());
        // lb-lint: allow(unbudgeted-loop) -- checkpoint serialization, linear in machine state
        for f in &self.frames {
            w.seq_usize(&f.cands);
            w.usize(f.pos);
        }
        w.u8(match self.phase {
            Phase::Step => 0,
            Phase::Emit => 1,
        });
        w.finish()
    }

    fn decode(
        g: &Graph,
        k: usize,
        digest: u64,
        mode: u8,
        ck: &Checkpoint,
    ) -> Result<(Machine, u64), CheckpointError> {
        ck.verify(SolverFamily::CliqueEnum, CHECKPOINT_PAYLOAD_VERSION)?;
        let mut r = PayloadReader::new(ck.payload());
        let found = r.u64()?;
        if found != digest {
            return Err(CheckpointError::InstanceMismatch {
                family: SolverFamily::CliqueEnum,
                expected: digest,
                found,
            });
        }
        let mode_at = r.offset();
        let stored_mode = r.u8()?;
        if stored_mode != mode {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "checkpoint mode {stored_mode} does not match entry point mode {mode}"
                ),
                offset: mode_at,
            });
        }
        let n = r.u64()?;
        let nv = g.num_vertices();
        let cur_len = r.usize_at_most(k, "partial clique length")?;
        let mut current = Vec::with_capacity(cur_len);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..cur_len {
            current.push(r.usize_below(nv, "clique vertex")?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
        }
        let frame_count = r.usize_at_most(k.max(1), "frame stack length")?;
        let mut frames = Vec::with_capacity(frame_count);
        // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
        for _ in 0..frame_count {
            let len = r.seq_len(8, "candidate list")?;
            let mut cands = Vec::with_capacity(len);
            let at = r.offset();
            // lb-lint: allow(unbudgeted-loop) -- checkpoint deserialization, linear in the length-checked payload
            for _ in 0..len {
                cands.push(r.usize_below(nv, "candidate vertex")?); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
            }
            if !cands.iter().zip(cands.iter().skip(1)).all(|(a, b)| a < b) {
                return Err(CheckpointError::Malformed {
                    what: "candidate list is not strictly ascending".into(),
                    offset: at,
                });
            }
            let pos = r.usize_at_most(cands.len(), "candidate cursor")?;
            frames.push(Frame { cands, pos }); // lb-lint: allow(unbounded-growth) -- rebuilds checkpointed state; bounded by the length-checked payload
        }
        let tag_at = r.offset();
        let phase = match r.u8()? {
            0 => Phase::Step,
            1 => Phase::Emit,
            b => {
                return Err(CheckpointError::Malformed {
                    what: format!("invalid phase tag {b}"),
                    offset: tag_at,
                })
            }
        };
        let consistent = match phase {
            Phase::Step => {
                frames.len() == current.len() + 1 || (frames.is_empty() && current.is_empty())
            }
            Phase::Emit => current.len() == k && frames.len() == k,
        };
        if !consistent {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "frame stack ({}) inconsistent with partial clique ({}) in this phase",
                    frames.len(),
                    current.len()
                ),
                offset: tag_at,
            });
        }
        r.finish()?;
        Ok((
            Machine {
                current,
                frames,
                phase,
            },
            n,
        ))
    }
}

/// FNV digest binding a checkpoint to (graph, k).
fn instance_digest(g: &Graph, k: usize) -> u64 {
    let mut d = Digest::new();
    d.str("clique-enum");
    d.usize(g.num_vertices()).usize(g.num_edges()).usize(k);
    // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in the edge list; runs once per resume
    for (u, v) in g.edges() {
        d.usize(u).usize(v);
    }
    d.finish()
}

/// Finds a k-clique by branch-and-prune enumeration: `Sat(clique)`,
/// `Unsat`, or `Exhausted`.
pub fn find_clique(g: &Graph, k: usize, budget: &Budget) -> (Outcome<Vec<usize>>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(g, k);
    let result = m.run(g, k, &mut ticker);
    ticker.finish(result)
}

/// Counts the k-cliques of `g`: `Sat(count)` or `Exhausted`.
pub fn count_cliques(g: &Graph, k: usize, budget: &Budget) -> (Outcome<u64>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(g, k);
    let mut n = 0u64;
    let result = loop {
        match m.run(g, k, &mut ticker) {
            Ok(Some(_)) => n += 1,
            Ok(None) => break Ok(Some(n)),
            Err(reason) => break Err(reason),
        }
    };
    ticker.finish(result)
}

/// Enumerates k-cliques (vertices ascending within each clique) through a
/// callback; returning `true` stops. `Sat(true)` means the visitor stopped
/// the scan, `Sat(false)` that it ran to the end.
pub fn enumerate_cliques<F: FnMut(&[usize]) -> bool>(
    g: &Graph,
    k: usize,
    budget: &Budget,
    visit: &mut F,
) -> (Outcome<bool>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh(g, k);
    let result = loop {
        match m.run(g, k, &mut ticker) {
            Ok(Some(c)) => {
                if visit(&c) {
                    break Ok(Some(true));
                }
            }
            Ok(None) => break Ok(Some(false)),
            Err(reason) => break Err(reason),
        }
    };
    ticker.finish(result)
}

/// Like [`find_clique`], but exhaustion is a *pause*: the enumeration
/// frontier persists in a [`Checkpoint`] and chained resumes reach the
/// one-shot verdict with the same summed [`RunStats`].
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn find_clique_resumable(
    g: &Graph,
    k: usize,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<Vec<usize>>, RunStats), CheckpointError> {
    let digest = instance_digest(g, k);
    let (mut m, _) = match from {
        Some(ck) => Machine::decode(g, k, digest, 0, ck)?,
        None => (Machine::fresh(g, k), 0),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = match m.run(g, k, &mut ticker) {
        Ok(Some(c)) => ResumableOutcome::Sat(c),
        Ok(None) => ResumableOutcome::Unsat,
        Err(reason) => ResumableOutcome::Suspended {
            reason,
            checkpoint: Checkpoint::new(
                SolverFamily::CliqueEnum,
                CHECKPOINT_PAYLOAD_VERSION,
                m.encode(digest, 0, 0),
            ),
        },
    };
    Ok((outcome, ticker.stats()))
}

/// Like [`count_cliques`], but exhaustion is a *pause*: the frontier and
/// the running count persist in a [`Checkpoint`].
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn count_cliques_resumable(
    g: &Graph,
    k: usize,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<u64>, RunStats), CheckpointError> {
    let digest = instance_digest(g, k);
    let (mut m, mut n) = match from {
        Some(ck) => Machine::decode(g, k, digest, 1, ck)?,
        None => (Machine::fresh(g, k), 0),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = loop {
        match m.run(g, k, &mut ticker) {
            Ok(Some(_)) => n += 1,
            Ok(None) => break ResumableOutcome::Sat(n),
            Err(reason) => {
                break ResumableOutcome::Suspended {
                    reason,
                    checkpoint: Checkpoint::new(
                        SolverFamily::CliqueEnum,
                        CHECKPOINT_PAYLOAD_VERSION,
                        m.encode(digest, 1, n),
                    ),
                }
            }
        }
    };
    Ok((outcome, ticker.stats()))
}

/// Finds a k-clique via the Nešetřil–Poljak construction (n^{ωk/3}):
/// `Sat(clique)`, `Unsat`, or `Exhausted`.
///
/// For `k = 3t`: build the auxiliary graph on all t-cliques (adjacent iff
/// their union is a 2t-clique) and detect a triangle by matrix
/// multiplication. For `k = 3t+1` / `3t+2`: guess the extra vertex / edge
/// and recurse into the common neighborhood.
pub fn find_clique_neipol(g: &Graph, k: usize, budget: &Budget) -> (Outcome<Vec<usize>>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = neipol_inner(g, k, &mut ticker);
    ticker.finish(result)
}

fn neipol_inner(
    g: &Graph,
    k: usize,
    ticker: &mut Ticker,
) -> Result<Option<Vec<usize>>, ExhaustReason> {
    match k {
        0 => Ok(Some(vec![])),
        1 => Ok((g.num_vertices() > 0).then(|| vec![0])),
        2 => Ok(g.edges().first().map(|&(u, v)| vec![u, v])),
        _ => match k % 3 {
            0 => neipol_3t(g, k / 3, ticker),
            1 => {
                // Guess one vertex, search a (k−1)-clique in its
                // neighborhood.
                for v in 0..g.num_vertices() {
                    ticker.node()?;
                    let nbrs: Vec<usize> = g.neighbors(v).to_vec();
                    let (sub, map) = g.induced_subgraph(&nbrs);
                    if let Some(c) = neipol_inner(&sub, k - 1, ticker)? {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- subgraph vertices index `map` by construction
                        let mut out: Vec<usize> = c.into_iter().map(|x| map[x]).collect();
                        out.push(v);
                        out.sort_unstable();
                        return Ok(Some(out));
                    }
                }
                Ok(None)
            }
            _ => {
                // Guess an edge, search a (k−2)-clique in the common
                // neighborhood.
                for (u, v) in g.edges() {
                    ticker.node()?;
                    let mut common = g.neighbor_set(u).clone();
                    common.intersect_with(g.neighbor_set(v));
                    let verts: Vec<usize> = common.iter().collect();
                    let (sub, map) = g.induced_subgraph(&verts);
                    if let Some(c) = neipol_inner(&sub, k - 2, ticker)? {
                        // lb-lint: allow(no-unchecked-index, panic-reachability) -- subgraph vertices index `map` by construction
                        let mut out: Vec<usize> = c.into_iter().map(|x| map[x]).collect();
                        out.push(u);
                        out.push(v);
                        out.sort_unstable();
                        return Ok(Some(out));
                    }
                }
                Ok(None)
            }
        },
    }
}

fn neipol_3t(
    g: &Graph,
    t: usize,
    ticker: &mut Ticker,
) -> Result<Option<Vec<usize>>, ExhaustReason> {
    // Enumerate all t-cliques.
    let mut t_cliques: Vec<Vec<usize>> = Vec::new();
    let mut m = Machine::fresh(g, t);
    while let Some(c) = m.run(g, t, ticker)? {
        t_cliques.push(c);
        ticker.record_intermediate(t_cliques.len() as u64);
    }
    if t_cliques.is_empty() {
        return Ok(None);
    }
    // Auxiliary graph: i ~ j iff union is a 2t-clique (disjoint + all cross
    // edges present).
    let na = t_cliques.len();
    let mut aux = Graph::new(na);
    for i in 0..na {
        for j in (i + 1)..na {
            ticker.propagation()?;
            // lb-lint: allow(no-unchecked-index, panic-reachability) -- i, j < na = t_cliques.len() by the loop bounds
            if cliques_compatible(g, &t_cliques[i], &t_cliques[j]) {
                aux.add_edge(i, j);
            }
        }
    }
    let (tri_out, tri_stats) = find_triangle_matmul(&aux, &ticker.remaining_budget());
    ticker.absorb(&tri_stats);
    let tri = match tri_out {
        Outcome::Exhausted(r) => return Err(r),
        Outcome::Unsat => return Ok(None),
        Outcome::Sat(t) => t,
    };
    let mut out: Vec<usize> = tri
        .iter()
        // lb-lint: allow(no-unchecked-index, panic-reachability) -- aux-graph vertices are t_cliques indices by construction
        .flat_map(|&i| t_cliques[i].iter().copied())
        .collect();
    out.sort_unstable();
    out.dedup();
    debug_assert_eq!(out.len(), 3 * t);
    debug_assert!(g.is_clique(&out));
    Ok(Some(out))
}

fn cliques_compatible(g: &Graph, a: &[usize], b: &[usize]) -> bool {
    // lb-lint: allow(unbudgeted-loop) -- pairwise scan of two cliques, bounded by k^2
    for &x in a {
        // lb-lint: allow(unbudgeted-loop) -- pairwise scan of two cliques, bounded by k^2
        for &y in b {
            if x == y || !g.has_edge(x, y) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    fn find_unlimited(g: &Graph, k: usize) -> Option<Vec<usize>> {
        find_clique(g, k, &Budget::unlimited()).0.unwrap_decided()
    }

    fn count_unlimited(g: &Graph, k: usize) -> u64 {
        count_cliques(g, k, &Budget::unlimited()).0.unwrap_sat()
    }

    fn neipol_unlimited(g: &Graph, k: usize) -> Option<Vec<usize>> {
        find_clique_neipol(g, k, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    #[test]
    fn brute_force_on_known_graphs() {
        let k5 = generators::clique(5);
        assert!(find_unlimited(&k5, 5).is_some());
        assert!(find_unlimited(&k5, 6).is_none());
        assert_eq!(count_unlimited(&k5, 3), 10);
        assert_eq!(count_unlimited(&k5, 5), 1);
        let c5 = generators::cycle(5);
        assert!(find_unlimited(&c5, 3).is_none());
        assert_eq!(count_unlimited(&c5, 2), 5);
    }

    #[test]
    fn found_cliques_are_cliques() {
        let (g, planted) = generators::planted_clique(25, 6, 0.3, 5);
        let c = find_unlimited(&g, 6).unwrap();
        assert!(g.is_clique(&c));
        assert_eq!(planted.len(), 6);
    }

    #[test]
    fn neipol_agrees_with_brute_force() {
        for seed in 0..10u64 {
            let g = generators::gnp(18, 0.5, seed);
            for k in 1..=6 {
                let brute = find_unlimited(&g, k);
                let neipol = neipol_unlimited(&g, k);
                assert_eq!(brute.is_some(), neipol.is_some(), "seed {seed}, k {k}");
                if let Some(c) = neipol {
                    assert_eq!(c.len(), k);
                    assert!(g.is_clique(&c), "seed {seed}, k {k}");
                }
            }
        }
    }

    #[test]
    fn neipol_finds_planted_clique() {
        for k in [3usize, 4, 5, 6] {
            let (g, _) = generators::planted_clique(20, k, 0.2, k as u64);
            let c = neipol_unlimited(&g, k).unwrap();
            assert!(g.is_clique(&c));
            assert_eq!(c.len(), k);
        }
    }

    #[test]
    fn zero_and_one_cliques() {
        let g = generators::path(3);
        assert_eq!(find_unlimited(&g, 0), Some(vec![]));
        assert_eq!(count_unlimited(&g, 1), 3);
        assert_eq!(neipol_unlimited(&g, 0), Some(vec![]));
        assert!(neipol_unlimited(&g, 1).is_some());
    }

    #[test]
    fn clique_numbers_of_petersen() {
        // The Petersen graph is triangle-free with clique number 2.
        let g = generators::petersen();
        assert!(find_unlimited(&g, 3).is_none());
        assert!(neipol_unlimited(&g, 3).is_none());
        assert!(neipol_unlimited(&g, 2).is_some());
    }

    #[test]
    fn tiny_budget_exhausts_both_algorithms() {
        let g = generators::gnp(18, 0.5, 0);
        // k = 10 needs ≥ 10 node ticks even to confirm a witness, so a
        // 5-tick budget must exhaust rather than answer.
        let (out, stats) = find_clique(&g, 10, &Budget::ticks(5));
        assert!(out.is_exhausted());
        assert_eq!(stats.nodes, 6); // the crossing op is still recorded
        let (out, _) = find_clique_neipol(&g, 6, &Budget::ticks(5));
        assert!(out.is_exhausted());
        let (out, _) = count_cliques(&g, 3, &Budget::ticks(5));
        assert!(out.is_exhausted());
    }

    #[test]
    fn sliced_resume_matches_one_shot() {
        for seed in 0..6u64 {
            let g = generators::gnp(16, 0.45, seed);
            for k in [3usize, 4] {
                let (one_shot, full) = count_cliques(&g, k, &Budget::unlimited());
                let mut from: Option<Checkpoint> = None;
                let mut summed = RunStats::default();
                let sliced = loop {
                    let (out, stats) =
                        count_cliques_resumable(&g, k, &Budget::ticks(5), from.as_ref())
                            .expect("clean resume");
                    summed.absorb(&stats);
                    match out {
                        ResumableOutcome::Suspended { checkpoint, .. } => {
                            let bytes = checkpoint.to_bytes();
                            from = Some(Checkpoint::from_bytes(&bytes).expect("round trip"));
                        }
                        ResumableOutcome::Sat(n) => break n,
                        ResumableOutcome::Unsat => unreachable!("count never returns Unsat"),
                    }
                };
                assert_eq!(Outcome::Sat(sliced), one_shot, "seed {seed}, k {k}");
                assert_eq!(summed, full, "seed {seed}, k {k}");

                let (want, _) = find_clique(&g, k, &Budget::unlimited());
                let mut from: Option<Checkpoint> = None;
                let got = loop {
                    let (out, _) = find_clique_resumable(&g, k, &Budget::ticks(5), from.as_ref())
                        .expect("clean resume");
                    match out {
                        ResumableOutcome::Suspended { checkpoint, .. } => from = Some(checkpoint),
                        ResumableOutcome::Sat(c) => break Some(c),
                        ResumableOutcome::Unsat => break None,
                    }
                };
                assert_eq!(
                    got.is_some(),
                    want.unwrap_decided().is_some(),
                    "seed {seed}"
                );
                if let Some(c) = got {
                    assert!(g.is_clique(&c) && c.len() == k, "seed {seed}, k {k}");
                }
            }
        }
    }

    #[test]
    fn changed_k_is_rejected_on_resume() {
        let g = generators::gnp(16, 0.45, 0);
        let (out, _) = count_cliques_resumable(&g, 4, &Budget::ticks(3), None).unwrap();
        let ck = out.checkpoint().expect("suspended").clone();
        let err = count_cliques_resumable(&g, 5, &Budget::unlimited(), Some(&ck)).unwrap_err();
        assert!(matches!(err, CheckpointError::InstanceMismatch { .. }));
    }

    #[test]
    fn counters_monotone_in_budget() {
        let g = generators::gnp(14, 0.4, 2);
        let (_, small) = count_cliques(&g, 3, &Budget::ticks(20));
        let (_, large) = count_cliques(&g, 3, &Budget::unlimited());
        assert!(small.le(&large));
    }
}
