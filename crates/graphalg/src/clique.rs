//! k-Clique: brute force vs. Nešetřil–Poljak (paper §5, §6.3, §8).
//!
//! * [`find_clique`] / [`count_cliques`] — branch-and-prune enumeration of
//!   k-cliques, the n^k baseline that Theorem 6.3 (ETH) says cannot be
//!   improved to n^{o(k)};
//! * [`find_clique_neipol`] — the Nešetřil–Poljak reduction: a 3t-clique in
//!   G is a triangle in the auxiliary graph whose vertices are the
//!   t-cliques of G, detected by boolean matrix multiplication — running
//!   time n^{ωk/3}. The k-clique conjecture (§8) says the ω/3 factor is
//!   optimal. k ≢ 0 (mod 3) is handled by guessing k mod 3 vertices first.

use crate::triangle::find_triangle_matmul;
use lb_graph::graph::BitSet;
use lb_graph::Graph;

/// Finds a k-clique by branch-and-prune enumeration.
pub fn find_clique(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let mut found = None;
    enumerate_cliques(g, k, &mut |c| {
        found = Some(c.to_vec());
        true
    });
    found
}

/// Counts the k-cliques of `g`.
pub fn count_cliques(g: &Graph, k: usize) -> u64 {
    let mut n = 0u64;
    enumerate_cliques(g, k, &mut |_| {
        n += 1;
        false
    });
    n
}

/// Enumerates k-cliques (vertices ascending within each clique) through a
/// callback; returning `true` stops.
pub fn enumerate_cliques<F: FnMut(&[usize]) -> bool>(g: &Graph, k: usize, visit: &mut F) {
    if k == 0 {
        visit(&[]);
        return;
    }
    let n = g.num_vertices();
    let mut full = BitSet::new(n);
    for v in 0..n {
        full.insert(v);
    }
    let mut current = Vec::with_capacity(k);
    extend(g, k, &full, &mut current, visit);
}

fn extend<F: FnMut(&[usize]) -> bool>(
    g: &Graph,
    k: usize,
    candidates: &BitSet,
    current: &mut Vec<usize>,
    visit: &mut F,
) -> bool {
    if current.len() == k {
        return visit(current);
    }
    let need = k - current.len();
    if candidates.count() < need {
        return false;
    }
    let start = current.last().map_or(0, |&v| v + 1);
    for v in candidates.iter() {
        if v < start {
            continue;
        }
        let mut next = candidates.clone();
        next.intersect_with(g.neighbor_set(v));
        current.push(v);
        if extend(g, k, &next, current, visit) {
            return true;
        }
        current.pop();
    }
    false
}

/// Finds a k-clique via the Nešetřil–Poljak construction (n^{ωk/3}).
///
/// For `k = 3t`: build the auxiliary graph on all t-cliques (adjacent iff
/// their union is a 2t-clique) and detect a triangle by matrix
/// multiplication. For `k = 3t+1` / `3t+2`: guess the extra vertex / edge
/// and recurse into the common neighborhood.
pub fn find_clique_neipol(g: &Graph, k: usize) -> Option<Vec<usize>> {
    match k {
        0 => Some(vec![]),
        1 => (g.num_vertices() > 0).then(|| vec![0]),
        2 => g.edges().first().map(|&(u, v)| vec![u, v]),
        _ => match k % 3 {
            0 => neipol_3t(g, k / 3),
            1 => {
                // Guess one vertex, search a (k−1)-clique in its
                // neighborhood.
                for v in 0..g.num_vertices() {
                    let nbrs: Vec<usize> = g.neighbors(v).to_vec();
                    let (sub, map) = g.induced_subgraph(&nbrs);
                    if let Some(c) = find_clique_neipol(&sub, k - 1) {
                        let mut out: Vec<usize> = c.into_iter().map(|x| map[x]).collect();
                        out.push(v);
                        out.sort_unstable();
                        return Some(out);
                    }
                }
                None
            }
            _ => {
                // Guess an edge, search a (k−2)-clique in the common
                // neighborhood.
                for (u, v) in g.edges() {
                    let mut common = g.neighbor_set(u).clone();
                    common.intersect_with(g.neighbor_set(v));
                    let verts: Vec<usize> = common.iter().collect();
                    let (sub, map) = g.induced_subgraph(&verts);
                    if let Some(c) = find_clique_neipol(&sub, k - 2) {
                        let mut out: Vec<usize> = c.into_iter().map(|x| map[x]).collect();
                        out.push(u);
                        out.push(v);
                        out.sort_unstable();
                        return Some(out);
                    }
                }
                None
            }
        },
    }
}

fn neipol_3t(g: &Graph, t: usize) -> Option<Vec<usize>> {
    // Enumerate all t-cliques.
    let mut t_cliques: Vec<Vec<usize>> = Vec::new();
    enumerate_cliques(g, t, &mut |c| {
        t_cliques.push(c.to_vec());
        false
    });
    if t_cliques.is_empty() {
        return None;
    }
    // Auxiliary graph: i ~ j iff union is a 2t-clique (disjoint + all cross
    // edges present).
    let na = t_cliques.len();
    let mut aux = Graph::new(na);
    for i in 0..na {
        for j in (i + 1)..na {
            if cliques_compatible(g, &t_cliques[i], &t_cliques[j]) {
                aux.add_edge(i, j);
            }
        }
    }
    let tri = find_triangle_matmul(&aux)?;
    let mut out: Vec<usize> = tri
        .iter()
        .flat_map(|&i| t_cliques[i].iter().copied())
        .collect();
    out.sort_unstable();
    out.dedup();
    debug_assert_eq!(out.len(), 3 * t);
    debug_assert!(g.is_clique(&out));
    Some(out)
}

fn cliques_compatible(g: &Graph, a: &[usize], b: &[usize]) -> bool {
    for &x in a {
        for &y in b {
            if x == y || !g.has_edge(x, y) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    #[test]
    fn brute_force_on_known_graphs() {
        let k5 = generators::clique(5);
        assert!(find_clique(&k5, 5).is_some());
        assert!(find_clique(&k5, 6).is_none());
        assert_eq!(count_cliques(&k5, 3), 10);
        assert_eq!(count_cliques(&k5, 5), 1);
        let c5 = generators::cycle(5);
        assert!(find_clique(&c5, 3).is_none());
        assert_eq!(count_cliques(&c5, 2), 5);
    }

    #[test]
    fn found_cliques_are_cliques() {
        let (g, planted) = generators::planted_clique(25, 6, 0.3, 5);
        let c = find_clique(&g, 6).unwrap();
        assert!(g.is_clique(&c));
        assert_eq!(planted.len(), 6);
    }

    #[test]
    fn neipol_agrees_with_brute_force() {
        for seed in 0..10u64 {
            let g = generators::gnp(18, 0.5, seed);
            for k in 1..=6 {
                let brute = find_clique(&g, k);
                let neipol = find_clique_neipol(&g, k);
                assert_eq!(brute.is_some(), neipol.is_some(), "seed {seed}, k {k}");
                if let Some(c) = neipol {
                    assert_eq!(c.len(), k);
                    assert!(g.is_clique(&c), "seed {seed}, k {k}");
                }
            }
        }
    }

    #[test]
    fn neipol_finds_planted_clique() {
        for k in [3usize, 4, 5, 6] {
            let (g, _) = generators::planted_clique(20, k, 0.2, k as u64);
            let c = find_clique_neipol(&g, k).unwrap();
            assert!(g.is_clique(&c));
            assert_eq!(c.len(), k);
        }
    }

    #[test]
    fn zero_and_one_cliques() {
        let g = generators::path(3);
        assert_eq!(find_clique(&g, 0), Some(vec![]));
        assert_eq!(count_cliques(&g, 1), 3);
        assert_eq!(find_clique_neipol(&g, 0), Some(vec![]));
        assert!(find_clique_neipol(&g, 1).is_some());
    }

    #[test]
    fn clique_numbers_of_petersen() {
        // The Petersen graph is triangle-free with clique number 2.
        let g = generators::petersen();
        assert!(find_clique(&g, 3).is_none());
        assert!(find_clique_neipol(&g, 3).is_none());
        assert!(find_clique_neipol(&g, 2).is_some());
    }
}
