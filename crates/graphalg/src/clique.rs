//! k-Clique: brute force vs. Nešetřil–Poljak (paper §5, §6.3, §8).
//!
//! * [`find_clique`] / [`count_cliques`] — branch-and-prune enumeration of
//!   k-cliques, the n^k baseline that Theorem 6.3 (ETH) says cannot be
//!   improved to n^{o(k)};
//! * [`find_clique_neipol`] — the Nešetřil–Poljak reduction: a 3t-clique in
//!   G is a triangle in the auxiliary graph whose vertices are the
//!   t-cliques of G, detected by boolean matrix multiplication — running
//!   time n^{ωk/3}. The k-clique conjecture (§8) says the ω/3 factor is
//!   optimal. k ≢ 0 (mod 3) is handled by guessing k mod 3 vertices first.
//!
//! Engine mapping: each vertex extension tried is a [`RunStats::nodes`]
//! tick; the Nešetřil–Poljak auxiliary-graph construction ticks one
//! [`RunStats::propagations`] per compatibility check and absorbs the
//! triangle detector's counters.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations

use crate::triangle::find_triangle_matmul;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::graph::BitSet;
use lb_graph::Graph;

/// Finds a k-clique by branch-and-prune enumeration: `Sat(clique)`,
/// `Unsat`, or `Exhausted`.
pub fn find_clique(g: &Graph, k: usize, budget: &Budget) -> (Outcome<Vec<usize>>, RunStats) {
    let mut found = None;
    let (out, stats) = enumerate_cliques(g, k, budget, &mut |c| {
        found = Some(c.to_vec());
        true
    });
    let out = match (out, found) {
        (Outcome::Exhausted(r), _) => Outcome::Exhausted(r),
        (_, Some(c)) => Outcome::Sat(c),
        (_, None) => Outcome::Unsat,
    };
    (out, stats)
}

/// Counts the k-cliques of `g`: `Sat(count)` or `Exhausted`.
pub fn count_cliques(g: &Graph, k: usize, budget: &Budget) -> (Outcome<u64>, RunStats) {
    let mut n = 0u64;
    let (out, stats) = enumerate_cliques(g, k, budget, &mut |_| {
        n += 1;
        false
    });
    (out.map(|_| n), stats)
}

/// Enumerates k-cliques (vertices ascending within each clique) through a
/// callback; returning `true` stops. `Sat(true)` means the visitor stopped
/// the scan, `Sat(false)` that it ran to the end.
pub fn enumerate_cliques<F: FnMut(&[usize]) -> bool>(
    g: &Graph,
    k: usize,
    budget: &Budget,
    visit: &mut F,
) -> (Outcome<bool>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = enumerate_inner(g, k, &mut ticker, visit).map(Some);
    ticker.finish(result)
}

fn enumerate_inner<F: FnMut(&[usize]) -> bool>(
    g: &Graph,
    k: usize,
    ticker: &mut Ticker,
    visit: &mut F,
) -> Result<bool, ExhaustReason> {
    if k == 0 {
        return Ok(visit(&[]));
    }
    let n = g.num_vertices();
    let mut full = BitSet::new(n);
    for v in 0..n {
        full.insert(v);
    }
    let mut current = Vec::with_capacity(k);
    extend(g, k, &full, &mut current, ticker, visit)
}

fn extend<F: FnMut(&[usize]) -> bool>(
    g: &Graph,
    k: usize,
    candidates: &BitSet,
    current: &mut Vec<usize>,
    ticker: &mut Ticker,
    visit: &mut F,
) -> Result<bool, ExhaustReason> {
    if current.len() == k {
        return Ok(visit(current));
    }
    let need = k - current.len();
    if candidates.count() < need {
        return Ok(false);
    }
    let start = current.last().map_or(0, |&v| v + 1);
    for v in candidates.iter() {
        if v < start {
            continue;
        }
        ticker.node()?;
        let mut next = candidates.clone();
        next.intersect_with(g.neighbor_set(v));
        current.push(v);
        let hit = extend(g, k, &next, current, ticker, visit);
        current.pop();
        if hit? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Finds a k-clique via the Nešetřil–Poljak construction (n^{ωk/3}):
/// `Sat(clique)`, `Unsat`, or `Exhausted`.
///
/// For `k = 3t`: build the auxiliary graph on all t-cliques (adjacent iff
/// their union is a 2t-clique) and detect a triangle by matrix
/// multiplication. For `k = 3t+1` / `3t+2`: guess the extra vertex / edge
/// and recurse into the common neighborhood.
pub fn find_clique_neipol(g: &Graph, k: usize, budget: &Budget) -> (Outcome<Vec<usize>>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = neipol_inner(g, k, &mut ticker);
    ticker.finish(result)
}

fn neipol_inner(
    g: &Graph,
    k: usize,
    ticker: &mut Ticker,
) -> Result<Option<Vec<usize>>, ExhaustReason> {
    match k {
        0 => Ok(Some(vec![])),
        1 => Ok((g.num_vertices() > 0).then(|| vec![0])),
        2 => Ok(g.edges().first().map(|&(u, v)| vec![u, v])),
        _ => match k % 3 {
            0 => neipol_3t(g, k / 3, ticker),
            1 => {
                // Guess one vertex, search a (k−1)-clique in its
                // neighborhood.
                for v in 0..g.num_vertices() {
                    ticker.node()?;
                    let nbrs: Vec<usize> = g.neighbors(v).to_vec();
                    let (sub, map) = g.induced_subgraph(&nbrs);
                    if let Some(c) = neipol_inner(&sub, k - 1, ticker)? {
                        // lb-lint: allow(no-unchecked-index) -- subgraph vertices index `map` by construction
                        let mut out: Vec<usize> = c.into_iter().map(|x| map[x]).collect();
                        out.push(v);
                        out.sort_unstable();
                        return Ok(Some(out));
                    }
                }
                Ok(None)
            }
            _ => {
                // Guess an edge, search a (k−2)-clique in the common
                // neighborhood.
                for (u, v) in g.edges() {
                    ticker.node()?;
                    let mut common = g.neighbor_set(u).clone();
                    common.intersect_with(g.neighbor_set(v));
                    let verts: Vec<usize> = common.iter().collect();
                    let (sub, map) = g.induced_subgraph(&verts);
                    if let Some(c) = neipol_inner(&sub, k - 2, ticker)? {
                        // lb-lint: allow(no-unchecked-index) -- subgraph vertices index `map` by construction
                        let mut out: Vec<usize> = c.into_iter().map(|x| map[x]).collect();
                        out.push(u);
                        out.push(v);
                        out.sort_unstable();
                        return Ok(Some(out));
                    }
                }
                Ok(None)
            }
        },
    }
}

fn neipol_3t(
    g: &Graph,
    t: usize,
    ticker: &mut Ticker,
) -> Result<Option<Vec<usize>>, ExhaustReason> {
    // Enumerate all t-cliques.
    let mut t_cliques: Vec<Vec<usize>> = Vec::new();
    enumerate_inner(g, t, ticker, &mut |c| {
        t_cliques.push(c.to_vec());
        false
    })?;
    if t_cliques.is_empty() {
        return Ok(None);
    }
    // Auxiliary graph: i ~ j iff union is a 2t-clique (disjoint + all cross
    // edges present).
    let na = t_cliques.len();
    let mut aux = Graph::new(na);
    for i in 0..na {
        for j in (i + 1)..na {
            ticker.propagation()?;
            // lb-lint: allow(no-unchecked-index) -- i, j < na = t_cliques.len() by the loop bounds
            if cliques_compatible(g, &t_cliques[i], &t_cliques[j]) {
                aux.add_edge(i, j);
            }
        }
    }
    let (tri_out, tri_stats) = find_triangle_matmul(&aux, &ticker.remaining_budget());
    ticker.absorb(&tri_stats);
    let tri = match tri_out {
        Outcome::Exhausted(r) => return Err(r),
        Outcome::Unsat => return Ok(None),
        Outcome::Sat(t) => t,
    };
    let mut out: Vec<usize> = tri
        .iter()
        // lb-lint: allow(no-unchecked-index) -- aux-graph vertices are t_cliques indices by construction
        .flat_map(|&i| t_cliques[i].iter().copied())
        .collect();
    out.sort_unstable();
    out.dedup();
    debug_assert_eq!(out.len(), 3 * t);
    debug_assert!(g.is_clique(&out));
    Ok(Some(out))
}

fn cliques_compatible(g: &Graph, a: &[usize], b: &[usize]) -> bool {
    for &x in a {
        for &y in b {
            if x == y || !g.has_edge(x, y) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    fn find_unlimited(g: &Graph, k: usize) -> Option<Vec<usize>> {
        find_clique(g, k, &Budget::unlimited()).0.unwrap_decided()
    }

    fn count_unlimited(g: &Graph, k: usize) -> u64 {
        count_cliques(g, k, &Budget::unlimited()).0.unwrap_sat()
    }

    fn neipol_unlimited(g: &Graph, k: usize) -> Option<Vec<usize>> {
        find_clique_neipol(g, k, &Budget::unlimited())
            .0
            .unwrap_decided()
    }

    #[test]
    fn brute_force_on_known_graphs() {
        let k5 = generators::clique(5);
        assert!(find_unlimited(&k5, 5).is_some());
        assert!(find_unlimited(&k5, 6).is_none());
        assert_eq!(count_unlimited(&k5, 3), 10);
        assert_eq!(count_unlimited(&k5, 5), 1);
        let c5 = generators::cycle(5);
        assert!(find_unlimited(&c5, 3).is_none());
        assert_eq!(count_unlimited(&c5, 2), 5);
    }

    #[test]
    fn found_cliques_are_cliques() {
        let (g, planted) = generators::planted_clique(25, 6, 0.3, 5);
        let c = find_unlimited(&g, 6).unwrap();
        assert!(g.is_clique(&c));
        assert_eq!(planted.len(), 6);
    }

    #[test]
    fn neipol_agrees_with_brute_force() {
        for seed in 0..10u64 {
            let g = generators::gnp(18, 0.5, seed);
            for k in 1..=6 {
                let brute = find_unlimited(&g, k);
                let neipol = neipol_unlimited(&g, k);
                assert_eq!(brute.is_some(), neipol.is_some(), "seed {seed}, k {k}");
                if let Some(c) = neipol {
                    assert_eq!(c.len(), k);
                    assert!(g.is_clique(&c), "seed {seed}, k {k}");
                }
            }
        }
    }

    #[test]
    fn neipol_finds_planted_clique() {
        for k in [3usize, 4, 5, 6] {
            let (g, _) = generators::planted_clique(20, k, 0.2, k as u64);
            let c = neipol_unlimited(&g, k).unwrap();
            assert!(g.is_clique(&c));
            assert_eq!(c.len(), k);
        }
    }

    #[test]
    fn zero_and_one_cliques() {
        let g = generators::path(3);
        assert_eq!(find_unlimited(&g, 0), Some(vec![]));
        assert_eq!(count_unlimited(&g, 1), 3);
        assert_eq!(neipol_unlimited(&g, 0), Some(vec![]));
        assert!(neipol_unlimited(&g, 1).is_some());
    }

    #[test]
    fn clique_numbers_of_petersen() {
        // The Petersen graph is triangle-free with clique number 2.
        let g = generators::petersen();
        assert!(find_unlimited(&g, 3).is_none());
        assert!(neipol_unlimited(&g, 3).is_none());
        assert!(neipol_unlimited(&g, 2).is_some());
    }

    #[test]
    fn tiny_budget_exhausts_both_algorithms() {
        let g = generators::gnp(18, 0.5, 0);
        // k = 10 needs ≥ 10 node ticks even to confirm a witness, so a
        // 5-tick budget must exhaust rather than answer.
        let (out, stats) = find_clique(&g, 10, &Budget::ticks(5));
        assert!(out.is_exhausted());
        assert_eq!(stats.nodes, 6); // the crossing op is still recorded
        let (out, _) = find_clique_neipol(&g, 6, &Budget::ticks(5));
        assert!(out.is_exhausted());
        let (out, _) = count_cliques(&g, 3, &Budget::ticks(5));
        assert!(out.is_exhausted());
    }

    #[test]
    fn counters_monotone_in_budget() {
        let g = generators::gnp(14, 0.4, 2);
        let (_, small) = count_cliques(&g, 3, &Budget::ticks(20));
        let (_, large) = count_cliques(&g, 3, &Budget::unlimited());
        assert!(small.le(&large));
    }
}
