//! Triangle detection three ways (paper §8).
//!
//! * [`find_triangle_naive`] — edge iteration with neighborhood-bitset
//!   intersection, O(m·n/64);
//! * [`find_triangle_matmul`] — the A²∧A test via boolean matrix
//!   multiplication, O(n^ω) (the k-clique-conjecture route);
//! * [`find_triangle_ayz`] — Alon–Yuster–Zwick: split vertices at degree
//!   Δ = m^{(ω−1)/(ω+1)}; light triangles by enumerating two-paths through
//!   light vertices, heavy triangles by dense matrix multiplication on the
//!   ≤ 2m/Δ heavy vertices; total m^{2ω/(ω+1)} — conjecturally optimal in
//!   m (the Strong Triangle Conjecture).
//!
//! All three return a witness triangle and are cross-checked against each
//! other.
//!
//! Engine mapping: the naive detector ticks a [`RunStats::nodes`] per edge
//! scanned; the matrix detector ticks one [`RunStats::propagations`] per
//! matrix row (the budget-visible granularity of the block multiply); AYZ
//! ticks nodes for light-vertex scans and absorbs the dense detector's
//! counters for the heavy part.
//!
//! # Preemption safety
//!
//! The naive edge scan is a one-counter state machine (next edge index,
//! running count, pending witness) that applies each edge's effect before
//! spending the tick, so [`find_triangle_naive_resumable`] and
//! [`count_triangles_resumable`] can suspend any failed charge into a
//! [`Checkpoint`] and continue later — same verdict, same summed
//! [`RunStats`] as an uninterrupted run. The matrix and AYZ detectors are
//! deliberately *not* resumable: their budget granularity is whole matrix
//! multiplies, so a checkpoint could not capture useful partial progress.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations
//! [`RunStats`]: lb_engine::RunStats

use crate::matmul::BoolMatrix;
use lb_engine::checkpoint::{
    Checkpoint, CheckpointError, Digest, PayloadReader, PayloadWriter, ResumableOutcome,
    SolverFamily,
};
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::Graph;

/// Payload version of triangle-scan checkpoints; bumped whenever the
/// frontier encoding below changes.
pub const CHECKPOINT_PAYLOAD_VERSION: u16 = 1;

/// The edge-scan frontier: everything needed to continue the naive scan.
#[derive(Clone, Debug)]
struct Machine {
    /// Next edge index to examine.
    next: usize,
    /// Running Σ|N(u) ∩ N(v)| over examined edges (count mode).
    total: u64,
    /// A witness found by an edge whose tick then failed: delivered first
    /// thing on resume, without a second charge.
    pending: Option<[usize; 3]>,
}

impl Machine {
    fn fresh() -> Machine {
        Machine {
            next: 0,
            total: 0,
            pending: None,
        }
    }

    /// Scans edges until a witness (`Ok(Some)`, find mode only), the end of
    /// the edge list (`Ok(None)`), or a failed charge (`Err`, resumable).
    fn run(
        &mut self,
        g: &Graph,
        edges: &[(usize, usize)],
        find_witness: bool,
        ticker: &mut Ticker,
    ) -> Result<Option<[usize; 3]>, ExhaustReason> {
        loop {
            if let Some(t) = self.pending.take() {
                return Ok(Some(t));
            }
            let Some(&(u, v)) = edges.get(self.next) else {
                return Ok(None);
            };
            let mut common = g.neighbor_set(u).clone();
            common.intersect_with(g.neighbor_set(v));
            // The per-edge neighborhood intersection is this scan's largest
            // materialized intermediate.
            ticker.record_intermediate(common.count() as u64);
            if find_witness {
                if let Some(w) = common.min() {
                    self.pending = Some(sorted3(u, v, w));
                }
            } else {
                self.total += common.count() as u64;
            }
            self.next += 1;
            ticker.node()?;
        }
    }

    fn encode(&self, digest: u64, mode: u8) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(digest).u8(mode).usize(self.next).u64(self.total);
        match self.pending {
            None => {
                w.u8(0);
            }
            Some([a, b, c]) => {
                w.u8(1).usize(a).usize(b).usize(c);
            }
        }
        w.finish()
    }

    fn decode(
        g: &Graph,
        num_edges: usize,
        digest: u64,
        mode: u8,
        ck: &Checkpoint,
    ) -> Result<Machine, CheckpointError> {
        ck.verify(SolverFamily::TriangleScan, CHECKPOINT_PAYLOAD_VERSION)?;
        let mut r = PayloadReader::new(ck.payload());
        let found = r.u64()?;
        if found != digest {
            return Err(CheckpointError::InstanceMismatch {
                family: SolverFamily::TriangleScan,
                expected: digest,
                found,
            });
        }
        let mode_at = r.offset();
        let stored_mode = r.u8()?;
        if stored_mode != mode {
            return Err(CheckpointError::Malformed {
                what: format!(
                    "checkpoint mode {stored_mode} does not match entry point mode {mode}"
                ),
                offset: mode_at,
            });
        }
        let next = r.usize_at_most(num_edges, "edge cursor")?;
        let total = r.u64()?;
        let n = g.num_vertices();
        let pending = match r.u8()? {
            0 => None,
            1 => Some([
                r.usize_below(n, "witness vertex")?,
                r.usize_below(n, "witness vertex")?,
                r.usize_below(n, "witness vertex")?,
            ]),
            b => {
                return Err(CheckpointError::Malformed {
                    what: format!("invalid pending-witness tag {b}"),
                    offset: r.offset().saturating_sub(1),
                })
            }
        };
        r.finish()?;
        Ok(Machine {
            next,
            total,
            pending,
        })
    }
}

/// FNV digest binding a checkpoint to the graph.
fn instance_digest(g: &Graph, edges: &[(usize, usize)]) -> u64 {
    let mut d = Digest::new();
    d.str("triangle-scan");
    d.usize(g.num_vertices()).usize(edges.len());
    // lb-lint: allow(unbudgeted-loop) -- digest pass, linear in the edge list; runs once per resume
    for &(u, v) in edges {
        d.usize(u).usize(v);
    }
    d.finish()
}

/// Naive detection: for each edge, intersect the endpoints' neighborhoods.
/// `Sat(triangle)`, `Unsat`, or `Exhausted`.
pub fn find_triangle_naive(g: &Graph, budget: &Budget) -> (Outcome<[usize; 3]>, RunStats) {
    let edges = g.edges();
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh();
    let result = m.run(g, &edges, true, &mut ticker);
    ticker.finish(result)
}

/// Like [`find_triangle_naive`], but exhaustion is a *pause*: the scan
/// position persists in a [`Checkpoint`] and chained resumes reach the
/// one-shot verdict with the same summed [`RunStats`].
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn find_triangle_naive_resumable(
    g: &Graph,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<[usize; 3]>, RunStats), CheckpointError> {
    let edges = g.edges();
    let digest = instance_digest(g, &edges);
    let mut m = match from {
        Some(ck) => Machine::decode(g, edges.len(), digest, 0, ck)?,
        None => Machine::fresh(),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = match m.run(g, &edges, true, &mut ticker) {
        Ok(Some(t)) => ResumableOutcome::Sat(t),
        Ok(None) => ResumableOutcome::Unsat,
        Err(reason) => ResumableOutcome::Suspended {
            reason,
            checkpoint: Checkpoint::new(
                SolverFamily::TriangleScan,
                CHECKPOINT_PAYLOAD_VERSION,
                m.encode(digest, 0),
            ),
        },
    };
    Ok((outcome, ticker.stats()))
}

/// Matrix-multiplication detection: a triangle exists iff (A²∧A) ≠ 0.
/// `Sat(triangle)`, `Unsat`, or `Exhausted`.
pub fn find_triangle_matmul(g: &Graph, budget: &Budget) -> (Outcome<[usize; 3]>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = matmul_inner(g, &mut ticker);
    ticker.finish(result)
}

fn matmul_inner(g: &Graph, ticker: &mut Ticker) -> Result<Option<[usize; 3]>, ExhaustReason> {
    // One tick per matrix row before the block multiply: the coarsest
    // granularity at which the budget can interrupt the O(n^ω) work.
    for _ in 0..g.num_vertices() {
        ticker.propagation()?;
    }
    let a = BoolMatrix::adjacency(g);
    let a2 = a.multiply(&a);
    let Some((i, j)) = a2.intersection_witness(&a) else {
        return Ok(None);
    };
    // Find the middle vertex.
    let w = g
        .neighbor_set(i)
        .iter()
        .find(|&w| g.has_edge(w, j))
        // lb-lint: allow(no-panic, panic-reachability) -- invariant: A^2[i][j] > 0 certifies a common neighbor exists
        .expect("A²[i][j] set ⇒ a common neighbor exists");
    Ok(Some(sorted3(i, j, w)))
}

/// Alon–Yuster–Zwick detection in m^{2ω/(ω+1)}.
///
/// `omega` is the matrix-multiplication exponent used for the degree
/// threshold; pass 2.807 for Strassen (the default via
/// [`find_triangle_ayz`]).
pub fn find_triangle_ayz_with_omega(
    g: &Graph,
    omega: f64,
    budget: &Budget,
) -> (Outcome<[usize; 3]>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = ayz_inner(g, omega, &mut ticker);
    ticker.finish(result)
}

fn ayz_inner(
    g: &Graph,
    omega: f64,
    ticker: &mut Ticker,
) -> Result<Option<[usize; 3]>, ExhaustReason> {
    let m = g.num_edges();
    if m == 0 {
        return Ok(None);
    }
    let delta = (m as f64).powf((omega - 1.0) / (omega + 1.0)).ceil() as usize;

    // Light triangles: some vertex has degree ≤ Δ; enumerate two-paths
    // centered at light vertices.
    for v in 0..g.num_vertices() {
        if g.degree(v) > delta {
            continue;
        }
        ticker.node()?;
        let nbrs = g.neighbors(v);
        for (i, &x) in nbrs.iter().enumerate() {
            for &y in &nbrs[i + 1..] {
                ticker.trie_advance()?;
                if g.has_edge(x, y) {
                    return Ok(Some(sorted3(v, x, y)));
                }
            }
        }
    }

    // Heavy triangles: all three vertices heavy; ≤ 2m/Δ of them, dense MM.
    let heavy: Vec<usize> = (0..g.num_vertices())
        .filter(|&v| g.degree(v) > delta)
        .collect();
    if heavy.len() < 3 {
        return Ok(None);
    }
    let (h, map) = g.induced_subgraph(&heavy);
    let (out, sub_stats) = find_triangle_matmul(&h, &ticker.remaining_budget());
    ticker.absorb(&sub_stats);
    match out {
        Outcome::Exhausted(r) => Err(r),
        Outcome::Unsat => Ok(None),
        // lb-lint: allow(no-unchecked-index, panic-reachability) -- induced-subgraph vertices index `map` by construction
        Outcome::Sat(t) => Ok(Some(sorted3(map[t[0]], map[t[1]], map[t[2]]))),
    }
}

/// AYZ with the Strassen exponent ω = log₂7 ≈ 2.807.
pub fn find_triangle_ayz(g: &Graph, budget: &Budget) -> (Outcome<[usize; 3]>, RunStats) {
    find_triangle_ayz_with_omega(g, 2.807, budget)
}

/// Counts triangles exactly via trace-free enumeration (for tests and the
/// counting experiments): Σ over edges of |N(u) ∩ N(v)| / 3. `Sat(count)`
/// or `Exhausted`.
pub fn count_triangles(g: &Graph, budget: &Budget) -> (Outcome<u64>, RunStats) {
    let edges = g.edges();
    let mut ticker = Ticker::new(budget);
    let mut m = Machine::fresh();
    let result = m
        .run(g, &edges, false, &mut ticker)
        .map(|_| Some(m.total / 3));
    ticker.finish(result)
}

/// Like [`count_triangles`], but exhaustion is a *pause*: the scan position
/// and the running sum persist in a [`Checkpoint`].
#[must_use = "a resumable run's outcome carries the checkpoint needed to continue"]
pub fn count_triangles_resumable(
    g: &Graph,
    budget: &Budget,
    from: Option<&Checkpoint>,
) -> Result<(ResumableOutcome<u64>, RunStats), CheckpointError> {
    let edges = g.edges();
    let digest = instance_digest(g, &edges);
    let mut m = match from {
        Some(ck) => Machine::decode(g, edges.len(), digest, 1, ck)?,
        None => Machine::fresh(),
    };
    let mut ticker = Ticker::new(budget);
    let outcome = match m.run(g, &edges, false, &mut ticker) {
        Ok(_) => ResumableOutcome::Sat(m.total / 3),
        Err(reason) => ResumableOutcome::Suspended {
            reason,
            checkpoint: Checkpoint::new(
                SolverFamily::TriangleScan,
                CHECKPOINT_PAYLOAD_VERSION,
                m.encode(digest, 1),
            ),
        },
    };
    Ok((outcome, ticker.stats()))
}

fn sorted3(a: usize, b: usize, c: usize) -> [usize; 3] {
    let mut t = [a, b, c];
    t.sort_unstable();
    t
}

/// Validates a triangle witness.
pub fn is_triangle(g: &Graph, t: &[usize; 3]) -> bool {
    let [a, b, c] = *t;
    a != b && b != c && g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    fn all_detectors(g: &Graph) -> [Option<[usize; 3]>; 3] {
        let b = Budget::unlimited();
        [
            find_triangle_naive(g, &b).0.unwrap_decided(),
            find_triangle_matmul(g, &b).0.unwrap_decided(),
            find_triangle_ayz(g, &b).0.unwrap_decided(),
        ]
    }

    fn count_unlimited(g: &Graph) -> u64 {
        count_triangles(g, &Budget::unlimited()).0.unwrap_sat()
    }

    #[test]
    fn clique_has_triangle() {
        let g = generators::clique(5);
        for t in all_detectors(&g) {
            assert!(is_triangle(&g, &t.unwrap()));
        }
        assert_eq!(count_unlimited(&g), 10);
    }

    #[test]
    fn bipartite_has_none() {
        let g = generators::complete_bipartite(4, 4);
        for t in all_detectors(&g) {
            assert!(t.is_none());
        }
        assert_eq!(count_unlimited(&g), 0);
    }

    #[test]
    fn detectors_agree_on_random_graphs() {
        for seed in 0..20u64 {
            let g = generators::gnp(30, 0.12, seed);
            let results = all_detectors(&g);
            let has = results[0].is_some();
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.is_some(), has, "seed {seed}, detector {i}");
                if let Some(t) = r {
                    assert!(is_triangle(&g, t), "seed {seed}, detector {i}");
                }
            }
            assert_eq!(has, count_unlimited(&g) > 0, "seed {seed}");
        }
    }

    #[test]
    fn sparse_graphs_with_heavy_hubs() {
        // A star plus one edge between two leaves: the triangle passes
        // through the heavy hub.
        let mut g = generators::star(50);
        g.add_edge(1, 2);
        for t in all_detectors(&g) {
            assert!(is_triangle(&g, &t.unwrap()));
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let b = Budget::unlimited();
        assert!(find_triangle_ayz(&Graph::new(0), &b).0.is_unsat());
        assert!(find_triangle_naive(&Graph::new(2), &b).0.is_unsat());
        assert!(find_triangle_matmul(&generators::path(3), &b).0.is_unsat());
    }

    #[test]
    fn count_matches_brute_force() {
        for seed in 0..10u64 {
            let g = generators::gnp(15, 0.4, seed);
            let mut brute = 0u64;
            for a in 0..15 {
                for b in (a + 1)..15 {
                    for c in (b + 1)..15 {
                        if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                            brute += 1;
                        }
                    }
                }
            }
            assert_eq!(count_unlimited(&g), brute, "seed {seed}");
        }
    }

    #[test]
    fn sliced_resume_matches_one_shot() {
        for seed in 0..8u64 {
            let g = generators::gnp(25, 0.15, seed);
            // Counting: chain tiny slices, compare verdict and summed stats.
            let (one_shot, full) = count_triangles(&g, &Budget::unlimited());
            let mut from: Option<Checkpoint> = None;
            let mut summed = RunStats::default();
            let sliced = loop {
                let (out, stats) = count_triangles_resumable(&g, &Budget::ticks(4), from.as_ref())
                    .expect("clean resume");
                summed.absorb(&stats);
                match out {
                    ResumableOutcome::Suspended { checkpoint, .. } => {
                        let bytes = checkpoint.to_bytes();
                        from = Some(Checkpoint::from_bytes(&bytes).expect("round trip"));
                    }
                    ResumableOutcome::Sat(n) => break n,
                    ResumableOutcome::Unsat => unreachable!("count never returns Unsat"),
                }
            };
            assert_eq!(Outcome::Sat(sliced), one_shot, "seed {seed}");
            assert_eq!(summed, full, "seed {seed}");

            // Finding: the sliced verdict must match the one-shot one.
            let (want, _) = find_triangle_naive(&g, &Budget::unlimited());
            let mut from: Option<Checkpoint> = None;
            let got = loop {
                let (out, _) = find_triangle_naive_resumable(&g, &Budget::ticks(4), from.as_ref())
                    .expect("clean resume");
                match out {
                    ResumableOutcome::Suspended { checkpoint, .. } => from = Some(checkpoint),
                    ResumableOutcome::Sat(t) => break Some(t),
                    ResumableOutcome::Unsat => break None,
                }
            };
            assert_eq!(got, want.unwrap_decided(), "seed {seed}");
            if let Some(t) = got {
                assert!(is_triangle(&g, &t), "seed {seed}");
            }
        }
    }

    #[test]
    fn mode_confusion_is_rejected() {
        let g = generators::gnp(25, 0.15, 0);
        let (out, _) = count_triangles_resumable(&g, &Budget::ticks(2), None).unwrap();
        let ck = out.checkpoint().expect("suspended").clone();
        let err = find_triangle_naive_resumable(&g, &Budget::unlimited(), Some(&ck)).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }));
    }

    #[test]
    fn graph_change_is_rejected_on_resume() {
        let g1 = generators::gnp(25, 0.15, 1);
        let g2 = generators::gnp(25, 0.15, 2);
        let (out, _) = count_triangles_resumable(&g1, &Budget::ticks(2), None).unwrap();
        let ck = out.checkpoint().expect("suspended").clone();
        let err = count_triangles_resumable(&g2, &Budget::unlimited(), Some(&ck)).unwrap_err();
        assert!(matches!(err, CheckpointError::InstanceMismatch { .. }));
    }

    #[test]
    fn tiny_budget_exhausts_every_detector() {
        let g = generators::gnp(30, 0.3, 1);
        let b = Budget::ticks(0); // the very first counted op exhausts
        assert!(find_triangle_naive(&g, &b).0.is_exhausted());
        assert!(find_triangle_matmul(&g, &b).0.is_exhausted());
        assert!(find_triangle_ayz(&g, &b).0.is_exhausted());
        assert!(count_triangles(&g, &b).0.is_exhausted());
    }

    use lb_graph::Graph;
}
