//! Triangle detection three ways (paper §8).
//!
//! * [`find_triangle_naive`] — edge iteration with neighborhood-bitset
//!   intersection, O(m·n/64);
//! * [`find_triangle_matmul`] — the A²∧A test via boolean matrix
//!   multiplication, O(n^ω) (the k-clique-conjecture route);
//! * [`find_triangle_ayz`] — Alon–Yuster–Zwick: split vertices at degree
//!   Δ = m^{(ω−1)/(ω+1)}; light triangles by enumerating two-paths through
//!   light vertices, heavy triangles by dense matrix multiplication on the
//!   ≤ 2m/Δ heavy vertices; total m^{2ω/(ω+1)} — conjecturally optimal in
//!   m (the Strong Triangle Conjecture).
//!
//! All three return a witness triangle and are cross-checked against each
//! other.
//!
//! Engine mapping: the naive detector ticks a [`RunStats::nodes`] per edge
//! scanned; the matrix detector ticks one [`RunStats::propagations`] per
//! matrix row (the budget-visible granularity of the block multiply); AYZ
//! ticks nodes for light-vertex scans and absorbs the dense detector's
//! counters for the heavy part.
//!
//! [`RunStats::nodes`]: lb_engine::RunStats::nodes
//! [`RunStats::propagations`]: lb_engine::RunStats::propagations

use crate::matmul::BoolMatrix;
use lb_engine::{Budget, ExhaustReason, Outcome, RunStats, Ticker};
use lb_graph::Graph;

/// Naive detection: for each edge, intersect the endpoints' neighborhoods.
/// `Sat(triangle)`, `Unsat`, or `Exhausted`.
pub fn find_triangle_naive(g: &Graph, budget: &Budget) -> (Outcome<[usize; 3]>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = naive_inner(g, &mut ticker);
    ticker.finish(result)
}

fn naive_inner(g: &Graph, ticker: &mut Ticker) -> Result<Option<[usize; 3]>, ExhaustReason> {
    for (u, v) in g.edges() {
        ticker.node()?;
        let nu = g.neighbor_set(u);
        let nv = g.neighbor_set(v);
        let mut common = nu.clone();
        common.intersect_with(nv);
        if let Some(w) = common.min() {
            return Ok(Some(sorted3(u, v, w)));
        }
    }
    Ok(None)
}

/// Matrix-multiplication detection: a triangle exists iff (A²∧A) ≠ 0.
/// `Sat(triangle)`, `Unsat`, or `Exhausted`.
pub fn find_triangle_matmul(g: &Graph, budget: &Budget) -> (Outcome<[usize; 3]>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = matmul_inner(g, &mut ticker);
    ticker.finish(result)
}

fn matmul_inner(g: &Graph, ticker: &mut Ticker) -> Result<Option<[usize; 3]>, ExhaustReason> {
    // One tick per matrix row before the block multiply: the coarsest
    // granularity at which the budget can interrupt the O(n^ω) work.
    for _ in 0..g.num_vertices() {
        ticker.propagation()?;
    }
    let a = BoolMatrix::adjacency(g);
    let a2 = a.multiply(&a);
    let Some((i, j)) = a2.intersection_witness(&a) else {
        return Ok(None);
    };
    // Find the middle vertex.
    let w = g
        .neighbor_set(i)
        .iter()
        .find(|&w| g.has_edge(w, j))
        // lb-lint: allow(no-panic) -- invariant: A^2[i][j] > 0 certifies a common neighbor exists
        .expect("A²[i][j] set ⇒ a common neighbor exists");
    Ok(Some(sorted3(i, j, w)))
}

/// Alon–Yuster–Zwick detection in m^{2ω/(ω+1)}.
///
/// `omega` is the matrix-multiplication exponent used for the degree
/// threshold; pass 2.807 for Strassen (the default via
/// [`find_triangle_ayz`]).
pub fn find_triangle_ayz_with_omega(
    g: &Graph,
    omega: f64,
    budget: &Budget,
) -> (Outcome<[usize; 3]>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = ayz_inner(g, omega, &mut ticker);
    ticker.finish(result)
}

fn ayz_inner(
    g: &Graph,
    omega: f64,
    ticker: &mut Ticker,
) -> Result<Option<[usize; 3]>, ExhaustReason> {
    let m = g.num_edges();
    if m == 0 {
        return Ok(None);
    }
    let delta = (m as f64).powf((omega - 1.0) / (omega + 1.0)).ceil() as usize;

    // Light triangles: some vertex has degree ≤ Δ; enumerate two-paths
    // centered at light vertices.
    for v in 0..g.num_vertices() {
        if g.degree(v) > delta {
            continue;
        }
        ticker.node()?;
        let nbrs = g.neighbors(v);
        for (i, &x) in nbrs.iter().enumerate() {
            for &y in &nbrs[i + 1..] {
                ticker.trie_advance()?;
                if g.has_edge(x, y) {
                    return Ok(Some(sorted3(v, x, y)));
                }
            }
        }
    }

    // Heavy triangles: all three vertices heavy; ≤ 2m/Δ of them, dense MM.
    let heavy: Vec<usize> = (0..g.num_vertices())
        .filter(|&v| g.degree(v) > delta)
        .collect();
    if heavy.len() < 3 {
        return Ok(None);
    }
    let (h, map) = g.induced_subgraph(&heavy);
    let (out, sub_stats) = find_triangle_matmul(&h, &ticker.remaining_budget());
    ticker.absorb(&sub_stats);
    match out {
        Outcome::Exhausted(r) => Err(r),
        Outcome::Unsat => Ok(None),
        // lb-lint: allow(no-unchecked-index) -- induced-subgraph vertices index `map` by construction
        Outcome::Sat(t) => Ok(Some(sorted3(map[t[0]], map[t[1]], map[t[2]]))),
    }
}

/// AYZ with the Strassen exponent ω = log₂7 ≈ 2.807.
pub fn find_triangle_ayz(g: &Graph, budget: &Budget) -> (Outcome<[usize; 3]>, RunStats) {
    find_triangle_ayz_with_omega(g, 2.807, budget)
}

/// Counts triangles exactly via trace-free enumeration (for tests and the
/// counting experiments): Σ over edges of |N(u) ∩ N(v)| / 3. `Sat(count)`
/// or `Exhausted`.
pub fn count_triangles(g: &Graph, budget: &Budget) -> (Outcome<u64>, RunStats) {
    let mut ticker = Ticker::new(budget);
    let result = count_inner(g, &mut ticker).map(Some);
    ticker.finish(result)
}

fn count_inner(g: &Graph, ticker: &mut Ticker) -> Result<u64, ExhaustReason> {
    let mut total = 0u64;
    for (u, v) in g.edges() {
        ticker.node()?;
        total += g.neighbor_set(u).intersection_count(g.neighbor_set(v)) as u64;
    }
    Ok(total / 3)
}

fn sorted3(a: usize, b: usize, c: usize) -> [usize; 3] {
    let mut t = [a, b, c];
    t.sort_unstable();
    t
}

/// Validates a triangle witness.
pub fn is_triangle(g: &Graph, t: &[usize; 3]) -> bool {
    let [a, b, c] = *t;
    a != b && b != c && g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;

    fn all_detectors(g: &Graph) -> [Option<[usize; 3]>; 3] {
        let b = Budget::unlimited();
        [
            find_triangle_naive(g, &b).0.unwrap_decided(),
            find_triangle_matmul(g, &b).0.unwrap_decided(),
            find_triangle_ayz(g, &b).0.unwrap_decided(),
        ]
    }

    fn count_unlimited(g: &Graph) -> u64 {
        count_triangles(g, &Budget::unlimited()).0.unwrap_sat()
    }

    #[test]
    fn clique_has_triangle() {
        let g = generators::clique(5);
        for t in all_detectors(&g) {
            assert!(is_triangle(&g, &t.unwrap()));
        }
        assert_eq!(count_unlimited(&g), 10);
    }

    #[test]
    fn bipartite_has_none() {
        let g = generators::complete_bipartite(4, 4);
        for t in all_detectors(&g) {
            assert!(t.is_none());
        }
        assert_eq!(count_unlimited(&g), 0);
    }

    #[test]
    fn detectors_agree_on_random_graphs() {
        for seed in 0..20u64 {
            let g = generators::gnp(30, 0.12, seed);
            let results = all_detectors(&g);
            let has = results[0].is_some();
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.is_some(), has, "seed {seed}, detector {i}");
                if let Some(t) = r {
                    assert!(is_triangle(&g, t), "seed {seed}, detector {i}");
                }
            }
            assert_eq!(has, count_unlimited(&g) > 0, "seed {seed}");
        }
    }

    #[test]
    fn sparse_graphs_with_heavy_hubs() {
        // A star plus one edge between two leaves: the triangle passes
        // through the heavy hub.
        let mut g = generators::star(50);
        g.add_edge(1, 2);
        for t in all_detectors(&g) {
            assert!(is_triangle(&g, &t.unwrap()));
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let b = Budget::unlimited();
        assert!(find_triangle_ayz(&Graph::new(0), &b).0.is_unsat());
        assert!(find_triangle_naive(&Graph::new(2), &b).0.is_unsat());
        assert!(find_triangle_matmul(&generators::path(3), &b).0.is_unsat());
    }

    #[test]
    fn count_matches_brute_force() {
        for seed in 0..10u64 {
            let g = generators::gnp(15, 0.4, seed);
            let mut brute = 0u64;
            for a in 0..15 {
                for b in (a + 1)..15 {
                    for c in (b + 1)..15 {
                        if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                            brute += 1;
                        }
                    }
                }
            }
            assert_eq!(count_unlimited(&g), brute, "seed {seed}");
        }
    }

    #[test]
    fn tiny_budget_exhausts_every_detector() {
        let g = generators::gnp(30, 0.3, 1);
        let b = Budget::ticks(0); // the very first counted op exhausts
        assert!(find_triangle_naive(&g, &b).0.is_exhausted());
        assert!(find_triangle_matmul(&g, &b).0.is_exhausted());
        assert!(find_triangle_ayz(&g, &b).0.is_exhausted());
        assert!(count_triangles(&g, &b).0.is_exhausted());
    }

    use lb_graph::Graph;
}
